#!/bin/sh
# Full verification gate for the cloud-watching workspace:
#   build, lints (clippy warnings are errors), tests, doc build (warnings
#   are errors), doctests, and the fleet determinism check (CW_THREADS=8
#   stdout must be byte-identical to CW_THREADS=1).
# Usage: scripts/verify.sh [scale]   (default scale 0.05 for a quick run)
set -eu

cd "$(dirname "$0")/.."
scale="${1:-0.05}"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test --doc -q"
cargo test --doc -q

echo "==> fleet determinism: all --scale $scale, 1 vs 8 threads"
out1="$(mktemp)"; out8="$(mktemp)"
trap 'rm -f "$out1" "$out8"' EXIT
CW_THREADS=1 ./target/release/all --scale "$scale" >"$out1" 2>/dev/null
CW_THREADS=8 ./target/release/all --scale "$scale" >"$out8" 2>/dev/null
cmp "$out1" "$out8"
echo "    byte-identical across thread counts"

echo "verify: OK"
