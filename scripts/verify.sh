#!/bin/sh
# Full verification gate for the cloud-watching workspace:
#   build, lints (clippy warnings are errors), tests (including the
#   statistical oracle, metamorphic, and null-calibration suites in
#   tests/), doc build (warnings are errors), doctests, the fleet
#   determinism check (CW_THREADS=8 stdout must be byte-identical to
#   CW_THREADS=1), and the golden-exhibit gate: every out/*.txt is
#   regenerated from the release binaries and must hash-match the
#   checked-in tests/golden/MANIFEST.sha256. After an intentional exhibit
#   change, re-bless with `CW_BLESS=1 cargo test --test golden` and commit
#   the new manifest (see docs/TESTING.md).
# Usage: scripts/verify.sh [scale]   (default scale 0.05 for a quick run)
set -eu

cd "$(dirname "$0")/.."
scale="${1:-0.05}"

echo "==> cargo build --release --workspace"
cargo build --release --workspace --quiet

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test --doc -q"
cargo test --doc -q

echo "==> fleet determinism: all --scale $scale, 1 vs 8 threads"
out1="$(mktemp)"; out8="$(mktemp)"
trap 'rm -f "$out1" "$out8"' EXIT
CW_THREADS=1 ./target/release/all --scale "$scale" >"$out1" 2>/dev/null
CW_THREADS=8 ./target/release/all --scale "$scale" >"$out8" 2>/dev/null
cmp "$out1" "$out8"
echo "    byte-identical across thread counts"

echo "==> golden exhibits: regenerate all 25 out/*.txt and check the manifest"
mkdir -p out
for name in \
    ablation_bonferroni ablation_median ablation_topk all figure1 \
    recommendations section3_2 table1 table2 table3 table4 table5 table6 \
    table7 table8 table9 table10 table11 table12 table13 table14 table15 \
    table16 table17 temporal_stability
do
    ./target/release/"$name" >"out/$name.txt" 2>/dev/null
done
cargo test -q --test golden
echo "    all exhibits hash-match tests/golden/MANIFEST.sha256"

echo "verify: OK"
