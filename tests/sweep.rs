//! The `cw sweep` simulate-once cache contract, proved with the
//! process-global simulate-call counter: a cold sweep over an N-cell grid
//! performs exactly `distinct_configs` simulations, a warm sweep performs
//! zero, the report bytes are identical either way, and an interrupted
//! sweep resumes from the snapshot cache without recomputing any
//! completed cell.
//!
//! The counter ([`snapshot::simulations_performed`]) is process-global, so
//! every test that reads deltas holds `SIM_LOCK` — Rust runs tests in one
//! binary on parallel threads, and a concurrent simulation would pollute
//! the deltas. Leak worlds never go through the cache layer and therefore
//! never move the counter; only cell worlds do.

use cloud_watching::core::bundle::SimBundle;
use cloud_watching::core::scenario::ScenarioConfig;
use cloud_watching::core::sweep::SweepGrid;
use cloud_watching::core::{degrade, snapshot, sweep};
use cloud_watching::scanners::population::ScenarioYear;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

static SIM_LOCK: Mutex<()> = Mutex::new(());

/// A private, empty cache directory for one test.
fn scratch_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cw-sweep-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The 2-cell test grid: one year, one seed, the fault-free variant,
/// scales ×1/×2 over a tiny fast-config base.
fn tiny_grid() -> (SweepGrid, ScenarioConfig) {
    let base = ScenarioConfig::fast(ScenarioYear::Y2021)
        .with_seed(4_242)
        .with_scale(0.01);
    let grid = SweepGrid {
        years: vec![ScenarioYear::Y2021],
        seeds: vec![base.seed],
        variants: vec![degrade::ladder().remove(0)],
        scales: vec![1.0, 2.0],
    };
    (grid, base)
}

#[test]
fn cold_sweep_simulates_each_distinct_cell_exactly_once_and_warm_none() {
    let _guard = SIM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch_cache("coldwarm");
    let (grid, base) = tiny_grid();
    let distinct = grid.distinct_configs(&base) as u64;
    assert_eq!(distinct, 2, "test grid names two distinct worlds");
    let run = || {
        sweep::report(&grid, base, &|cfg| {
            snapshot::load_or_run_in(&dir, cfg, true).0
        })
    };

    let sims0 = snapshot::simulations_performed();
    let cold = run();
    let cold_sims = snapshot::simulations_performed() - sims0;
    assert_eq!(
        cold_sims, distinct,
        "cold sweep must simulate exactly the distinct cells"
    );

    let warm = run();
    let warm_sims = snapshot::simulations_performed() - sims0 - cold_sims;
    assert_eq!(warm_sims, 0, "warm sweep must be all snapshot hits");
    assert_eq!(cold, warm, "sweep report must be cache-invariant, byte for byte");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_grid_axes_never_cost_extra_simulations() {
    let _guard = SIM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch_cache("dupes");
    let (mut grid, base) = tiny_grid();
    // Same worlds named many more times: 2 years × 2 seeds × 4 scale
    // entries = 16 cells, still 2 distinct worlds.
    grid.years = vec![ScenarioYear::Y2021, ScenarioYear::Y2021];
    grid.seeds = vec![base.seed, base.seed];
    grid.scales = vec![1.0, 1.0, 2.0, 2.0];
    assert_eq!(grid.cell_count(), 16);
    assert_eq!(grid.distinct_configs(&base), 2);

    let sims0 = snapshot::simulations_performed();
    let report = sweep::report(&grid, base, &|cfg| {
        snapshot::load_or_run_in(&dir, cfg, true).0
    });
    assert_eq!(
        snapshot::simulations_performed() - sims0,
        2,
        "16 named cells, 2 distinct worlds, 2 simulations"
    );
    assert!(report.contains("16 (2 distinct worlds"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_resumes_without_recomputing_completed_cells() {
    let _guard = SIM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch_cache("resume");
    let (grid, base) = tiny_grid();
    let sims0 = snapshot::simulations_performed();

    // First attempt dies on its second world-obtain — after the first
    // cell's simulation already landed in the cache.
    let obtained = std::cell::Cell::new(0usize);
    let interrupted = catch_unwind(AssertUnwindSafe(|| {
        sweep::report(&grid, base, &|cfg| {
            let i = obtained.get();
            obtained.set(i + 1);
            if i == 1 {
                panic!("injected sweep interruption before obtain #{i}");
            }
            snapshot::load_or_run_in(&dir, cfg, true).0
        })
    }));
    assert!(interrupted.is_err(), "the injected panic must surface");
    let after_crash = snapshot::simulations_performed() - sims0;
    assert_eq!(after_crash, 1, "one cell completed before the interruption");

    // The rerun resumes: the completed cell is a cache hit, only the
    // remaining cell simulates — the world total stays at distinct_configs.
    let resumed = sweep::report(&grid, base, &|cfg| {
        snapshot::load_or_run_in(&dir, cfg, true).0
    });
    let total = snapshot::simulations_performed() - sims0;
    assert_eq!(
        total,
        grid.distinct_configs(&base) as u64,
        "resume must not recompute the completed cell"
    );

    // And the resumed report equals a from-scratch warm report.
    let warm = sweep::report(&grid, base, &|cfg| {
        snapshot::load_or_run_in(&dir, cfg, true).0
    });
    assert_eq!(resumed, warm);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leak_worlds_never_touch_the_simulate_counter() {
    let _guard = SIM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (grid, base) = tiny_grid();
    // Obtain without the cache layer: the counter must stay untouched even
    // though the sweep simulates cell worlds (inline) and leak worlds.
    let sims0 = snapshot::simulations_performed();
    let report = sweep::report(&grid, base, &|cfg| SimBundle::run(cfg));
    assert_eq!(
        snapshot::simulations_performed() - sims0,
        0,
        "the counter counts cache-layer simulations only"
    );
    assert!(report.contains("findings scale-stable"));
}
