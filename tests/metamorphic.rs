//! Metamorphic invariants over the dataset → comparison pipeline (tier 2
//! of docs/TESTING.md), driven by the reusable helpers and strategies in
//! `cw_verify::metamorphic`.
//!
//! None of these tests knows a "right answer"; each knows a transformation
//! the answer must survive: event-order permutation, merge re-association,
//! thread-count changes, subsampling, and no-op map edits.

use cloud_watching::core::compare::{compare_freqs, CharKind};
use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::scanners::population::ScenarioYear;
use cw_verify::metamorphic::{
    comparison_fingerprint, counts_subsumed, csv_bytes, fold_left, fold_right, freqs_at,
    replicates_csv, shuffled, FreqGroups, FreqMap,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const KINDS: [CharKind; 5] = [
    CharKind::TopAs,
    CharKind::FracMalicious,
    CharKind::TopUsername,
    CharKind::TopPassword,
    CharKind::TopPayload,
];

#[test]
fn event_order_permutation_leaves_every_comparison_bit_identical() {
    let s = Scenario::run(
        ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(41)
            .with_scale(0.02),
    );
    let events: Vec<_> = s.dataset.events().collect();
    // Two groups by index parity — arbitrary but fixed labels; the
    // transformation under test is the *order* of events within a group.
    let g1: Vec<usize> = (0..events.len()).step_by(2).collect();
    let g2: Vec<usize> = (1..events.len()).step_by(2).collect();
    for (k, kind) in KINDS.into_iter().enumerate() {
        let base = [
            freqs_at(kind, &events, &g1),
            freqs_at(kind, &events, &g2),
        ];
        let perm = [
            freqs_at(kind, &events, &shuffled(&g1, 1000 + k as u64)),
            freqs_at(kind, &events, &shuffled(&g2, 2000 + k as u64)),
        ];
        let a = compare_freqs(kind, &base, 0.05, 5);
        let b = compare_freqs(kind, &perm, 0.05, 5);
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => assert_eq!(
                comparison_fingerprint(&a),
                comparison_fingerprint(&b),
                "{kind:?} changed under event-order permutation"
            ),
            _ => panic!("{kind:?}: comparability changed under permutation"),
        }
    }
}

#[test]
fn event_prefix_counts_are_subsumed_and_top_k_is_monotone() {
    let s = Scenario::run(
        ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(42)
            .with_scale(0.02),
    );
    let events: Vec<_> = s.dataset.events().collect();
    let all: Vec<usize> = (0..events.len()).collect();
    for kind in KINDS {
        let full = freqs_at(kind, &events, &all);
        let top_full = top3_total(&full);
        let mut prev_top = 0u64;
        for frac in [4usize, 2, 1] {
            let prefix = &all[..events.len() / frac];
            let sub = freqs_at(kind, &events, prefix);
            assert!(
                counts_subsumed(&sub, &full),
                "{kind:?}: a prefix invented or inflated a category"
            );
            // Growing the prefix can only grow the top-3 mass.
            let top_sub = top3_total(&sub);
            assert!(
                top_sub >= prev_top,
                "{kind:?}: top-3 mass shrank as the sample grew"
            );
            prev_top = top_sub;
            assert!(top_sub <= top_full);
        }
    }
}

/// Total count mass of a map's top-3 categories.
fn top3_total(freqs: &BTreeMap<String, u64>) -> u64 {
    cloud_watching::stats::topk::top_k_of(freqs, 3)
        .iter()
        .map(|cat| freqs[cat])
        .sum()
}

#[test]
fn fleet_thread_count_is_byte_identical() {
    let base = ScenarioConfig::fast(ScenarioYear::Y2021)
        .with_seed(43)
        .with_scale(0.012);
    let serial = replicates_csv(base, 3, 1);
    for threads in [2, 3, 8] {
        assert_eq!(
            serial,
            replicates_csv(base, 3, threads),
            "thread count {threads} changed merged CSV bytes"
        );
    }
}

#[test]
fn absorb_is_associative_to_the_byte() {
    let mk = |seed: u64| {
        Scenario::run(
            ScenarioConfig::fast(ScenarioYear::Y2021)
                .with_seed(seed)
                .with_scale(0.01),
        )
        .dataset
    };
    let left = fold_left(vec![mk(7), mk(8), mk(9)]);
    let right = fold_right(vec![mk(7), mk(8), mk(9)]);
    assert_eq!(
        csv_bytes(&left),
        csv_bytes(&right),
        "merge association changed CSV bytes"
    );
}

proptest! {
    // Categories with zero counts are representational noise: the top-k
    // union drops them, so inserting any number of them into any group
    // must leave the comparison bit-identical.
    #[test]
    fn zero_count_categories_are_invisible(groups in FreqGroups::default()) {
        let padded: Vec<BTreeMap<String, u64>> = groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let mut g = g.clone();
                g.insert(format!("ghost{i}"), 0);
                g.insert("ghost-shared".to_string(), 0);
                g
            })
            .collect();
        let a = compare_freqs(CharKind::TopAs, &groups, 0.05, 5);
        let b = compare_freqs(CharKind::TopAs, &padded, 0.05, 5);
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(
                comparison_fingerprint(&a),
                comparison_fingerprint(&b)
            ),
            _ => prop_assert!(false, "comparability changed under zero-count padding"),
        }
    }

    // Scaling every count by the same factor is a pure sample-size change:
    // the effect size must be preserved (to float tolerance) and the
    // p-value can only move toward significance, never away.
    #[test]
    fn uniform_count_scaling_preserves_effect_and_tightens_p(groups in FreqGroups::default()) {
        let scaled: Vec<BTreeMap<String, u64>> = groups
            .iter()
            .map(|g| g.iter().map(|(k, &v)| (k.clone(), v * 4)).collect())
            .collect();
        let a = compare_freqs(CharKind::TopAs, &groups, 0.05, 5);
        let b = compare_freqs(CharKind::TopAs, &scaled, 0.05, 5);
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert!((a.effect.phi - b.effect.phi).abs() < 1e-9,
                    "V changed under uniform scaling: {} vs {}", a.effect.phi, b.effect.phi);
                prop_assert!(b.chi2.p_value <= a.chi2.p_value + 1e-12,
                    "p grew with sample size: {} -> {}", a.chi2.p_value, b.chi2.p_value);
            }
            _ => prop_assert!(false, "comparability changed under uniform scaling"),
        }
    }

    // The subsumption predicate itself: any per-category halving is a
    // valid subsample shape, and subsumption survives map-level noise.
    #[test]
    fn counts_subsumed_closed_under_halving(m in FreqMap::default()) {
        let half: BTreeMap<String, u64> = m.iter().map(|(k, &v)| (k.clone(), v / 2)).collect();
        prop_assert!(counts_subsumed(&half, &m));
        prop_assert!(counts_subsumed(&m, &m));
    }
}
