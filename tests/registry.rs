//! Registry-completeness gate: the exhibit registry, the golden exhibit
//! list, and the committed manifest must all name exactly the same 25
//! artifacts. A new exhibit that is registered but not golden-gated (or
//! vice versa) fails here, before any hashes are compared.

use cw_core::exhibit::REGISTRY;
use cw_verify::golden::{manifest_path, parse_manifest, workspace_root, EXHIBITS};

/// Registry names + `.txt`, in registry order.
fn registry_files() -> Vec<String> {
    REGISTRY.iter().map(|e| format!("{}.txt", e.name())).collect()
}

#[test]
fn registry_matches_golden_exhibit_list() {
    let registry: Vec<String> = registry_files();
    let golden: Vec<String> = EXHIBITS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        registry, golden,
        "cw_core::exhibit::REGISTRY and cw_verify::golden::EXHIBITS disagree \
         (every registered exhibit must be golden-gated, in the same canonical order)"
    );
}

#[test]
fn registry_matches_committed_manifest() {
    let root = workspace_root();
    let text = std::fs::read_to_string(manifest_path(&root))
        .expect("tests/golden/MANIFEST.sha256 must exist");
    let manifest: Vec<String> = parse_manifest(&text).into_iter().map(|(name, _)| name).collect();
    let mut registry = registry_files();
    registry.sort();
    let mut sorted_manifest = manifest.clone();
    sorted_manifest.sort();
    assert_eq!(
        registry, sorted_manifest,
        "MANIFEST.sha256 entries must be exactly the registered exhibits"
    );
    assert_eq!(manifest.len(), 25, "the paper has 25 golden exhibits");
}

#[test]
fn cw_list_inventory_is_the_registry() {
    // `cw list` prints one line per REGISTRY entry, so checking the
    // registry's names/titles here gates the CLI inventory too.
    for e in REGISTRY {
        assert!(!e.name().is_empty());
        assert!(!e.title().is_empty());
        assert!(
            e.name().chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "exhibit name '{}' must be a valid out/<name>.txt stem",
            e.name()
        );
    }
}
