//! Interner invariants and the refactor equivalence gate.
//!
//! The interner's contract is that IDs are a pure function of the
//! *first-occurrence order* of distinct values — never of how many times a
//! value is re-interned or of hash-map iteration order. The equivalence
//! gate re-derives every ID-keyed analysis axis with a naive per-event
//! string-resolving reference and demands identical frequency maps.

use cloud_watching::core::axes;
use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::honeypot::capture::Observed;
use cloud_watching::netsim::intern::Interner;
use cloud_watching::scanners::population::ScenarioYear;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every interned value resolves back to exactly the bytes that went in.
    #[test]
    fn payload_round_trip(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..32,
        )
    ) {
        let mut interner = Interner::new();
        let ids: Vec<_> = payloads.iter().map(|p| interner.intern_payload(p)).collect();
        for (p, id) in payloads.iter().zip(&ids) {
            prop_assert_eq!(interner.payload(*id), p.as_slice());
        }
        // Equal bytes, equal id; distinct bytes, distinct id.
        for (i, a) in payloads.iter().enumerate() {
            for (j, b) in payloads.iter().enumerate() {
                prop_assert_eq!(ids[i] == ids[j], a == b);
            }
        }
    }

    /// Same for credential strings.
    #[test]
    fn cred_round_trip(
        creds in proptest::collection::vec("[ -~]{0,24}", 1..32)
    ) {
        let mut interner = Interner::new();
        let ids: Vec<_> = creds.iter().map(|c| interner.intern_cred(c)).collect();
        for (c, id) in creds.iter().zip(&ids) {
            prop_assert_eq!(interner.cred(*id), c.as_str());
        }
    }

    /// IDs depend only on the first-occurrence order of distinct values:
    /// splicing extra duplicate inserts anywhere into the stream never
    /// perturbs any ID.
    #[test]
    fn duplicate_inserts_never_perturb_ids(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..16),
            1..16,
        ),
        dup_positions in proptest::collection::vec(any::<u16>(), 0..32),
        dup_picks in proptest::collection::vec(any::<u16>(), 0..32),
    ) {
        let mut clean = Interner::new();
        let clean_ids: Vec<_> = payloads.iter().map(|p| clean.intern_payload(p)).collect();

        // Replay the same stream with duplicates of already-seen values
        // spliced in front of each original insert.
        let mut noisy = Interner::new();
        let mut dups = dup_positions.iter().zip(dup_picks.iter());
        for (i, p) in payloads.iter().enumerate() {
            if let Some((pos, pick)) = dups.next() {
                if i > 0 && *pos as usize % payloads.len() <= i {
                    let seen = &payloads[*pick as usize % i.max(1)];
                    noisy.intern_payload(seen);
                }
            }
            let id = noisy.intern_payload(p);
            prop_assert_eq!(id, clean_ids[i]);
        }
        prop_assert_eq!(clean.payload_count(), noisy.payload_count());
    }

    /// Append-only: interning new values never invalidates old IDs.
    #[test]
    fn appends_never_move_existing_ids(
        first in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..8),
        second in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..8),
    ) {
        let mut interner = Interner::new();
        let ids: Vec<_> = first.iter().map(|p| interner.intern_payload(p)).collect();
        let snapshot: Vec<Vec<u8>> = ids.iter().map(|&id| interner.payload(id).to_vec()).collect();
        for p in &second {
            interner.intern_payload(p);
        }
        for (id, bytes) in ids.iter().zip(&snapshot) {
            prop_assert_eq!(interner.payload(*id), bytes.as_slice());
        }
    }
}

/// The refactor equivalence gate: ID-keyed counting in `axes` must produce
/// byte-identical frequency maps to a naive reference that resolves every
/// event's strings individually.
#[test]
fn id_keyed_axes_match_per_event_string_reference() {
    let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(11));
    let events: Vec<_> = s.dataset.events().collect();
    let interner = s.dataset.interner();

    // Reference: resolve strings per event, count in a BTreeMap.
    let mut ref_as: BTreeMap<String, u64> = BTreeMap::new();
    let mut ref_user: BTreeMap<String, u64> = BTreeMap::new();
    let mut ref_pass: BTreeMap<String, u64> = BTreeMap::new();
    let mut ref_payload: BTreeMap<String, u64> = BTreeMap::new();
    for e in &events {
        *ref_as.entry(e.event.src_asn.to_string()).or_insert(0) += 1;
        match e.event.observed {
            Observed::Credentials {
                username, password, ..
            } => {
                *ref_user
                    .entry(interner.cred(username).to_string())
                    .or_insert(0) += 1;
                *ref_pass
                    .entry(interner.cred(password).to_string())
                    .or_insert(0) += 1;
            }
            Observed::Payload(p) => {
                let normalized =
                    cloud_watching::protocols::http::normalize(interner.payload(p));
                *ref_payload
                    .entry(axes::payload_key(&normalized))
                    .or_insert(0) += 1;
            }
            _ => {}
        }
    }

    assert_eq!(axes::as_freqs(&events), ref_as);
    assert_eq!(axes::username_freqs(&events), ref_user);
    assert_eq!(axes::password_freqs(&events), ref_pass);
    assert_eq!(axes::payload_freqs(&events), ref_payload);
    assert!(!ref_as.is_empty() && !ref_user.is_empty() && !ref_payload.is_empty());
}

/// The memo path and the unmemoized reference classifier agree on every
/// event of a real scenario.
#[test]
fn memoized_classification_matches_reference_on_scenario() {
    let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(5));
    let rules = cloud_watching::detection::RuleSet::builtin_cached();
    let interner = s.dataset.interner();
    for e in s.dataset.events() {
        let (verdict, fingerprint) =
            cloud_watching::core::dataset::classify_event(&e.event, interner, rules);
        assert_eq!(e.verdict, verdict);
        assert_eq!(e.fingerprint, fingerprint);
    }
}
