//! Cross-crate property-based tests: parsers never panic, statistics stay
//! in their ranges, and codec round-trips hold under arbitrary inputs.

use cloud_watching::detection::parse_rule;
use cloud_watching::detection::pcre::PcreLite;
use cloud_watching::netsim::ip::{Cidr, IpExt};
use cloud_watching::netsim::rng::SimRng;
use cloud_watching::protocols;
use cloud_watching::stats::{
    bonferroni_correct, chi_squared_from_table, cramers_v, ks_two_sample, mann_whitney_u,
    top_k_union_table, Alternative, ContingencyTable, TopKSpec,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

proptest! {
    #[test]
    fn fingerprint_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = protocols::fingerprint(&payload);
    }

    #[test]
    fn http_parse_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = protocols::HttpRequest::parse(&payload);
        let _ = protocols::http::normalize(&payload);
    }

    #[test]
    fn http_build_parse_round_trip(
        method in prop::sample::select(vec!["GET", "POST", "HEAD", "PUT"]),
        path in "/[a-z0-9/_.-]{0,40}",
        value in "[ -~&&[^\r\n]]{0,40}",
    ) {
        let req = protocols::HttpRequest::new(method, &path).header("X-T", value.trim());
        let parsed = protocols::HttpRequest::parse(&req.to_bytes()).expect("round trip");
        prop_assert_eq!(parsed.method, method);
        prop_assert_eq!(parsed.uri, path);
    }

    #[test]
    fn rule_parser_never_panics(line in ".{0,200}") {
        let _ = parse_rule(&line);
    }

    #[test]
    fn pcre_never_panics(pattern in "/[ -~]{0,24}/", hay in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(p) = PcreLite::compile(&pattern) {
            let _ = p.is_match(&hay);
        }
    }

    #[test]
    fn tls_sni_extraction_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = protocols::tls::extract_sni(&payload);
        let _ = protocols::tls::is_client_hello(&payload);
    }

    #[test]
    fn chi2_and_v_stay_in_range(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u64..500, 4),
            2..5,
        )
    ) {
        let cats = (0..4).map(|i| format!("c{i}")).collect();
        let table = ContingencyTable::new(cats, counts);
        if let Some(r) = chi_squared_from_table(&table) {
            prop_assert!(r.statistic >= -1e-9);
            prop_assert!((0.0..=1.0).contains(&r.p_value));
            let v = cramers_v(&r);
            prop_assert!((0.0..=1.0).contains(&v.phi));
        }
    }

    #[test]
    fn identical_rows_never_significant(row in proptest::collection::vec(1u64..300, 3)) {
        let cats = (0..3).map(|i| format!("c{i}")).collect();
        let table = ContingencyTable::new(cats, vec![row.clone(), row]);
        if let Some(r) = chi_squared_from_table(&table) {
            prop_assert!(r.statistic < 1e-6);
        }
    }

    #[test]
    fn mwu_and_ks_p_values_in_range(
        x in proptest::collection::vec(0.0f64..100.0, 1..40),
        y in proptest::collection::vec(0.0f64..100.0, 1..40),
    ) {
        let m = mann_whitney_u(&x, &y, Alternative::Greater).unwrap();
        prop_assert!((0.0..=1.0).contains(&m.p_value));
        let k = ks_two_sample(&x, &y).unwrap();
        prop_assert!((0.0..=1.0).contains(&k.statistic));
        prop_assert!((0.0..=1.0).contains(&k.p_value));
    }

    #[test]
    fn mwu_direction_antisymmetry(
        x in proptest::collection::vec(0.0f64..100.0, 8..30),
        y in proptest::collection::vec(0.0f64..100.0, 8..30),
    ) {
        // x>y significant implies y>x not significant.
        let xy = mann_whitney_u(&x, &y, Alternative::Greater).unwrap();
        let yx = mann_whitney_u(&y, &x, Alternative::Greater).unwrap();
        if xy.p_value < 0.01 {
            prop_assert!(yx.p_value > 0.5);
        }
    }

    #[test]
    fn bonferroni_is_monotone_and_bounded(ps in proptest::collection::vec(0.0f64..1.0, 1..20)) {
        let adj = bonferroni_correct(&ps);
        for (p, a) in ps.iter().zip(&adj) {
            prop_assert!(*a >= *p - 1e-12);
            prop_assert!(*a <= 1.0);
        }
    }

    #[test]
    fn top_k_union_contains_each_groups_top(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u64..100, 6),
            1..4,
        )
    ) {
        let groups: Vec<BTreeMap<String, u64>> = counts
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, &c)| (format!("k{i}"), c))
                    .collect()
            })
            .collect();
        let table = top_k_union_table(&groups, TopKSpec::paper());
        for g in &groups {
            for top in cloud_watching::stats::topk::top_k_of(g, 3) {
                prop_assert!(table.categories.contains(&top));
            }
        }
    }

    #[test]
    fn cidr_nth_offset_inverse(base in any::<u32>(), prefix in 8u8..=32, idx in any::<u64>()) {
        let cidr = Cidr::new(Ipv4Addr::from(base), prefix);
        let idx = idx % cidr.size();
        let ip = cidr.nth(idx);
        prop_assert_eq!(cidr.offset_of(ip), Some(idx));
        prop_assert!(cidr.contains(ip));
    }

    #[test]
    fn rng_range_respects_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            let v = rng.range(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
    }

    #[test]
    fn ip_predicates_consistent(a in any::<u8>(), b in any::<u8>(), c in any::<u8>(), d in any::<u8>()) {
        let ip = Ipv4Addr::new(a, b, c, d);
        if ip.ends_in_255() {
            prop_assert!(ip.has_255_octet());
        }
        prop_assert_eq!(ip.slash16().octets()[2], 0);
        prop_assert_eq!(ip.slash24().octets()[3], 0);
    }

    #[test]
    fn cowrie_harvests_arbitrary_credentials(
        user in "[a-zA-Z0-9_.-]{1,16}",
        pass in "[ -~&&[^\r\n]]{1,24}",
    ) {
        use cloud_watching::honeypot::cowrie::harvest;
        use cloud_watching::netsim::flow::LoginService;
        let pass = pass.trim();
        prop_assume!(!pass.is_empty() && !pass.contains('\u{ff}'));
        for service in [LoginService::Ssh, LoginService::Telnet] {
            let c = harvest(service, &user, pass).expect("harvest");
            prop_assert_eq!(&c.username, &user);
            prop_assert_eq!(&c.password, pass);
        }
    }
}
