//! Scale-10 smoke tier — opt-in via `CW_SCALE_TESTS=1`.
//!
//! Tier-1 CI exercises tiny fast-config worlds; this tier grows the same
//! world 10× through the streaming dataset build and checks the
//! scale-sensitivity machinery end to end: the event count grows roughly
//! linearly, capture-side buffering stays bounded by one window (the
//! streaming build's memory contract), the grown bundle round-trips
//! through the snapshot cache, and a `cw sweep` over scales {×1, ×10}
//! resolves every cell from the cache once both worlds are stored.
//!
//! Without `CW_SCALE_TESTS=1` every test returns immediately (and says so
//! on stderr), keeping the default `cargo test` wall time unchanged.
//! `scripts/verify.sh` runs the tier when invoked as
//! `CW_SCALE_TESTS=1 scripts/verify.sh`.

use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::core::sweep::SweepGrid;
use cloud_watching::core::{degrade, snapshot, sweep};
use cloud_watching::netsim::time::SimDuration;
use cloud_watching::scanners::population::ScenarioYear;

/// The tier gate: set `CW_SCALE_TESTS=1` to run, anything else skips.
fn gated() -> bool {
    if std::env::var("CW_SCALE_TESTS").ok().as_deref() == Some("1") {
        return true;
    }
    eprintln!("[scale] skipped (set CW_SCALE_TESTS=1 to run the scale tier)");
    false
}

/// The tier's base world: the fast configuration at a scale where ×10 is
/// still a single-digit-second debug-build simulation.
fn base() -> ScenarioConfig {
    ScenarioConfig::fast(ScenarioYear::Y2021)
        .with_seed(10_010)
        .with_scale(0.02)
}

#[test]
fn scale_10_world_grows_linearly_with_bounded_window_buffering() {
    if !gated() {
        return;
    }
    let window = SimDuration::DAY;
    let small = Scenario::run_with_window(base(), window);
    let double = Scenario::run_with_window(base().with_scale(base().scale * 2.0), window);
    let big = Scenario::run_with_window(base().with_scale(base().scale * 10.0), window);

    // Event volume is affine in scale: a scale-independent deployment
    // baseline plus a scale-driven component. The *increment* per unit of
    // scale must be roughly constant, so growing the scale step 9× (×1→×10
    // versus ×1→×2) grows the event increment roughly 9× (generators are
    // stochastic, so allow a generous band).
    let step1 = double.dataset.len().saturating_sub(small.dataset.len()) as f64;
    let step9 = big.dataset.len().saturating_sub(small.dataset.len()) as f64;
    assert!(step1 > 0.0, "doubling the scale must add events");
    let ratio = step9 / step1;
    assert!(
        (7.0..13.0).contains(&ratio),
        "scale-driven events grew x{ratio:.2} for a 9x scale step \
         (x1 {}, x2 {}, x10 {})",
        small.dataset.len(),
        double.dataset.len(),
        big.dataset.len()
    );
    assert!(
        big.dataset.len() > 2 * small.dataset.len(),
        "the x10 world must dwarf the x1 world"
    );

    // The streaming build's memory contract: capture-side buffering is
    // bounded by one window, so the peak undrained window holds a fraction
    // of the world — not the whole run.
    let stream = big.stream.expect("streaming run records window stats");
    assert_eq!(stream.windows, 7, "a week at day windows is 7 windows");
    assert!(stream.peak_window_rows > 0);
    assert!(
        stream.peak_window_rows < big.dataset.len(),
        "peak window ({} rows) must be a strict subset of the world ({} rows)",
        stream.peak_window_rows,
        big.dataset.len()
    );

    // Interner arena invariants survive the growth: ids stay dense, every
    // payload row resolves.
    let distinct = big.dataset.interner().payload_count();
    assert!(distinct > 0);
    assert!(distinct <= big.dataset.len());
}

#[test]
fn scale_10_sweep_resolves_from_the_snapshot_cache() {
    if !gated() {
        return;
    }
    let dir = std::env::temp_dir().join(format!("cw-scale-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Prime the cache with both worlds through the public cache entry
    // point (which itself runs the streaming build).
    let b = base();
    let sims0 = snapshot::simulations_performed();
    snapshot::load_or_run_in(&dir, b, true);
    snapshot::load_or_run_in(&dir, b.with_scale(b.scale * 10.0), true);
    assert_eq!(snapshot::simulations_performed() - sims0, 2);

    // The {×1, ×10} sweep then never simulates a cell world again.
    let grid = SweepGrid {
        years: vec![ScenarioYear::Y2021],
        seeds: vec![b.seed],
        variants: vec![degrade::ladder().remove(0)],
        scales: vec![1.0, 10.0],
    };
    let report = sweep::report(&grid, b, &|cfg| {
        snapshot::load_or_run_in(&dir, cfg, true).0
    });
    assert_eq!(
        snapshot::simulations_performed() - sims0,
        2,
        "both sweep cells must be snapshot hits"
    );
    // A verdict for every tracked finding, and the ×10 column present.
    assert!(report.contains("\u{d7}10"));
    assert!(report.contains("findings scale-stable"));

    let _ = std::fs::remove_dir_all(&dir);
}
