//! Reproducibility: identical configurations must yield bit-identical
//! analyses — the property that makes the published EXPERIMENTS.md values
//! regenerable anywhere.

use cloud_watching::core::bundle::SimBundle;
use cloud_watching::core::exhibit::{ExhibitCx, ExhibitOptions, REGISTRY};
use cloud_watching::core::fleet;
use cloud_watching::core::neighborhood;
use cloud_watching::core::scenario::{Scenario, ScenarioConfig, DEFAULT_SEED, DEFAULT_WINDOW};
use cloud_watching::netsim::fault::FaultPlan;
use cloud_watching::netsim::rng::{fork_seed, SimRng};
use cloud_watching::netsim::snap::SnapWriter;
use cloud_watching::netsim::time::SimDuration;
use cloud_watching::scanners::population::{self, ScenarioYear};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The full snapshot wire image of a bundle: events, verdicts,
/// fingerprints, interner id order, telescope counters, index sizes and
/// run stats in one byte string — equality here is the strongest
/// equivalence the pipeline can state.
fn bundle_bytes(b: &SimBundle) -> Vec<u8> {
    let mut w = SnapWriter::new();
    b.snap_write(&mut w);
    w.into_bytes()
}

fn run(seed: u64) -> Scenario {
    Scenario::run(
        ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(seed)
            .with_scale(0.03),
    )
}

#[test]
fn same_seed_same_world() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.dataset.len(), b.dataset.len());
    // Event streams identical, not just counts.
    for (ea, eb) in a.dataset.events().zip(b.dataset.events()) {
        assert_eq!(ea.event, eb.event);
        assert_eq!(ea.verdict, eb.verdict);
    }
    // Telescope counters identical.
    let ta = a.telescope.borrow();
    let tb = b.telescope.borrow();
    assert_eq!(ta.total_packets(), tb.total_packets());
    assert_eq!(
        ta.unique_scanners_per_ip(22).unwrap(),
        tb.unique_scanners_per_ip(22).unwrap()
    );
}

#[test]
fn same_seed_same_tables() {
    let a = run(7);
    let b = run(7);
    let ra = neighborhood::table2(&a.dataset, &a.deployment);
    let rb = neighborhood::table2(&b.dataset, &b.deployment);
    for (x, y) in ra.iter().zip(&rb) {
        assert_eq!(x.n, y.n);
        assert_eq!(x.pct_different, y.pct_different);
        assert_eq!(x.avg_phi, y.avg_phi);
    }
}

#[test]
fn different_seeds_different_worlds() {
    let a = run(1);
    let b = run(2);
    assert_ne!(
        a.dataset.len(),
        b.dataset.len(),
        "different seeds should perturb the event count"
    );
}

/// The tentpole contract: partitioning one scenario's actors into K
/// engine shards and merging must reproduce the single-engine run
/// byte-for-byte — same events (including interned payload/credential
/// ids), same verdicts, same telescope counters, same index sizes.
#[test]
fn sharded_run_is_byte_identical_to_unsharded() {
    let base = ScenarioConfig::fast(ScenarioYear::Y2021).with_scale(0.03);
    let a = Scenario::run(base.with_shards(1));
    for shards in [3, 8] {
        let b = Scenario::run(base.with_shards(shards));
        assert_eq!(a.stats, b.stats, "shards={shards}");
        assert_eq!(a.dataset.len(), b.dataset.len(), "shards={shards}");
        for (ea, eb) in a.dataset.events().zip(b.dataset.events()) {
            // ScanEvent equality covers interner reconstruction too:
            // payload/credential ids must match, not just values.
            assert_eq!(ea.event, eb.event, "shards={shards}");
            assert_eq!(ea.verdict, eb.verdict, "shards={shards}");
        }
        let ta = a.telescope.borrow();
        let tb = b.telescope.borrow();
        assert_eq!(ta.total_packets(), tb.total_packets(), "shards={shards}");
        assert_eq!(
            ta.unique_scanners_per_ip(22).unwrap(),
            tb.unique_scanners_per_ip(22).unwrap(),
            "shards={shards}"
        );
        assert_eq!(
            a.handles.censys.borrow().len(),
            b.handles.censys.borrow().len(),
            "shards={shards}"
        );
        assert_eq!(
            a.handles.shodan.borrow().len(),
            b.handles.shodan.borrow().len(),
            "shards={shards}"
        );
    }
}

/// The streaming-build contract (PR 9 tentpole): chunking the engine run
/// into time windows and absorbing each window's capture incrementally
/// must reproduce the materialized one-shot build byte-for-byte — for any
/// window size ({one window, small, default}) and shard count ({1, 3}).
#[test]
fn streaming_build_byte_identical_across_window_and_shard_matrix() {
    let base = ScenarioConfig::fast(ScenarioYear::Y2021)
        .with_seed(42)
        .with_scale(0.02);
    let reference = bundle_bytes(&Scenario::run_materialized(base.with_shards(1)).into_bundle());
    // Cross-check: the sharded materialized path agrees too (PR 7's
    // contract, restated over the full wire image).
    assert_eq!(
        reference,
        bundle_bytes(&Scenario::run_materialized(base.with_shards(3)).into_bundle()),
        "sharded materialized run drifted"
    );
    let windows = [
        ("one-window", SimDuration::WEEK),
        ("small", SimDuration::HOUR),
        ("default", DEFAULT_WINDOW),
    ];
    for shards in [1usize, 3] {
        for (label, window) in windows {
            let s = Scenario::run_with_window(base.with_shards(shards), window);
            let stream = s.stream.expect("streaming run records stream stats");
            let bytes = bundle_bytes(&s.into_bundle());
            assert_eq!(
                reference, bytes,
                "streaming drifted at shards={shards} window={label}"
            );
            if window == SimDuration::WEEK {
                assert_eq!(stream.windows, 1, "whole horizon is one window");
            } else {
                assert!(stream.windows > 1, "window {label} should chunk the run");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form: *any* window size in [1s, one week] is observably a
    /// no-op, on both the single-engine and the sharded streaming path.
    #[test]
    fn streaming_window_size_is_observably_a_noop(
        window_secs in 1u64..=604_800,
        shards in prop::sample::select(vec![1usize, 3]),
        seed in any::<u64>(),
    ) {
        let base = ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(seed)
            .with_scale(0.01)
            .with_shards(shards);
        let reference = bundle_bytes(&Scenario::run_materialized(base).into_bundle());
        let s = Scenario::run_with_window(base, SimDuration::from_secs(window_secs));
        let streamed = bundle_bytes(&s.into_bundle());
        prop_assert!(
            reference == streamed,
            "streaming drifted at window={window_secs}s shards={shards}"
        );
    }
}

/// Render every registered exhibit from fast bundles of all three years,
/// simulating each year's world with `runner`.
fn render_all_with(
    shards: usize,
    threads: usize,
    runner: fn(ScenarioConfig) -> SimBundle,
) -> BTreeMap<&'static str, String> {
    let opts = ExhibitOptions {
        scale: 0.02,
        seed: DEFAULT_SEED,
        year: None,
        shards,
        fault: FaultPlan::none(),
    };
    let years = [ScenarioYear::Y2020, ScenarioYear::Y2021, ScenarioYear::Y2022];
    let configs: Vec<ScenarioConfig> = years
        .iter()
        .map(|&y| {
            ScenarioConfig::fast(y)
                .with_scale(opts.scale)
                .with_shards(shards)
        })
        .collect();
    let bundles: BTreeMap<u16, SimBundle> = fleet::map(configs, threads, |_, c| runner(*c))
        .into_iter()
        .map(|b| (b.config.year.year(), b))
        .collect();
    let cx = ExhibitCx::new(opts, &bundles);
    REGISTRY.iter().map(|e| (e.name(), e.run(&cx))).collect()
}

/// Render every registered exhibit from fast bundles of all three years
/// (the default, streaming, simulation path).
fn render_all(shards: usize, threads: usize) -> BTreeMap<&'static str, String> {
    render_all_with(shards, threads, SimBundle::run)
}

/// All 25 exhibits render the exact same bytes whether the worlds behind
/// them were built by the streaming path (any window size) or the
/// materialized reference path.
#[test]
fn exhibits_byte_identical_streaming_vs_materialized() {
    let materialized = render_all_with(1, 1, |c| Scenario::run_materialized(c).into_bundle());
    assert_eq!(materialized.len(), REGISTRY.len());
    let streamed = render_all_with(1, 1, |c| {
        Scenario::run_with_window(c, SimDuration::DAY).into_bundle()
    });
    for (name, text) in &materialized {
        assert_eq!(
            text, &streamed[name],
            "exhibit {name} drifted between materialized and streaming builds"
        );
    }
}

/// All 25 exhibits render the exact same bytes whatever the shard count
/// and whatever the fleet worker-thread count — the user-facing face of
/// the byte-identical merge contract.
#[test]
fn exhibits_byte_identical_across_shard_and_thread_matrix() {
    let baseline = render_all(1, 1);
    assert_eq!(baseline.len(), REGISTRY.len());
    for (shards, threads) in [(1, 8), (3, 1), (3, 8), (8, 1), (8, 8)] {
        let rendered = render_all(shards, threads);
        for (name, text) in &baseline {
            assert_eq!(
                text, &rendered[name],
                "exhibit {name} drifted at shards={shards} threads={threads}"
            );
        }
    }
}

/// The fault-injection contract: a fixed non-trivial [`FaultPlan`] is part
/// of world identity, and the degraded world is *itself* byte-identical
/// across the whole shard × thread matrix — fault schedules are pure
/// functions of the seed, never of execution layout.
#[test]
fn faulted_world_is_byte_identical_across_shard_and_thread_matrix() {
    let plan = FaultPlan {
        flow_loss: 0.15,
        outage: 0.10,
        outage_windows: 2,
        truncation: 0.30,
        truncate_to: 32,
        telescope_sample: 2,
    };
    let base = ScenarioConfig::fast(ScenarioYear::Y2021)
        .with_scale(0.03)
        .with_fault(plan);
    let configs: Vec<ScenarioConfig> = [1usize, 3, 8].iter().map(|&k| base.with_shards(k)).collect();
    let mut batches = Vec::new();
    for threads in [1usize, 8] {
        batches.push((
            threads,
            fleet::map(configs.clone(), threads, |_, c| SimBundle::run(*c)),
        ));
    }
    let baseline = &batches[0].1[0];
    assert!(
        baseline.stats.flows_lost > 0,
        "a 15% loss plan must actually drop flows"
    );
    assert!(!baseline.dataset.is_empty(), "the degraded world still records");
    for (threads, batch) in &batches {
        for (i, b) in batch.iter().enumerate() {
            let ctx = format!("shards={} threads={}", [1, 3, 8][i], threads);
            assert_eq!(baseline.stats, b.stats, "{ctx}");
            assert_eq!(baseline.dataset.len(), b.dataset.len(), "{ctx}");
            for (ea, eb) in baseline.dataset.events().zip(b.dataset.events()) {
                assert_eq!(ea.event, eb.event, "{ctx}");
                assert_eq!(ea.verdict, eb.verdict, "{ctx}");
            }
            assert_eq!(
                baseline.telescope.total_packets(),
                b.telescope.total_packets(),
                "{ctx}"
            );
            assert_eq!(baseline.censys_indexed, b.censys_indexed, "{ctx}");
            assert_eq!(baseline.shodan_indexed, b.shodan_indexed, "{ctx}");
        }
    }
}

/// The fleet determinism contract on real scenario runs: replicate fleets
/// merged at thread counts 1, 2 and 8 are event-for-event identical.
#[test]
fn fleet_replicates_invariant_under_thread_count() {
    let base = ScenarioConfig::fast(ScenarioYear::Y2021).with_scale(0.01);
    let baseline = fleet::run_replicates(base, 3, 1);
    for threads in [2, 8] {
        let merged = fleet::run_replicates(base, 3, threads);
        assert_eq!(baseline.seeds, merged.seeds);
        assert_eq!(baseline.stats, merged.stats, "threads={threads}");
        assert_eq!(
            baseline.dataset.len(),
            merged.dataset.len(),
            "threads={threads}"
        );
        for (a, b) in baseline.dataset.events().zip(merged.dataset.events()) {
            assert_eq!(a.event, b.event);
            assert_eq!(a.verdict, b.verdict);
        }
    }
}

/// Shard assignment is a pure function of (seed, actor id): the key never
/// sees the shard count, so growing K from 1 to 8 only re-buckets the same
/// fixed keys — it cannot reshuffle any actor's RNG stream.
#[test]
fn shard_assignment_is_pure_in_seed_and_actor_id() {
    for seed in [0u64, 42, DEFAULT_SEED] {
        for id in [0u32, 1, 7, 1000] {
            let key = population::shard_key(seed, id);
            assert_eq!(key, fork_seed(seed, id as u64));
            for k in 1..=8 {
                assert_eq!(
                    population::shard_of(seed, id, k),
                    (key % k as u64) as usize,
                    "shard_of must be shard_key reduced mod K, nothing else"
                );
            }
        }
    }
    // K = 0 is tolerated as "one shard" rather than a divide-by-zero.
    assert_eq!(population::shard_of(1, 2, 0), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property form of the purity contract: for any (seed, actor, K) the
    /// assignment is the K-independent key reduced mod K.
    #[test]
    fn shard_key_is_independent_of_shard_count(
        seed in any::<u64>(),
        id in any::<u32>(),
        k in 1usize..64,
    ) {
        let key = population::shard_key(seed, id);
        prop_assert_eq!(key, fork_seed(seed, id as u64));
        prop_assert_eq!(population::shard_of(seed, id, k), (key % k as u64) as usize);
        prop_assert!(population::shard_of(seed, id, k) < k);
    }

    /// Fleet results are a pure function of the input list: invariant
    /// under worker-thread count (1, 2, 8) and under any permutation of
    /// the shard inputs (permuting specs and un-permuting results gives
    /// the serial baseline back).
    #[test]
    fn fleet_map_invariant_under_threads_and_permutation(
        master in any::<u64>(),
        n in 1usize..24,
        threads in prop::sample::select(vec![1usize, 2, 8]),
        perm_seed in any::<u64>(),
    ) {
        // Each job consumes its own forked RNG stream — a miniature
        // scenario run (seed-split, state-free, deterministic).
        let specs: Vec<u64> = (0..n as u64).map(|i| fork_seed(master, i)).collect();
        let job = |i: usize, spec: &u64| {
            let mut rng = SimRng::seed_from_u64(*spec);
            let mut acc = i as u64;
            for _ in 0..64 {
                acc = acc.wrapping_mul(3).wrapping_add(rng.next_u64());
            }
            acc
        };
        let baseline = fleet::map(specs.clone(), 1, job);
        prop_assert_eq!(&baseline, &fleet::map(specs.clone(), threads, job));

        let mut order: Vec<usize> = (0..n).collect();
        SimRng::seed_from_u64(perm_seed).shuffle(&mut order);
        let permuted: Vec<u64> = order.iter().map(|&i| specs[i]).collect();
        // The job only sees its spec, not its position, in this variant.
        let permuted_out = fleet::map(permuted, threads, |_, spec| job(0, spec));
        let positional: Vec<u64> = specs.iter().map(|s| job(0, s)).collect();
        let mut unpermuted = vec![0u64; n];
        for (k, &i) in order.iter().enumerate() {
            unpermuted[i] = permuted_out[k];
        }
        prop_assert_eq!(positional, unpermuted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The none-plan gate: any all-zero-rate plan (whatever its shape
    /// knobs say) is `is_none`, takes the legacy fault-free code path, and
    /// produces a world byte-identical to a config that never mentioned
    /// faults at all.
    #[test]
    fn zero_rate_fault_plan_is_byte_identical_to_no_plan(
        seed in any::<u64>(),
        windows in 1u32..5,
        keep in prop::sample::select(vec![0u32, 16, 64, 1024]),
    ) {
        let zero = FaultPlan {
            flow_loss: 0.0,
            outage: 0.0,
            outage_windows: windows,
            truncation: 0.0,
            truncate_to: keep,
            telescope_sample: 1,
        };
        prop_assert!(zero.is_none());
        let base = ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(seed)
            .with_scale(0.01);
        let a = Scenario::run(base);
        let b = Scenario::run(base.with_fault(zero));
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.stats.flows_lost, 0);
        prop_assert_eq!(a.dataset.len(), b.dataset.len());
        for (ea, eb) in a.dataset.events().zip(b.dataset.events()) {
            prop_assert_eq!(&ea.event, &eb.event);
            prop_assert_eq!(ea.verdict, eb.verdict);
        }
        prop_assert_eq!(
            a.telescope.borrow().total_packets(),
            b.telescope.borrow().total_packets()
        );
    }
}
