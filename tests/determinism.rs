//! Reproducibility: identical configurations must yield bit-identical
//! analyses — the property that makes the published EXPERIMENTS.md values
//! regenerable anywhere.

use cloud_watching::core::neighborhood;
use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::scanners::population::ScenarioYear;

fn run(seed: u64) -> Scenario {
    Scenario::run(
        ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(seed)
            .with_scale(0.03),
    )
}

#[test]
fn same_seed_same_world() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.dataset.events().len(), b.dataset.events().len());
    // Event streams identical, not just counts.
    for (ea, eb) in a.dataset.events().iter().zip(b.dataset.events()) {
        assert_eq!(ea.event, eb.event);
        assert_eq!(ea.verdict, eb.verdict);
    }
    // Telescope counters identical.
    let ta = a.telescope.borrow();
    let tb = b.telescope.borrow();
    assert_eq!(ta.total_packets(), tb.total_packets());
    assert_eq!(
        ta.unique_scanners_per_ip(22).unwrap(),
        tb.unique_scanners_per_ip(22).unwrap()
    );
}

#[test]
fn same_seed_same_tables() {
    let a = run(7);
    let b = run(7);
    let ra = neighborhood::table2(&a.dataset, &a.deployment);
    let rb = neighborhood::table2(&b.dataset, &b.deployment);
    for (x, y) in ra.iter().zip(&rb) {
        assert_eq!(x.n, y.n);
        assert_eq!(x.pct_different, y.pct_different);
        assert_eq!(x.avg_phi, y.avg_phi);
    }
}

#[test]
fn different_seeds_different_worlds() {
    let a = run(1);
    let b = run(2);
    assert_ne!(
        a.dataset.events().len(),
        b.dataset.events().len(),
        "different seeds should perturb the event count"
    );
}
