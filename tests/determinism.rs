//! Reproducibility: identical configurations must yield bit-identical
//! analyses — the property that makes the published EXPERIMENTS.md values
//! regenerable anywhere.

use cloud_watching::core::fleet;
use cloud_watching::core::neighborhood;
use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::netsim::rng::{fork_seed, SimRng};
use cloud_watching::scanners::population::ScenarioYear;
use proptest::prelude::*;

fn run(seed: u64) -> Scenario {
    Scenario::run(
        ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(seed)
            .with_scale(0.03),
    )
}

#[test]
fn same_seed_same_world() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.dataset.len(), b.dataset.len());
    // Event streams identical, not just counts.
    for (ea, eb) in a.dataset.events().zip(b.dataset.events()) {
        assert_eq!(ea.event, eb.event);
        assert_eq!(ea.verdict, eb.verdict);
    }
    // Telescope counters identical.
    let ta = a.telescope.borrow();
    let tb = b.telescope.borrow();
    assert_eq!(ta.total_packets(), tb.total_packets());
    assert_eq!(
        ta.unique_scanners_per_ip(22).unwrap(),
        tb.unique_scanners_per_ip(22).unwrap()
    );
}

#[test]
fn same_seed_same_tables() {
    let a = run(7);
    let b = run(7);
    let ra = neighborhood::table2(&a.dataset, &a.deployment);
    let rb = neighborhood::table2(&b.dataset, &b.deployment);
    for (x, y) in ra.iter().zip(&rb) {
        assert_eq!(x.n, y.n);
        assert_eq!(x.pct_different, y.pct_different);
        assert_eq!(x.avg_phi, y.avg_phi);
    }
}

#[test]
fn different_seeds_different_worlds() {
    let a = run(1);
    let b = run(2);
    assert_ne!(
        a.dataset.len(),
        b.dataset.len(),
        "different seeds should perturb the event count"
    );
}

/// The fleet determinism contract on real scenario runs: replicate fleets
/// merged at thread counts 1, 2 and 8 are event-for-event identical.
#[test]
fn fleet_replicates_invariant_under_thread_count() {
    let base = ScenarioConfig::fast(ScenarioYear::Y2021).with_scale(0.01);
    let baseline = fleet::run_replicates(base, 3, 1);
    for threads in [2, 8] {
        let merged = fleet::run_replicates(base, 3, threads);
        assert_eq!(baseline.seeds, merged.seeds);
        assert_eq!(baseline.stats, merged.stats, "threads={threads}");
        assert_eq!(
            baseline.dataset.len(),
            merged.dataset.len(),
            "threads={threads}"
        );
        for (a, b) in baseline.dataset.events().zip(merged.dataset.events()) {
            assert_eq!(a.event, b.event);
            assert_eq!(a.verdict, b.verdict);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fleet results are a pure function of the input list: invariant
    /// under worker-thread count (1, 2, 8) and under any permutation of
    /// the shard inputs (permuting specs and un-permuting results gives
    /// the serial baseline back).
    #[test]
    fn fleet_map_invariant_under_threads_and_permutation(
        master in any::<u64>(),
        n in 1usize..24,
        threads in prop::sample::select(vec![1usize, 2, 8]),
        perm_seed in any::<u64>(),
    ) {
        // Each job consumes its own forked RNG stream — a miniature
        // scenario run (seed-split, state-free, deterministic).
        let specs: Vec<u64> = (0..n as u64).map(|i| fork_seed(master, i)).collect();
        let job = |i: usize, spec: u64| {
            let mut rng = SimRng::seed_from_u64(spec);
            let mut acc = i as u64;
            for _ in 0..64 {
                acc = acc.wrapping_mul(3).wrapping_add(rng.next_u64());
            }
            acc
        };
        let baseline = fleet::map(specs.clone(), 1, job);
        prop_assert_eq!(&baseline, &fleet::map(specs.clone(), threads, job));

        let mut order: Vec<usize> = (0..n).collect();
        SimRng::seed_from_u64(perm_seed).shuffle(&mut order);
        let permuted: Vec<u64> = order.iter().map(|&i| specs[i]).collect();
        // The job only sees its spec, not its position, in this variant.
        let permuted_out = fleet::map(permuted, threads, |_, spec| job(0, spec));
        let positional: Vec<u64> = specs.iter().map(|&s| job(0, s)).collect();
        let mut unpermuted = vec![0u64; n];
        for (k, &i) in order.iter().enumerate() {
            unpermuted[i] = permuted_out[k];
        }
        prop_assert_eq!(positional, unpermuted);
    }
}
