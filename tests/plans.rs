//! Fusion-equivalence gate: executing declared plans through a fused
//! [`PlanStore`] must be byte-identical to running every plan alone, for
//! the ported analysis modules and for whole exhibit renders. Fusion is a
//! scheduling optimization — if it ever changes a result, these tests
//! fail before the golden manifest does.
//!
//! Process-wide scan counters are asserted on here, so every test grabs
//! `COUNTER_LOCK`: the tests in this binary share one process (and one
//! frozen-seed world) and must not scan concurrently.

use cloud_watching::core::compare::CharKind;
use cloud_watching::core::dataset::TrafficSlice;
use cloud_watching::core::exhibit::{Exhibit, ExhibitCx, ExhibitOptions, REGISTRY};
use cloud_watching::core::query::{scan_counters, GroupKey, ObsKind, Terminal};
use cloud_watching::core::scenario::ScenarioConfig;
use cloud_watching::core::{
    geography, neighborhood, overlap, ports, Plan, PlanError, PlanSet, PlanStore, ScanExec,
    SimBundle,
};
use cloud_watching::honeypot::deployment::{CollectorKind, Deployment, NetworkKind};
use cloud_watching::protocols::iana::POPULAR_PORTS;
use cloud_watching::scanners::population::ScenarioYear;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::{Mutex, OnceLock};

/// One frozen-seed world shared by every test in this binary (the bundle
/// is `Send + Sync` by design, unlike the full `Scenario`).
fn bundles() -> &'static BTreeMap<u16, SimBundle> {
    static BUNDLES: OnceLock<BTreeMap<u16, SimBundle>> = OnceLock::new();
    BUNDLES.get_or_init(|| {
        let s = SimBundle::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(424_242));
        BTreeMap::from([(2021u16, s)])
    })
}

fn bundle() -> &'static SimBundle {
    &bundles()[&2021]
}

/// Serializes the tests of this binary: scan counters are process-wide.
fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn greynoise_ips(d: &Deployment) -> Vec<Ipv4Addr> {
    d.vantages
        .iter()
        .filter(|v| v.collector == CollectorKind::GreyNoise)
        .map(|v| v.ip)
        .collect()
}

fn edu_ips(d: &Deployment) -> Vec<Ipv4Addr> {
    d.vantages
        .iter()
        .filter(|v| v.kind == NetworkKind::Education)
        .map(|v| v.ip)
        .collect()
}

/// A structurally diverse plan pool: every terminal, both group keys,
/// overlapping and distinct destination domains, stacked predicates.
fn plan_pool() -> Vec<Plan> {
    let d = Deployment::standard();
    let g = greynoise_ips(&d);
    let e = edu_ips(&d);
    vec![
        Plan::scan().count(),
        Plan::scan().kind(ObsKind::Syn).count(),
        Plan::at(&g).count(),
        Plan::at(&g).malicious().count(),
        Plan::at(&g).port(23).distinct_srcs(),
        Plan::at(&g).port_in(&[22, 23, 80]).rows(),
        Plan::at(&g).unique_src_and_asn(),
        Plan::at(&g).grouped_by_port(&POPULAR_PORTS).distinct_srcs(),
        Plan::at(&g)
            .malicious()
            .grouped_by_port(&[80, 8080])
            .distinct_srcs(),
        Plan::at(&g)
            .slice(TrafficSlice::TelnetPort23)
            .char_freqs(CharKind::TopPassword),
        Plan::at(&e).slice(TrafficSlice::SshPort22).char_freqs(CharKind::TopAs),
        Plan::at(&e).fingerprinted().count(),
        Plan::at(&e).port(80).grouped_by_fingerprint().distinct_srcs(),
        Plan::at(&e).not_kind(ObsKind::Syn).classified(),
    ]
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    /// Any subset of the pool, in any order, with duplicates: the fused
    /// `PlanSet` must return exactly what each plan returns standalone,
    /// in submission order, while costing no more passes than plans.
    #[test]
    fn fused_plan_sets_match_standalone_execution(
        picks in proptest::collection::vec(0usize..14, 1..12),
    ) {
        let _g = counter_lock();
        let s = bundle();
        let pool = plan_pool();
        let alone = ScanExec::unplanned(&s.dataset);
        let mut set = PlanSet::over(&s.dataset);
        for &i in &picks {
            set.submit(pool[i].clone()).expect("pool plans validate");
        }
        let before = scan_counters();
        let fused = set.execute();
        let delta = scan_counters().since(before);
        prop_assert_eq!(fused.len(), picks.len());
        prop_assert!(delta.fused <= picks.len() as u64);
        for (k, &i) in picks.iter().enumerate() {
            prop_assert_eq!(&fused[k], &alone.run(&pool[i]));
        }
    }
}

#[test]
fn submission_order_permutes_results_and_nothing_else() {
    let _g = counter_lock();
    let s = bundle();
    let pool = plan_pool();
    let forward: Vec<_> = {
        let mut set = PlanSet::over(&s.dataset);
        for p in &pool {
            set.submit(p.clone()).unwrap();
        }
        set.execute()
    };
    let reversed: Vec<_> = {
        let mut set = PlanSet::over(&s.dataset);
        for p in pool.iter().rev() {
            set.submit(p.clone()).unwrap();
        }
        set.execute()
    };
    assert_eq!(forward.len(), reversed.len());
    for (i, r) in reversed.iter().rev().enumerate() {
        assert_eq!(&forward[i], r, "plan {i} changed under reversed submission");
    }
}

/// Every ported module product — Tables 2, 4, 5, 8+9, 11, §3.2 — computed
/// through one fused registry-style store vs. plan-at-a-time execution.
#[test]
fn ported_products_match_unplanned_execution() {
    let _g = counter_lock();
    let s = bundle();
    let d = Deployment::standard();
    let cells = [
        (TrafficSlice::SshPort22, CharKind::TopAs),
        (TrafficSlice::HttpAllPorts, CharKind::TopPayload),
    ];
    let mut plans = Vec::new();
    plans.extend(neighborhood::table2_plans(&d));
    plans.extend(geography::table4_plans(&d));
    for &(slice, kind) in &cells {
        plans.extend(geography::table5_plans(&d, slice, kind));
    }
    plans.extend(overlap::table8_and_9_plans(&d));
    plans.extend(ports::protocol_breakdown_plans(&d, 80));
    plans.extend(ports::protocol_breakdown_plans(&d, 8080));
    plans.extend(ports::composition_stats_plans(&d));

    let store = PlanStore::build(&s.dataset, &plans).unwrap();
    assert!(
        store.passes() < store.plans(),
        "registry-style plan mix must actually fuse ({} plans, {} passes)",
        store.plans(),
        store.passes()
    );
    let fused = ScanExec::with_store(&s.dataset, &store);
    let alone = ScanExec::unplanned(&s.dataset);

    // Row types are Debug-but-not-PartialEq; their debug form carries
    // every field, which is exactly the equality the renders consume.
    assert_eq!(
        format!("{:?}", neighborhood::table2_with(&fused, &d)),
        format!("{:?}", neighborhood::table2_with(&alone, &d)),
    );
    assert_eq!(
        format!("{:?}", geography::table4_with(&fused, &d)),
        format!("{:?}", geography::table4_with(&alone, &d)),
    );
    for &(slice, kind) in &cells {
        assert_eq!(
            format!("{:?}", geography::table5_with(&fused, &d, slice, kind)),
            format!("{:?}", geography::table5_with(&alone, &d, slice, kind)),
            "table5 {slice:?} {kind:?}"
        );
    }
    assert_eq!(
        format!("{:?}", overlap::table8_and_9_with(&fused, &d, &s.telescope)),
        format!("{:?}", overlap::table8_and_9_with(&alone, &d, &s.telescope)),
    );
    for port in [80u16, 8080] {
        assert_eq!(
            format!("{:?}", ports::protocol_breakdown_with(&fused, &d, &s.reputation, port)),
            format!("{:?}", ports::protocol_breakdown_with(&alone, &d, &s.reputation, port)),
            "breakdown port {port}"
        );
    }
    assert_eq!(
        format!("{:?}", ports::composition_stats_with(&fused, &d)),
        format!("{:?}", ports::composition_stats_with(&alone, &d)),
    );
}

/// Rendering through a prefetched context must produce the same bytes as
/// the legacy on-demand path while costing strictly fewer column passes.
#[test]
fn prefetched_registry_renders_are_byte_identical() {
    let _g = counter_lock();
    let worlds = bundles();
    let opts = ExhibitOptions::default();
    // Every exhibit satisfied by the one 2021 world (the multi-year and
    // leak exhibits need worlds this gate does not simulate).
    let singles: Vec<&dyn Exhibit> = REGISTRY
        .iter()
        .copied()
        .filter(|e| {
            !e.needs().is_empty()
                && e.needs().iter().all(|n| n.resolve(&opts).year() == 2021)
        })
        .collect();
    assert!(singles.len() >= 15, "expected most of the registry, got {}", singles.len());

    let c0 = scan_counters();
    let plain_cx = ExhibitCx::new(opts, worlds);
    let plain: Vec<String> = singles.iter().map(|e| e.run(&plain_cx)).collect();
    let unfused = scan_counters().since(c0);

    let c1 = scan_counters();
    let mut cx = ExhibitCx::new(opts, worlds);
    let stats = cx.prefetch(&singles);
    assert_eq!(stats.len(), 1, "one bundle, one prefetched store");
    assert!(stats[0].passes < stats[0].plans, "prefetch must fuse: {stats:?}");
    let rendered: Vec<String> = singles.iter().map(|e| e.run(&cx)).collect();
    let fused = scan_counters().since(c1);

    for (i, e) in singles.iter().enumerate() {
        assert_eq!(plain[i], rendered[i], "{} changed under prefetch", e.name());
    }
    assert!(
        fused.fused < unfused.fused,
        "prefetched renders must cost fewer passes (fused {} vs unfused {})",
        fused.fused,
        unfused.fused
    );
}

#[test]
fn grouped_plans_reject_unsupported_terminals_with_typed_errors() {
    let _g = counter_lock();
    let s = bundle();
    let ips = [Ipv4Addr::new(20, 10, 0, 0)];
    // Grouped plans support DistinctSrcs only; everything else is a typed
    // error at validation/submission, never a scan-time panic.
    let bad = [
        Plan::at(&ips).grouped_by_port(&[22]).count(),
        Plan::at(&ips).grouped_by_port(&[22]).rows(),
        Plan::at(&ips).grouped_by_port(&[22]).unique_src_and_asn(),
        Plan::at(&ips).grouped_by_fingerprint().char_freqs(CharKind::TopAs),
        Plan::at(&ips).grouped_by_fingerprint().classified(),
    ];
    for plan in &bad {
        let err = plan.validate().unwrap_err();
        let PlanError::Unsupported { ref group, terminal } = err;
        assert!(!matches!(group, GroupKey::None));
        assert!(!matches!(terminal, Terminal::DistinctSrcs));
        assert!(err.to_string().contains("unsupported plan"), "{err}");
        // All three execution doors reject identically.
        assert_eq!(PlanSet::over(&s.dataset).submit(plan.clone()).unwrap_err(), err);
        assert_eq!(
            PlanStore::build(&s.dataset, std::slice::from_ref(plan)).unwrap_err(),
            err
        );
    }
    // The supported grouped shape and all ungrouped terminals validate.
    Plan::at(&ips).grouped_by_port(&[22]).distinct_srcs().validate().unwrap();
    Plan::at(&ips).grouped_by_fingerprint().distinct_srcs().validate().unwrap();
    Plan::at(&ips).char_freqs(CharKind::TopAs).validate().unwrap();
    Plan::scan().count().validate().unwrap();
}
