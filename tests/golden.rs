//! The golden-exhibit manifest gate (tier 3 of docs/TESTING.md).
//!
//! Hashes every `out/*.txt` exhibit and compares against the checked-in
//! `tests/golden/MANIFEST.sha256`. A single changed byte in any of the 25
//! exhibits fails the gate; intentional changes are blessed with
//! `CW_BLESS=1 cargo test --test golden`. The exhibits themselves are
//! regenerated artifacts (`out/` is not tracked); `scripts/verify.sh`
//! rebuilds them from the experiment binaries before this gate runs, which
//! is what ties the manifest back to the code.

use cw_verify::golden;

#[test]
fn golden_manifest_gate() {
    let root = golden::workspace_root();
    let dir = golden::exhibits_dir(&root);
    // A fresh checkout has no regenerated exhibits yet; there is nothing
    // to compare until an experiment run (or scripts/verify.sh) produces
    // them. Skipping — not failing — keeps `cargo test` usable pre-run.
    if golden::EXHIBITS.iter().all(|n| !dir.join(n).exists()) {
        eprintln!("golden gate skipped: no exhibits in out/ (run scripts/verify.sh)");
        return;
    }
    if golden::bless_requested() {
        golden::bless(&root).expect("bless writes tests/golden/MANIFEST.sha256");
        eprintln!("golden manifest re-blessed from out/*.txt");
        return;
    }
    let drifts = golden::check(&root).expect("exhibits readable");
    if !drifts.is_empty() {
        let mut msg =
            String::from("golden exhibits drifted from tests/golden/MANIFEST.sha256:\n");
        for d in &drifts {
            msg.push_str(&format!("  {d}\n"));
        }
        msg.push_str(
            "if this change is intentional, re-bless with: CW_BLESS=1 cargo test --test golden",
        );
        panic!("{msg}");
    }
}

#[test]
fn manifest_is_checked_in_and_covers_every_exhibit() {
    // The manifest file itself is tracked source: it must exist, parse,
    // and list exactly the 25 exhibits (independent of whether out/ has
    // been regenerated in this checkout).
    let root = golden::workspace_root();
    let text = std::fs::read_to_string(golden::manifest_path(&root))
        .expect("tests/golden/MANIFEST.sha256 is checked in");
    let entries = golden::parse_manifest(&text);
    let mut listed: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
    listed.sort_unstable();
    let mut expected: Vec<&str> = golden::EXHIBITS.to_vec();
    expected.sort_unstable();
    assert_eq!(listed, expected, "manifest must cover all 25 exhibits");
}
