//! Query-layer equivalence: on a frozen seed, every query expression must
//! produce exactly what the retired hand-rolled sweeps produced. The
//! hand-rolled reference implementations are reconstructed here from the
//! public column accessors (no query-layer calls), so a regression in
//! predicate pushdown, enumeration order, or group seeding fails loudly
//! instead of shifting golden bytes.

use cloud_watching::core::compare::CharKind;
use cloud_watching::core::dataset::{Dataset, TrafficSlice};
use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::core::{Plan, PlanSet, Query};
use cloud_watching::detection::Verdict;
use cloud_watching::honeypot::deployment::CollectorKind;
use cloud_watching::protocols::iana::POPULAR_PORTS;
use cloud_watching::protocols::ProtocolId;
use cloud_watching::scanners::population::ScenarioYear;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

thread_local! {
    /// One frozen-seed scenario per test thread (pipeline types are
    /// single-threaded by design). Materialized, not streamed: the
    /// leak-sweep equivalence test below reads raw per-capture tables
    /// after the run, which the streaming path drains into the dataset.
    static SCENARIO: Scenario = Scenario::run_materialized(
        ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(424_242),
    );
}

fn scenario<R>(f: impl FnOnce(&Scenario) -> R) -> R {
    SCENARIO.with(f)
}

/// GreyNoise fleet IPs (the Table 1 cloud fleet).
fn greynoise_ips(s: &Scenario) -> Vec<Ipv4Addr> {
    s.deployment
        .vantages
        .iter()
        .filter(|v| v.collector == CollectorKind::GreyNoise)
        .map(|v| v.ip)
        .collect()
}

/// The retired `events_at_group` sweep: per-IP destination filter in the
/// order given, capture order within an IP, inline slice predicate.
fn hand_rolled_indices(
    ds: &Dataset,
    ips: &[Ipv4Addr],
    slice: TrafficSlice,
) -> Vec<usize> {
    let table = ds.table();
    let mut out = Vec::new();
    for &ip in ips {
        for i in 0..table.len() {
            if table.dsts()[i] != ip {
                continue;
            }
            let admitted = match slice {
                TrafficSlice::SshPort22 => table.dst_ports()[i] == 22,
                TrafficSlice::TelnetPort23 => table.dst_ports()[i] == 23,
                TrafficSlice::HttpPort80 => table.dst_ports()[i] == 80,
                TrafficSlice::HttpAllPorts => {
                    ds.fingerprints()[i] == Some(ProtocolId::Http)
                }
                TrafficSlice::AnyAll => true,
            };
            if admitted {
                out.push(i);
            }
        }
    }
    out
}

#[test]
fn table1_unique_sources_match_hand_rolled() {
    scenario(|s| {
        let ips = greynoise_ips(s);
        let fleet: BTreeSet<Ipv4Addr> = ips.iter().copied().collect();
        let table = s.dataset.table();
        let mut srcs = BTreeSet::new();
        let mut asns = BTreeSet::new();
        for i in 0..table.len() {
            if fleet.contains(&table.dsts()[i]) {
                srcs.insert(table.srcs()[i]);
                asns.insert(table.src_asns()[i].0);
            }
        }
        assert!(srcs.len() > 50, "fleet too quiet for a meaningful check");
        let via_query = s.dataset.query().at(&ips).unique_src_and_asn();
        assert_eq!(via_query, (srcs.len(), asns.len()));
        // The Dataset wrapper is the same query.
        assert_eq!(s.dataset.unique_sources(&ips), via_query);
    });
}

#[test]
fn table7_char_freqs_match_hand_rolled() {
    scenario(|s| {
        let ips: Vec<Ipv4Addr> = s
            .deployment
            .vantages
            .iter()
            .filter(|v| v.id.starts_with("honeytrap/stanford"))
            .map(|v| v.ip)
            .collect();
        assert!(!ips.is_empty());
        for slice in [
            TrafficSlice::SshPort22,
            TrafficSlice::TelnetPort23,
            TrafficSlice::HttpAllPorts,
            TrafficSlice::AnyAll,
        ] {
            for kind in [CharKind::TopAs, CharKind::FracMalicious] {
                let events: Vec<_> = hand_rolled_indices(&s.dataset, &ips, slice)
                    .into_iter()
                    .map(|i| s.dataset.event(i))
                    .collect();
                let expected: BTreeMap<String, u64> = kind.freqs(&events);
                let got = s.dataset.query().at(&ips).slice(slice).char_freqs(kind);
                assert_eq!(got, expected, "{slice:?} {kind:?}");
            }
        }
        // Enumeration order itself (not just the order-insensitive folds).
        let order = hand_rolled_indices(&s.dataset, &ips, TrafficSlice::AnyAll);
        assert_eq!(
            s.dataset.query().at(&ips).indices(),
            order,
            "dst pushdown must enumerate per-IP in argument order"
        );
    });
}

#[test]
fn tables_8_and_9_port_source_sets_match_hand_rolled() {
    scenario(|s| {
        let ips = greynoise_ips(s);
        let fleet: BTreeSet<Ipv4Addr> = ips.iter().copied().collect();
        let table = s.dataset.table();
        let hand_rolled = |ports: &[u16], malicious: bool| {
            let mut sets: BTreeMap<u16, BTreeSet<Ipv4Addr>> =
                ports.iter().map(|&p| (p, BTreeSet::new())).collect();
            for i in 0..table.len() {
                if !fleet.contains(&table.dsts()[i]) {
                    continue;
                }
                if malicious && s.dataset.verdicts()[i] != Verdict::Attacker {
                    continue;
                }
                if let Some(set) = sets.get_mut(&table.dst_ports()[i]) {
                    set.insert(table.srcs()[i]);
                }
            }
            sets
        };
        let all = hand_rolled(&POPULAR_PORTS, false);
        let bad = hand_rolled(&POPULAR_PORTS, true);
        assert!(all.values().any(|v| !v.is_empty()));
        // The seeded grouped query, the Dataset wrapper, and the fused
        // plan set must all reproduce the hand-rolled sets.
        let grouped = s
            .dataset
            .query()
            .at(&ips)
            .group_by_port()
            .keys(&POPULAR_PORTS)
            .distinct_srcs();
        assert_eq!(grouped, all);
        assert_eq!(s.dataset.port_source_sets(&ips, &POPULAR_PORTS, false), all);
        assert_eq!(s.dataset.port_source_sets(&ips, &POPULAR_PORTS, true), bad);
        let mut set = PlanSet::over(&s.dataset);
        set.submit(Plan::at(&ips).grouped_by_port(&POPULAR_PORTS).distinct_srcs())
            .unwrap();
        set.submit(
            Plan::at(&ips)
                .malicious()
                .grouped_by_port(&POPULAR_PORTS)
                .distinct_srcs(),
        )
        .unwrap();
        let mut fused = set.execute().into_iter();
        assert_eq!(fused.next().unwrap().into_port_srcs(), all);
        assert_eq!(fused.next().unwrap().into_port_srcs(), bad);
    });
}

#[test]
fn ports_fingerprint_grouping_matches_hand_rolled() {
    scenario(|s| {
        let ips: Vec<Ipv4Addr> = s
            .deployment
            .vantages
            .iter()
            .filter(|v| {
                v.collector == CollectorKind::Honeytrap && v.kind
                    != cloud_watching::honeypot::deployment::NetworkKind::Education
            })
            .map(|v| v.ip)
            .collect();
        let fleet: BTreeSet<Ipv4Addr> = ips.iter().copied().collect();
        let table = s.dataset.table();
        let mut expected: BTreeMap<ProtocolId, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for i in 0..table.len() {
            if !fleet.contains(&table.dsts()[i]) || table.dst_ports()[i] != 80 {
                continue;
            }
            if let Some(proto) = s.dataset.fingerprints()[i] {
                expected.entry(proto).or_default().insert(table.srcs()[i]);
            }
        }
        assert!(expected.contains_key(&ProtocolId::Http));
        let got = s
            .dataset
            .query()
            .at(&ips)
            .port(80)
            .group_by_fingerprint()
            .distinct_srcs();
        assert_eq!(got, expected);
    });
}

#[test]
fn leak_raw_queries_match_hand_rolled_capture_sweeps() {
    scenario(|s| {
        // The leak harness queries bare captures before any dataset exists;
        // raw queries must reproduce the retired `events_on_port` filter,
        // in table order.
        let cap_rc = s.deployment.honeypots[0].borrow().capture();
        let cap = cap_rc.borrow();
        let table = cap.table();
        let mut checked = 0;
        for port in [22u16, 23, 80] {
            let expected: Vec<(Ipv4Addr, Ipv4Addr, u16)> = (0..table.len())
                .filter(|&i| table.dst_ports()[i] == port)
                .map(|i| (table.srcs()[i], table.dsts()[i], table.dst_ports()[i]))
                .collect();
            let got: Vec<(Ipv4Addr, Ipv4Addr, u16)> = Query::events(table)
                .port(port)
                .rows()
                .into_iter()
                .map(|e| (e.src, e.dst, e.dst_port))
                .collect();
            assert_eq!(got, expected, "port {port}");
            checked += expected.len();
        }
        assert!(checked > 0, "first honeypot saw no traffic on 22/23/80");
    });
}
