//! Cross-crate integration: a full (reduced-scale) scenario run through
//! every analysis, asserting the paper's headline *shapes*.

use cloud_watching::core::compare::CharKind;
use cloud_watching::core::dataset::TrafficSlice;
use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::core::{figure1, geography, neighborhood, network, overlap, ports};
use cloud_watching::detection::Verdict;
use cloud_watching::netsim::ip::IpExt;
use cloud_watching::scanners::population::ScenarioYear;

thread_local! {
    /// One scenario per test thread (the pipeline types are deliberately
    /// single-threaded — `Rc<RefCell<…>>` — so the cache is thread-local).
    static SCENARIO: Scenario = Scenario::run(
        ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(20_230_701),
    );
}

/// Run a closure against the thread's cached scenario.
fn scenario<R>(f: impl FnOnce(&Scenario) -> R) -> R {
    SCENARIO.with(f)
}

#[test]
fn traffic_reaches_every_network_kind() {
    scenario(|s| {
        for fleet in [
            "greynoise/aws/AP-SG",
            "greynoise/he/US-OH",
            "honeytrap/stanford",
            "honeytrap/merit",
        ] {
            let ips: Vec<_> = s
                .deployment
                .vantages
                .iter()
                .filter(|v| v.id.starts_with(fleet))
                .map(|v| v.ip)
                .collect();
            let (srcs, asns) = s.dataset.unique_sources(&ips);
            assert!(srcs > 20, "{fleet}: only {srcs} sources");
            assert!(asns > 5, "{fleet}: only {asns} ASes");
        }
        assert!(s.telescope.borrow().unique_source_count() > 100);
    });
}

#[test]
fn headline_telescope_blind_spot() {
    scenario(|s| {
        // §5.2: Telnet scanners barely avoid the telescope; SSH scanners and
        // especially SSH *attackers* do.
        let tel = s.telescope.borrow();
        let t8 = overlap::table8(&s.dataset, &s.deployment, &tel);
        let get = |p: u16| t8.iter().find(|r| r.port == p).unwrap();
        let telnet = get(23).tel_cloud.unwrap();
        let ssh = get(22).tel_cloud.unwrap();
        assert!(telnet > ssh + 25.0, "telnet {telnet:.0}% vs ssh {ssh:.0}%");

        let t9 = overlap::table9(&s.dataset, &s.deployment, &tel);
        let mal_ssh = t9
            .iter()
            .find(|r| r.port == 22)
            .unwrap()
            .tel_cloud
            .unwrap();
        assert!(mal_ssh < 20.0, "malicious ssh overlap {mal_ssh:.0}%");
    });
}

#[test]
fn headline_neighbors_differ() {
    scenario(|s| {
        // §4.1: a meaningful share of neighborhoods sees different top ASes.
        let rows = neighborhood::table2(&s.dataset, &s.deployment);
        let ssh_as = rows
            .iter()
            .find(|r| r.slice == TrafficSlice::SshPort22 && r.characteristic == CharKind::TopAs)
            .unwrap();
        assert!(
            ssh_as.pct_different > 10.0,
            "only {:.0}% neighborhoods differ",
            ssh_as.pct_different
        );
    });
}

#[test]
fn headline_apac_discrimination() {
    scenario(|s| {
        // §5.1: within-US/EU region pairs are more similar than APAC pairs.
        let cells = geography::table5(
            &s.dataset,
            &s.deployment,
            TrafficSlice::TelnetPort23,
            CharKind::TopUsername,
        );
        use cloud_watching::netsim::geo::RegionPairKind;
        let get = |b: RegionPairKind| cells.iter().find(|c| c.bucket == b).map(|c| c.pct_similar);
        if let (Some(us), Some(apac)) = (get(RegionPairKind::WithinUs), get(RegionPairKind::WithinApac))
        {
            assert!(
                us >= apac,
                "US pairs ({us:.0}%) should be at least as similar as APAC ({apac:.0}%)"
            );
        }
    });
}

#[test]
fn headline_unexpected_protocols() {
    scenario(|s| {
        // §6: a non-trivial share of port-80 scanners does not speak HTTP, and
        // TLS leads the unexpected protocols.
        let (rows, shares) =
            ports::protocol_breakdown(&s.dataset, &s.deployment, &s.handles.reputation, 80);
        let other = rows.iter().find(|r| !r.is_http).unwrap();
        assert!(
            other.pct_of_scanners > 2.0,
            "unexpected share {:.1}%",
            other.pct_of_scanners
        );
        assert_eq!(
            shares.first().map(|x| x.protocol),
            Some(cloud_watching::protocols::ProtocolId::Tls)
        );
    });
}

#[test]
fn headline_structure_preferences() {
    scenario(|s| {
        // §4.2 / Figure 1 shapes.
        let tel = s.telescope.borrow();
        let pref = figure1::slash16_first_preference(&tel, 22).unwrap();
        assert!(pref > 3.0, "slash16-first preference {pref:.1}x");
        let avoid = figure1::structure_stats(&tel, 445, |ip| ip.has_255_octet()).unwrap();
        assert!(avoid.avoidance_factor > 2.0, "{:.2}x", avoid.avoidance_factor);
    });
}

#[test]
fn classification_is_consistent_with_observations() {
    scenario(|s| {
        // Every credential observation is an attacker; every bare handshake is
        // a scanner (§3.2 definition, cross-checked over the full dataset).
        use cloud_watching::honeypot::capture::Observed;
        for e in s.dataset.events() {
            match &e.event.observed {
                Observed::Credentials { .. } => assert_eq!(e.verdict, Verdict::Attacker),
                Observed::Handshake | Observed::Syn => assert_eq!(e.verdict, Verdict::Scanner),
                Observed::Payload(_) => {} // either, decided by the ruleset
            }
        }
    });
}

#[test]
fn network_type_cells_are_computable() {
    scenario(|s| {
        let cc = network::cloud_cloud_cell(
            &s.dataset,
            &s.deployment,
            TrafficSlice::TelnetPort23,
            CharKind::TopAs,
            0.05,
        );
        assert!(cc.n >= 5, "only {} city pairs testable", cc.n);
        // Honeytrap credential cells must be the paper's ×.
        let ce = network::honeytrap_cell(
            &s.dataset,
            &s.deployment,
            &network::CLOUD_EDU_PAIRS,
            TrafficSlice::SshPort22,
            CharKind::TopPassword,
            0.05,
        );
        assert!(ce.uncomputable);
    });
}

#[test]
fn dataset_export_round_trips_through_csv_header() {
    scenario(|s| {
        let mut buf = Vec::new();
        s.dataset.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "time,src,src_asn,dst,dst_port,kind,verdict,fingerprint,username,password,payload_hex"
        );
        assert_eq!(text.lines().count() - 1, s.dataset.len());
    });
}
