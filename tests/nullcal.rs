//! Null calibration: the Table-comparison pipeline on label-permuted
//! (exchangeable) scenario data (tier 2 of docs/TESTING.md).
//!
//! Group labels are destroyed by random permutation, so every comparison
//! below samples the pipeline's null distribution. The p-values must look
//! uniform on [0, 1] and essentially nothing may clear the Bonferroni-
//! corrected level — otherwise the machinery would be manufacturing
//! vantage-point differences out of sampling noise, the exact failure mode
//! the paper's methodology exists to avoid.
//!
//! All randomness flows from `NullCalConfig::checked_in()`'s frozen seeds,
//! so these assertions are deterministic, not flaky.

use cloud_watching::core::compare::CharKind;
use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
use cloud_watching::scanners::population::ScenarioYear;
use cw_verify::nullcal::{self, NullCalConfig};

#[test]
fn null_calibration_p_values_are_uniform() {
    let cfg = NullCalConfig::checked_in();
    let scenario = Scenario::run(
        ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(cfg.scenario_seed)
            .with_scale(cfg.scale),
    );

    // The "who" axis: every event carries a source AS, so this exercises
    // the full top-3-union → chi-squared → Bonferroni path at scenario
    // volume.
    let report = nullcal::report(&scenario.dataset, CharKind::TopAs, &cfg);
    assert_eq!(
        report.p_values.len(),
        cfg.permutations,
        "no permutation may degenerate at scenario volume"
    );
    assert!(
        report.ks_p_value > 0.01,
        "null p-values must look U(0,1): KS D = {:.4}, p = {:.4}",
        report.ks_statistic,
        report.ks_p_value
    );
    assert_eq!(
        report.significant_bonferroni, 0,
        "Bonferroni must not hallucinate vantage differences on \
         exchangeable inputs (p-values: min = {:.5})",
        report
            .p_values
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    );
    // At the *uncorrected* level the false-positive rate must sit near α.
    let frac = report.significant_raw as f64 / cfg.permutations as f64;
    assert!(
        frac < 0.12,
        "uncorrected false-positive rate {frac:.3} far above α = {}",
        cfg.alpha
    );

    // The "what" axis: maliciousness is a 2-category characteristic, the
    // other table shape (no top-k union). Same dataset, fresh permutations.
    let report = nullcal::report(&scenario.dataset, CharKind::FracMalicious, &cfg);
    assert!(
        report.ks_p_value > 0.01,
        "FracMalicious null must look U(0,1): KS D = {:.4}, p = {:.4}",
        report.ks_statistic,
        report.ks_p_value
    );
    assert_eq!(report.significant_bonferroni, 0);
}
