//! Statistical oracle suite: `cw-stats` against the independent reference
//! implementations in `cw-verify` (tier 1 of docs/TESTING.md).
//!
//! The production and reference routes share no code — different series,
//! closed forms, or brute-force enumeration on each side (see
//! `cw_verify::oracle`) — so 1e-9 agreement here pins both: a regression in
//! either implementation breaks the match.

use cloud_watching::stats::special::{
    chi2_sf, erf, erfc, kolmogorov_sf, ln_gamma, normal_cdf, normal_sf,
};
use cloud_watching::stats::{
    chi_squared_from_table, cramers_v, ks_two_sample, mann_whitney_u, Alternative,
    ContingencyTable,
};
use cw_verify::oracle;

/// 1e-9 agreement: absolute for magnitudes below 1, relative above.
fn assert_close(actual: f64, reference: f64, what: &str) {
    let tol = 1e-9 * reference.abs().max(1.0);
    assert!(
        (actual - reference).abs() <= tol,
        "{what}: {actual} vs reference {reference} (|Δ| = {:.3e})",
        (actual - reference).abs()
    );
}

#[test]
fn ln_gamma_matches_stirling_reference() {
    // Lanczos (production) vs shifted Stirling–Bernoulli (reference).
    let mut z = 0.05;
    while z < 150.0 {
        assert_close(ln_gamma(z), oracle::ln_gamma_ref(z), "ln_gamma");
        z *= 1.17;
    }
}

#[test]
fn erf_family_matches_series_and_continued_fraction() {
    let mut x = -6.0;
    while x <= 6.0 {
        assert_close(erf(x), oracle::erf_ref(x), "erf");
        assert_close(erfc(x), oracle::erfc_ref(x), "erfc");
        assert_close(normal_cdf(x), oracle::normal_cdf_ref(x), "normal_cdf");
        assert_close(normal_sf(x), oracle::normal_cdf_ref(-x), "normal_sf");
        x += 0.085; // off-grid steps: no special-cased arguments
    }
}

#[test]
fn chi2_sf_matches_closed_forms_for_integer_df() {
    // Production incomplete-gamma route vs finite Poisson sums (even df)
    // and the erfc recurrence (odd df).
    for df in 1..=40u32 {
        let mut x = 0.01;
        while x < 120.0 {
            assert_close(
                chi2_sf(x, df as f64),
                oracle::chi2_sf_ref(x, df),
                &format!("chi2_sf(x={x}, df={df})"),
            );
            x *= 1.31;
        }
    }
}

#[test]
fn chi2_df2_is_exactly_exponential() {
    // df = 2 has the elementary closed form Q = e^{-x/2}; the quantile is
    // −2 ln α. This is the strongest possible anchor — no series at all.
    for alpha in [0.5f64, 0.1, 0.05, 0.01, 1e-4, 1e-8] {
        let q = -2.0 * alpha.ln();
        assert_close(chi2_sf(q, 2.0), alpha, "chi2 df=2 closed form");
    }
}

#[test]
fn chi2_quantiles_match_tabulated_references() {
    // Textbook upper quantiles (exact to the printed digit); the survival
    // function must recover α at each to 1e-9.
    let table: [(u32, f64, f64); 3] = [
        (1, 0.05, 3.841458820694124),
        (2, 0.05, 5.991464547107979),
        (4, 0.05, 9.487729036781154),
    ];
    for (df, alpha, q) in table {
        assert_close(chi2_sf(q, df as f64), alpha, "tabulated chi2 quantile");
        // And the bisected reference quantile agrees with the tabulated one.
        assert_close(oracle::chi2_quantile_ref(alpha, df), q, "chi2_quantile_ref");
    }
    // Off-table coverage: the reference quantile inverts the production sf.
    for df in [3u32, 7, 12, 24] {
        for alpha in [0.9, 0.1, 0.01, 1e-5] {
            let q = oracle::chi2_quantile_ref(alpha, df);
            assert_close(chi2_sf(q, df as f64), alpha, "quantile round trip");
        }
    }
}

#[test]
fn normal_quantiles_match_tabulated_references() {
    for (p, z) in oracle::NORMAL_QUANTILES {
        assert_close(normal_cdf(z), p, "tabulated normal quantile");
    }
}

#[test]
fn kolmogorov_sf_matches_theta_dual_series() {
    // Production alternating series vs the Jacobi theta-transformed dual.
    // The dual converges fastest exactly where the primary is slowest, so
    // agreement across the whole range cross-validates both.
    let mut lambda = 0.15;
    while lambda < 4.0 {
        assert_close(
            kolmogorov_sf(lambda),
            oracle::kolmogorov_sf_ref(lambda),
            &format!("kolmogorov_sf({lambda})"),
        );
        lambda += 0.047;
    }
}

#[test]
fn mann_whitney_u_statistic_matches_pairwise_counting() {
    // Rank-sum computation vs the literal pairwise definition, with ties.
    let cases: [(&[f64], &[f64]); 4] = [
        (&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]),
        (&[1.0, 1.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
        (&[5.0, 5.0, 5.0], &[5.0, 5.0]),
        (&[0.1, 9.0, 4.5, 4.5, 2.0], &[4.5, 0.1, 7.0]),
    ];
    for (x, y) in cases {
        let r = mann_whitney_u(x, y, Alternative::TwoSided).expect("computable");
        let u_ref = oracle::mwu_u_pairwise(x, y);
        // U from ranks and U from counting are the same integer/half-integer.
        assert!(
            (r.u - u_ref).abs() < 1e-12,
            "U mismatch: {} vs {}",
            r.u,
            u_ref
        );
        // The reported p must be the normal tail of the reported z to 1e-9
        // (two-sided: both tails).
        let p_ref = 2.0 * oracle::normal_cdf_ref(-r.z.abs());
        assert_close(r.p_value, p_ref.min(1.0), "MWU p from z");
    }
}

#[test]
fn mann_whitney_normal_approx_tracks_exact_enumeration() {
    // The tie-corrected normal approximation must stay close to the exact
    // permutation distribution for paper-sized groups (distributional
    // agreement, so the tolerance is statistical, not 1e-9).
    let x = [12.0, 7.5, 9.1, 14.2, 10.0, 8.8, 13.4];
    let y = [6.2, 8.0, 7.7, 9.5, 6.9, 7.2, 8.4];
    let exact = oracle::mwu_exact_p_greater(&x, &y);
    let approx = mann_whitney_u(&x, &y, Alternative::Greater).expect("computable");
    assert!(
        (approx.p_value - exact).abs() < 0.02,
        "normal approx {} vs exact {}",
        approx.p_value,
        exact
    );
}

#[test]
fn ks_statistic_matches_bruteforce_ecdf() {
    let cases: [(&[f64], &[f64]); 3] = [
        (&[1.0, 2.0, 3.0, 4.0], &[3.0, 4.0, 5.0, 6.0]),
        (&[1.0, 1.0, 1.0], &[1.0, 1.0]),
        (&[0.3, 2.7, 2.7, 5.1, 9.9], &[2.7, 3.3, 4.1]),
    ];
    for (x, y) in cases {
        let r = ks_two_sample(x, y).expect("computable");
        let d_ref = oracle::ks_d_bruteforce(x, y);
        assert!(
            (r.statistic - d_ref).abs() < 1e-12,
            "D mismatch: {} vs {}",
            r.statistic,
            d_ref
        );
        // p must equal the reference Kolmogorov tail of the Stephens-
        // adjusted statistic to 1e-9.
        let en = (x.len() * y.len()) as f64 / (x.len() + y.len()) as f64;
        let lambda = (en.sqrt() + 0.12 + 0.11 / en.sqrt()) * d_ref;
        assert_close(r.p_value, oracle::kolmogorov_sf_ref(lambda), "KS p");
    }
}

#[test]
fn chi_squared_from_table_matches_bruteforce() {
    let tables: [&[&[u64]]; 3] = [
        &[&[10, 20, 30], &[30, 20, 10]],
        &[&[100, 0, 5], &[90, 3, 4], &[80, 1, 9]],
        // A zero column that must be pruned identically on both routes.
        &[&[10, 0, 20], &[15, 0, 25]],
    ];
    for rows in tables {
        let counts: Vec<Vec<u64>> = rows.iter().map(|r| r.to_vec()).collect();
        let cats: Vec<String> = (0..counts[0].len()).map(|i| format!("c{i}")).collect();
        let r = chi_squared_from_table(&ContingencyTable::new(cats, counts.clone()))
            .expect("computable");
        let (stat_ref, df_ref) = oracle::chi2_stat_bruteforce(&counts).expect("computable");
        assert_close(r.statistic, stat_ref, "chi2 statistic");
        assert_eq!(r.df, df_ref, "chi2 df");
        assert_close(r.p_value, oracle::chi2_sf_ref(stat_ref, df_ref as u32), "chi2 p");
        // Cramér's V from the same table, reference route.
        let v_ref = oracle::cramers_v_bruteforce(&counts).expect("computable");
        assert_close(cramers_v(&r).phi, v_ref, "cramers v");
    }
}

#[test]
fn bonferroni_is_the_exact_closed_form() {
    for m in [1usize, 5, 17, 1000] {
        assert_close(
            cloud_watching::stats::bonferroni_alpha(0.05, m),
            0.05 / m as f64,
            "bonferroni alpha",
        );
    }
}
