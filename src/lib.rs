//! # cloud-watching
//!
//! A from-scratch Rust reproduction of *"Cloud Watching: Understanding
//! Attacks Against Cloud-Hosted Services"* (IMC 2023): the measurement
//! instruments (Cowrie/Honeytrap/GreyNoise-style honeypots, a network
//! telescope, a Suricata-like rule engine, LZR-style fingerprinting,
//! Censys/Shodan-style search engines), a simulated scanning Internet, and
//! the paper's statistical analysis pipeline.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`netsim`] — the simulated Internet (time, RNG, IPv4, ASes, engine);
//! - [`protocols`] — wire formats + fingerprinting;
//! - [`detection`] — rules engine, classification, reputation;
//! - [`honeypot`] — the instruments and the Table 1 deployment;
//! - [`scanners`] — the attacker/scanner population;
//! - [`stats`] — chi², Cramér's V, Bonferroni, Mann–Whitney, KS, top-3;
//! - [`core`] — scenarios, analyses, the columnar query layer
//!   ([`core::query`], see `docs/QUERY.md`), and table rendering.
//!
//! ## Quickstart
//!
//! ```
//! use cloud_watching::core::scenario::{Scenario, ScenarioConfig};
//! use cloud_watching::scanners::population::ScenarioYear;
//!
//! // A reduced-scale simulated week of scanning traffic.
//! let scenario = Scenario::run(
//!     ScenarioConfig::fast(ScenarioYear::Y2021).with_scale(0.02),
//! );
//! assert!(scenario.dataset.len() > 0);
//!
//! // Ask questions through the typed query layer: how many distinct
//! // sources probed SSH anywhere in the fleet?
//! let ssh_scanners = scenario.dataset.query().port(22).distinct_srcs();
//! assert!(ssh_scanners.len() <= scenario.dataset.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cw_core as core;
pub use cw_detection as detection;
pub use cw_honeypot as honeypot;
pub use cw_netsim as netsim;
pub use cw_protocols as protocols;
pub use cw_scanners as scanners;
pub use cw_stats as stats;
