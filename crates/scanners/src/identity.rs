//! Actor identities and source-address allocation.
//!
//! The paper identifies actors by AS (§3.3) because campaigns use many
//! source IPs. An [`ActorIdentity`] is one campaign: a name, an AS, a
//! country, and a set of source addresses. [`SrcAllocator`] hands out
//! deterministic, non-overlapping source space to the whole population.

use cw_netsim::asn::Asn;
use cw_netsim::ip::Cidr;
use std::net::Ipv4Addr;

/// One scanning campaign's network identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActorIdentity {
    /// Campaign name (diagnostics; analyses never see it).
    pub name: String,
    /// Origin autonomous system.
    pub asn: Asn,
    /// Operator country code.
    pub country: String,
    /// Source addresses the campaign scans from.
    pub ips: Vec<Ipv4Addr>,
}

impl ActorIdentity {
    /// Build an identity.
    pub fn new(name: &str, asn: Asn, country: &str, ips: Vec<Ipv4Addr>) -> Self {
        assert!(!ips.is_empty(), "actor '{name}' needs at least one source IP");
        ActorIdentity {
            name: name.to_string(),
            asn,
            country: country.to_string(),
            ips,
        }
    }
}

/// Deterministic allocator of scanner source address space.
///
/// Hands out consecutive chunks of 100.64.0.0/10-style space (simulated;
/// disjoint from every vantage block by construction — vantage space lives
/// in 10/8, 20/8, 171.64/16, 198.108/16).
#[derive(Debug, Clone)]
pub struct SrcAllocator {
    next: u32,
    end: u32,
}

impl Default for SrcAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl SrcAllocator {
    /// Allocator over 100.0.0.0/8.
    pub fn new() -> Self {
        let base = Cidr::new(Ipv4Addr::new(100, 0, 0, 0), 8);
        SrcAllocator {
            next: u32::from(base.base()),
            end: u32::from(base.base()) + base.size() as u32,
        }
    }

    /// Allocate `n` consecutive source addresses.
    ///
    /// # Panics
    /// Panics when the /8 is exhausted (would indicate a runaway scenario).
    pub fn alloc(&mut self, n: usize) -> Vec<Ipv4Addr> {
        let n32 = n as u32;
        assert!(
            self.next + n32 <= self.end,
            "source address space exhausted"
        );
        let out = (0..n32).map(|i| Ipv4Addr::from(self.next + i)).collect();
        self.next += n32;
        out
    }

    /// Addresses handed out so far.
    pub fn allocated(&self) -> u32 {
        self.next - u32::from(Ipv4Addr::new(100, 0, 0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_sequential_and_disjoint() {
        let mut a = SrcAllocator::new();
        let x = a.alloc(3);
        let y = a.alloc(2);
        assert_eq!(x, vec![
            Ipv4Addr::new(100, 0, 0, 0),
            Ipv4Addr::new(100, 0, 0, 1),
            Ipv4Addr::new(100, 0, 0, 2),
        ]);
        assert_eq!(y[0], Ipv4Addr::new(100, 0, 0, 3));
        assert_eq!(a.allocated(), 5);
    }

    #[test]
    fn allocation_crosses_octet_boundaries() {
        let mut a = SrcAllocator::new();
        a.alloc(300);
        let v = a.alloc(1);
        assert_eq!(v[0], Ipv4Addr::new(100, 0, 1, 44));
    }

    #[test]
    #[should_panic]
    fn empty_identity_rejected() {
        ActorIdentity::new("x", Asn(1), "US", vec![]);
    }
}
