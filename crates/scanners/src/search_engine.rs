//! Internet-service search engines: Censys and Shodan.
//!
//! §4.3's causal chain needs real moving parts: an **indexer agent** scans
//! the world with benign probes, learns service banners from completed
//! handshakes, and publishes entries into a **search index** that miner
//! agents query. The leak experiment's knobs are (a) per-honeypot source
//! blocking (the engines never see blocked services, so they never index
//! them) and (b) pre-seeded *historical* entries for the previously-leaked
//! group.

use crate::identity::ActorIdentity;
use cw_netsim::engine::{Agent, Network};
use cw_netsim::flow::{ConnectionIntent, FlowSpec};
use cw_netsim::rng::SimRng;
use cw_netsim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Which search engine an index belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SearchEngine {
    /// Censys.
    Censys,
    /// Shodan.
    Shodan,
}

impl SearchEngine {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SearchEngine::Censys => "Censys",
            SearchEngine::Shodan => "Shodan",
        }
    }
}

/// One indexed service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Service address.
    pub ip: Ipv4Addr,
    /// Service port.
    pub port: u16,
    /// Protocol label learned from the banner.
    pub protocol: String,
    /// When the entry was (first) published.
    pub first_seen: SimTime,
    /// True for stale entries from a previous service life (the
    /// previously-leaked group's state).
    pub historical: bool,
}

/// A queryable service index.
#[derive(Debug, Clone, Default)]
pub struct SearchIndex {
    entries: BTreeMap<(Ipv4Addr, u16), IndexEntry>,
}

impl SearchIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish (or refresh) a live entry.
    pub fn publish_live(&mut self, ip: Ipv4Addr, port: u16, protocol: &str, now: SimTime) {
        let e = self
            .entries
            .entry((ip, port))
            .or_insert_with(|| IndexEntry {
                ip,
                port,
                protocol: protocol.to_string(),
                first_seen: now,
                historical: false,
            });
        // A live observation upgrades a historical entry.
        e.historical = false;
        e.protocol = protocol.to_string();
    }

    /// Seed a historical entry (a past service life still in the index).
    pub fn seed_historical(&mut self, ip: Ipv4Addr, port: u16, protocol: &str) {
        self.entries.insert(
            (ip, port),
            IndexEntry {
                ip,
                port,
                protocol: protocol.to_string(),
                first_seen: SimTime::ZERO,
                historical: true,
            },
        );
    }

    /// Entry for an (ip, port), if any.
    pub fn get(&self, ip: Ipv4Addr, port: u16) -> Option<&IndexEntry> {
        self.entries.get(&(ip, port))
    }

    /// Is this (ip, port) listed with a *live* entry?
    pub fn has_live(&self, ip: Ipv4Addr, port: u16) -> bool {
        self.get(ip, port).map(|e| !e.historical).unwrap_or(false)
    }

    /// All entries on a port (live and historical).
    pub fn entries_on_port(&self, port: u16) -> Vec<&IndexEntry> {
        self.entries.values().filter(|e| e.port == port).collect()
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Shared handle to an index.
pub type SharedIndex = Rc<RefCell<SearchIndex>>;

/// The scanning indexer agent for one engine.
pub struct IndexerAgent {
    identity: ActorIdentity,
    rng: SimRng,
    index: SharedIndex,
    /// Ports swept per pass.
    ports: Vec<u16>,
    /// All addresses the indexer sweeps (services + a telescope sample).
    targets: Vec<Ipv4Addr>,
    /// Seconds between full sweeps.
    sweep_interval: SimDuration,
    /// Per-wake slice of the sweep.
    batch: usize,
    cursor: usize,
    /// Probability of also probing HTTP ports with a TLS hello — this is
    /// how Censys finds unexpected services (§6: "scanners from Censys are
    /// the leading benign organization to find unexpected services").
    unexpected_probe_rate: f64,
}

impl IndexerAgent {
    /// Create an indexer that sweeps `targets` × `ports` repeatedly.
    pub fn new(
        identity: ActorIdentity,
        rng: SimRng,
        index: SharedIndex,
        targets: Vec<Ipv4Addr>,
        ports: Vec<u16>,
        sweep_interval: SimDuration,
        unexpected_probe_rate: f64,
    ) -> Self {
        IndexerAgent {
            identity,
            rng,
            index,
            ports,
            targets,
            sweep_interval,
            batch: 200,
            cursor: 0,
            unexpected_probe_rate,
        }
    }

    /// The engine's source addresses (for honeypot blocklists).
    pub fn source_ips(&self) -> &[Ipv4Addr] {
        &self.identity.ips
    }

    fn probe_intent(&mut self, port: u16) -> ConnectionIntent {
        use cw_protocols::ProtocolId;
        match cw_protocols::assigned_protocol(port) {
            Some(ProtocolId::Http) => {
                if self.rng.chance(self.unexpected_probe_rate) {
                    ConnectionIntent::Payload(cw_protocols::tls::build_client_hello(
                        self.rng.next_u64(),
                        None,
                    ))
                } else {
                    ConnectionIntent::Payload(crate::exploits::benign_get(
                        "Mozilla/5.0 (compatible; CensysInspect/1.1)",
                    ))
                }
            }
            // Server-first or binary protocols: complete the handshake and
            // listen for the banner.
            _ => ConnectionIntent::ProbeOnly,
        }
    }
}

impl Agent for IndexerAgent {
    fn name(&self) -> &str {
        &self.identity.name
    }

    fn on_wake(&mut self, now: SimTime, net: &mut dyn Network) -> Option<SimTime> {
        let total = self.targets.len() * self.ports.len();
        if total == 0 {
            return None;
        }
        let end = (self.cursor + self.batch).min(total);
        while self.cursor < end {
            let ip = self.targets[self.cursor / self.ports.len()];
            let port = self.ports[self.cursor % self.ports.len()];
            self.cursor += 1;
            let src = *self.rng.choose(&self.identity.ips);
            let intent = self.probe_intent(port);
            let outcome = net.send(FlowSpec {
                src,
                src_asn: self.identity.asn,
                dst: ip,
                dst_port: port,
                intent,
            });
            if let Some(reply) = outcome.reply {
                if let Some(protocol) = reply.protocol {
                    self.index
                        .borrow_mut()
                        .publish_live(ip, port, &protocol, now);
                }
            }
        }
        if self.cursor >= total {
            // Sweep complete: rest, then start over.
            self.cursor = 0;
            Some(now + self.sweep_interval)
        } else {
            Some(now + SimDuration::from_secs(30))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_honeypot::framework::{HoneypotListener, Persona, PortPolicy};
    use cw_netsim::asn::Asn;
    use cw_netsim::engine::Engine;

    #[test]
    fn index_publish_and_query() {
        let mut idx = SearchIndex::new();
        let ip = Ipv4Addr::new(171, 64, 10, 1);
        idx.seed_historical(ip, 80, "HTTP");
        assert!(!idx.has_live(ip, 80));
        assert!(idx.get(ip, 80).unwrap().historical);
        idx.publish_live(ip, 80, "HTTP", SimTime(100));
        assert!(idx.has_live(ip, 80));
        assert_eq!(idx.entries_on_port(80).len(), 1);
        assert_eq!(idx.entries_on_port(22).len(), 0);
    }

    #[test]
    fn indexer_learns_banners_from_replies() {
        let mut engine = Engine::new();
        let hp_ip = Ipv4Addr::new(10, 0, 0, 5);
        let hp = HoneypotListener::new("svc", [hp_ip], PortPolicy::FirstPayload)
            .with_persona(80, Persona::http());
        engine.add_listener(Rc::new(RefCell::new(hp)));

        let index: SharedIndex = Rc::new(RefCell::new(SearchIndex::new()));
        let agent = IndexerAgent::new(
            ActorIdentity::new("censys", Asn(398_324), "US", vec![Ipv4Addr::new(100, 0, 0, 1)]),
            SimRng::seed_from_u64(1),
            index.clone(),
            vec![hp_ip],
            vec![80, 22],
            SimDuration::DAY,
            0.0,
        );
        engine.add_agent(Box::new(agent), SimTime(0));
        engine.run(SimTime(3600));

        let idx = index.borrow();
        assert!(idx.has_live(hp_ip, 80), "HTTP service should be indexed");
        // Port 22 had no persona/policy → no reply → not indexed.
        assert!(!idx.has_live(hp_ip, 22));
    }

    #[test]
    fn blocked_indexer_learns_nothing() {
        let mut engine = Engine::new();
        let hp_ip = Ipv4Addr::new(10, 0, 0, 5);
        let censys_src = Ipv4Addr::new(100, 0, 0, 1);
        let mut hp = HoneypotListener::new("svc", [hp_ip], PortPolicy::FirstPayload)
            .with_persona(80, Persona::http());
        hp.block_source(censys_src);
        engine.add_listener(Rc::new(RefCell::new(hp)));

        let index: SharedIndex = Rc::new(RefCell::new(SearchIndex::new()));
        let agent = IndexerAgent::new(
            ActorIdentity::new("censys", Asn(398_324), "US", vec![censys_src]),
            SimRng::seed_from_u64(2),
            index.clone(),
            vec![hp_ip],
            vec![80],
            SimDuration::DAY,
            0.0,
        );
        engine.add_agent(Box::new(agent), SimTime(0));
        engine.run(SimTime(3600));
        assert!(index.borrow().is_empty());
    }

    #[test]
    fn engine_names() {
        assert_eq!(SearchEngine::Censys.name(), "Censys");
        assert_eq!(SearchEngine::Shodan.name(), "Shodan");
    }
}
