//! Uniform sub-sampled Internet-wide scanners (ZMap-style).
//!
//! This is the bulk of the unsolicited traffic: campaigns that pick a port,
//! sub-sample the address space, and probe. Per-port knobs control the
//! §5.2 network preferences: the probability that a campaign also sweeps
//! the telescope is what generates the Table 8 per-port overlap fractions
//! (e.g. Telnet scanners almost never avoid dark space; SSH scanners almost
//! always do), with a boost for EDU-scanning campaigns (Merit and Orion
//! share an AS, so EDU-targeting scanners see the telescope "nearby").

use crate::campaign::{probe_only, Campaign, IntentFn, Pacing};
use crate::identity::ActorIdentity;
use crate::targets::TargetUniverse;
use cw_netsim::flow::ConnectionIntent;
use cw_netsim::rng::SimRng;
use cw_netsim::time::SimDuration;
use std::net::Ipv4Addr;

/// Per-port configuration of the uniform-scanner population.
#[derive(Debug, Clone, Copy)]
pub struct ZmapProfile {
    /// Destination port.
    pub port: u16,
    /// Number of independent campaigns.
    pub count: usize,
    /// Per-vantage-IP inclusion probability (sub-sampling).
    pub service_rate: f64,
    /// Probability a campaign skips education networks entirely.
    pub p_skip_edu: f64,
    /// Probability a cloud-only campaign also sweeps the telescope.
    pub p_telescope: f64,
    /// Additional telescope probability for campaigns that scan EDU.
    pub p_telescope_edu_boost: f64,
    /// Telescope addresses sampled by a telescope-sweeping campaign.
    pub telescope_sample: usize,
    /// Fraction of campaigns that send a benign payload (vs bare probes).
    pub payload_fraction: f64,
}

/// Source of (ASN, country) assignments for generated campaigns.
pub type AsnPicker<'a> = &'a mut dyn FnMut(&mut SimRng) -> (cw_netsim::asn::Asn, String);

/// Build the campaigns for one profile.
pub fn build(
    profile: &ZmapProfile,
    universe: &TargetUniverse,
    rng: &mut SimRng,
    mut alloc: impl FnMut(usize) -> Vec<Ipv4Addr>,
    asn_picker: AsnPicker,
) -> Vec<Campaign> {
    let mut out = Vec::with_capacity(profile.count);
    for i in 0..profile.count {
        let mut crng = rng.derive(&format!("zmap/{}/{}", profile.port, i));
        let (asn, country) = asn_picker(&mut crng);
        let identity = ActorIdentity::new(
            &format!("zmap/{}/{}", profile.port, i),
            asn,
            &country,
            alloc(1),
        );

        let scans_edu = !crng.chance(profile.p_skip_edu);
        let p_tel = if scans_edu {
            (profile.p_telescope + profile.p_telescope_edu_boost).min(1.0)
        } else {
            profile.p_telescope
        };
        let scans_telescope = crng.chance(p_tel);

        let service_ips = universe.sample_services(&mut crng, profile.service_rate, |t| {
            scans_edu || t.kind != cw_honeypot::deployment::NetworkKind::Education
        });
        // Campaign volumes are heavy-tailed: a big campaign hammers the
        // honeypots it sampled while skipping the ones it didn't — the §4.1
        // source of neighbor asymmetry. HTTP research scanning is steadier
        // (one GET per service), so its tail is softer — this keeps
        // neighboring port-80 payload mixes similar (Table 2's 15%) while
        // ASes still diverge.
        let volume = crng.pareto_volume(1.3, 7) as usize;
        let mut targets: Vec<(Ipv4Addr, u16)> = Vec::new();
        for ip in &service_ips {
            for _ in 0..volume {
                targets.push((*ip, profile.port));
            }
        }
        if scans_telescope {
            for ip in universe.sample_telescope(&mut crng, profile.telescope_sample, |_| true) {
                targets.push((ip, profile.port));
            }
        }
        crng.shuffle(&mut targets);

        let intent: IntentFn = if crng.chance(profile.payload_fraction) {
            benign_intent_for_port(profile.port, &mut crng)
        } else {
            probe_only()
        };
        let pacing = Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
        out.push(Campaign::new(identity, crng, targets, pacing, intent));
    }
    out
}

/// User-Agent strings of real scanning tools; each benign campaign uses
/// one, giving the distinct-payload diversity of real traffic (the §3.2
/// "6% of distinct HTTP payloads are malicious" denominator).
pub const SCANNER_USER_AGENTS: [&str; 16] = [
    "Mozilla/5.0 zgrab/0.x",
    "Mozilla/5.0 (compatible; CensysInspect/1.1)",
    "Mozilla/5.0 (compatible; InternetMeasurement/1.0)",
    "masscan/1.3",
    "python-requests/2.26.0",
    "curl/7.81.0",
    "Go-http-client/1.1",
    "Mozilla/5.0 (compatible; Nmap Scripting Engine)",
    "HTTP Banner Detection (https://security.ipip.net)",
    "Mozilla/5.0 (compatible; NetSystemsResearch)",
    "Expanse, a Palo Alto Networks company",
    "Mozilla/5.0 (compatible; Odin; https://docs.getodin.com)",
    "fasthttp",
    "okhttp/3.12.1",
    "Mozilla/5.0 (compatible; Researchscan/t13rl)",
    "libwww-perl/6.43",
];

/// Paths benign scanners fetch.
pub const SCANNER_PATHS: [&str; 6] = ["/", "/robots.txt", "/favicon.ico", "/index.html", "/sitemap.xml", "/.well-known/security.txt"];

/// The benign first payload an assigned-protocol scanner sends on a port.
pub fn benign_intent_for_port(port: u16, rng: &mut SimRng) -> IntentFn {
    use cw_protocols::ProtocolId;
    match cw_protocols::assigned_protocol(port) {
        Some(ProtocolId::Http) => {
            // Zipf-weighted: most campaigns run the same few tools, so the
            // top payloads converge across neighboring honeypots while the
            // distinct-payload pool stays wide.
            let ua_weights: Vec<f64> = (0..SCANNER_USER_AGENTS.len())
                .map(|i| 1.0 / (i as f64 + 1.0))
                .collect();
            let path_weights: Vec<f64> = (0..SCANNER_PATHS.len())
                .map(|i| 1.0 / (i as f64 + 1.0))
                .collect();
            let ua = SCANNER_USER_AGENTS[rng.choose_weighted(&ua_weights)];
            let path = SCANNER_PATHS[rng.choose_weighted(&path_weights)];
            let payload = cw_protocols::HttpRequest::new("GET", path)
                .header("Host", "target")
                .header("User-Agent", ua)
                .header("Accept", "*/*")
                .to_bytes();
            Box::new(move |_, _, _| ConnectionIntent::Payload(payload.clone()))
        }
        Some(ProtocolId::Tls) => {
            let seed = rng.next_u64();
            Box::new(move |_, _, _| {
                ConnectionIntent::Payload(cw_protocols::tls::build_client_hello(seed, None))
            })
        }
        Some(ProtocolId::Ssh) => Box::new(|_, _, _| {
            ConnectionIntent::Payload(cw_protocols::ssh::build_banner("libssh2_1.9"))
        }),
        Some(ProtocolId::Smb) => {
            Box::new(|_, _, _| ConnectionIntent::Payload(cw_protocols::smb::build_negotiate()))
        }
        // Telnet and the rest are server-first (or binary): bare probe.
        _ => probe_only(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_honeypot::deployment::Deployment;
    use cw_netsim::asn::Asn;

    fn test_build(profile: &ZmapProfile, seed: u64) -> Vec<Campaign> {
        let universe = TargetUniverse::from_deployment(&Deployment::standard());
        let mut rng = SimRng::seed_from_u64(seed);
        let mut next = 0u32;
        let mut counter = 0u32;
        let _ = &mut next;
        build(
            profile,
            &universe,
            &mut rng,
            move |n| {
                let start = counter;
                counter += n as u32;
                (0..n as u32)
                    .map(|i| Ipv4Addr::from(u32::from(Ipv4Addr::new(100, 0, 0, 0)) + start + i))
                    .collect()
            },
            &mut |_r| (Asn(65_000), "US".to_string()),
        )
    }

    #[test]
    fn builds_requested_count() {
        let p = ZmapProfile {
            port: 23,
            count: 10,
            service_rate: 0.5,
            p_skip_edu: 0.0,
            p_telescope: 1.0,
            p_telescope_edu_boost: 0.0,
            telescope_sample: 100,
            payload_fraction: 0.0,
        };
        let cs = test_build(&p, 1);
        assert_eq!(cs.len(), 10);
        // With p_telescope = 1 every campaign has telescope targets beyond
        // the service sample.
        for c in &cs {
            assert!(c.remaining() > 100);
        }
    }

    #[test]
    fn telescope_avoidance_zero_prob() {
        let p = ZmapProfile {
            port: 2222,
            count: 5,
            service_rate: 1.0,
            p_skip_edu: 0.0,
            p_telescope: 0.0,
            p_telescope_edu_boost: 0.0,
            telescope_sample: 1000,
            payload_fraction: 0.0,
        };
        let universe = TargetUniverse::from_deployment(&Deployment::standard());
        let n_services = universe.all_service_ips().len();
        let cs = test_build(&p, 2);
        for c in &cs {
            // Every service exactly once per volume unit, telescope never.
            assert_eq!(c.remaining() % n_services, 0);
            assert!(c.remaining() >= n_services);
        }
    }

    #[test]
    fn determinism() {
        let p = ZmapProfile {
            port: 80,
            count: 3,
            service_rate: 0.3,
            p_skip_edu: 0.5,
            p_telescope: 0.5,
            p_telescope_edu_boost: 0.2,
            telescope_sample: 50,
            payload_fraction: 0.5,
        };
        let a: Vec<usize> = test_build(&p, 7).iter().map(|c| c.remaining()).collect();
        let b: Vec<usize> = test_build(&p, 7).iter().map(|c| c.remaining()).collect();
        assert_eq!(a, b);
    }
}
