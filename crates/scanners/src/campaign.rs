//! The generic paced scan campaign.
//!
//! Most archetypes reduce to: a fixed identity, a pre-planned (shuffled)
//! list of `(address, port)` targets, a pacing policy spreading the scan
//! over the collection window, and an intent factory crafting the wire
//! behavior per connection. Archetype modules build configured [`Campaign`]s;
//! only the agents that need run-time feedback (search-engine indexers and
//! miners) implement [`Agent`] themselves.

use crate::identity::ActorIdentity;
use cw_netsim::asn::Asn;
use cw_netsim::engine::{Agent, Network};
use cw_netsim::flow::{ConnectionIntent, FlowSpec};
use cw_netsim::rng::SimRng;
use cw_netsim::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// How a campaign spreads its probes over the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pacing {
    /// First wake.
    pub start: SimTime,
    /// Time between wakes.
    pub interval: SimDuration,
    /// Flows sent per wake.
    pub batch: usize,
}

impl Pacing {
    /// Spread `total` probes roughly uniformly over `window`, starting at a
    /// random offset within the first tenth of the window.
    pub fn spread(rng: &mut SimRng, total: usize, window: SimDuration) -> Pacing {
        let start = SimTime(rng.below((window.secs() / 10).max(1)));
        // Aim for ~100-target batches, waking often enough to finish.
        let batch = total.clamp(1, 100);
        let wakes = (total / batch).max(1) as u64;
        let remaining = window.secs().saturating_sub(start.secs());
        let interval = SimDuration::from_secs((remaining / (wakes + 1)).max(1));
        Pacing {
            start,
            interval,
            batch,
        }
    }

    /// A burst: everything at once at `start`.
    pub fn burst_at(start: SimTime, total: usize) -> Pacing {
        Pacing {
            start,
            interval: SimDuration::SECOND,
            batch: total.max(1),
        }
    }
}

/// Per-connection client behavior factory.
pub type IntentFn = Box<dyn FnMut(&mut SimRng, Ipv4Addr, u16) -> ConnectionIntent>;

/// A paced scanning campaign.
pub struct Campaign {
    identity: ActorIdentity,
    rng: SimRng,
    targets: Vec<(Ipv4Addr, u16)>,
    cursor: usize,
    pacing: Pacing,
    intent_fn: IntentFn,
}

impl Campaign {
    /// Create a campaign over explicit `(address, port)` targets. The target
    /// order is preserved (shuffle beforehand when order shouldn't matter).
    pub fn new(
        identity: ActorIdentity,
        rng: SimRng,
        targets: Vec<(Ipv4Addr, u16)>,
        pacing: Pacing,
        intent_fn: IntentFn,
    ) -> Self {
        Campaign {
            identity,
            rng,
            targets,
            cursor: 0,
            pacing,
            intent_fn,
        }
    }

    /// Convenience: targets = every listed IP on every listed port.
    pub fn cross(ips: &[Ipv4Addr], ports: &[u16]) -> Vec<(Ipv4Addr, u16)> {
        let mut out = Vec::with_capacity(ips.len() * ports.len());
        for &ip in ips {
            for &port in ports {
                out.push((ip, port));
            }
        }
        out
    }

    /// The campaign's identity.
    pub fn identity(&self) -> &ActorIdentity {
        &self.identity
    }

    /// First scheduled wake.
    pub fn start_time(&self) -> SimTime {
        self.pacing.start
    }

    /// Remaining targets.
    pub fn remaining(&self) -> usize {
        self.targets.len() - self.cursor
    }
}

impl Agent for Campaign {
    fn name(&self) -> &str {
        &self.identity.name
    }

    fn on_wake(&mut self, now: SimTime, net: &mut dyn Network) -> Option<SimTime> {
        let end = (self.cursor + self.pacing.batch).min(self.targets.len());
        while self.cursor < end {
            let (dst, dst_port) = self.targets[self.cursor];
            self.cursor += 1;
            let src = *self.rng.choose(&self.identity.ips);
            let intent = (self.intent_fn)(&mut self.rng, dst, dst_port);
            net.send(FlowSpec {
                src,
                src_asn: self.identity.asn,
                dst,
                dst_port,
                intent,
            });
        }
        if self.cursor >= self.targets.len() {
            None
        } else {
            Some(now + self.pacing.interval)
        }
    }
}

/// Intent factory: always probe (SYN-scan style).
pub fn probe_only() -> IntentFn {
    Box::new(|_, _, _| ConnectionIntent::ProbeOnly)
}

/// Intent factory: a fixed payload for every connection.
pub fn fixed_payload(payload: Vec<u8>) -> IntentFn {
    Box::new(move |_, _, _| ConnectionIntent::Payload(payload.clone()))
}

/// Intent factory: pick a payload per connection from a weighted corpus.
pub fn weighted_payloads(corpus: Vec<(Vec<u8>, f64)>) -> IntentFn {
    assert!(!corpus.is_empty(), "corpus must be non-empty");
    let weights: Vec<f64> = corpus.iter().map(|(_, w)| *w).collect();
    Box::new(move |rng, _, _| {
        let i = rng.choose_weighted(&weights);
        ConnectionIntent::Payload(corpus[i].0.clone())
    })
}

/// Intent factory: login attempts drawn from a credential dictionary.
pub fn login_from_dictionary(
    service: cw_netsim::flow::LoginService,
    dictionary: &'static [(&'static str, &'static str)],
) -> IntentFn {
    login_from_credentials(
        service,
        dictionary
            .iter()
            .map(|(u, p)| (u.to_string(), p.to_string()))
            .collect(),
    )
}

/// Intent factory: login attempts drawn from an owned credential list
/// (a campaign's personal slice of a dictionary).
pub fn login_from_credentials(
    service: cw_netsim::flow::LoginService,
    credentials: Vec<(String, String)>,
) -> IntentFn {
    assert!(!credentials.is_empty(), "credential list must be non-empty");
    // The first entry is the campaign's signature credential: real
    // brute-force tools hammer one default far more than the rest, which is
    // what makes neighboring honeypots' top usernames diverge (§4.1).
    let weights: Vec<f64> = (0..credentials.len())
        .map(|i| if i == 0 { 3.0 } else { 1.0 })
        .collect();
    Box::new(move |rng, _, _| {
        let (u, p) = credentials[rng.choose_weighted(&weights)].clone();
        ConnectionIntent::Login {
            service,
            username: u,
            password: p,
        }
    })
}

/// A dummy identity for tests and simple examples.
pub fn test_identity(name: &str, ip: Ipv4Addr) -> ActorIdentity {
    ActorIdentity::new(name, Asn(64_512), "US", vec![ip])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_netsim::engine::{Engine, FlowOutcome, Listener};
    use cw_netsim::flow::Flow;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct CountSink {
        flows: Vec<Flow>,
    }
    impl Listener for CountSink {
        fn name(&self) -> &str {
            "sink"
        }
        fn covers(&self, ip: Ipv4Addr) -> bool {
            ip.octets()[0] == 10
        }
        fn on_flow(&mut self, flow: &Flow) -> FlowOutcome {
            self.flows.push(flow.clone());
            FlowOutcome::accepted()
        }
    }

    fn run_campaign(c: Campaign) -> Vec<Flow> {
        let mut e = Engine::new();
        let sink = Rc::new(RefCell::new(CountSink { flows: vec![] }));
        e.add_listener(sink.clone());
        let start = c.start_time();
        e.add_agent(Box::new(c), start);
        e.run(SimTime(SimDuration::WEEK.secs()));
        let flows = sink.borrow().flows.clone();
        flows
    }

    #[test]
    fn campaign_covers_all_targets_exactly_once() {
        let mut rng = SimRng::seed_from_u64(1);
        let ips: Vec<Ipv4Addr> = (0..50).map(|i| Ipv4Addr::new(10, 0, 0, i)).collect();
        let targets = Campaign::cross(&ips, &[22, 80]);
        let pacing = Pacing::spread(&mut rng, targets.len(), SimDuration::WEEK);
        let c = Campaign::new(
            test_identity("t", Ipv4Addr::new(100, 0, 0, 1)),
            rng,
            targets.clone(),
            pacing,
            probe_only(),
        );
        let flows = run_campaign(c);
        assert_eq!(flows.len(), 100);
        let mut seen: Vec<(Ipv4Addr, u16)> = flows.iter().map(|f| (f.dst, f.dst_port)).collect();
        seen.sort();
        let mut expect = targets;
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn pacing_spreads_over_window() {
        let mut rng = SimRng::seed_from_u64(2);
        let ips: Vec<Ipv4Addr> = (0..200).map(|i| Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250) as u8)).collect();
        let targets = Campaign::cross(&ips, &[23]);
        let pacing = Pacing::spread(&mut rng, targets.len(), SimDuration::WEEK);
        let c = Campaign::new(
            test_identity("t", Ipv4Addr::new(100, 0, 0, 1)),
            rng,
            targets,
            pacing,
            probe_only(),
        );
        let flows = run_campaign(c);
        let first = flows.first().unwrap().time;
        let last = flows.last().unwrap().time;
        assert!(last.secs() > first.secs(), "no time spread");
    }

    #[test]
    fn burst_sends_everything_at_once() {
        let rng = SimRng::seed_from_u64(3);
        let targets = vec![(Ipv4Addr::new(10, 0, 0, 1), 80); 10];
        let c = Campaign::new(
            test_identity("t", Ipv4Addr::new(100, 0, 0, 1)),
            rng,
            targets,
            Pacing::burst_at(SimTime(500), 10),
            probe_only(),
        );
        let flows = run_campaign(c);
        assert_eq!(flows.len(), 10);
        assert!(flows.iter().all(|f| f.time == SimTime(500)));
    }

    #[test]
    fn login_intent_factory_uses_dictionary() {
        let rng = SimRng::seed_from_u64(4);
        let targets = vec![(Ipv4Addr::new(10, 0, 0, 1), 23); 30];
        let c = Campaign::new(
            test_identity("t", Ipv4Addr::new(100, 0, 0, 1)),
            rng,
            targets,
            Pacing::burst_at(SimTime(0), 30),
            login_from_dictionary(
                cw_netsim::flow::LoginService::Telnet,
                crate::credentials::TELNET_GLOBAL,
            ),
        );
        let flows = run_campaign(c);
        for f in &flows {
            match &f.intent {
                ConnectionIntent::Login { username, .. } => {
                    assert!(crate::credentials::TELNET_GLOBAL
                        .iter()
                        .any(|(u, _)| u == username));
                }
                other => panic!("expected login, got {other:?}"),
            }
        }
    }

    #[test]
    fn weighted_payload_factory_respects_weights() {
        let mut f = weighted_payloads(vec![(b"a".to_vec(), 0.0), (b"b".to_vec(), 1.0)]);
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..20 {
            match f(&mut rng, Ipv4Addr::new(10, 0, 0, 1), 80) {
                ConnectionIntent::Payload(p) => assert_eq!(p, b"b".to_vec()),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn multi_ip_identity_rotates_sources() {
        let rng = SimRng::seed_from_u64(6);
        let srcs: Vec<Ipv4Addr> = (0..8).map(|i| Ipv4Addr::new(100, 0, 0, i)).collect();
        let identity = ActorIdentity::new("bot", Asn(1), "CN", srcs.clone());
        let targets = vec![(Ipv4Addr::new(10, 0, 0, 1), 23); 100];
        let c = Campaign::new(identity, rng, targets, Pacing::burst_at(SimTime(0), 100), probe_only());
        let flows = run_campaign(c);
        let distinct: std::collections::BTreeSet<Ipv4Addr> =
            flows.iter().map(|f| f.src).collect();
        assert!(distinct.len() >= 6, "only {} distinct sources", distinct.len());
    }
}
