//! Scanners that target unexpected protocols on HTTP-assigned ports (§6).
//!
//! "At least 15% of scanners that target ports 80 and 8080 do not target
//! the HTTP protocol. Rather, 7% of scanners target TLS, Telnet (0.5%),
//! SQL (0.4%), RTSP (0.3%), SMB (0.3%), etc." Each campaign built here
//! speaks exactly one non-HTTP protocol at ports 80/8080 across the
//! honeypot fleets, so the §6 fingerprinting pipeline has something real to
//! identify.

use crate::campaign::{Campaign, IntentFn, Pacing};
use crate::identity::ActorIdentity;
use crate::targets::TargetUniverse;
use cw_netsim::flow::ConnectionIntent;
use cw_netsim::rng::SimRng;
use cw_netsim::time::SimDuration;
use cw_protocols::ProtocolId;
use std::net::Ipv4Addr;

/// Mix entry: a protocol spoken on HTTP ports, its share of campaigns, and
/// whether those campaigns belong to malicious actors (per the GreyNoise
/// reputation oracle; §6 finds the majority of non-TLS unexpected scanners
/// malicious, led by Chinese ASes).
#[derive(Debug, Clone, Copy)]
pub struct UnexpectedMix {
    /// The protocol actually spoken.
    pub protocol: ProtocolId,
    /// Number of campaigns speaking it.
    pub count: usize,
    /// Fraction of those campaigns operated by malicious actors.
    pub malicious_fraction: f64,
}

/// The default 2021 mix (≈15–16% of port-80/8080 scanners overall, once
/// combined with the HTTP-speaking population in `population`).
pub fn mix_2021() -> Vec<UnexpectedMix> {
    vec![
        UnexpectedMix {
            protocol: ProtocolId::Tls,
            count: 28,
            malicious_fraction: 0.5,
        },
        UnexpectedMix {
            protocol: ProtocolId::Telnet,
            count: 2,
            malicious_fraction: 0.8,
        },
        UnexpectedMix {
            protocol: ProtocolId::Sql,
            count: 2,
            malicious_fraction: 0.8,
        },
        UnexpectedMix {
            protocol: ProtocolId::Rtsp,
            count: 1,
            malicious_fraction: 0.8,
        },
        UnexpectedMix {
            protocol: ProtocolId::Smb,
            count: 1,
            malicious_fraction: 0.8,
        },
        UnexpectedMix {
            protocol: ProtocolId::Redis,
            count: 1,
            malicious_fraction: 0.7,
        },
        UnexpectedMix {
            protocol: ProtocolId::Adb,
            count: 1,
            malicious_fraction: 0.7,
        },
    ]
}

/// First payload a campaign speaking `protocol` sends.
pub fn payload_for(protocol: ProtocolId, rng: &mut SimRng, malicious: bool) -> Vec<u8> {
    match protocol {
        ProtocolId::Tls => cw_protocols::tls::build_client_hello(rng.next_u64(), None),
        // Malicious actors follow the handshake with state-altering bytes;
        // the honeypot records the first payload, which for these protocols
        // already carries the exploit marker.
        ProtocolId::Telnet => {
            if malicious {
                crate::exploits::shell_chain("203.0.113.99")
            } else {
                cw_protocols::telnet::build_negotiation(&[1, 3])
            }
        }
        ProtocolId::Sql => cw_protocols::sql::build_prelogin(),
        ProtocolId::Rtsp => cw_protocols::rtsp::build_request("OPTIONS", "rtsp://target/"),
        ProtocolId::Smb => {
            if malicious {
                crate::exploits::smb_trans2()
            } else {
                cw_protocols::smb::build_negotiate()
            }
        }
        ProtocolId::Redis => {
            if malicious {
                crate::exploits::redis_config_set()
            } else {
                cw_protocols::redis::build_command(&["PING"])
            }
        }
        ProtocolId::Adb => cw_protocols::adb::build_connect(),
        ProtocolId::Ssh => cw_protocols::ssh::build_banner("paramiko_2.7"),
        ProtocolId::Ntp => cw_protocols::ntp::build_client_request(),
        ProtocolId::Rdp => cw_protocols::rdp::build_connection_request("probe"),
        ProtocolId::Fox => cw_protocols::fox::build_hello(),
        ProtocolId::Sip => cw_protocols::sip::build_options("probe@target"),
        ProtocolId::Http => crate::exploits::benign_get("unexpected/1.0"),
    }
}

/// Campaigns built from a mix, with the list of (campaign source IPs,
/// malicious?) so the scenario can feed the reputation oracle.
pub struct UnexpectedFleet {
    /// The campaigns.
    pub campaigns: Vec<Campaign>,
    /// (source IP, malicious label) per campaign.
    pub labels: Vec<(Ipv4Addr, bool)>,
}

/// Build the unexpected-protocol fleet.
pub fn build(
    mix: &[UnexpectedMix],
    universe: &TargetUniverse,
    rng: &mut SimRng,
    mut alloc: impl FnMut(usize) -> Vec<Ipv4Addr>,
    asn_picker: crate::zmap::AsnPicker,
) -> UnexpectedFleet {
    let mut campaigns = Vec::new();
    let mut labels = Vec::new();
    for m in mix {
        for i in 0..m.count {
            let mut crng = rng.derive(&format!("unexpected/{}/{}", m.protocol.label(), i));
            let malicious = crng.chance(m.malicious_fraction);
            let (asn, country) = asn_picker(&mut crng);
            let src = alloc(1);
            labels.push((src[0], malicious));
            let identity = ActorIdentity::new(
                &format!("unexpected/{}/{}", m.protocol.label(), i),
                asn,
                &country,
                src,
            );
            let mut ips = universe.sample_services(&mut crng, 0.5, |_| true);
            crng.shuffle(&mut ips);
            let mut targets: Vec<(Ipv4Addr, u16)> = Vec::new();
            for ip in ips {
                targets.push((ip, if crng.chance(0.5) { 80 } else { 8080 }));
            }
            let protocol = m.protocol;
            let intent: IntentFn = Box::new(move |rng, _, _| {
                ConnectionIntent::Payload(payload_for(protocol, rng, malicious))
            });
            let pacing = Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
            campaigns.push(Campaign::new(identity, crng, targets, pacing, intent));
        }
    }
    UnexpectedFleet { campaigns, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_honeypot::deployment::Deployment;

    #[test]
    fn payloads_fingerprint_to_their_protocol() {
        let mut rng = SimRng::seed_from_u64(1);
        for m in mix_2021() {
            let p = payload_for(m.protocol, &mut rng, false);
            assert_eq!(
                cw_protocols::fingerprint(&p),
                Some(m.protocol),
                "benign payload for {}",
                m.protocol
            );
            let p = payload_for(m.protocol, &mut rng, true);
            // Malicious variants must still fingerprint correctly —
            // except the Telnet shell chain, which (realistically) is a raw
            // command blob that LZR cannot attribute.
            if m.protocol != ProtocolId::Telnet {
                assert_eq!(cw_protocols::fingerprint(&p), Some(m.protocol));
            }
        }
    }

    #[test]
    fn fleet_matches_mix_counts() {
        let u = TargetUniverse::from_deployment(&Deployment::standard());
        let mut rng = SimRng::seed_from_u64(2);
        let mut next = 0u32;
        let fleet = build(
            &mix_2021(),
            &u,
            &mut rng,
            move |n| {
                let start = next;
                next += n as u32;
                (0..n as u32)
                    .map(|i| Ipv4Addr::from(u32::from(Ipv4Addr::new(100, 3, 0, 0)) + start + i))
                    .collect()
            },
            &mut |_r| (cw_netsim::asn::Asn(9808), "CN".to_string()),
        );
        let expected: usize = mix_2021().iter().map(|m| m.count).sum();
        assert_eq!(fleet.campaigns.len(), expected);
        assert_eq!(fleet.labels.len(), expected);
        // All targets on HTTP-assigned ports.
        for c in &fleet.campaigns {
            assert!(c.remaining() > 0);
        }
    }

    #[test]
    fn malicious_telnet_payload_triggers_rules() {
        let rs = cw_detection::RuleSet::builtin();
        let mut rng = SimRng::seed_from_u64(3);
        let p = payload_for(ProtocolId::Telnet, &mut rng, true);
        assert!(rs.is_malicious(&p, 80));
        let p = payload_for(ProtocolId::Telnet, &mut rng, false);
        assert!(!rs.is_malicious(&p, 80));
    }
}
