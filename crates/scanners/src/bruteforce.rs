//! SSH/Telnet credential brute-forcers with geographic tailoring.
//!
//! These are the "attackers" of §3.2 (they attempt to bypass
//! authentication) and the carriers of two key findings:
//!
//! - §5.1: credentials are tailored to geography, concentrated in Asia
//!   Pacific ("mother"/"e8ehome" in AWS Australia, ZTE defaults in
//!   Singapore, …);
//! - §5.2 / Table 9: attackers on SSH-assigned ports almost entirely avoid
//!   telescopes (≤7.5% overlap) while Telnet attackers do not.

use crate::campaign::{login_from_credentials, Campaign, Pacing};
use crate::credentials::Credential;
use crate::identity::ActorIdentity;
use crate::targets::{ServiceTarget, TargetUniverse};
use cw_netsim::flow::LoginService;
use cw_netsim::rng::SimRng;
use cw_netsim::time::SimDuration;
use std::net::Ipv4Addr;

/// Where a brute-forcer aims.
#[derive(Debug, Clone)]
pub enum GeoScope {
    /// All service networks.
    Global,
    /// Only regions with the given codes.
    Regions(Vec<String>),
    /// All regions except the given codes (the SATNET shape).
    Excluding(Vec<String>),
    /// Only cloud networks (skips education).
    CloudOnly,
    /// Only education networks (the Chinanet-SSH 2021 shape).
    EduHeavy,
}

impl GeoScope {
    /// Does this scope admit a target?
    pub fn admits(&self, t: &ServiceTarget) -> bool {
        use cw_honeypot::deployment::NetworkKind;
        match self {
            GeoScope::Global => true,
            GeoScope::Regions(codes) => codes.contains(&t.region.code),
            GeoScope::Excluding(codes) => !codes.contains(&t.region.code),
            GeoScope::CloudOnly => t.kind == NetworkKind::Cloud,
            GeoScope::EduHeavy => t.kind == NetworkKind::Education,
        }
    }
}

/// Configuration of one brute-force campaign family.
#[derive(Debug, Clone)]
pub struct BruteforceProfile {
    /// Campaign-family name prefix.
    pub name: String,
    /// Number of independent campaigns.
    pub count: usize,
    /// Target service dialect.
    pub service: LoginService,
    /// Ports attempted (22/2222 or 23/2323).
    pub ports: Vec<u16>,
    /// Credential dictionary.
    pub dictionary: &'static [Credential],
    /// Geographic scope.
    pub scope: GeoScope,
    /// Per-vantage-IP inclusion probability.
    pub service_rate: f64,
    /// Login attempts per targeted service.
    pub attempts_per_target: usize,
    /// Probability a campaign also touches the telescope (Table 9: tiny for
    /// SSH, large for Telnet botnet-adjacent attackers).
    pub p_telescope: f64,
    /// Telescope sample size when it does.
    pub telescope_sample: usize,
}

/// A campaign's personal slice of a dictionary: at least 3 entries. With
/// `head_bias` the draw favors the list head (Telnet campaigns all carry
/// the Mirai classics, keeping "root"/"admin"/"support" globally stable);
/// without it the draw is uniform (SSH lists vary wildly per campaign,
/// which is why the paper sees 55% of SSH-username neighborhoods differ).
pub fn dictionary_subset(
    rng: &mut SimRng,
    dictionary: &'static [Credential],
    head_bias: bool,
) -> Vec<(String, String)> {
    // SSH tools frequently ship a single default credential; Telnet kits
    // carry at least the Mirai pair plus friends.
    let k = if head_bias {
        rng.range(2, 7) as usize
    } else {
        rng.range(1, 7) as usize
    };
    let weights: Vec<f64> = (0..dictionary.len())
        .map(|i| if head_bias { 1.0 / (i as f64 + 1.0) } else { 1.0 })
        .collect();
    let mut picked: Vec<usize> = Vec::new();
    let mut guard = 0;
    while picked.len() < k.min(dictionary.len()) && guard < 1000 {
        guard += 1;
        let i = rng.choose_weighted(&weights);
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    picked
        .into_iter()
        .map(|i| (dictionary[i].0.to_string(), dictionary[i].1.to_string()))
        .collect()
}

/// Build the campaigns for a profile.
pub fn build(
    profile: &BruteforceProfile,
    universe: &TargetUniverse,
    rng: &mut SimRng,
    mut alloc: impl FnMut(usize) -> Vec<Ipv4Addr>,
    asn_picker: crate::zmap::AsnPicker,
) -> Vec<Campaign> {
    let mut out = Vec::with_capacity(profile.count);
    for i in 0..profile.count {
        let mut crng = rng.derive(&format!("{}/{}", profile.name, i));
        let (asn, country) = asn_picker(&mut crng);
        let identity = ActorIdentity::new(
            &format!("{}/{}", profile.name, i),
            asn,
            &country,
            alloc(1),
        );
        let base =
            universe.sample_services(&mut crng, profile.service_rate, |t| profile.scope.admits(t));
        // Heavy-tailed per-campaign volume (§4.1 neighbor asymmetry).
        let volume = crng.pareto_volume(1.5, 3) as usize;
        let mut targets: Vec<(Ipv4Addr, u16)> = Vec::new();
        for ip in &base {
            for _ in 0..profile.attempts_per_target * volume {
                let port = *crng.choose(&profile.ports);
                targets.push((*ip, port));
            }
        }
        if crng.chance(profile.p_telescope) {
            for ip in universe.sample_telescope(&mut crng, profile.telescope_sample, |_| true) {
                targets.push((ip, profile.ports[0]));
            }
        }
        crng.shuffle(&mut targets);
        let pacing = Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
        // Each campaign favors its own slice of the dictionary (real
        // campaigns ship specific credential lists), drawn with a bias
        // toward the list head so the global top-3 stays stable.
        let head_bias = profile.service == LoginService::Telnet;
        let subset = dictionary_subset(&mut crng, profile.dictionary, head_bias);
        out.push(Campaign::new(
            identity,
            crng,
            targets,
            pacing,
            login_from_credentials(profile.service, subset),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credentials;
    use cw_honeypot::deployment::Deployment;
    use cw_netsim::asn::Asn;
    use cw_netsim::flow::ConnectionIntent;

    fn universe() -> TargetUniverse {
        TargetUniverse::from_deployment(&Deployment::standard())
    }

    fn build_one(profile: &BruteforceProfile, seed: u64) -> Vec<Campaign> {
        let u = universe();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut next = 0u32;
        build(
            profile,
            &u,
            &mut rng,
            move |n| {
                let start = next;
                next += n as u32;
                (0..n as u32)
                    .map(|i| Ipv4Addr::from(u32::from(Ipv4Addr::new(100, 5, 0, 0)) + start + i))
                    .collect()
            },
            &mut |_r| (Asn(4134), "CN".to_string()),
        )
    }

    #[test]
    fn region_scope_limits_targets() {
        let u = universe();
        let au_ips: Vec<Ipv4Addr> = u.service_ips(|t| t.region.code == "AP-AU");
        let profile = BruteforceProfile {
            name: "bf-au".into(),
            count: 1,
            service: LoginService::Telnet,
            ports: vec![23],
            dictionary: credentials::TELNET_AP_AU,
            scope: GeoScope::Regions(vec!["AP-AU".into()]),
            service_rate: 1.0,
            attempts_per_target: 2,
            p_telescope: 0.0,
            telescope_sample: 0,
        };
        let cs = build_one(&profile, 1);
        // attempts × per-campaign heavy-tail volume, only at AU honeypots.
        assert_eq!(cs[0].remaining() % (au_ips.len() * 2), 0);
        assert!(cs[0].remaining() >= au_ips.len() * 2);
    }

    #[test]
    fn excluding_scope_excludes() {
        let u = universe();
        let n_total = u.all_service_ips().len();
        let n_in = u.service_ips(|t| t.region.code == "AP-IN").len();
        let profile = BruteforceProfile {
            name: "bf-satnet".into(),
            count: 1,
            service: LoginService::Ssh,
            ports: vec![22],
            dictionary: credentials::SSH_GLOBAL,
            scope: GeoScope::Excluding(vec!["AP-IN".into()]),
            service_rate: 1.0,
            attempts_per_target: 1,
            p_telescope: 0.0,
            telescope_sample: 0,
        };
        let cs = build_one(&profile, 2);
        assert_eq!(cs[0].remaining() % (n_total - n_in), 0);
        assert!(cs[0].remaining() >= n_total - n_in);
    }

    #[test]
    fn intents_are_logins_from_the_dictionary() {
        let profile = BruteforceProfile {
            name: "bf-test".into(),
            count: 1,
            service: LoginService::Ssh,
            ports: vec![22, 2222],
            dictionary: credentials::SSH_GLOBAL,
            scope: GeoScope::CloudOnly,
            service_rate: 0.05,
            attempts_per_target: 3,
            p_telescope: 0.0,
            telescope_sample: 0,
        };
        let mut cs = build_one(&profile, 3);
        let c = &mut cs[0];
        // Drive the campaign against a counting network to inspect intents.
        struct Probe {
            intents: Vec<ConnectionIntent>,
        }
        impl cw_netsim::engine::Network for Probe {
            fn now(&self) -> cw_netsim::time::SimTime {
                cw_netsim::time::SimTime(0)
            }
            fn send(&mut self, spec: cw_netsim::flow::FlowSpec) -> cw_netsim::engine::FlowOutcome {
                self.intents.push(spec.intent);
                cw_netsim::engine::FlowOutcome::accepted()
            }
        }
        let mut probe = Probe { intents: vec![] };
        use cw_netsim::engine::Agent as _;
        let mut t = c.start_time();
        while let Some(next) = c.on_wake(t, &mut probe) {
            t = next;
        }
        assert!(!probe.intents.is_empty());
        for i in &probe.intents {
            match i {
                ConnectionIntent::Login {
                    service, username, ..
                } => {
                    assert_eq!(*service, LoginService::Ssh);
                    assert!(credentials::SSH_GLOBAL.iter().any(|(u, _)| u == username));
                }
                other => panic!("expected login, got {other:?}"),
            }
        }
    }
}
