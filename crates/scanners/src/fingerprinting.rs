//! Honeypot-fingerprinting scanners (§7 "Honeypot Fingerprinting" future
//! work).
//!
//! "Scanners occasionally fingerprint honeypots to avoid detection." This
//! agent probes a target's SSH banner first and only proceeds to credential
//! attempts when the banner does not match a known honeypot signature —
//! the sophistication the paper warns could bias honeypot measurements.
//! The `fingerprinting_scanner` example quantifies the blind spot such
//! scanners create.

use crate::identity::ActorIdentity;
use cw_netsim::engine::{Agent, Network};
use cw_netsim::flow::{ConnectionIntent, FlowSpec, LoginService};
use cw_netsim::rng::SimRng;
use cw_netsim::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Banner substrings the scanner treats as honeypot tells. The default list
/// contains the default Cowrie/Kippo banner our own GreyNoise sensors
/// present — so this scanner avoids every deployed honeypot.
pub const DEFAULT_HONEYPOT_SIGNATURES: [&str; 3] = [
    "SSH-2.0-OpenSSH_7.4p1 Debian-10", // the default Cowrie persona
    "SSH-2.0-dropbear_2014",           // classic Kippo-era tell
    "SSH-2.0-libssh",                  // honeypot frameworks built on libssh
];

/// A brute-forcer that fingerprints before attacking.
pub struct FingerprintingScanner {
    identity: ActorIdentity,
    rng: SimRng,
    targets: Vec<Ipv4Addr>,
    cursor: usize,
    signatures: Vec<String>,
    batch: usize,
    interval: SimDuration,
    /// Targets skipped after a honeypot banner match.
    avoided: Vec<Ipv4Addr>,
    /// Targets attacked after the banner looked clean (or was absent).
    attacked: Vec<Ipv4Addr>,
}

impl FingerprintingScanner {
    /// Create a scanner over SSH targets.
    pub fn new(identity: ActorIdentity, rng: SimRng, targets: Vec<Ipv4Addr>) -> Self {
        FingerprintingScanner {
            identity,
            rng,
            targets,
            cursor: 0,
            signatures: DEFAULT_HONEYPOT_SIGNATURES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            batch: 50,
            interval: SimDuration::HOUR,
            avoided: Vec::new(),
            attacked: Vec::new(),
        }
    }

    /// Override the signature list (builder style).
    pub fn with_signatures(mut self, signatures: Vec<String>) -> Self {
        self.signatures = signatures;
        self
    }

    /// Targets avoided because the banner matched a signature.
    pub fn avoided(&self) -> &[Ipv4Addr] {
        &self.avoided
    }

    /// Targets attacked.
    pub fn attacked(&self) -> &[Ipv4Addr] {
        &self.attacked
    }

    fn banner_is_honeypot(&self, banner: &[u8]) -> bool {
        let text = String::from_utf8_lossy(banner);
        self.signatures.iter().any(|s| text.contains(s.as_str()))
    }
}

impl Agent for FingerprintingScanner {
    fn name(&self) -> &str {
        &self.identity.name
    }

    fn on_wake(&mut self, now: SimTime, net: &mut dyn Network) -> Option<SimTime> {
        let end = (self.cursor + self.batch).min(self.targets.len());
        while self.cursor < end {
            let dst = self.targets[self.cursor];
            self.cursor += 1;
            let src = *self.rng.choose(&self.identity.ips);
            // Step 1: banner grab.
            let outcome = net.send(FlowSpec {
                src,
                src_asn: self.identity.asn,
                dst,
                dst_port: 22,
                intent: ConnectionIntent::ProbeOnly,
            });
            let is_honeypot = outcome
                .reply
                .as_ref()
                .map(|r| self.banner_is_honeypot(&r.banner))
                .unwrap_or(false);
            if is_honeypot {
                self.avoided.push(dst);
                continue;
            }
            if !outcome.handshake_completed {
                // Dark space: nothing to attack.
                continue;
            }
            // Step 2: the attack.
            let (u, p) = *self.rng.choose(crate::credentials::SSH_GLOBAL);
            net.send(FlowSpec {
                src,
                src_asn: self.identity.asn,
                dst,
                dst_port: 22,
                intent: ConnectionIntent::Login {
                    service: LoginService::Ssh,
                    username: u.to_string(),
                    password: p.to_string(),
                },
            });
            self.attacked.push(dst);
        }
        if self.cursor >= self.targets.len() {
            None
        } else {
            Some(now + self.interval)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_honeypot::framework::{HoneypotListener, Persona, PortPolicy};
    use cw_netsim::asn::Asn;
    use cw_netsim::engine::Engine;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn avoids_cowrie_banner_attacks_custom_banner() {
        let honeypot_ip = Ipv4Addr::new(10, 0, 0, 1);
        let real_ip = Ipv4Addr::new(10, 0, 0, 2);
        let mut engine = Engine::new();

        // The honeypot presents the default Cowrie banner (via the
        // Interactive greeting); the "real" server presents a custom one.
        let hp = HoneypotListener::new(
            "cowrie",
            [honeypot_ip],
            PortPolicy::Closed,
        )
        .with_policy(22, PortPolicy::Interactive(LoginService::Ssh));
        let hp_cap = hp.capture();
        engine.add_listener(Rc::new(RefCell::new(hp)));

        let real = HoneypotListener::new("real", [real_ip], PortPolicy::Closed)
            .with_policy(22, PortPolicy::Interactive(LoginService::Ssh))
            .with_persona(
                22,
                Persona {
                    protocol: "SSH".into(),
                    banner: b"SSH-2.0-OpenSSH_9.6 Ubuntu-3ubuntu13\r\n".to_vec(),
                },
            );
        let real_cap = real.capture();
        engine.add_listener(Rc::new(RefCell::new(real)));

        let scanner = FingerprintingScanner::new(
            ActorIdentity::new("fp", Asn(64_777), "RU", vec![Ipv4Addr::new(100, 77, 0, 1)]),
            SimRng::seed_from_u64(1),
            vec![honeypot_ip, real_ip],
        );
        engine.add_agent(Box::new(scanner), SimTime(0));
        engine.run(SimTime(86_400));

        // The honeypot saw only the banner grab — never a credential.
        let hp_cap = hp_cap.borrow();
        assert!(hp_cap
            .events()
            .all(|e| !matches!(e.observed, cw_honeypot::capture::Observed::Credentials { .. })));
        // The "real" server got attacked.
        let real_cap = real_cap.borrow();
        assert!(real_cap
            .events()
            .any(|e| matches!(e.observed, cw_honeypot::capture::Observed::Credentials { .. })));
    }

    #[test]
    fn dark_space_is_neither_avoided_nor_attacked() {
        let mut engine = Engine::new();
        let scanner = FingerprintingScanner::new(
            ActorIdentity::new("fp", Asn(64_777), "RU", vec![Ipv4Addr::new(100, 77, 0, 1)]),
            SimRng::seed_from_u64(2),
            vec![Ipv4Addr::new(9, 9, 9, 9)],
        );
        // Keep a peek at the agent via a second reference trick: run and
        // verify through engine stats instead (1 probe, no login).
        engine.add_agent(Box::new(scanner), SimTime(0));
        let stats = engine.run(SimTime(86_400));
        assert_eq!(stats.flows_unrouted, 1);
    }

    #[test]
    fn signature_matching() {
        let s = FingerprintingScanner::new(
            ActorIdentity::new("fp", Asn(1), "US", vec![Ipv4Addr::new(100, 0, 0, 1)]),
            SimRng::seed_from_u64(3),
            vec![],
        );
        assert!(s.banner_is_honeypot(b"SSH-2.0-OpenSSH_7.4p1 Debian-10\r\n"));
        assert!(!s.banner_is_honeypot(b"SSH-2.0-OpenSSH_9.6\r\n"));
        assert!(!s.banner_is_honeypot(b""));
    }
}
