//! # cw-scanners
//!
//! The simulated scanner and attacker population — the "world" whose
//! targeting biases the paper measures. Each module encodes one behavioral
//! archetype the paper identifies, as a real agent that selects targets and
//! crafts real wire payloads:
//!
//! - [`zmap`] — uniform sub-sampled Internet-wide research/unknown scanners
//!   (they scan telescopes too; most scanning traffic looks like this);
//! - [`search_engine`] — Censys & Shodan: benign indexers that scan, learn
//!   banners, and publish an index other actors mine;
//! - [`miner`] — attackers who query the search-engine indexes and burst
//!   ("spike") traffic at newly listed services (§4.3);
//! - [`mirai`] — Telnet-credential botnets that do *not* avoid dark space,
//!   plus the /16-first-address preference seen on port 22 (§4.2);
//! - [`tsunami`] — the single-target-latching botnet (§4.1, Figure 1d);
//! - [`structure`] — scanners that filter "broadcast-looking" addresses
//!   (trailing .255, or a 255 in any octet) (§4.2, Figures 1b–c);
//! - [`bruteforce`] — SSH/Telnet credential attackers with geographically
//!   tailored dictionaries (§5.1) that largely avoid telescopes (§5.2);
//! - [`webexploit`] — HTTP exploit campaigns (Log4Shell, router RCEs, …);
//! - [`nmap`] — the Avast/M247/CDN77 campaigns that avoid Censys-listed
//!   services (§4.3);
//! - [`unexpected`] — scanners that speak TLS/Telnet/SQL/… to HTTP ports
//!   (§6);
//! - [`population`] — assembles the full year-scenario actor mix.
//!
//! Shared machinery: [`identity`] (actor identities and source-address
//! allocation), [`credentials`] (global + regional dictionaries),
//! [`exploits`] (the malicious payload corpus matched by `cw-detection`'s
//! ruleset), [`targets`] (target planning over the deployment topology),
//! and [`campaign`] (the generic paced scan agent).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bruteforce;
pub mod campaign;
pub mod credentials;
pub mod exploits;
pub mod fingerprinting;
pub mod identity;
pub mod miner;
pub mod mirai;
pub mod nmap;
pub mod population;
pub mod search_engine;
pub mod structure;
pub mod targets;
pub mod tsunami;
pub mod unexpected;
pub mod webexploit;
pub mod zmap;

pub use campaign::Campaign;
pub use identity::{ActorIdentity, SrcAllocator};
pub use population::{Population, PopulationConfig, ScenarioYear};
pub use search_engine::{IndexEntry, SearchEngine, SearchIndex};
