//! The nmap campaigns that consult Censys before scanning.
//!
//! §4.3: "while three ASes — Avast (ASN 198605), M247 (ASN 9009), and
//! CDN77 (ASN 60068) — conduct nmap scans against our non-Censys-leaked
//! HTTP/80 honeypots, they actively *avoid* all Censys-leaked HTTP/80
//! honeypots. Interestingly, the nmap scanners also target the previously
//! leaked honeypots, implying that the nmap scanners source only up-to-date
//! information from Censys." The agent therefore skips only *live* Censys
//! entries, not historical ones.

use crate::identity::ActorIdentity;
use crate::search_engine::SharedIndex;
use cw_netsim::engine::{Agent, Network};
use cw_netsim::flow::{ConnectionIntent, FlowSpec};
use cw_netsim::rng::SimRng;
use cw_netsim::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// An nmap fingerprinting campaign that re-checks Censys each sweep.
pub struct NmapCampaign {
    identity: ActorIdentity,
    rng: SimRng,
    censys: SharedIndex,
    /// The candidate HTTP targets (the leak fleet + other honeypots).
    candidates: Vec<Ipv4Addr>,
    /// Time between sweeps.
    sweep_interval: SimDuration,
    sweeps_left: u32,
}

impl NmapCampaign {
    /// Create a campaign sweeping `candidates` on port 80, `sweeps` times.
    pub fn new(
        identity: ActorIdentity,
        rng: SimRng,
        censys: SharedIndex,
        candidates: Vec<Ipv4Addr>,
        sweep_interval: SimDuration,
        sweeps: u32,
    ) -> Self {
        NmapCampaign {
            identity,
            rng,
            censys,
            candidates,
            sweep_interval,
            sweeps_left: sweeps,
        }
    }
}

impl Agent for NmapCampaign {
    fn name(&self) -> &str {
        &self.identity.name
    }

    fn on_wake(&mut self, now: SimTime, net: &mut dyn Network) -> Option<SimTime> {
        if self.sweeps_left == 0 {
            return None;
        }
        self.sweeps_left -= 1;
        // Re-query Censys at sweep time: skip live-listed services only.
        let targets: Vec<Ipv4Addr> = {
            let idx = self.censys.borrow();
            self.candidates
                .iter()
                .copied()
                .filter(|ip| !idx.has_live(*ip, 80))
                .collect()
        };
        for ip in targets {
            let src = *self.rng.choose(&self.identity.ips);
            net.send(FlowSpec {
                src,
                src_asn: self.identity.asn,
                dst: ip,
                dst_port: 80,
                intent: ConnectionIntent::Payload(crate::exploits::nmap_probe()),
            });
        }
        if self.sweeps_left == 0 {
            None
        } else {
            Some(now + self.sweep_interval)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search_engine::SearchIndex;
    use cw_honeypot::framework::{HoneypotListener, PortPolicy};
    use cw_netsim::asn::Asn;
    use cw_netsim::engine::Engine;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn avoids_live_censys_entries_but_hits_historical() {
        let live = Ipv4Addr::new(10, 0, 0, 1);
        let historical = Ipv4Addr::new(10, 0, 0, 2);
        let unlisted = Ipv4Addr::new(10, 0, 0, 3);
        let index = Rc::new(RefCell::new(SearchIndex::new()));
        index.borrow_mut().publish_live(live, 80, "HTTP", SimTime(0));
        index.borrow_mut().seed_historical(historical, 80, "HTTP");

        let mut engine = Engine::new();
        let hp = HoneypotListener::new(
            "fleet",
            [live, historical, unlisted],
            PortPolicy::FirstPayload,
        );
        let cap = hp.capture();
        engine.add_listener(Rc::new(RefCell::new(hp)));

        let campaign = NmapCampaign::new(
            ActorIdentity::new("avast", Asn(198_605), "CZ", vec![Ipv4Addr::new(100, 2, 0, 1)]),
            SimRng::seed_from_u64(1),
            index,
            vec![live, historical, unlisted],
            SimDuration::DAY,
            2,
        );
        engine.add_agent(Box::new(campaign), SimTime(0));
        engine.run(SimTime(SimDuration::WEEK.secs()));

        let cap = cap.borrow();
        assert_eq!(cap.events_for_ip(live).count(), 0);
        assert_eq!(cap.events_for_ip(historical).count(), 2);
        assert_eq!(cap.events_for_ip(unlisted).count(), 2);
        // And the probe is the nmap fingerprint.
        let e = cap.events_for_ip(unlisted).next().unwrap();
        let pid = e.observed.payload().unwrap();
        let interner_rc = cap.interner();
        let interner = interner_rc.borrow();
        assert!(String::from_utf8_lossy(interner.payload(pid)).contains("Trinity.txt.bak"));
    }

    #[test]
    fn reacts_to_index_changes_between_sweeps() {
        let target = Ipv4Addr::new(10, 0, 0, 9);
        let index = Rc::new(RefCell::new(SearchIndex::new()));

        let mut engine = Engine::new();
        let hp = HoneypotListener::new("fleet", [target], PortPolicy::FirstPayload);
        let cap = hp.capture();
        engine.add_listener(Rc::new(RefCell::new(hp)));
        let campaign = NmapCampaign::new(
            ActorIdentity::new("m247", Asn(9009), "GB", vec![Ipv4Addr::new(100, 2, 0, 2)]),
            SimRng::seed_from_u64(2),
            index.clone(),
            vec![target],
            SimDuration::DAY,
            3,
        );
        engine.add_agent(Box::new(campaign), SimTime(0));
        // First sweep happens, then the service gets listed.
        engine.run(SimTime(3600));
        assert_eq!(cap.borrow().len(), 1);
        index
            .borrow_mut()
            .publish_live(target, 80, "HTTP", SimTime(3600));
        engine.run(SimTime(SimDuration::WEEK.secs()));
        // No further probes once live-listed.
        assert_eq!(cap.borrow().len(), 1);
    }
}
