//! Single-target-latching botnets.
//!
//! §4.1: "Thousands of scanner IP addresses belonging to the Tsunami botnet
//! only target a single IP address in the Hurricane Electric /24 honeypot
//! network", and Figure 1d shows an analogous latch on a set of four
//! telescope addresses on port 17128. Random IP assignment therefore
//! "leaves some services unknowingly more vulnerable to botnet attacks than
//! others".

use crate::campaign::{probe_only, Campaign, Pacing};
use crate::identity::ActorIdentity;
use cw_netsim::asn::Asn;
use cw_netsim::flow::{ConnectionIntent, LoginService};
use cw_netsim::rng::SimRng;
use cw_netsim::time::SimDuration;
use std::net::Ipv4Addr;

/// The Tsunami botnet: many bot IPs, one victim, Telnet logins all week.
pub fn build_tsunami(
    rng: &mut SimRng,
    bot_ips: Vec<Ipv4Addr>,
    asn: Asn,
    victim: Ipv4Addr,
    attempts: usize,
) -> Campaign {
    let mut crng = rng.derive("tsunami");
    let targets = vec![(victim, 23); attempts];
    let identity = ActorIdentity::new("tsunami", asn, "BR", bot_ips);
    let pacing = Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
    Campaign::new(
        identity,
        crng,
        targets,
        pacing,
        Box::new(|rng, _, _| {
            let (u, p) = *rng.choose(crate::credentials::TELNET_GLOBAL);
            ConnectionIntent::Login {
                service: LoginService::Telnet,
                username: u.to_string(),
                password: p.to_string(),
            }
        }),
    )
}

/// The Figure 1d latch: a campaign with many source IPs hammering a fixed
/// small set of telescope addresses on one port (17128 in the paper).
pub fn build_telescope_latch(
    rng: &mut SimRng,
    bot_ips: Vec<Ipv4Addr>,
    asn: Asn,
    victims: Vec<Ipv4Addr>,
    port: u16,
    contacts_per_victim: usize,
) -> Campaign {
    assert!(!victims.is_empty());
    let mut crng = rng.derive("telescope-latch");
    let mut targets = Vec::with_capacity(victims.len() * contacts_per_victim);
    for &v in &victims {
        for _ in 0..contacts_per_victim {
            targets.push((v, port));
        }
    }
    crng.shuffle(&mut targets);
    let identity = ActorIdentity::new("telescope-latch", asn, "RU", bot_ips);
    let pacing = Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
    Campaign::new(identity, crng, targets, pacing, probe_only())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsunami_targets_single_victim() {
        let mut rng = SimRng::seed_from_u64(1);
        let bots: Vec<Ipv4Addr> = (0..100).map(|i| Ipv4Addr::new(100, 8, 0, i)).collect();
        let victim = Ipv4Addr::new(20, 9, 0, 77);
        let c = build_tsunami(&mut rng, bots, Asn(64_999), victim, 500);
        assert_eq!(c.remaining(), 500);
    }

    #[test]
    fn latch_spreads_over_victims() {
        let mut rng = SimRng::seed_from_u64(2);
        let victims: Vec<Ipv4Addr> = (0..4).map(|i| Ipv4Addr::new(10, 3, 7, 40 + i)).collect();
        let c = build_telescope_latch(
            &mut rng,
            vec![Ipv4Addr::new(100, 8, 1, 1)],
            Asn(64_998),
            victims,
            17_128,
            50,
        );
        assert_eq!(c.remaining(), 200);
    }

    #[test]
    #[should_panic]
    fn latch_requires_victims() {
        let mut rng = SimRng::seed_from_u64(3);
        build_telescope_latch(
            &mut rng,
            vec![Ipv4Addr::new(100, 8, 1, 1)],
            Asn(1),
            vec![],
            17_128,
            10,
        );
    }
}
