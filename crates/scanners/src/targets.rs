//! Target planning: the slice of the simulated Internet a campaign scans.
//!
//! Real scanners pick targets from the whole IPv4 space; our simulation
//! only materializes the space that instruments observe (honeypot blocks +
//! telescope), so a campaign's target plan is a filtered, sampled view of
//! that space. The filters implemented here are exactly the targeting
//! biases under study: network-kind selection (telescope avoidance, §5.2),
//! geographic selection (§5.1), and address-structure filtering (§4.2).

use cw_honeypot::deployment::{CollectorKind, Deployment, NetworkKind, Provider, VantagePoint};
use cw_netsim::geo::Region;
use cw_netsim::ip::IpExt;
use cw_netsim::rng::SimRng;
use cw_netsim::topology::AddressBlock;
use std::net::Ipv4Addr;

/// One scannable service address with its deployment metadata (the scanner
/// does not *know* this metadata — it reflects where the address happens to
/// be, which is what geographically- or network-biased scanners key on via
/// routing/geo databases in the real world).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceTarget {
    /// The address.
    pub ip: Ipv4Addr,
    /// Hosting operator.
    pub provider: Provider,
    /// Network type.
    pub kind: NetworkKind,
    /// Geographic region.
    pub region: Region,
}

/// The target universe derived from a deployment.
#[derive(Debug, Clone)]
pub struct TargetUniverse {
    /// Every service (honeypot) address.
    pub services: Vec<ServiceTarget>,
    /// The telescope block.
    pub telescope: AddressBlock,
    /// The leak-experiment block (§4.3).
    pub leak_block: AddressBlock,
}

impl TargetUniverse {
    /// Build the universe from a deployment.
    pub fn from_deployment(d: &Deployment) -> Self {
        let services = d
            .vantages
            .iter()
            .filter(|v| v.collector != CollectorKind::Telescope)
            .map(|v: &VantagePoint| ServiceTarget {
                ip: v.ip,
                provider: v.provider,
                kind: v.kind,
                region: v.region.clone(),
            })
            .collect();
        let telescope = d.telescope.borrow().block().clone();
        let leak_block = d
            .topology
            .block("leak/stanford")
            .expect("deployment always allocates the leak block")
            .clone();
        TargetUniverse {
            services,
            telescope,
            leak_block,
        }
    }

    /// Service addresses passing a filter.
    pub fn service_ips<F: Fn(&ServiceTarget) -> bool>(&self, f: F) -> Vec<Ipv4Addr> {
        self.services.iter().filter(|t| f(t)).map(|t| t.ip).collect()
    }

    /// All service addresses.
    pub fn all_service_ips(&self) -> Vec<Ipv4Addr> {
        self.service_ips(|_| true)
    }

    /// Cloud-network service addresses.
    pub fn cloud_ips(&self) -> Vec<Ipv4Addr> {
        self.service_ips(|t| t.kind == NetworkKind::Cloud)
    }

    /// Education-network service addresses.
    pub fn edu_ips(&self) -> Vec<Ipv4Addr> {
        self.service_ips(|t| t.kind == NetworkKind::Education)
    }

    /// Sub-sample service addresses: include each with probability `rate`
    /// (the "majority of scanning campaigns conduct sub-sampled
    /// Internet-wide scans" behavior, §4.4).
    pub fn sample_services<F: Fn(&ServiceTarget) -> bool>(
        &self,
        rng: &mut SimRng,
        rate: f64,
        f: F,
    ) -> Vec<Ipv4Addr> {
        self.services
            .iter()
            .filter(|t| f(t))
            .filter(|_| rng.chance(rate))
            .map(|t| t.ip)
            .collect()
    }

    /// Sample `n` telescope addresses uniformly (with replacement across
    /// calls, deduplicated within the call), keeping only those passing
    /// `keep` — the hook for §4.2 structure filters.
    pub fn sample_telescope<F: Fn(Ipv4Addr) -> bool>(
        &self,
        rng: &mut SimRng,
        n: usize,
        keep: F,
    ) -> Vec<Ipv4Addr> {
        let size = self.telescope.size();
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0usize;
        // Rejection-sample; bail out if the filter is pathologically tight.
        while out.len() < n && attempts < n * 20 {
            attempts += 1;
            let ip = self.telescope.nth(rng.below(size));
            if keep(ip) {
                out.push(ip);
            }
        }
        out
    }
}

/// §4.2 structure filter: keep addresses that do not end in `.255`.
pub fn not_ending_255(ip: Ipv4Addr) -> bool {
    !ip.ends_in_255()
}

/// §4.2 sloppy-broadcast filter: keep addresses with no 255 octet at all.
pub fn no_255_octet(ip: Ipv4Addr) -> bool {
    !ip.has_255_octet()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_honeypot::deployment::Deployment;

    fn universe() -> TargetUniverse {
        TargetUniverse::from_deployment(&Deployment::standard())
    }

    #[test]
    fn universe_splits_by_network_kind() {
        let u = universe();
        let cloud = u.cloud_ips();
        let edu = u.edu_ips();
        // 444 GreyNoise + 64 aws-west + 64 google-west + 2 google-east.
        assert_eq!(cloud.len(), 444 + 64 + 64 + 2);
        assert_eq!(edu.len(), 128);
        assert_eq!(u.all_service_ips().len(), cloud.len() + edu.len());
    }

    #[test]
    fn sampling_rate_is_respected() {
        let u = universe();
        let mut rng = SimRng::seed_from_u64(1);
        let half = u.sample_services(&mut rng, 0.5, |_| true);
        let n = u.all_service_ips().len() as f64;
        assert!((half.len() as f64) > n * 0.35 && (half.len() as f64) < n * 0.65);
        let none = u.sample_services(&mut rng, 0.0, |_| true);
        assert!(none.is_empty());
    }

    #[test]
    fn telescope_sampling_respects_filters() {
        let u = universe();
        let mut rng = SimRng::seed_from_u64(2);
        let ips = u.sample_telescope(&mut rng, 2000, no_255_octet);
        assert_eq!(ips.len(), 2000);
        assert!(ips.iter().all(|ip| !ip.has_255_octet()));
        for ip in &ips {
            assert!(u.telescope.contains(*ip));
        }
    }

    #[test]
    fn region_filter_works() {
        let u = universe();
        let sg = u.service_ips(|t| t.region.code == "AP-SG");
        // AWS + Azure + Google + Linode Singapore regions × 4 honeypots.
        assert_eq!(sg.len(), 16);
    }

    #[test]
    fn structure_predicates() {
        assert!(not_ending_255(Ipv4Addr::new(10, 0, 0, 254)));
        assert!(!not_ending_255(Ipv4Addr::new(10, 0, 0, 255)));
        assert!(no_255_octet(Ipv4Addr::new(10, 254, 0, 1)));
        assert!(!no_255_octet(Ipv4Addr::new(10, 255, 0, 1)));
    }
}
