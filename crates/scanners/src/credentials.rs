//! Credential dictionaries: global brute-force lists plus the regionally
//! tailored variants the paper observes.
//!
//! §5.1: "the top attempted Telnet usernames for most geographic regions
//! are 'root', 'admin', and 'support'. However, honeypots within the AWS
//! Australia region … are most targeted with 'mother' and 'e8ehome', a
//! credential often used by the Mirai botnet targeting Huawei devices."

/// A (username, password) pair.
pub type Credential = (&'static str, &'static str);

/// The global Telnet dictionary (Mirai-style defaults).
pub const TELNET_GLOBAL: &[Credential] = &[
    ("root", "xc3511"),
    ("root", "vizxv"),
    ("admin", "admin"),
    ("root", "admin"),
    ("support", "support"),
    ("root", "root"),
    ("admin", "password"),
    ("root", "888888"),
    ("root", "default"),
    ("user", "user"),
];

/// The global SSH dictionary. Note the shape: usernames vary widely across
/// entries while the passwords concentrate on a few universal defaults —
/// the §4.1 measurement shows neighboring honeypots' *usernames* diverging
/// (55%) while their top passwords rarely do (4%).
pub const SSH_GLOBAL: &[Credential] = &[
    ("root", "123456"),
    ("admin", "123456"),
    ("root", "password"),
    ("ubuntu", "123456"),
    ("test", "password"),
    ("oracle", "123456"),
    ("postgres", "password"),
    ("pi", "123456"),
    ("git", "password"),
    ("user", "123456"),
];

/// Telnet credentials aimed at Huawei CPE gear, dominant in AWS Australia.
pub const TELNET_AP_AU: &[Credential] = &[
    ("mother", "fer"),
    ("e8ehome", "e8ehome"),
    ("root", "e8ehome"),
    ("e8telnet", "e8telnet"),
    ("mother", "mother"),
];

/// Telnet passwords seen concentrated in AP Singapore deployments.
pub const TELNET_AP_SG: &[Credential] = &[
    ("root", "5up"),
    ("root", "Zte521"),
    ("admin", "Zte521"),
    ("root", "zlxx."),
    ("admin", "OxhlwSG8"),
];

/// SSH credentials tailored to Korean/Japanese hosting defaults.
pub const SSH_AP_KR_JP: &[Credential] = &[
    ("root", "qwer1234"),
    ("root", "p@ssw0rd"),
    ("admin", "1111"),
    ("nas", "nas"),
    ("root", "tmdwn123"),
];

/// SSH credentials aimed at Chinese cloud images.
pub const SSH_CN: &[Credential] = &[
    ("root", "Huawei@123"),
    ("root", "admin@123"),
    ("root", "Ab123456"),
    ("root", "aliyun.com"),
];

/// Telnet passwords observed spiking in Canadian (Toronto) regions.
pub const TELNET_CA_TOR: &[Credential] = &[
    ("root", "hunt5759"),
    ("admin", "7ujMko0admin"),
    ("root", "klv123"),
];

/// The extended SSH list used by search-engine miners: §4.3 finds that
/// "attackers will attempt on average 3 times more unique SSH passwords on
/// leaked compared to non-leaked services" — miners go deeper than the
/// background brute-force population.
pub const SSH_MINER: &[Credential] = &[
    ("root", "123456"),
    ("root", "password"),
    ("admin", "admin"),
    ("root", "toor"),
    ("root", "1qaz2wsx"),
    ("root", "qwerty123"),
    ("root", "P@ssw0rd!"),
    ("root", "changeme"),
    ("root", "letmein"),
    ("root", "server"),
    ("deploy", "deploy"),
    ("www", "www"),
    ("ftpuser", "ftpuser"),
    ("jenkins", "jenkins"),
    ("hadoop", "hadoop"),
    ("es", "elastic"),
    ("minecraft", "minecraft"),
    ("steam", "steam"),
    ("vagrant", "vagrant"),
    ("centos", "centos"),
    ("debian", "debian"),
    ("admin", "admin123"),
    ("root", "root@123"),
    ("root", "abc123!"),
];

/// The named dictionaries, for data-driven configuration.
pub fn dictionary(name: &str) -> Option<&'static [Credential]> {
    Some(match name {
        "telnet-global" => TELNET_GLOBAL,
        "ssh-global" => SSH_GLOBAL,
        "ssh-miner" => SSH_MINER,
        "telnet-ap-au" => TELNET_AP_AU,
        "telnet-ap-sg" => TELNET_AP_SG,
        "ssh-ap-kr-jp" => SSH_AP_KR_JP,
        "ssh-cn" => SSH_CN,
        "telnet-ca-tor" => TELNET_CA_TOR,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_lists_have_the_paper_top3() {
        let users: Vec<&str> = TELNET_GLOBAL.iter().map(|(u, _)| *u).collect();
        assert!(users.contains(&"root"));
        assert!(users.contains(&"admin"));
        assert!(users.contains(&"support"));
    }

    #[test]
    fn au_list_has_huawei_credentials() {
        let users: Vec<&str> = TELNET_AP_AU.iter().map(|(u, _)| *u).collect();
        assert!(users.contains(&"mother"));
        assert!(users.contains(&"e8ehome"));
    }

    #[test]
    fn dictionary_lookup() {
        assert_eq!(dictionary("telnet-global"), Some(TELNET_GLOBAL));
        assert_eq!(dictionary("ssh-cn"), Some(SSH_CN));
        assert_eq!(dictionary("nope"), None);
    }

    #[test]
    fn no_empty_dictionaries() {
        for name in [
            "telnet-global",
            "ssh-global",
            "telnet-ap-au",
            "telnet-ap-sg",
            "ssh-ap-kr-jp",
            "ssh-cn",
            "telnet-ca-tor",
        ] {
            assert!(!dictionary(name).unwrap().is_empty(), "{name} empty");
        }
    }
}
