//! Scenario population assembly.
//!
//! Builds the full actor mix for a measurement year (2020 / 2021 / 2022).
//! Every knob here is a *behavioral* parameter — how many campaigns of each
//! archetype exist, how they sample targets, and whether they sweep the
//! telescope — chosen so that the measured pipeline outputs land near the
//! paper's published tables (see EXPERIMENTS.md for paper-vs-measured).
//! Nothing downstream reads these knobs; the tables are computed from the
//! captured traffic alone.
//!
//! Calibration anchors (paper values the knobs aim at):
//!
//! - Table 8 per-port telescope overlap: 23→91%, 2323→53%, 80→73%,
//!   8080→80%, 21→29%, 2222→9%, 25→19%, 7547→33%, 22→13%, 443→30%;
//! - Table 9: SSH *attackers* ≤7.5% overlap, Telnet attackers ~90%;
//! - §3.2: 24% of SSH/22 and 34% of Telnet/23 traffic does not attempt
//!   login; 75% of HTTP/80 payloads are not exploits;
//! - §6: ≥15% of port-80/8080 scanners speak a non-HTTP protocol (≈34% in
//!   2022);
//! - §3.3: the top-3 source ASes carry ≈37% of traffic (Zipf-ish AS pool).

use crate::bruteforce::{BruteforceProfile, GeoScope};
use crate::identity::{ActorIdentity, SrcAllocator};
use crate::miner::{MinerAgent, MinerAttack};
use crate::search_engine::{IndexerAgent, SearchIndex, SharedIndex};
use crate::targets::TargetUniverse;
use crate::unexpected;
use crate::webexploit::{self, WebExploitProfile};
use crate::zmap::ZmapProfile;
use cw_detection::ReputationDb;
use cw_honeypot::deployment::Deployment;
use cw_netsim::asn::{AsRegistry, Asn};
use cw_netsim::engine::{Agent, Engine};
use cw_netsim::flow::LoginService;
use cw_netsim::rng::SimRng;
use cw_netsim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Which July 1–7 window a scenario models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioYear {
    /// July 2020 (GreyNoise era; Honeytrap fleets not yet deployed).
    Y2020,
    /// July 2021 (the paper's primary window).
    Y2021,
    /// July 2022 (Honeytrap era; GreyNoise feed ended).
    Y2022,
}

impl ScenarioYear {
    /// Calendar year.
    pub fn year(&self) -> u16 {
        match self {
            ScenarioYear::Y2020 => 2020,
            ScenarioYear::Y2021 => 2021,
            ScenarioYear::Y2022 => 2022,
        }
    }
}

/// Population construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PopulationConfig {
    /// Scenario year.
    pub year: ScenarioYear,
    /// Master seed; every campaign derives a labeled sub-stream.
    pub seed: u64,
    /// Global scale multiplier on campaign counts and telescope samples.
    /// 1.0 ≈ 1.3M flows; tests use ~0.1.
    pub scale: f64,
}

impl PopulationConfig {
    /// The paper's primary window at full scale.
    pub fn paper_2021(seed: u64) -> Self {
        PopulationConfig {
            year: ScenarioYear::Y2021,
            seed,
            scale: 1.0,
        }
    }
}

/// The assembled population.
pub struct Population {
    /// Agents with their first wake times.
    pub agents: Vec<(Box<dyn Agent>, SimTime)>,
    /// Indices into `agents` of the actors that share mutable state (the
    /// search-engine indexers and the miners reading their indexes). A
    /// sharded run must keep this group on one shard; everyone else is
    /// independent.
    pub coupled: Vec<usize>,
    /// Censys's index.
    pub censys: SharedIndex,
    /// Shodan's index.
    pub shodan: SharedIndex,
    /// Censys scanner source addresses (for honeypot blocklists).
    pub censys_srcs: Vec<Ipv4Addr>,
    /// Shodan scanner source addresses.
    pub shodan_srcs: Vec<Ipv4Addr>,
    /// The GreyNoise-API-like reputation oracle for this population.
    pub reputation: ReputationDb,
    /// AS registry covering every source AS in the population.
    pub registry: AsRegistry,
}

impl Population {
    /// Register every agent with an engine (consumes the agent list).
    pub fn register(self, engine: &mut Engine) -> PopulationHandles {
        for (agent, start) in self.agents {
            engine.add_agent(agent, start);
        }
        PopulationHandles {
            censys: self.censys,
            shodan: self.shodan,
            censys_srcs: self.censys_srcs,
            shodan_srcs: self.shodan_srcs,
            reputation: self.reputation,
            registry: self.registry,
        }
    }

    /// Register only the agents shard `shard` (of `shards`) owns, keeping
    /// every agent's *global* id — the engine leaves gaps for the agents
    /// other shards own, so the wake queue's `(time, id)` order matches the
    /// unsharded run's relative order for the agents present.
    ///
    /// Ownership is [`shard_of`]`(seed, index, shards)`, except that the
    /// coupled group (see [`Population::coupled`]) follows its first
    /// member so index readers and writers stay in one engine.
    pub fn register_shard(
        self,
        engine: &mut Engine,
        seed: u64,
        shard: usize,
        shards: usize,
    ) -> PopulationHandles {
        let coupled: std::collections::BTreeSet<usize> = self.coupled.iter().copied().collect();
        let anchor = self.coupled.first().copied().unwrap_or(0);
        for (i, (agent, start)) in self.agents.into_iter().enumerate() {
            let owner_key = if coupled.contains(&i) { anchor } else { i };
            if shard_of(seed, owner_key as u32, shards) == shard {
                engine.add_agent_with_id(i as u32, agent, start);
            }
        }
        PopulationHandles {
            censys: self.censys,
            shodan: self.shodan,
            censys_srcs: self.censys_srcs,
            shodan_srcs: self.shodan_srcs,
            reputation: self.reputation,
            registry: self.registry,
        }
    }
}

/// Deterministic shard key of one actor: a pure function of
/// `(seed, actor id)` — it does not know how many shards exist. Reuses
/// the fleet's seed-splitting mix so nearby actor ids decorrelate.
pub fn shard_key(seed: u64, actor_id: u32) -> u64 {
    cw_netsim::rng::fork_seed(seed, actor_id as u64)
}

/// Which of `shards` shards owns this actor: its [`shard_key`] reduced
/// modulo the shard count.
pub fn shard_of(seed: u64, actor_id: u32, shards: usize) -> usize {
    (shard_key(seed, actor_id) % shards.max(1) as u64) as usize
}

/// What remains accessible after registration.
pub struct PopulationHandles {
    /// Censys's index.
    pub censys: SharedIndex,
    /// Shodan's index.
    pub shodan: SharedIndex,
    /// Censys scanner source addresses.
    pub censys_srcs: Vec<Ipv4Addr>,
    /// Shodan scanner source addresses.
    pub shodan_srcs: Vec<Ipv4Addr>,
    /// Reputation oracle.
    pub reputation: ReputationDb,
    /// AS registry.
    pub registry: AsRegistry,
}

/// A Zipf-weighted AS pool: the top entries dominate, giving the §3.3
/// "top 3 ASes carry 37% of traffic" long-tail shape.
struct AsnPool {
    entries: Vec<(Asn, String)>,
    weights: Vec<f64>,
}

impl AsnPool {
    fn new(entries: Vec<(Asn, String)>) -> Self {
        let weights = (0..entries.len())
            .map(|i| 1.0 / (i as f64 + 1.0))
            .collect();
        AsnPool { entries, weights }
    }

    fn pick(&self, rng: &mut SimRng) -> (Asn, String) {
        let i = rng.choose_weighted(&self.weights);
        self.entries[i].clone()
    }
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(1)
}

/// Build the population for a scenario.
pub fn build(config: &PopulationConfig, deployment: &Deployment) -> Population {
    let universe = TargetUniverse::from_deployment(deployment);
    // Each year is an independent draw from the same behavioral
    // distribution: 2021 (the paper's primary window) uses the seed
    // directly; other years derive their own stream. Temporal stability
    // (§3.4) then *emerges* from the shared behavior parameters rather than
    // from replaying identical randomness.
    let year_seed = match config.year {
        ScenarioYear::Y2021 => config.seed,
        ScenarioYear::Y2020 => config.seed ^ cw_netsim::rng::fnv1a(b"july-2020"),
        ScenarioYear::Y2022 => config.seed ^ cw_netsim::rng::fnv1a(b"july-2022"),
    };
    let root = SimRng::seed_from_u64(year_seed);
    let mut alloc = SrcAllocator::new();
    let mut registry = AsRegistry::well_known();
    registry.generate_filler(
        200_000,
        120,
        &["US", "CN", "RU", "DE", "BR", "IN", "NL", "VN", "KR", "FR"],
    );
    let mut reputation = ReputationDb::new();
    let mut agents: Vec<(Box<dyn Agent>, SimTime)> = Vec::new();
    let mut coupled: Vec<usize> = Vec::new();
    let s = config.scale;

    // --- AS pools ---------------------------------------------------------
    let general_pool = AsnPool::new(
        [
            (4134u32, "CN"),
            (174, "US"),
            (9009, "GB"),
            (14061, "US"),
            (16276, "FR"),
            (49505, "RU"),
            (4837, "CN"),
            (45090, "CN"),
            (212283, "RU"),
            (135377, "HK"),
        ]
        .iter()
        .map(|&(a, c)| (Asn(a), c.to_string()))
        .chain((0..30).map(|i| (Asn(200_000 + i), "US".to_string())))
        .collect(),
    );
    let attacker_pool = AsnPool::new(
        [
            (4134u32, "CN"),
            (56046, "CN"),
            (9808, "CN"),
            (53667, "US"),
            (212283, "RU"),
            (45090, "CN"),
            (135377, "HK"),
        ]
        .iter()
        .map(|&(a, c)| (Asn(a), c.to_string()))
        .chain((30..60).map(|i| (Asn(200_000 + i), "RU".to_string())))
        .collect(),
    );

    // --- Search engines ---------------------------------------------------
    let censys: SharedIndex = Rc::new(RefCell::new(SearchIndex::new()));
    let shodan: SharedIndex = Rc::new(RefCell::new(SearchIndex::new()));
    let censys_srcs = alloc.alloc(10);
    let shodan_srcs = alloc.alloc(10);
    for ip in censys_srcs.iter().chain(&shodan_srcs) {
        reputation.vet_benign(*ip);
    }
    {
        let mut rng = root.derive("indexers");
        let mut engine_targets = universe.all_service_ips();
        engine_targets.extend(universe.leak_block.iter());
        engine_targets.extend(universe.sample_telescope(&mut rng, scaled(2_000, s), |_| true));
        let ports = vec![80u16, 8080, 443, 22, 23, 21, 25, 445, 7547];
        let censys_agent = IndexerAgent::new(
            ActorIdentity::new("censys", Asn(398_324), "US", censys_srcs.clone()),
            rng.derive("censys"),
            censys.clone(),
            engine_targets.clone(),
            ports.clone(),
            SimDuration::from_secs(2 * 86_400),
            0.10, // Censys probes HTTP ports with TLS too (§6).
        );
        let shodan_agent = IndexerAgent::new(
            ActorIdentity::new("shodan", Asn(10_439), "US", shodan_srcs.clone()),
            rng.derive("shodan"),
            shodan.clone(),
            engine_targets,
            ports,
            SimDuration::from_secs(3 * 86_400),
            0.0,
        );
        coupled.push(agents.len());
        agents.push((Box::new(censys_agent), SimTime(600)));
        coupled.push(agents.len());
        agents.push((Box::new(shodan_agent), SimTime(1_800)));
    }

    // --- Uniform (ZMap-style) per-port populations -------------------------
    // (port, count, service_rate, p_skip_edu, p_tel, p_tel_edu_boost,
    //  tel_sample, payload_fraction) — p_tel anchors Table 8.
    type ZmapRow = (u16, usize, f64, f64, f64, f64, usize, f64);
    let zmap_rows: &[ZmapRow] = &[
        (23, 90, 0.25, 0.10, 0.88, 0.05, 800, 0.25),
        (2323, 60, 0.20, 0.10, 0.45, 0.35, 600, 0.25),
        (80, 220, 0.30, 0.10, 0.70, 0.12, 800, 0.95),
        (8080, 120, 0.25, 0.10, 0.77, 0.06, 600, 0.95),
        (21, 70, 0.20, 0.10, 0.24, 0.45, 500, 0.30),
        (2222, 70, 0.25, 0.10, 0.06, 0.60, 500, 0.40),
        (25, 60, 0.20, 0.10, 0.15, 0.50, 500, 0.30),
        (7547, 60, 0.20, 0.10, 0.28, 0.40, 500, 0.50),
        (22, 100, 0.30, 0.10, 0.10, 0.40, 600, 0.40),
        (443, 90, 0.25, 0.10, 0.26, 0.15, 500, 0.80),
    ];
    {
        let mut rng = root.derive("zmap");
        for &(port, count, rate, skip_edu, p_tel, boost, tel, payload) in zmap_rows {
            let profile = ZmapProfile {
                port,
                count: scaled(count, s),
                service_rate: rate,
                p_skip_edu: skip_edu,
                p_telescope: p_tel,
                p_telescope_edu_boost: boost,
                telescope_sample: scaled(tel, s),
                payload_fraction: payload,
            };
            // The steady backbone: a few full-coverage campaigns from the
            // pool's top ASes give every neighbor an equal baseline, so AS
            // divergence comes from the heavy tail, not from everything.
            // HTTP ports get a thicker steady layer (their payload mixes
            // stay similar across neighbors); login/odd ports a thinner one
            // (their AS mixes diverge more, per Table 2).
            let steady_div = 3;
            let steady = ZmapProfile {
                count: (profile.count / steady_div).max(3),
                service_rate: 1.0,
                ..profile
            };
            let mut steady_campaigns = crate::zmap::build(
                &steady,
                &universe,
                &mut rng,
                |n| alloc.alloc(n),
                &mut |r| {
                    let (a, c) = general_pool.pick(r);
                    (a, c)
                },
            );
            let mut campaigns = crate::zmap::build(
                &profile,
                &universe,
                &mut rng,
                |n| alloc.alloc(n),
                &mut |r| {
                    let (a, c) = general_pool.pick(r);
                    (a, c)
                },
            );
            campaigns.append(&mut steady_campaigns);
            // A slice of the research-scanner population is vetted benign
            // (academic scanners, security companies).
            for (i, c) in campaigns.into_iter().enumerate() {
                if i % 7 == 0 {
                    for ip in &c.identity().ips {
                        reputation.vet_benign(*ip);
                    }
                }
                let start = c.start_time();
                agents.push((Box::new(c), start));
            }
        }
    }

    // --- Botnets ------------------------------------------------------------
    {
        let mut rng = root.derive("botnets");
        // Mirai Telnet: does not avoid dark space. The bot population is
        // the bulk of unique Telnet sources (anchors Table 8's 91% on 23);
        // the bot count stays low relative to flow volume so each bot
        // individually covers cloud + EDU + telescope.
        let bot_ips = alloc.alloc(scaled(400, s));
        for ip in &bot_ips {
            reputation.observe_malicious(*ip);
        }
        let mirai = crate::mirai::build_telnet_botnet(
            &universe,
            &mut rng,
            bot_ips,
            Asn(4837),
            scaled(8_000, s),
        );
        let start = mirai.start_time();
        agents.push((Box::new(mirai), start));

        // Mirai-SSH + PonyNet /16-first latch (Figure 1a).
        let bot_ips = alloc.alloc(scaled(300, s));
        for ip in &bot_ips {
            reputation.observe_malicious(*ip);
        }
        let slash16 = crate::mirai::build_ssh_slash16_botnet(
            &universe,
            &mut rng,
            bot_ips,
            Asn(53_667),
            scaled(300, s),
            // Cloud touch is scaled too: at small scales the bot fleet must
            // not dominate the cloud-22 source population (Table 8's 13%).
            0.05 * s.min(1.0),
        );
        let start = slash16.start_time();
        agents.push((Box::new(slash16), start));

        // Tsunami: latches one Hurricane Electric honeypot (§4.1).
        let victim = deployment
            .topology
            .block("greynoise/he/US-OH")
            .expect("HE block exists")
            .nth(77);
        // Source count kept moderate so Telnet's telescope overlap is not
        // dragged down (Tsunami does not sweep dark space).
        let bot_ips = alloc.alloc(scaled(120, s));
        for ip in &bot_ips {
            reputation.observe_malicious(*ip);
        }
        let tsunami =
            crate::tsunami::build_tsunami(&mut rng, bot_ips, Asn(262_187), victim, scaled(2_000, s));
        let start = tsunami.start_time();
        agents.push((Box::new(tsunami), start));

        // Figure 1d: the 4-address port-17128 telescope latch.
        let victims: Vec<Ipv4Addr> = (0..4)
            .map(|i| universe.telescope.nth(220_000 + i * 3))
            .collect();
        let bot_ips = alloc.alloc(scaled(600, s));
        let latch = crate::tsunami::build_telescope_latch(
            &mut rng,
            bot_ips,
            Asn(212_283),
            victims,
            17_128,
            scaled(300, s),
        );
        let start = latch.start_time();
        agents.push((Box::new(latch), start));
    }

    // --- Structure-filtering scanners (Figures 1b, 1c) ----------------------
    {
        let mut rng = root.derive("structure");
        // Figure 1 needs telescope-wide density even at reduced scale:
        // floor the campaign counts and sample sizes. One row per
        // structure-biased port (§4.2): (port, count, floor_count, filter
        // leak-through, telescope sample, sample floor, service_rate).
        let structure_rows: &[(u16, usize, usize, f64, usize, usize, f64)] = &[
            // 445/SMB: paper measures 9x avoidance (some leak-through).
            (445, 40, 6, 0.02, 8_000, 2_500, 0.15),
            // 7574/Oracle: the sloppiest filter of all — 61x avoidance.
            (7_574, 14, 4, 0.016, 7_000, 2_500, 0.0),
            // 80/HTTP: partial dips (unbiased scanners share the port).
            (80, 30, 5, 0.05, 6_000, 2_000, 0.0),
        ];
        for &(port, count, floor, leak, sample, sample_floor, rate) in structure_rows {
            for i in 0..scaled(count, s).max(floor) {
                let src = alloc.alloc(1);
                let (asn, _c) = general_pool.pick(&mut rng);
                let intent: crate::campaign::IntentFn = match port {
                    445 => Box::new(|_, _, _| {
                        cw_netsim::flow::ConnectionIntent::Payload(
                            cw_protocols::smb::build_negotiate(),
                        )
                    }),
                    80 => Box::new(|_, _, _| {
                        cw_netsim::flow::ConnectionIntent::Payload(crate::exploits::benign_get(
                            "masscan/1.3",
                        ))
                    }),
                    _ => Box::new(|_, _, _| cw_netsim::flow::ConnectionIntent::ProbeOnly),
                };
                let c = crate::structure::build(
                    &universe,
                    &mut rng,
                    &format!("structure/{port}/{i}"),
                    src,
                    asn,
                    port,
                    crate::structure::StructureFilter::AnyOctet,
                    leak,
                    scaled(sample, s).max(sample_floor),
                    rate,
                    intent,
                );
                let start = c.start_time();
                agents.push((Box::new(c), start));
            }
        }
    }

    // --- Credential brute-forcers -------------------------------------------
    {
        let mut rng = root.derive("bruteforce");
        let rows: Vec<BruteforceProfile> = vec![
            BruteforceProfile {
                name: "bf/ssh-global".into(),
                count: scaled(200, s),
                service: LoginService::Ssh,
                ports: vec![22, 2222],
                dictionary: crate::credentials::SSH_GLOBAL,
                scope: GeoScope::Global,
                service_rate: 0.35,
                attempts_per_target: 4,
                p_telescope: 0.05, // Table 9: SSH attackers avoid telescopes.
                telescope_sample: scaled(300, s),
            },
            BruteforceProfile {
                name: "bf/telnet-global".into(),
                count: scaled(150, s),
                service: LoginService::Telnet,
                ports: vec![23, 2323],
                dictionary: crate::credentials::TELNET_GLOBAL,
                scope: GeoScope::Global,
                service_rate: 0.30,
                attempts_per_target: 4,
                p_telescope: 0.90, // Telnet attackers do not avoid darkness.
                telescope_sample: scaled(300, s),
            },
            BruteforceProfile {
                name: "bf/telnet-ap-au".into(),
                count: scaled(25, s),
                service: LoginService::Telnet,
                ports: vec![23],
                dictionary: crate::credentials::TELNET_AP_AU,
                scope: GeoScope::Regions(vec!["AP-AU".into()]),
                service_rate: 0.9,
                attempts_per_target: 5,
                p_telescope: 0.3,
                telescope_sample: scaled(100, s),
            },
            BruteforceProfile {
                name: "bf/telnet-ap-sg".into(),
                count: scaled(15, s),
                service: LoginService::Telnet,
                ports: vec![23],
                dictionary: crate::credentials::TELNET_AP_SG,
                scope: GeoScope::Regions(vec!["AP-SG".into()]),
                service_rate: 0.9,
                attempts_per_target: 4,
                p_telescope: 0.3,
                telescope_sample: scaled(100, s),
            },
            BruteforceProfile {
                name: "bf/ssh-ap-kr-jp".into(),
                count: scaled(15, s),
                service: LoginService::Ssh,
                ports: vec![22],
                dictionary: crate::credentials::SSH_AP_KR_JP,
                scope: GeoScope::Regions(vec!["AP-KR".into(), "AP-JP".into()]),
                service_rate: 0.9,
                attempts_per_target: 4,
                p_telescope: 0.05,
                telescope_sample: scaled(100, s),
            },
            BruteforceProfile {
                name: "bf/telnet-ca-tor".into(),
                count: scaled(10, s),
                service: LoginService::Telnet,
                ports: vec![23],
                dictionary: crate::credentials::TELNET_CA_TOR,
                scope: GeoScope::Regions(vec!["CA-TOR".into()]),
                service_rate: 0.9,
                attempts_per_target: 4,
                p_telescope: 0.2,
                telescope_sample: scaled(100, s),
            },
        ];
        for profile in &rows {
            let campaigns = crate::bruteforce::build(
                profile,
                &universe,
                &mut rng,
                |n| alloc.alloc(n),
                &mut |r| {
                    let (a, c) = attacker_pool.pick(r);
                    (a, c)
                },
            );
            for c in campaigns {
                for ip in &c.identity().ips {
                    reputation.observe_malicious(*ip);
                }
                let start = c.start_time();
                agents.push((Box::new(c), start));
            }
        }

        // The 2021-only SSH network split (§5.2): Chinanet heavy on EDU,
        // Cogent heavy on clouds. Gone by 2022.
        if config.year == ScenarioYear::Y2021 {
            for (name, scope, asn, country, count) in [
                (
                    "bf/chinanet-edu-ssh",
                    GeoScope::EduHeavy,
                    Asn(4134),
                    "CN",
                    30,
                ),
                (
                    "bf/cogent-cloud-ssh",
                    GeoScope::CloudOnly,
                    Asn(174),
                    "US",
                    30,
                ),
            ] {
                let profile = BruteforceProfile {
                    name: name.into(),
                    count: scaled(count, s),
                    service: LoginService::Ssh,
                    ports: vec![22],
                    dictionary: crate::credentials::SSH_GLOBAL,
                    scope,
                    service_rate: 0.8,
                    attempts_per_target: 2,
                    p_telescope: 0.03,
                    telescope_sample: scaled(100, s),
                };
                let campaigns = crate::bruteforce::build(
                    &profile,
                    &universe,
                    &mut rng,
                    |n| alloc.alloc(n),
                    &mut |r| {
                        let _ = r;
                        (asn, country.to_string())
                    },
                );
                for c in campaigns {
                    for ip in &c.identity().ips {
                        reputation.observe_malicious(*ip);
                    }
                    let start = c.start_time();
                    agents.push((Box::new(c), start));
                }
            }
        }
    }

    // --- Web exploit campaigns ----------------------------------------------
    {
        let mut rng = root.derive("webexploit");
        let mut profiles: Vec<WebExploitProfile> = vec![WebExploitProfile {
            name: "web/global".into(),
            count: scaled(75, s),
            ports: vec![80, 8080],
            corpus: webexploit::global_corpus(),
            scope: GeoScope::Global,
            service_rate: 0.25,
            attempts_per_target: 1,
            p_telescope: 0.92, // Table 9: malicious HTTP actors hit darkness.
            telescope_sample: scaled(300, s),
        }];
        // Web panels live on unassigned ports too (§6's premise); these
        // campaigns speak HTTP to 443/7547/25 with small per-campaign kits,
        // driving the "HTTP/All Ports" payload divergence of Table 2.
        profiles.push(WebExploitProfile {
            name: "web/odd-ports".into(),
            count: scaled(70, s),
            ports: vec![443, 7547, 25, 21],
            corpus: webexploit::global_corpus(),
            scope: GeoScope::Global,
            service_rate: 0.35,
            attempts_per_target: 2,
            p_telescope: 0.5,
            telescope_sample: scaled(150, s),
        });
        for code in ["AP-HK", "AP-ID", "AP-SG"] {
            profiles.push(WebExploitProfile {
                name: format!("web/{code}"),
                count: scaled(18, s),
                ports: vec![80, 8080],
                corpus: webexploit::ap_corpus(code),
                scope: GeoScope::Regions(vec![code.into()]),
                service_rate: 0.9,
                attempts_per_target: 2,
                p_telescope: 0.5,
                telescope_sample: scaled(100, s),
            });
        }
        for profile in &profiles {
            let campaigns = webexploit::build(
                profile,
                &universe,
                &mut rng,
                |n| alloc.alloc(n),
                &mut |r| {
                    let (a, c) = attacker_pool.pick(r);
                    (a, c)
                },
            );
            for c in campaigns {
                for ip in &c.identity().ips {
                    reputation.observe_malicious(*ip);
                }
                let start = c.start_time();
                agents.push((Box::new(c), start));
            }
        }
        // Single-AS geographic campaigns (§5.1).
        for c in webexploit::emirates_campaign(&universe, &mut rng, alloc.alloc(3)) {
            for ip in &c.identity().ips {
                reputation.observe_malicious(*ip);
            }
            let start = c.start_time();
            agents.push((Box::new(c), start));
        }
        for c in webexploit::satnet_campaign(&universe, &mut rng, alloc.alloc(3)) {
            let start = c.start_time();
            agents.push((Box::new(c), start));
        }
        for c in webexploit::frankfurt_adb_campaign(&universe, &mut rng, alloc.alloc(2)) {
            for ip in &c.identity().ips {
                reputation.observe_malicious(*ip);
            }
            let start = c.start_time();
            agents.push((Box::new(c), start));
        }
    }

    // --- Neighborhood anomalies (§4.1) ---------------------------------------
    {
        let rng = root.derive("anomalies");
        // Axtel floods one of the four Linode Singapore SSH honeypots.
        if let Some(block) = deployment.topology.block("greynoise/linode/AP-SG") {
            let victim = block.nth(2);
            let srcs = alloc.alloc(scaled(300, s));
            for ip in &srcs {
                reputation.observe_malicious(*ip);
            }
            let identity = ActorIdentity::new("axtel-flood", Asn(6503), "MX", srcs);
            // The flood latches one honeypot, but the botnet also scans
            // SSH broadly at a low rate (its bots appear at EDU too).
            let mut targets = vec![(victim, 22); scaled(1_500, s)];
            let mut axtel_rng = rng.derive("axtel-coverage");
            for _ in 0..2 {
                for ip in universe.sample_services(&mut axtel_rng, 0.6, |_| true) {
                    targets.push((ip, 22));
                }
            }
            let mut crng = rng.derive("axtel");
            let pacing =
                crate::campaign::Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
            let c = crate::campaign::Campaign::new(
                identity,
                crng,
                targets,
                pacing,
                crate::campaign::login_from_dictionary(
                    LoginService::Ssh,
                    crate::credentials::SSH_GLOBAL,
                ),
            );
            let start = c.start_time();
            agents.push((Box::new(c), start));
        }
        // One Azure Singapore honeypot draws 10× the HTTP POST login flood.
        if let Some(block) = deployment.topology.block("greynoise/azure/AP-SG") {
            let victim = block.nth(0); // a payload-port honeypot
            let srcs = alloc.alloc(scaled(40, s));
            for ip in &srcs {
                reputation.observe_malicious(*ip);
            }
            let identity = ActorIdentity::new("azure-sg-post-flood", Asn(45_090), "CN", srcs);
            let targets = vec![(victim, 80); scaled(500, s)];
            let mut crng = rng.derive("azure-flood");
            let pacing =
                crate::campaign::Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
            let c = crate::campaign::Campaign::new(
                identity,
                crng,
                targets,
                pacing,
                crate::campaign::fixed_payload(crate::exploits::api_user_login(
                    "admin", "admin123",
                )),
            );
            let start = c.start_time();
            agents.push((Box::new(c), start));
        }
        // 2022-only anomaly (Appendix C.2): router-software bruteforce that
        // hits Merit but avoids Stanford.
        if config.year == ScenarioYear::Y2022 {
            let merit_ips = universe.service_ips(|t| {
                t.provider == cw_honeypot::deployment::Provider::Merit
            });
            let srcs = alloc.alloc(scaled(60, s));
            for ip in &srcs {
                reputation.observe_malicious(*ip);
            }
            let identity = ActorIdentity::new("merit-router-bf", Asn(212_283), "RU", srcs);
            let mut targets: Vec<(Ipv4Addr, u16)> = Vec::new();
            for ip in merit_ips {
                for _ in 0..40 {
                    targets.push((ip, 80));
                }
            }
            let mut crng = rng.derive("merit-bf");
            crng.shuffle(&mut targets);
            let pacing =
                crate::campaign::Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
            let c = crate::campaign::Campaign::new(
                identity,
                crng,
                targets,
                pacing,
                crate::campaign::fixed_payload(crate::exploits::boaform_login("routerpw")),
            );
            let start = c.start_time();
            agents.push((Box::new(c), start));
        }
    }

    // --- Unexpected-protocol scanners (§6) ------------------------------------
    {
        let mut rng = root.derive("unexpected");
        let mut mix = unexpected::mix_2021();
        if config.year == ScenarioYear::Y2022 {
            // 2022 sees roughly double the unexpected share (Table 17).
            for m in &mut mix {
                m.count *= 3;
            }
        }
        for m in &mut mix {
            m.count = scaled(m.count, s);
        }
        let fleet = unexpected::build(
            &mix,
            &universe,
            &mut rng,
            |n| alloc.alloc(n),
            &mut |r| {
                let (a, c) = attacker_pool.pick(r);
                (a, c)
            },
        );
        for (ip, malicious) in &fleet.labels {
            if *malicious {
                reputation.observe_malicious(*ip);
            }
        }
        for c in fleet.campaigns {
            let start = c.start_time();
            agents.push((Box::new(c), start));
        }
    }

    // --- Search-engine miners (§4.3) -------------------------------------------
    {
        let mut rng = root.derive("miners");
        let specs: &[(&str, MinerAttack, bool, u64)] = &[
            // HTTP miners lean on Censys; SSH miners on Shodan (Table 3).
            ("miner/censys-http-0", MinerAttack::HttpExploits { attempts: 4 }, true, 0),
            ("miner/censys-http-1", MinerAttack::HttpExploits { attempts: 4 }, true, 0),
            ("miner/censys-http-2", MinerAttack::HttpExploits { attempts: 3 }, true, 0),
            ("miner/shodan-http-0", MinerAttack::HttpExploits { attempts: 4 }, false, 1),
            ("miner/shodan-http-1", MinerAttack::HttpExploits { attempts: 3 }, false, 1),
            ("miner/shodan-ssh-0", MinerAttack::SshBruteforce { attempts: 6 }, false, 1),
            ("miner/shodan-ssh-1", MinerAttack::SshBruteforce { attempts: 6 }, false, 1),
            ("miner/shodan-ssh-2", MinerAttack::SshBruteforce { attempts: 5 }, false, 1),
            ("miner/censys-ssh-0", MinerAttack::SshBruteforce { attempts: 5 }, true, 0),
            ("miner/censys-telnet-0", MinerAttack::TelnetBruteforce { attempts: 4 }, true, 0),
            ("miner/shodan-telnet-0", MinerAttack::TelnetBruteforce { attempts: 3 }, false, 1),
        ];
        for (name, attack, use_censys, _tag) in specs.iter().take(scaled(specs.len(), s)).cloned()
        {
            let srcs = alloc.alloc(4);
            for ip in &srcs {
                reputation.observe_malicious(*ip);
            }
            let (asn, country) = attacker_pool.pick(&mut rng);
            let index = if use_censys {
                censys.clone()
            } else {
                shodan.clone()
            };
            let miner = MinerAgent::new(
                ActorIdentity::new(name, asn, &country, srcs),
                rng.derive(name),
                index,
                attack,
                SimDuration::from_secs(6 * 3600),
                true,
            )
            // Miners chase only a slice of the listings they find; without
            // this, mined exploit volume would swamp the benign HTTP mix
            // (§3.2's 75% non-exploit on HTTP/80).
            .with_attack_probability(0.25);
            // Miners read the indexes the indexer agents write: co-shard
            // them with the indexers.
            coupled.push(agents.len());
            agents.push((Box::new(miner), SimTime(4 * 3600)));
        }
    }

    Population {
        agents,
        coupled,
        censys,
        shodan,
        censys_srcs,
        shodan_srcs,
        reputation,
        registry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_population_at_small_scale() {
        let d = Deployment::standard();
        let cfg = PopulationConfig {
            year: ScenarioYear::Y2021,
            seed: 7,
            scale: 0.05,
        };
        let p = build(&cfg, &d);
        assert!(p.agents.len() > 50, "only {} agents", p.agents.len());
        assert!(!p.censys_srcs.is_empty());
        let (benign, malicious) = p.reputation.counts();
        assert!(benign > 0);
        assert!(malicious > 0);
    }

    #[test]
    fn year_2021_has_network_split_campaigns_2022_does_not() {
        let d = Deployment::standard();
        let names = |year| -> Vec<String> {
            build(
                &PopulationConfig {
                    year,
                    seed: 1,
                    scale: 0.05,
                },
                &d,
            )
            .agents
            .iter()
            .map(|(a, _)| a.name().to_string())
            .collect()
        };
        let y21 = names(ScenarioYear::Y2021);
        let y22 = names(ScenarioYear::Y2022);
        // 2021-only: the Chinanet/Cogent SSH network split.
        assert!(y21.iter().any(|n| n.starts_with("bf/chinanet-edu-ssh")));
        assert!(!y22.iter().any(|n| n.starts_with("bf/chinanet-edu-ssh")));
        // 2022-only: the Merit router-bruteforce anomaly and a larger
        // unexpected-protocol fleet.
        assert!(y22.iter().any(|n| n == "merit-router-bf"));
        assert!(!y21.iter().any(|n| n == "merit-router-bf"));
        let count_unexpected =
            |v: &[String]| v.iter().filter(|n| n.starts_with("unexpected/")).count();
        assert!(count_unexpected(&y22) >= count_unexpected(&y21));
    }

    #[test]
    fn determinism_same_seed_same_population() {
        let d = Deployment::standard();
        let cfg = PopulationConfig {
            year: ScenarioYear::Y2021,
            seed: 42,
            scale: 0.05,
        };
        let a = build(&cfg, &d).agents.len();
        let b = build(&cfg, &d).agents.len();
        assert_eq!(a, b);
    }
}
