//! Address-structure-filtering scanners (§4.2, Figures 1b–c).
//!
//! "Scanners are 3.5 times less likely to target an IP address structure
//! that is likely reserved for broadcasting purposes (i.e., ending in a
//! '.255')" and, for some campaigns, any address with a 255 octet at all —
//! "incorrect filtering of broadcast addresses, in which the position of
//! the '255' octet is not checked". The same bias appears in the cloud on
//! port 445 (1.2–3.5× less likely to target a trailing .255).

use crate::campaign::{Campaign, IntentFn, Pacing};
use crate::identity::ActorIdentity;
use crate::targets::TargetUniverse;
use cw_netsim::asn::Asn;
use cw_netsim::ip::IpExt;
use cw_netsim::rng::SimRng;
use cw_netsim::time::SimDuration;
use std::net::Ipv4Addr;

/// Which broadcast-shape filter a campaign applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureFilter {
    /// Skip addresses ending in `.255` (correct-ish broadcast filtering).
    TrailingOnly,
    /// Skip addresses with a 255 in *any* octet (the sloppy variant).
    AnyOctet,
}

impl StructureFilter {
    /// Does the filter admit this address?
    pub fn admits(&self, ip: Ipv4Addr) -> bool {
        match self {
            StructureFilter::TrailingOnly => !ip.ends_in_255(),
            StructureFilter::AnyOctet => !ip.has_255_octet(),
        }
    }
}

/// Build a structure-filtering campaign on one port: a telescope sweep plus
/// a service sweep, where filtered addresses are kept only with
/// `leak_through` probability (so avoidance is a strong bias, not an
/// absolute rule — matching the 3.5×/61×/9× ratios rather than zeros).
#[allow(clippy::too_many_arguments)]
pub fn build(
    universe: &TargetUniverse,
    rng: &mut SimRng,
    name: &str,
    src: Vec<Ipv4Addr>,
    asn: Asn,
    port: u16,
    filter: StructureFilter,
    leak_through: f64,
    telescope_sample: usize,
    service_rate: f64,
    intent: IntentFn,
) -> Campaign {
    let mut crng = rng.derive(name);
    let mut ips: Vec<Ipv4Addr> = Vec::new();
    // Telescope sweep with the leaky structure filter.
    {
        let mut count = 0usize;
        let size = universe.telescope.size();
        while count < telescope_sample {
            let ip = universe.telescope.nth(crng.below(size));
            if filter.admits(ip) || crng.chance(leak_through) {
                ips.push(ip);
                count += 1;
            }
        }
    }
    // Service sweep with the same bias.
    for ip in universe.sample_services(&mut crng, service_rate, |_| true) {
        if filter.admits(ip) || crng.chance(leak_through) {
            ips.push(ip);
        }
    }
    crng.shuffle(&mut ips);
    let targets: Vec<(Ipv4Addr, u16)> = ips.into_iter().map(|ip| (ip, port)).collect();
    let identity = ActorIdentity::new(name, asn, "US", src);
    let pacing = Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
    Campaign::new(identity, crng, targets, pacing, intent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::probe_only;
    use cw_honeypot::deployment::Deployment;

    #[test]
    fn filters_admit_correctly() {
        let trailing = Ipv4Addr::new(10, 1, 2, 255);
        let middle = Ipv4Addr::new(10, 255, 2, 3);
        let clean = Ipv4Addr::new(10, 1, 2, 3);
        assert!(!StructureFilter::TrailingOnly.admits(trailing));
        assert!(StructureFilter::TrailingOnly.admits(middle));
        assert!(!StructureFilter::AnyOctet.admits(trailing));
        assert!(!StructureFilter::AnyOctet.admits(middle));
        assert!(StructureFilter::AnyOctet.admits(clean));
    }

    #[test]
    fn zero_leak_excludes_filtered_shapes() {
        let u = TargetUniverse::from_deployment(&Deployment::standard());
        let mut rng = SimRng::seed_from_u64(1);
        let c = build(
            &u,
            &mut rng,
            "s445",
            vec![Ipv4Addr::new(100, 7, 0, 1)],
            Asn(65_100),
            445,
            StructureFilter::AnyOctet,
            0.0,
            3_000,
            0.0,
            probe_only(),
        );
        assert_eq!(c.remaining(), 3_000);
    }

    #[test]
    fn builds_service_targets_too() {
        let u = TargetUniverse::from_deployment(&Deployment::standard());
        let mut rng = SimRng::seed_from_u64(2);
        let c = build(
            &u,
            &mut rng,
            "s445b",
            vec![Ipv4Addr::new(100, 7, 0, 2)],
            Asn(65_101),
            445,
            StructureFilter::TrailingOnly,
            0.3,
            100,
            1.0,
            probe_only(),
        );
        // 100 telescope + most of the service fleet.
        assert!(c.remaining() > 100 + 500);
    }
}
