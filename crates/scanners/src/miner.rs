//! Search-engine miners: attackers who query Censys/Shodan and burst
//! traffic at listed services.
//!
//! §4.3: "attackers are more likely to increase the number of 'spikes' of
//! traffic towards leaked services … scanners and attackers are more likely
//! to only briefly scan a leaked service, likely after it has been found by
//! the attacker on a search engine" and "attackers will attempt on average
//! 3 times more unique SSH passwords on leaked compared to non-leaked
//! services". A [`MinerAgent`] polls one engine's index for services on its
//! protocol and, on discovery, fires a short burst of protocol-appropriate
//! attacks.

use crate::identity::ActorIdentity;
use crate::search_engine::SharedIndex;
use cw_netsim::engine::{Agent, Network};
use cw_netsim::flow::{ConnectionIntent, FlowSpec, LoginService};
use cw_netsim::rng::SimRng;
use cw_netsim::time::{SimDuration, SimTime};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// What a miner sends at a discovered service.
#[derive(Debug, Clone)]
pub enum MinerAttack {
    /// SSH credential burst (unique passwords per burst).
    SshBruteforce {
        /// Number of distinct credentials per burst.
        attempts: usize,
    },
    /// Telnet credential burst.
    TelnetBruteforce {
        /// Number of distinct credentials per burst.
        attempts: usize,
    },
    /// HTTP exploit burst from the corpus.
    HttpExploits {
        /// Number of requests per burst.
        attempts: usize,
    },
}

impl MinerAttack {
    /// The port this attack mines for.
    pub fn port(&self) -> u16 {
        match self {
            MinerAttack::SshBruteforce { .. } => 22,
            MinerAttack::TelnetBruteforce { .. } => 23,
            MinerAttack::HttpExploits { .. } => 80,
        }
    }
}

/// A miner polling one search index.
pub struct MinerAgent {
    identity: ActorIdentity,
    rng: SimRng,
    index: SharedIndex,
    attack: MinerAttack,
    /// Seconds between index polls.
    poll_interval: SimDuration,
    /// Include stale (historical) index entries — most miners do not check
    /// freshness, which is why previously-leaked services keep drawing fire.
    use_historical: bool,
    attacked: BTreeSet<(Ipv4Addr, u16)>,
    /// Only attack targets in this allowlist, if set (keeps scenario miners
    /// focused on the leak fleet).
    scope: Option<BTreeSet<Ipv4Addr>>,
    /// Probability of re-bursting an already-attacked listing on a later
    /// poll — this is what makes leaked services accumulate repeated
    /// "spikes" over the week (§4.3).
    repeat_probability: f64,
    /// Probability of attacking a newly discovered listing at all (miners
    /// do not chase every search result; skipped listings are never
    /// revisited).
    attack_probability: f64,
    /// Listings the miner decided never to attack.
    skipped: BTreeSet<(Ipv4Addr, u16)>,
}

impl MinerAgent {
    /// Create a miner.
    pub fn new(
        identity: ActorIdentity,
        rng: SimRng,
        index: SharedIndex,
        attack: MinerAttack,
        poll_interval: SimDuration,
        use_historical: bool,
    ) -> Self {
        MinerAgent {
            identity,
            rng,
            index,
            attack,
            poll_interval,
            use_historical,
            attacked: BTreeSet::new(),
            scope: None,
            repeat_probability: 0.0,
            attack_probability: 1.0,
            skipped: BTreeSet::new(),
        }
    }

    /// Restrict the miner to a set of target addresses (builder style).
    pub fn with_scope(mut self, scope: impl IntoIterator<Item = Ipv4Addr>) -> Self {
        self.scope = Some(scope.into_iter().collect());
        self
    }

    /// Set the per-poll re-burst probability (builder style).
    pub fn with_repeat_probability(mut self, p: f64) -> Self {
        self.repeat_probability = p;
        self
    }

    /// Set the probability of attacking a fresh listing (builder style).
    pub fn with_attack_probability(mut self, p: f64) -> Self {
        self.attack_probability = p;
        self
    }

    fn burst(&mut self, net: &mut dyn Network, ip: Ipv4Addr, port: u16) {
        let (attempts, intents): (usize, Vec<ConnectionIntent>) = match &self.attack {
            MinerAttack::SshBruteforce { attempts } => {
                // Miners dig into the extended dictionary, sampling a fresh
                // random subset per burst so repeated spikes keep adding
                // unique passwords (§4.3).
                let creds = crate::credentials::SSH_MINER;
                let n = (*attempts).min(creds.len());
                let picks = sample_distinct(&mut self.rng, creds.len(), n);
                (
                    n,
                    picks
                        .into_iter()
                        .map(|i| ConnectionIntent::Login {
                            service: LoginService::Ssh,
                            username: creds[i].0.to_string(),
                            password: creds[i].1.to_string(),
                        })
                        .collect(),
                )
            }
            MinerAttack::TelnetBruteforce { attempts } => {
                let creds = crate::credentials::TELNET_GLOBAL;
                let n = (*attempts).min(creds.len());
                let picks = sample_distinct(&mut self.rng, creds.len(), n);
                (
                    n,
                    picks
                        .into_iter()
                        .map(|i| ConnectionIntent::Login {
                            service: LoginService::Telnet,
                            username: creds[i].0.to_string(),
                            password: creds[i].1.to_string(),
                        })
                        .collect(),
                )
            }
            MinerAttack::HttpExploits { attempts } => {
                let corpus = [
                    crate::exploits::log4shell("198.51.100.9:1389"),
                    crate::exploits::boaform_login("aerocontrol"),
                    crate::exploits::thinkphp_rce(),
                    crate::exploits::api_user_login("admin", "admin123"),
                ];
                (
                    *attempts,
                    (0..*attempts)
                        .map(|_| {
                            ConnectionIntent::Payload(
                                self.rng.choose(&corpus).clone(),
                            )
                        })
                        .collect(),
                )
            }
        };
        debug_assert_eq!(attempts, intents.len());
        for intent in intents {
            let src = *self.rng.choose(&self.identity.ips);
            net.send(FlowSpec {
                src,
                src_asn: self.identity.asn,
                dst: ip,
                dst_port: port,
                intent,
            });
        }
    }
}

/// Sample `n` distinct indices from `0..len` (partial Fisher–Yates).
fn sample_distinct(rng: &mut SimRng, len: usize, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..len).collect();
    rng.shuffle(&mut idx);
    idx.truncate(n);
    idx
}

impl Agent for MinerAgent {
    fn name(&self) -> &str {
        &self.identity.name
    }

    fn on_wake(&mut self, now: SimTime, net: &mut dyn Network) -> Option<SimTime> {
        let port = self.attack.port();
        let discovered: Vec<Ipv4Addr> = {
            let idx = self.index.borrow();
            idx.entries_on_port(port)
                .into_iter()
                .filter(|e| self.use_historical || !e.historical)
                .map(|e| e.ip)
                .filter(|ip| {
                    self.scope
                        .as_ref()
                        .map(|s| s.contains(ip))
                        .unwrap_or(true)
                })
                .collect()
        };
        for ip in discovered {
            let fresh = !self.attacked.contains(&(ip, port));
            if fresh {
                self.attacked.insert((ip, port));
                if self.rng.chance(self.attack_probability) {
                    self.burst(net, ip, port);
                } else {
                    // Passed over for good.
                    self.skipped.insert((ip, port));
                }
            } else if !self.skipped.contains(&(ip, port))
                && self.rng.chance(self.repeat_probability)
            {
                self.burst(net, ip, port);
            }
        }
        // Poll forever (the engine's horizon ends the run).
        Some(now + self.poll_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search_engine::SearchIndex;
    use cw_honeypot::framework::{HoneypotListener, PortPolicy};
    use cw_netsim::asn::Asn;
    use cw_netsim::engine::Engine;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn identity() -> ActorIdentity {
        ActorIdentity::new("miner", Asn(4134), "CN", vec![Ipv4Addr::new(100, 1, 0, 1)])
    }

    #[test]
    fn miner_bursts_at_indexed_services_only() {
        let listed = Ipv4Addr::new(10, 0, 0, 1);
        let unlisted = Ipv4Addr::new(10, 0, 0, 2);
        let mut engine = Engine::new();
        let hp = HoneypotListener::new(
            "svc",
            [listed, unlisted],
            PortPolicy::Interactive(LoginService::Ssh),
        );
        let cap = hp.capture();
        engine.add_listener(Rc::new(RefCell::new(hp)));

        let index = Rc::new(RefCell::new(SearchIndex::new()));
        index
            .borrow_mut()
            .publish_live(listed, 22, "SSH", SimTime(0));

        let miner = MinerAgent::new(
            identity(),
            SimRng::seed_from_u64(1),
            index,
            MinerAttack::SshBruteforce { attempts: 5 },
            SimDuration::HOUR,
            false,
        );
        engine.add_agent(Box::new(miner), SimTime(10));
        engine.run(SimTime(SimDuration::DAY.secs()));

        let cap = cap.borrow();
        assert_eq!(cap.events_for_ip(listed).count(), 5);
        assert_eq!(cap.events_for_ip(unlisted).count(), 0);
        // All events in one burst instant: a spike.
        let times: BTreeSet<_> = cap.events_for_ip(listed).map(|e| e.time).collect();
        assert_eq!(times.len(), 1);
    }

    #[test]
    fn historical_entries_respected_per_config() {
        let prev = Ipv4Addr::new(10, 0, 0, 3);
        let index = Rc::new(RefCell::new(SearchIndex::new()));
        index.borrow_mut().seed_historical(prev, 80, "HTTP");

        for (use_hist, expect) in [(false, 0usize), (true, 3usize)] {
            let mut engine = Engine::new();
            let hp = HoneypotListener::new("svc", [prev], PortPolicy::FirstPayload);
            let cap = hp.capture();
            engine.add_listener(Rc::new(RefCell::new(hp)));
            let miner = MinerAgent::new(
                identity(),
                SimRng::seed_from_u64(2),
                index.clone(),
                MinerAttack::HttpExploits { attempts: 3 },
                SimDuration::HOUR,
                use_hist,
            );
            engine.add_agent(Box::new(miner), SimTime(0));
            engine.run(SimTime(7200));
            assert_eq!(cap.borrow().len(), expect, "use_historical={use_hist}");
        }
    }

    #[test]
    fn scope_restricts_targets() {
        let inside = Ipv4Addr::new(10, 0, 0, 4);
        let outside = Ipv4Addr::new(10, 0, 0, 5);
        let index = Rc::new(RefCell::new(SearchIndex::new()));
        index.borrow_mut().publish_live(inside, 22, "SSH", SimTime(0));
        index
            .borrow_mut()
            .publish_live(outside, 22, "SSH", SimTime(0));

        let mut engine = Engine::new();
        let hp = HoneypotListener::new(
            "svc",
            [inside, outside],
            PortPolicy::Interactive(LoginService::Ssh),
        );
        let cap = hp.capture();
        engine.add_listener(Rc::new(RefCell::new(hp)));
        let miner = MinerAgent::new(
            identity(),
            SimRng::seed_from_u64(3),
            index,
            MinerAttack::SshBruteforce { attempts: 2 },
            SimDuration::HOUR,
            true,
        )
        .with_scope([inside]);
        engine.add_agent(Box::new(miner), SimTime(0));
        engine.run(SimTime(7200));
        let cap = cap.borrow();
        assert!(cap.events_for_ip(inside).count() > 0);
        assert_eq!(cap.events_for_ip(outside).count(), 0);
    }
}
