//! Mirai-style botnets.
//!
//! Two behaviors from the paper:
//!
//! 1. The classic Telnet-credential botnet, which "historically has not
//!    avoided unused IP address space" (§5.2) — it sweeps clouds, education
//!    networks *and* the telescope on 23/2323, attempting dictionary logins
//!    where a service answers.
//! 2. The §4.2 port-22 structure preference: "the Mirai botnet and scanners
//!    from the bulletproof hosting provider PonyNet (ASN 53667) are one
//!    order of magnitude more likely to choose the first address of a /16
//!    (e.g., x.B.0.0) as its first scanning target" — Figure 1a's spikes.

use crate::campaign::{Campaign, Pacing};
use crate::identity::ActorIdentity;
use crate::targets::TargetUniverse;
use cw_netsim::asn::Asn;
use cw_netsim::flow::{ConnectionIntent, LoginService};
use cw_netsim::ip::IpExt;
use cw_netsim::rng::SimRng;
use cw_netsim::time::SimDuration;
use std::net::Ipv4Addr;

/// Build the Telnet botnet: one campaign with `bot_count` source IPs that
/// sweeps every service network and the telescope on ports 23/2323.
pub fn build_telnet_botnet(
    universe: &TargetUniverse,
    rng: &mut SimRng,
    bot_ips: Vec<Ipv4Addr>,
    asn: Asn,
    telescope_sample: usize,
) -> Campaign {
    let mut crng = rng.derive("mirai/telnet");
    // Every bot scans broadly: services are hit several times (different
    // bots), so an individual bot IP shows up at clouds, EDUs *and* the
    // telescope — the §5.2 "botnets do not avoid unused space" signature.
    let mut ips = Vec::new();
    for _ in 0..4 {
        ips.extend(universe.all_service_ips());
    }
    ips.extend(universe.sample_telescope(&mut crng, telescope_sample, |_| true));
    crng.shuffle(&mut ips);
    let mut targets = Vec::with_capacity(ips.len() * 2);
    for ip in ips {
        targets.push((ip, 23));
        if crng.chance(0.4) {
            targets.push((ip, 2323));
        }
    }
    let identity = ActorIdentity::new("mirai/telnet", asn, "CN", bot_ips);
    let pacing = Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
    Campaign::new(
        identity,
        crng,
        targets,
        pacing,
        Box::new(|rng, _, _| {
            let (u, p) = *rng.choose(crate::credentials::TELNET_GLOBAL);
            ConnectionIntent::Login {
                service: LoginService::Telnet,
                username: u.to_string(),
                password: p.to_string(),
            }
        }),
    )
}

/// Build the port-22 /16-first botnet (Mirai SSH variant + PonyNet): for
/// every /16 inside the telescope, the first address is targeted with high
/// probability while other addresses are sampled an order of magnitude more
/// sparsely. Also probes cloud SSH lightly.
pub fn build_ssh_slash16_botnet(
    universe: &TargetUniverse,
    rng: &mut SimRng,
    bot_ips: Vec<Ipv4Addr>,
    asn: Asn,
    per_slash16_sample: usize,
    cloud_rate: f64,
) -> Campaign {
    let mut crng = rng.derive("mirai/ssh-slash16");
    let mut targets: Vec<(Ipv4Addr, u16)> = Vec::new();

    // Enumerate the /16s covered by the telescope block: its CIDRs are /16
    // or coarser-than-/16 aligned, so stepping 65,536 addresses at a time
    // lands on each /16 base (the final /18 contributes its /16's base).
    let mut slash16s: Vec<Ipv4Addr> = Vec::new();
    let mut i = 0u64;
    while i < universe.telescope.size() {
        let base = universe.telescope.nth(i).slash16();
        if slash16s.last() != Some(&base) {
            slash16s.push(base);
        }
        i += 65_536;
    }

    for base in slash16s {
        // The first address, with high probability (the latch).
        if crng.chance(0.9) {
            targets.push((base, 22));
        }
        // Sparse sample of the rest of the /16.
        for _ in 0..per_slash16_sample {
            let off = crng.range(1, 65_536);
            let ip = Ipv4Addr::from(u32::from(base) + off as u32);
            if universe.telescope.contains(ip) {
                targets.push((ip, 22));
            }
        }
    }
    // Light cloud SSH probing.
    targets.extend(
        universe
            .sample_services(&mut crng, cloud_rate, |_| true)
            .into_iter()
            .map(|ip| (ip, 22)),
    );
    crng.shuffle(&mut targets);

    let identity = ActorIdentity::new("mirai/ssh-slash16", asn, "US", bot_ips);
    let pacing = Pacing::spread(&mut crng, targets.len(), SimDuration::WEEK);
    Campaign::new(
        identity,
        crng,
        targets,
        pacing,
        Box::new(|_, _, _| {
            ConnectionIntent::Payload(cw_protocols::ssh::build_banner("dropbear_2019.78"))
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_honeypot::deployment::Deployment;

    fn universe() -> TargetUniverse {
        TargetUniverse::from_deployment(&Deployment::standard())
    }

    #[test]
    fn telnet_botnet_covers_services_and_telescope() {
        let u = universe();
        let mut rng = SimRng::seed_from_u64(1);
        let bots: Vec<Ipv4Addr> = (0..50).map(|i| Ipv4Addr::new(100, 9, 0, i)).collect();
        let c = build_telnet_botnet(&u, &mut rng, bots, Asn(4134), 500);
        // At least all service IPs on port 23 plus the telescope sample.
        assert!(c.remaining() >= u.all_service_ips().len() + 500);
    }

    #[test]
    fn slash16_botnet_prefers_first_addresses() {
        let u = universe();
        let mut rng = SimRng::seed_from_u64(2);
        let bots = vec![Ipv4Addr::new(100, 9, 1, 1)];
        let c = build_ssh_slash16_botnet(&u, &mut rng, bots, Asn(53_667), 20, 0.05);
        assert!(c.remaining() > 0);
    }

    #[test]
    fn builders_are_deterministic() {
        let u = universe();
        let bots = vec![Ipv4Addr::new(100, 9, 1, 1)];
        let mut r1 = SimRng::seed_from_u64(3);
        let mut r2 = SimRng::seed_from_u64(3);
        let a = build_telnet_botnet(&u, &mut r1, bots.clone(), Asn(4134), 100);
        let b = build_telnet_botnet(&u, &mut r2, bots, Asn(4134), 100);
        assert_eq!(a.remaining(), b.remaining());
    }
}
