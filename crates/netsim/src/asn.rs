//! Autonomous systems: identities, categories, and a registry.
//!
//! The paper identifies scanning actors "by their autonomous system, as
//! opposed to IP address, to account for scanning campaigns that rely on
//! multiple source IP addresses" (§3.3). The registry is pre-seeded with
//! every AS the paper names, plus synthetic filler ASes generated per
//! scenario for the long tail.

use std::collections::BTreeMap;
use std::fmt;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Broad operator category of an AS; scanner archetypes are drawn from
/// category-appropriate source ASes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AsCategory {
    /// Public cloud provider.
    Cloud,
    /// University / research network.
    Education,
    /// Commercial ISP / telecom.
    Isp,
    /// Hosting / colocation.
    Hosting,
    /// Bulletproof-style hosting favored by malicious actors.
    Bulletproof,
    /// Security vendor / scanning company (Censys, Shodan, GreyNoise, ...).
    SecurityVendor,
    /// Mobile carrier.
    Mobile,
}

/// Static information about an autonomous system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Human-readable operator name.
    pub name: String,
    /// ISO country code of the registered operator.
    pub country: String,
    /// Operator category.
    pub category: AsCategory,
}

/// Registry of known autonomous systems.
#[derive(Debug, Clone, Default)]
pub struct AsRegistry {
    map: BTreeMap<Asn, AsInfo>,
}

impl AsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-seeded with every AS the paper names.
    pub fn well_known() -> Self {
        let mut r = Self::new();
        let entries: &[(u32, &str, &str, AsCategory)] = &[
            // ASes named in the paper's findings.
            (4134, "Chinanet", "CN", AsCategory::Isp),
            (56046, "China Mobile", "CN", AsCategory::Mobile),
            (9808, "China Mobile Guangdong", "CN", AsCategory::Mobile),
            (174, "Cogent Communications", "US", AsCategory::Isp),
            (53667, "PonyNet (FranTech)", "US", AsCategory::Bulletproof),
            (6503, "Axtel", "MX", AsCategory::Isp),
            (5384, "Emirates Internet", "AE", AsCategory::Isp),
            (14522, "SATNET", "EC", AsCategory::Isp),
            (198605, "Avast Software", "CZ", AsCategory::SecurityVendor),
            (9009, "M247", "GB", AsCategory::Hosting),
            (60068, "CDN77", "GB", AsCategory::Hosting),
            // Frequent scanning origins used by the simulated population.
            (4837, "China Unicom", "CN", AsCategory::Isp),
            (14061, "DigitalOcean", "US", AsCategory::Hosting),
            (16276, "OVH", "FR", AsCategory::Hosting),
            (49505, "Selectel", "RU", AsCategory::Hosting),
            (45090, "Tencent Cloud", "CN", AsCategory::Cloud),
            (135377, "UCloud HK", "HK", AsCategory::Cloud),
            (212283, "ROUTERHOSTING", "RU", AsCategory::Bulletproof),
            (24961, "myLoc managed IT", "DE", AsCategory::Hosting),
            (262187, "Tsunami botnet hosting", "BR", AsCategory::Bulletproof),
            // Instruments.
            (398324, "Censys", "US", AsCategory::SecurityVendor),
            (10439, "Shodan (CariNet)", "US", AsCategory::SecurityVendor),
            (396982, "GreyNoise", "US", AsCategory::SecurityVendor),
            // Host networks for the vantage points.
            (16509, "Amazon AWS", "US", AsCategory::Cloud),
            (15169, "Google Cloud", "US", AsCategory::Cloud),
            (8075, "Microsoft Azure", "US", AsCategory::Cloud),
            (63949, "Linode", "US", AsCategory::Cloud),
            (6939, "Hurricane Electric", "US", AsCategory::Hosting),
            (32, "Stanford University", "US", AsCategory::Education),
            (237, "Merit Network", "US", AsCategory::Education),
        ];
        for &(asn, name, country, category) in entries {
            r.register(AsInfo {
                asn: Asn(asn),
                name: name.to_string(),
                country: country.to_string(),
                category,
            });
        }
        r
    }

    /// Add (or replace) an AS entry.
    pub fn register(&mut self, info: AsInfo) {
        self.map.insert(info.asn, info);
    }

    /// Look up an AS.
    pub fn get(&self, asn: Asn) -> Option<&AsInfo> {
        self.map.get(&asn)
    }

    /// Name for an AS, falling back to `ASxxxx` for unregistered numbers.
    pub fn name_of(&self, asn: Asn) -> String {
        self.get(asn)
            .map(|i| i.name.clone())
            .unwrap_or_else(|| asn.to_string())
    }

    /// Country for an AS, or `"??"`.
    pub fn country_of(&self, asn: Asn) -> String {
        self.get(asn)
            .map(|i| i.country.clone())
            .unwrap_or_else(|| "??".to_string())
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no AS is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate all entries in ASN order.
    pub fn iter(&self) -> impl Iterator<Item = &AsInfo> {
        self.map.values()
    }

    /// All ASes in a category, in ASN order.
    pub fn in_category(&self, cat: AsCategory) -> Vec<&AsInfo> {
        self.map.values().filter(|i| i.category == cat).collect()
    }

    /// Generate `count` synthetic filler ASes (the long tail of scanning
    /// origins) with deterministic numbering starting at `first_asn`.
    pub fn generate_filler(&mut self, first_asn: u32, count: usize, countries: &[&str]) {
        for i in 0..count {
            let asn = Asn(first_asn + i as u32);
            let country = countries[i % countries.len()].to_string();
            self.register(AsInfo {
                asn,
                name: format!("SyntheticNet-{}", asn.0),
                country,
                category: AsCategory::Isp,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_contains_paper_actors() {
        let r = AsRegistry::well_known();
        assert_eq!(r.name_of(Asn(4134)), "Chinanet");
        assert_eq!(r.country_of(Asn(4134)), "CN");
        assert_eq!(r.get(Asn(53667)).unwrap().category, AsCategory::Bulletproof);
        assert_eq!(r.name_of(Asn(398324)), "Censys");
        assert!(r.len() >= 20);
    }

    #[test]
    fn unknown_as_fallback() {
        let r = AsRegistry::well_known();
        assert_eq!(r.name_of(Asn(999_999)), "AS999999");
        assert_eq!(r.country_of(Asn(999_999)), "??");
    }

    #[test]
    fn filler_generation() {
        let mut r = AsRegistry::new();
        r.generate_filler(100_000, 50, &["US", "CN", "RU"]);
        assert_eq!(r.len(), 50);
        assert_eq!(r.country_of(Asn(100_000)), "US");
        assert_eq!(r.country_of(Asn(100_001)), "CN");
        assert_eq!(r.country_of(Asn(100_002)), "RU");
        assert_eq!(r.country_of(Asn(100_003)), "US");
    }

    #[test]
    fn category_filter() {
        let r = AsRegistry::well_known();
        let vendors = r.in_category(AsCategory::SecurityVendor);
        assert!(vendors.iter().any(|i| i.name == "Censys"));
        assert!(vendors.iter().any(|i| i.name.contains("Shodan")));
    }

    #[test]
    fn display_format() {
        assert_eq!(Asn(4134).to_string(), "AS4134");
    }
}
