//! IPv4 arithmetic, CIDR blocks, and address-structure predicates.
//!
//! §4.2 of the paper shows scanners discriminating on the *shape* of an IP
//! address: avoiding addresses that look like broadcast addresses (a 255 in
//! any octet, or specifically a trailing .255), and botnets preferring the
//! first address of a /16. The predicates live here so both the scanner
//! agents and the Figure 1 analysis use identical definitions.

use std::fmt;
use std::net::Ipv4Addr;

/// Extension helpers on [`Ipv4Addr`].
pub trait IpExt {
    /// The address as a big-endian `u32`.
    fn to_u32(&self) -> u32;
    /// True if the final octet is 255 (classic /24 broadcast shape).
    fn ends_in_255(&self) -> bool;
    /// True if *any* octet is 255 (the sloppy broadcast filter the paper
    /// hypothesizes: "incorrect filtering of broadcast addresses, in which
    /// the position of the '255' octet is not checked").
    fn has_255_octet(&self) -> bool;
    /// True if this is the first address of its /16 (`x.y.0.0`) — the
    /// address Mirai-like scanners are an order of magnitude more likely to
    /// pick as their first target in a /16.
    fn is_first_of_slash16(&self) -> bool;
    /// The containing /24 network address.
    fn slash24(&self) -> Ipv4Addr;
    /// The containing /16 network address.
    fn slash16(&self) -> Ipv4Addr;
}

/// Build an [`Ipv4Addr`] from a big-endian `u32`.
pub fn ip_from_u32(v: u32) -> Ipv4Addr {
    Ipv4Addr::from(v)
}

impl IpExt for Ipv4Addr {
    fn to_u32(&self) -> u32 {
        u32::from(*self)
    }

    fn ends_in_255(&self) -> bool {
        self.octets()[3] == 255
    }

    fn has_255_octet(&self) -> bool {
        self.octets().contains(&255)
    }

    fn is_first_of_slash16(&self) -> bool {
        let o = self.octets();
        o[2] == 0 && o[3] == 0
    }

    fn slash24(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.to_u32() & 0xFFFF_FF00)
    }

    fn slash16(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.to_u32() & 0xFFFF_0000)
    }
}

/// An IPv4 CIDR block.
///
/// # Example
///
/// ```
/// use cw_netsim::ip::{Cidr, IpExt};
/// use std::net::Ipv4Addr;
///
/// let block = Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24);
/// assert_eq!(block.size(), 256);
/// assert!(block.last().ends_in_255());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cidr {
    base: u32,
    prefix: u8,
}

impl Cidr {
    /// Create a block; the base address is masked to the prefix boundary.
    ///
    /// # Panics
    /// Panics if `prefix > 32`.
    pub fn new(base: Ipv4Addr, prefix: u8) -> Self {
        assert!(prefix <= 32, "invalid prefix /{prefix}");
        let mask = Self::mask(prefix);
        Cidr {
            base: base.to_u32() & mask,
            prefix,
        }
    }

    fn mask(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// The (masked) network base address.
    pub fn base(&self) -> Ipv4Addr {
        ip_from_u32(self.base)
    }

    /// The prefix length.
    pub fn prefix(&self) -> u8 {
        self.prefix
    }

    /// Number of addresses in the block.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix)
    }

    /// Does the block contain `ip`?
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        ip.to_u32() & Self::mask(self.prefix) == self.base
    }

    /// The `i`-th address of the block.
    ///
    /// # Panics
    /// Panics if `i >= size()`.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        assert!(i < self.size(), "index {i} out of /{} block", self.prefix);
        ip_from_u32(self.base + i as u32)
    }

    /// Offset of `ip` within the block, if contained.
    pub fn offset_of(&self, ip: Ipv4Addr) -> Option<u64> {
        if self.contains(ip) {
            Some((ip.to_u32() - self.base) as u64)
        } else {
            None
        }
    }

    /// Iterate over every address in the block.
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map(move |i| self.nth(i))
    }

    /// The last address of the block (network broadcast for /24 and wider).
    pub fn last(&self) -> Ipv4Addr {
        self.nth(self.size() - 1)
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn octet_predicates() {
        let ip = Ipv4Addr::new(10, 0, 3, 255);
        assert!(ip.ends_in_255());
        assert!(ip.has_255_octet());
        let ip = Ipv4Addr::new(10, 255, 3, 4);
        assert!(!ip.ends_in_255());
        assert!(ip.has_255_octet());
        let ip = Ipv4Addr::new(10, 1, 2, 3);
        assert!(!ip.has_255_octet());
    }

    #[test]
    fn first_of_slash16() {
        assert!(Ipv4Addr::new(10, 5, 0, 0).is_first_of_slash16());
        assert!(!Ipv4Addr::new(10, 5, 0, 1).is_first_of_slash16());
        assert!(!Ipv4Addr::new(10, 5, 1, 0).is_first_of_slash16());
    }

    #[test]
    fn subnet_projections() {
        let ip = Ipv4Addr::new(192, 168, 37, 201);
        assert_eq!(ip.slash24(), Ipv4Addr::new(192, 168, 37, 0));
        assert_eq!(ip.slash16(), Ipv4Addr::new(192, 168, 0, 0));
    }

    #[test]
    fn cidr_basics() {
        let c = Cidr::new(Ipv4Addr::new(10, 0, 0, 77), 24);
        assert_eq!(c.base(), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(c.size(), 256);
        assert!(c.contains(Ipv4Addr::new(10, 0, 0, 255)));
        assert!(!c.contains(Ipv4Addr::new(10, 0, 1, 0)));
        assert_eq!(c.nth(5), Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(c.last(), Ipv4Addr::new(10, 0, 0, 255));
        assert_eq!(c.offset_of(Ipv4Addr::new(10, 0, 0, 9)), Some(9));
        assert_eq!(c.offset_of(Ipv4Addr::new(10, 0, 1, 9)), None);
        assert_eq!(c.to_string(), "10.0.0.0/24");
    }

    #[test]
    fn cidr_slash26() {
        // The education honeypot networks are /26s (64 addresses).
        let c = Cidr::new(Ipv4Addr::new(171, 64, 9, 64), 26);
        assert_eq!(c.size(), 64);
        assert_eq!(c.base(), Ipv4Addr::new(171, 64, 9, 64));
        assert!(c.contains(Ipv4Addr::new(171, 64, 9, 127)));
        assert!(!c.contains(Ipv4Addr::new(171, 64, 9, 128)));
    }

    #[test]
    fn cidr_iter_covers_block() {
        let c = Cidr::new(Ipv4Addr::new(10, 1, 2, 0), 30);
        let ips: Vec<Ipv4Addr> = c.iter().collect();
        assert_eq!(
            ips,
            vec![
                Ipv4Addr::new(10, 1, 2, 0),
                Ipv4Addr::new(10, 1, 2, 1),
                Ipv4Addr::new(10, 1, 2, 2),
                Ipv4Addr::new(10, 1, 2, 3),
            ]
        );
    }

    #[test]
    #[should_panic]
    fn nth_out_of_range_panics() {
        Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 30).nth(4);
    }

    #[test]
    fn prefix_zero_contains_everything() {
        let c = Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(c.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(c.size(), 1 << 32);
    }
}
