//! Interned payload and credential storage shared across the capture →
//! analysis pipeline.
//!
//! Scanning traffic replays a small dictionary of byte blobs millions of
//! times (§3.2 classifies and §3.3 extracts top-3 values over *distinct*
//! payloads and credentials, not raw events). An [`Interner`] stores each
//! distinct value once in an append-only arena and hands out dense
//! [`PayloadId`]/[`CredId`] handles, so events carry 4-byte IDs instead of
//! owned `Vec<u8>`/`String`s and downstream work (rule matching, LZR
//! fingerprinting, group-by counting) runs once per distinct value.
//!
//! # Determinism
//!
//! IDs are assigned in insertion order: the first distinct value interned
//! gets id 0, the next id 1, and so on. Re-interning an already-known value
//! returns its existing id. Because the simulation delivers events in a
//! deterministic order, the arena contents — and therefore every id — are
//! a pure function of the event stream, independent of hash-map iteration
//! order (the lookup table is only an accelerator; ids come from the
//! arena's `Vec` length).
//!
//! # Cross-worker remapping
//!
//! Fleet workers build worker-local interners. When per-run datasets merge
//! (`Dataset::absorb`, in stream-id order), the absorbing side re-interns
//! the other arena's distinct values *in that arena's insertion order* via
//! [`Interner::remap_from`], producing an old-id → new-id table applied to
//! the incoming events. Merged ids are therefore identical for any
//! worker-thread count — the byte-identity contract of the fleet runner.

use crate::rng::fnv1a;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Handle to one distinct payload blob in an [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PayloadId(pub u32);

impl PayloadId {
    /// The arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to one distinct credential string (a username *or* a password)
/// in an [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CredId(pub u32);

impl CredId {
    /// The arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only arena of distinct values with O(1) amortized hash lookup.
///
/// Values are stored once; the side table maps an FNV-1a digest to the
/// (rarely >1) arena indices carrying that digest, so lookups compare the
/// actual bytes and hash collisions stay correct.
#[derive(Debug)]
struct Arena<T: ?Sized + ToOwned> {
    values: Vec<T::Owned>,
    by_hash: HashMap<u64, Vec<u32>>,
}

impl<T: ?Sized + ToOwned> Default for Arena<T> {
    fn default() -> Self {
        Arena {
            values: Vec::new(),
            by_hash: HashMap::new(),
        }
    }
}

impl<T: ?Sized + ToOwned> Clone for Arena<T>
where
    T::Owned: Clone,
{
    fn clone(&self) -> Self {
        Arena {
            values: self.values.clone(),
            by_hash: self.by_hash.clone(),
        }
    }
}

impl<T> Arena<T>
where
    T: ?Sized + ToOwned + PartialEq,
    T::Owned: std::borrow::Borrow<T>,
{
    fn reserve(&mut self, additional: usize) {
        self.values.reserve(additional);
        self.by_hash.reserve(additional);
    }

    fn intern(&mut self, value: &T, hash: u64) -> u32 {
        use std::borrow::Borrow;
        let candidates = self.by_hash.entry(hash).or_default();
        for &idx in candidates.iter() {
            if self.values[idx as usize].borrow() == value {
                return idx;
            }
        }
        let idx = u32::try_from(self.values.len()).expect("interner arena overflow");
        candidates.push(idx);
        self.values.push(value.to_owned());
        idx
    }
}

/// The shared intern tables for payload blobs and credential strings.
///
/// See the [module docs](self) for the id-determinism and remapping rules.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    payloads: Arena<[u8]>,
    creds: Arena<str>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// A fresh interner behind the shared handle every capture-side user
    /// (honeypot listeners, captures) clones.
    pub fn shared() -> Rc<RefCell<Interner>> {
        Rc::new(RefCell::new(Interner::new()))
    }

    /// Pre-size the arenas for an expected number of distinct values.
    /// Purely a reallocation-avoidance hint: ids, contents and every
    /// observable behavior are unaffected.
    pub fn reserve(&mut self, payloads: usize, creds: usize) {
        self.payloads.reserve(payloads);
        self.creds.reserve(creds);
    }

    /// Intern a payload blob, returning its stable id.
    pub fn intern_payload(&mut self, bytes: &[u8]) -> PayloadId {
        PayloadId(self.payloads.intern(bytes, fnv1a(bytes)))
    }

    /// Intern a credential string, returning its stable id.
    pub fn intern_cred(&mut self, s: &str) -> CredId {
        CredId(self.creds.intern(s, fnv1a(s.as_bytes())))
    }

    /// Resolve a payload id to its bytes.
    ///
    /// # Panics
    /// Panics if the id was minted by a different interner and is out of
    /// range here — resolve ids only against the interner (or remapped
    /// snapshot) that produced them.
    pub fn payload(&self, id: PayloadId) -> &[u8] {
        &self.payloads.values[id.index()]
    }

    /// Resolve a credential id to its string.
    ///
    /// # Panics
    /// Panics if the id is out of range (see [`Interner::payload`]).
    pub fn cred(&self, id: CredId) -> &str {
        &self.creds.values[id.index()]
    }

    /// Number of distinct payloads.
    pub fn payload_count(&self) -> usize {
        self.payloads.values.len()
    }

    /// Number of distinct credential strings.
    pub fn cred_count(&self) -> usize {
        self.creds.values.len()
    }

    /// Encode the arena contents into a snapshot payload: both value
    /// lists, in insertion order. The hash side tables are rebuilt on
    /// load, so only the id-defining data travels.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        w.put_u64(self.payloads.values.len() as u64);
        for p in &self.payloads.values {
            w.put_bytes(p);
        }
        w.put_u64(self.creds.values.len() as u64);
        for c in &self.creds.values {
            w.put_str(c);
        }
    }

    /// Decode an interner from a snapshot payload.
    ///
    /// Values are re-interned in their recorded order, which reproduces
    /// the original dense ids exactly (ids are a pure function of
    /// insertion order — see the module docs). A snapshot listing the
    /// same value twice would silently renumber everything after it, so
    /// that case is rejected as [`SnapError::Malformed`].
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<Interner, SnapError> {
        let mut out = Interner::new();
        let n_payloads = r.get_count()?;
        for _ in 0..n_payloads {
            let bytes = r.get_bytes()?;
            out.intern_payload(bytes);
        }
        if out.payload_count() != n_payloads {
            return Err(SnapError::Malformed("duplicate payload in interner snapshot"));
        }
        let n_creds = r.get_count()?;
        for _ in 0..n_creds {
            let s = r.get_str()?;
            out.intern_cred(s);
        }
        if out.cred_count() != n_creds {
            return Err(SnapError::Malformed("duplicate cred in interner snapshot"));
        }
        Ok(out)
    }

    /// The payload values with ids `start..`, in insertion order.
    ///
    /// Streaming delta extraction: a worker that recorded `start =
    /// payload_count()` at the last window boundary reads here exactly the
    /// values interned since, so shipping `(start-delta, events)` per
    /// window transfers each distinct value once.
    pub fn payloads_from(&self, start: usize) -> &[Vec<u8>] {
        &self.payloads.values[start..]
    }

    /// The credential values with ids `start..`, in insertion order (see
    /// [`Interner::payloads_from`]).
    pub fn creds_from(&self, start: usize) -> &[String] {
        &self.creds.values[start..]
    }

    /// Absorb another interner's distinct values (in *its* insertion
    /// order) and return the old-id → new-id tables. This is the fleet
    /// merge step: apply the returned [`Remap`] to every event imported
    /// from `other`'s id space.
    pub fn remap_from(&mut self, other: &Interner) -> Remap {
        let mut remap = Remap::default();
        self.extend_remap_from(other, &mut remap);
        remap
    }

    /// Extend a [`Remap`] previously built against a shorter prefix of
    /// `other` so it covers every value `other` holds now.
    ///
    /// Interners are append-only, so ids `0..remap.payload_len()` of
    /// `other` still mean what they meant when `remap` was built; only the
    /// tail `other` has grown since needs interning. This is the streaming
    /// dataset build's per-window step: one remap table follows the shared
    /// capture interner across windows, and the total work over a run is
    /// exactly one intern per distinct value — the same as a single
    /// end-of-run [`Interner::remap_from`].
    pub fn extend_remap_from(&mut self, other: &Interner, remap: &mut Remap) {
        for i in remap.payloads.len()..other.payloads.values.len() {
            let id = self.intern_payload(&other.payloads.values[i]);
            remap.payloads.push(id.0);
        }
        for i in remap.creds.len()..other.creds.values.len() {
            let id = self.intern_cred(&other.creds.values[i]);
            remap.creds.push(id.0);
        }
    }
}

/// Old-id → new-id translation tables produced by [`Interner::remap_from`].
#[derive(Debug, Clone, Default)]
pub struct Remap {
    payloads: Vec<u32>,
    creds: Vec<u32>,
}

impl Remap {
    /// The identity remap for ids that are already in the target space.
    pub fn identity() -> Self {
        Remap::default()
    }

    /// Translate a payload id from the source interner's space.
    pub fn payload(&self, id: PayloadId) -> PayloadId {
        match self.payloads.get(id.index()) {
            Some(&new) => PayloadId(new),
            None => id, // identity remap
        }
    }

    /// Translate a credential id from the source interner's space.
    pub fn cred(&self, id: CredId) -> CredId {
        match self.creds.get(id.index()) {
            Some(&new) => CredId(new),
            None => id, // identity remap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern_payload(b"alpha"), PayloadId(0));
        assert_eq!(i.intern_payload(b"beta"), PayloadId(1));
        assert_eq!(i.intern_payload(b"alpha"), PayloadId(0));
        assert_eq!(i.intern_payload(b"gamma"), PayloadId(2));
        assert_eq!(i.payload_count(), 3);
        assert_eq!(i.payload(PayloadId(1)), b"beta");
    }

    #[test]
    fn creds_and_payloads_are_independent_spaces() {
        let mut i = Interner::new();
        let p = i.intern_payload(b"root");
        let c = i.intern_cred("root");
        assert_eq!(p.0, 0);
        assert_eq!(c.0, 0);
        assert_eq!(i.cred(c), "root");
        assert_eq!(i.payload(p), b"root");
    }

    #[test]
    fn empty_values_intern_fine() {
        let mut i = Interner::new();
        let a = i.intern_payload(b"");
        let b = i.intern_payload(b"");
        assert_eq!(a, b);
        assert_eq!(i.payload(a), b"");
        let c = i.intern_cred("");
        assert_eq!(i.cred(c), "");
    }

    #[test]
    fn remap_translates_into_the_target_space() {
        let mut a = Interner::new();
        a.intern_payload(b"x");
        a.intern_cred("u1");
        let mut b = Interner::new();
        let bx = b.intern_payload(b"y");
        let by = b.intern_payload(b"x");
        let bu = b.intern_cred("u2");
        let remap = a.remap_from(&b);
        // b's "y" is new to a (gets id 1); b's "x" already exists (id 0).
        assert_eq!(remap.payload(bx), PayloadId(1));
        assert_eq!(remap.payload(by), PayloadId(0));
        assert_eq!(remap.cred(bu), CredId(1));
        assert_eq!(a.payload_count(), 2);
        assert_eq!(a.payload(PayloadId(1)), b"y");
    }

    #[test]
    fn merge_order_determines_ids_not_thread_interleaving() {
        // Two worker-local interners merged in stream order must yield the
        // same target ids no matter how the workers were scheduled.
        let build = |vals: &[&[u8]]| {
            let mut i = Interner::new();
            for v in vals {
                i.intern_payload(v);
            }
            i
        };
        let w0 = build(&[b"a", b"b"]);
        let w1 = build(&[b"b", b"c"]);
        let mut merged = Interner::new();
        merged.remap_from(&w0);
        merged.remap_from(&w1);
        assert_eq!(merged.payload(PayloadId(0)), b"a");
        assert_eq!(merged.payload(PayloadId(1)), b"b");
        assert_eq!(merged.payload(PayloadId(2)), b"c");
    }

    #[test]
    fn extend_remap_from_matches_one_shot_remap() {
        // Growing a remap prefix-by-prefix must land on the same tables —
        // and the same target ids — as one remap over the final arena.
        let mut src = Interner::new();
        src.intern_payload(b"a");
        src.intern_cred("u");
        let mut target_inc = Interner::new();
        let mut remap_inc = Remap::default();
        target_inc.extend_remap_from(&src, &mut remap_inc);
        src.intern_payload(b"b");
        src.intern_payload(b"a"); // no-op: already interned
        src.intern_cred("v");
        target_inc.extend_remap_from(&src, &mut remap_inc);

        let mut target_once = Interner::new();
        let remap_once = target_once.remap_from(&src);
        assert_eq!(target_inc.payload_count(), target_once.payload_count());
        assert_eq!(target_inc.cred_count(), target_once.cred_count());
        for i in 0..src.payload_count() as u32 {
            assert_eq!(
                remap_inc.payload(PayloadId(i)),
                remap_once.payload(PayloadId(i))
            );
        }
        for i in 0..src.cred_count() as u32 {
            assert_eq!(remap_inc.cred(CredId(i)), remap_once.cred(CredId(i)));
        }
    }

    #[test]
    fn reserve_changes_no_ids() {
        let mut a = Interner::new();
        a.intern_payload(b"x");
        a.reserve(1000, 1000);
        assert_eq!(a.intern_payload(b"x"), PayloadId(0));
        assert_eq!(a.intern_payload(b"y"), PayloadId(1));
        assert_eq!(a.payload_count(), 2);
    }

    #[test]
    fn identity_remap_is_a_noop() {
        let r = Remap::identity();
        assert_eq!(r.payload(PayloadId(7)), PayloadId(7));
        assert_eq!(r.cred(CredId(3)), CredId(3));
    }

    #[test]
    fn snapshot_round_trip_preserves_ids() {
        let mut i = Interner::new();
        i.intern_payload(b"\x16\x03\x01");
        i.intern_payload(b"");
        i.intern_payload(b"GET / HTTP/1.1");
        i.intern_cred("root");
        i.intern_cred("123456");
        let mut w = SnapWriter::new();
        i.snap_write(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = Interner::snap_read(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.payload_count(), 3);
        assert_eq!(back.cred_count(), 2);
        // Ids are positional, so equality of the ordered value lists is
        // equality of every id assignment.
        assert_eq!(back.payload(PayloadId(0)), b"\x16\x03\x01");
        assert_eq!(back.payload(PayloadId(1)), b"");
        assert_eq!(back.payload(PayloadId(2)), b"GET / HTTP/1.1");
        assert_eq!(back.cred(CredId(0)), "root");
        assert_eq!(back.cred(CredId(1)), "123456");
        // And the rebuilt hash tables still dedupe correctly.
        let mut back = back;
        assert_eq!(back.intern_payload(b"GET / HTTP/1.1"), PayloadId(2));
        assert_eq!(back.intern_cred("root"), CredId(0));
    }

    #[test]
    fn snapshot_with_duplicate_value_is_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(2);
        w.put_bytes(b"same");
        w.put_bytes(b"same");
        w.put_u64(0);
        let bytes = w.into_bytes();
        let err = Interner::snap_read(&mut SnapReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnapError::Malformed(_)));
    }
}
