//! The simulated address plan: named blocks of IPv4 space.
//!
//! A [`Topology`] is a set of disjoint, named [`AddressBlock`]s — e.g.
//! `"telescope"` (1,856 /24s), `"aws/US-OR"` (a /28 hosting 4 honeypots),
//! `"stanford"` (a /26). Scanner agents consult the topology to enumerate
//! scannable space; the engine uses it for listener routing sanity checks.

use crate::ip::Cidr;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A named region of address space, possibly discontiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressBlock {
    /// Unique block name (e.g. `"telescope"`, `"aws/US-OR"`).
    pub name: String,
    /// The CIDRs composing the block, in allocation order.
    pub cidrs: Vec<Cidr>,
}

impl AddressBlock {
    /// Create a block from its CIDRs.
    pub fn new(name: &str, cidrs: Vec<Cidr>) -> Self {
        AddressBlock {
            name: name.to_string(),
            cidrs,
        }
    }

    /// Total number of addresses across all CIDRs.
    pub fn size(&self) -> u64 {
        self.cidrs.iter().map(|c| c.size()).sum()
    }

    /// Does the block contain `ip`?
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.cidrs.iter().any(|c| c.contains(ip))
    }

    /// The `i`-th address of the block, counting across CIDRs in order.
    ///
    /// # Panics
    /// Panics if `i >= size()`.
    pub fn nth(&self, mut i: u64) -> Ipv4Addr {
        for c in &self.cidrs {
            if i < c.size() {
                return c.nth(i);
            }
            i -= c.size();
        }
        panic!("index out of block '{}'", self.name);
    }

    /// Offset of `ip` within the block (inverse of [`nth`](Self::nth)).
    pub fn offset_of(&self, ip: Ipv4Addr) -> Option<u64> {
        let mut acc = 0u64;
        for c in &self.cidrs {
            if let Some(o) = c.offset_of(ip) {
                return Some(acc + o);
            }
            acc += c.size();
        }
        None
    }

    /// Iterate every address of the block.
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map(move |i| self.nth(i))
    }

    /// Encode the block (name + CIDRs in allocation order) into a
    /// snapshot payload.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        w.put_str(&self.name);
        w.put_u64(self.cidrs.len() as u64);
        for c in &self.cidrs {
            w.put_u32(u32::from(c.base()));
            w.put_u8(c.prefix());
        }
    }

    /// Decode a block from a snapshot payload.
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<AddressBlock, SnapError> {
        let name = r.get_str()?.to_string();
        let n = r.get_count()?;
        let mut cidrs = Vec::with_capacity(n);
        for _ in 0..n {
            let base = Ipv4Addr::from(r.get_u32()?);
            let prefix = r.get_u8()?;
            if prefix > 32 {
                return Err(SnapError::Malformed("CIDR prefix > 32"));
            }
            cidrs.push(Cidr::new(base, prefix));
        }
        Ok(AddressBlock { name, cidrs })
    }
}

/// A collection of named address blocks.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    blocks: BTreeMap<String, AddressBlock>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a block.
    ///
    /// # Panics
    /// Panics if a block with the same name exists or the block overlaps an
    /// existing one (the address plan must be unambiguous).
    pub fn add(&mut self, block: AddressBlock) {
        assert!(
            !self.blocks.contains_key(&block.name),
            "duplicate block '{}'",
            block.name
        );
        for existing in self.blocks.values() {
            for c in &block.cidrs {
                for e in &existing.cidrs {
                    let overlap = c.contains(e.base()) || e.contains(c.base());
                    assert!(
                        !overlap,
                        "block '{}' ({c}) overlaps '{}' ({e})",
                        block.name, existing.name
                    );
                }
            }
        }
        self.blocks.insert(block.name.clone(), block);
    }

    /// Look up a block by name.
    pub fn block(&self, name: &str) -> Option<&AddressBlock> {
        self.blocks.get(name)
    }

    /// The block containing `ip`, if any.
    pub fn block_of(&self, ip: Ipv4Addr) -> Option<&AddressBlock> {
        self.blocks.values().find(|b| b.contains(ip))
    }

    /// Iterate all blocks in name order.
    pub fn iter(&self) -> impl Iterator<Item = &AddressBlock> {
        self.blocks.values()
    }

    /// Names of blocks whose name starts with `prefix` (e.g. `"aws/"`).
    pub fn names_with_prefix(&self, prefix: &str) -> Vec<&str> {
        self.blocks
            .keys()
            .filter(|k| k.starts_with(prefix))
            .map(|k| k.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(a: u8, b: u8, c: u8, d: u8, p: u8) -> Cidr {
        Cidr::new(Ipv4Addr::new(a, b, c, d), p)
    }

    #[test]
    fn block_snapshot_round_trip() {
        let b = AddressBlock::new("tel", vec![cidr(10, 0, 0, 0, 24), cidr(172, 16, 0, 0, 26)]);
        let mut w = SnapWriter::new();
        b.snap_write(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = AddressBlock::snap_read(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back, b);
    }

    #[test]
    fn block_indexing_across_cidrs() {
        let b = AddressBlock::new("x", vec![cidr(10, 0, 0, 0, 30), cidr(10, 0, 1, 0, 30)]);
        assert_eq!(b.size(), 8);
        assert_eq!(b.nth(0), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(b.nth(3), Ipv4Addr::new(10, 0, 0, 3));
        assert_eq!(b.nth(4), Ipv4Addr::new(10, 0, 1, 0));
        assert_eq!(b.nth(7), Ipv4Addr::new(10, 0, 1, 3));
        assert_eq!(b.offset_of(Ipv4Addr::new(10, 0, 1, 2)), Some(6));
        assert_eq!(b.offset_of(Ipv4Addr::new(10, 0, 2, 0)), None);
    }

    #[test]
    #[should_panic]
    fn block_nth_out_of_range() {
        AddressBlock::new("x", vec![cidr(10, 0, 0, 0, 30)]).nth(4);
    }

    #[test]
    fn topology_lookup() {
        let mut t = Topology::new();
        t.add(AddressBlock::new("a", vec![cidr(10, 0, 0, 0, 24)]));
        t.add(AddressBlock::new("b", vec![cidr(10, 0, 1, 0, 24)]));
        assert_eq!(t.block("a").unwrap().size(), 256);
        assert_eq!(
            t.block_of(Ipv4Addr::new(10, 0, 1, 200)).unwrap().name,
            "b"
        );
        assert!(t.block_of(Ipv4Addr::new(10, 0, 2, 1)).is_none());
    }

    #[test]
    #[should_panic]
    fn overlapping_blocks_rejected() {
        let mut t = Topology::new();
        t.add(AddressBlock::new("a", vec![cidr(10, 0, 0, 0, 24)]));
        t.add(AddressBlock::new("b", vec![cidr(10, 0, 0, 128, 25)]));
    }

    #[test]
    #[should_panic]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add(AddressBlock::new("a", vec![cidr(10, 0, 0, 0, 24)]));
        t.add(AddressBlock::new("a", vec![cidr(10, 1, 0, 0, 24)]));
    }

    #[test]
    fn prefix_listing() {
        let mut t = Topology::new();
        t.add(AddressBlock::new("aws/US-OR", vec![cidr(20, 0, 0, 0, 28)]));
        t.add(AddressBlock::new("aws/AP-SG", vec![cidr(20, 0, 1, 0, 28)]));
        t.add(AddressBlock::new("google/US-NV", vec![cidr(20, 1, 0, 0, 28)]));
        assert_eq!(t.names_with_prefix("aws/").len(), 2);
        assert_eq!(t.names_with_prefix("google/").len(), 1);
    }

    #[test]
    fn iter_covers_all_blocks() {
        let mut t = Topology::new();
        t.add(AddressBlock::new("a", vec![cidr(10, 0, 0, 0, 24)]));
        t.add(AddressBlock::new("b", vec![cidr(10, 0, 1, 0, 24)]));
        assert_eq!(t.iter().count(), 2);
    }
}
