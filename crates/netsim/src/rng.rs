//! Deterministic pseudo-random numbers: SplitMix64 seeding and
//! Xoshiro256★★ generation, implemented from scratch.
//!
//! Why not the `rand` crate? Every table in the reproduction must be
//! bit-identical across machines and crate upgrades; `rand` changes value
//! streams between major versions. Both algorithms here are public-domain
//! (Blackman & Vigna) and validated against hand-derived reference values
//! in the tests.

/// SplitMix64: used to expand a single `u64` seed into Xoshiro state and to
/// derive independent sub-streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Split a master seed into the seed of independent stream `stream_id`.
///
/// This is the fleet runner's determinism contract: every scenario run in a
/// fleet gets `fork_seed(master, stream_id)` as its own master seed, where
/// `stream_id` is the run's position in the fleet. The derivation depends
/// only on the two inputs — never on thread count, scheduling, or execution
/// order — so a fleet produces bit-identical results however its runs are
/// sharded across workers (see `cw_core::fleet`).
///
/// # Example
///
/// ```
/// use cw_netsim::rng::fork_seed;
///
/// // Per-run seeds are a pure function of (master, stream).
/// assert_eq!(fork_seed(42, 3), fork_seed(42, 3));
/// // Neighboring streams land far apart.
/// assert_ne!(fork_seed(42, 3), fork_seed(42, 4));
/// assert_ne!(fork_seed(42, 0), fork_seed(43, 0));
/// ```
pub fn fork_seed(master_seed: u64, stream_id: u64) -> u64 {
    // One SplitMix64 round over the master decorrelates nearby masters;
    // folding in the stream id via the golden-gamma multiplier (a bijection
    // on u64) then one more round decorrelates nearby streams.
    let mut sm = SplitMix64::new(master_seed);
    let base = sm.next_u64();
    let mut sm = SplitMix64::new(base ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

/// FNV-1a 64-bit hash, used to derive labeled RNG sub-streams.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The workhorse generator: Xoshiro256★★.
///
/// # Example
///
/// ```
/// use cw_netsim::rng::SimRng;
///
/// let mut rng = SimRng::seed_from_u64(7);
/// let a = rng.range(0, 100);
/// assert!(a < 100);
/// // Labeled sub-streams are independent and reproducible.
/// let mut s1 = rng.derive("censys");
/// let mut s2 = rng.derive("censys");
/// assert_eq!(s1.next_u64(), s2.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed via SplitMix64 expansion (the author-recommended procedure).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Construct from raw state words (used by reference-vector tests).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro state must be non-zero");
        SimRng { s }
    }

    /// Derive an independent, reproducible sub-stream for `label`.
    ///
    /// Used to give every agent / module its own value stream so that adding
    /// an agent never perturbs any other agent's randomness (a requirement
    /// for stable, debuggable scenarios).
    pub fn derive(&self, label: &str) -> SimRng {
        let mix = fnv1a(label.as_bytes());
        let mut sm = SplitMix64::new(self.s[0] ^ mix.rotate_left(17));
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        SimRng { s }
    }

    /// Same as [`derive`](Self::derive) but keyed by an integer (agent ids).
    pub fn derive_u64(&self, stream: u64) -> SimRng {
        let mut sm = SplitMix64::new(self.s[1] ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        SimRng { s }
    }

    /// Split off the independent generator for stream `stream_id`.
    ///
    /// Like [`derive_u64`](Self::derive_u64) this does not advance `self`;
    /// unlike it, `fork` is specified as *the* seed-splitting API for
    /// parallel fleets: the forked stream is a pure function of the current
    /// state and `stream_id`, so consuming forks from different worker
    /// threads — in any order — yields exactly the values a serial loop
    /// would see.
    ///
    /// # Example
    ///
    /// One value drawn from each of four forked streams, serially and then
    /// from four worker threads; the results are bit-identical:
    ///
    /// ```
    /// use cw_netsim::rng::SimRng;
    ///
    /// let root = SimRng::seed_from_u64(0xC10D);
    /// let serial: Vec<u64> = (0..4).map(|i| root.fork(i).next_u64()).collect();
    ///
    /// let threaded: Vec<u64> = std::thread::scope(|scope| {
    ///     let handles: Vec<_> = (0..4)
    ///         .map(|i| {
    ///             let fork = root.fork(i);
    ///             scope.spawn(move || {
    ///                 let mut rng = fork;
    ///                 rng.next_u64()
    ///             })
    ///         })
    ///         .collect();
    ///     handles.into_iter().map(|h| h.join().unwrap()).collect()
    /// });
    ///
    /// assert_eq!(serial, threaded);
    /// ```
    pub fn fork(&self, stream_id: u64) -> SimRng {
        SimRng::seed_from_u64(fork_seed(self.s[0] ^ self.s[2].rotate_left(29), stream_id))
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection
    /// method (unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone: only when low < n do we need the threshold.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Uniformly choose an element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Weighted choice: pick index `i` with probability `w[i] / Σw`.
    ///
    /// # Panics
    /// Panics if weights are empty or sum to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Exponential inter-arrival time with the given rate (events/second).
    /// Returns at least 1 (simulated time is integer seconds).
    pub fn exp_interval_secs(&mut self, rate_per_sec: f64) -> u64 {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        let u = self.f64();
        let dt = -(1.0 - u).ln() / rate_per_sec;
        (dt.round() as u64).max(1)
    }

    /// Poisson draw. Knuth's method for small λ, normal approximation
    /// (rounded, clamped at 0) for λ > 30.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            // Normal approximation N(λ, λ).
            let z = self.normal();
            let v = lambda + lambda.sqrt() * z;
            return v.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// A heavy-tailed integer volume factor in `[1, max]`: discretized
    /// Pareto with shape `alpha` (smaller alpha = heavier tail). Used to
    /// model the wildly unequal per-campaign scan volumes that make
    /// neighboring honeypots see different traffic (§4.1).
    pub fn pareto_volume(&mut self, alpha: f64, max: u64) -> u64 {
        assert!(alpha > 0.0 && max >= 1);
        let u = loop {
            let u = self.f64();
            if u < 1.0 {
                break u;
            }
        };
        let v = (1.0 / (1.0 - u)).powf(1.0 / alpha);
        (v.floor() as u64).clamp(1, max)
    }

    /// Standard normal draw (Box–Muller, one value per call).
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Public-domain reference outputs for seed 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Hand-derived from the reference algorithm with state [1, 2, 3, 4]:
        // out0 = rotl(2*5, 7)*9 = 11520; out1 = 0; out2 = 1509978240.
        let mut rng = SimRng::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 11_520);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1_509_978_240);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn derive_gives_independent_streams() {
        let root = SimRng::seed_from_u64(7);
        let mut a = root.derive("censys");
        let mut b = root.derive("shodan");
        let mut a2 = root.derive("censys");
        assert_eq!(a.next_u64(), a2.next_u64());
        // Streams should differ immediately (overwhelmingly likely).
        let mut same = 0;
        for _ in 0..16 {
            if a.next_u64() == b.next_u64() {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_pure_and_streams_are_decorrelated() {
        let root = SimRng::seed_from_u64(7);
        // Pure: forking never advances the parent, and repeated forks agree.
        let mut a = root.fork(0);
        let mut a2 = root.fork(0);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), a2.next_u64());
        }
        // Distinct streams (and the parent) diverge immediately.
        let mut b = root.fork(1);
        let mut parent = root.clone();
        let mut collisions = 0;
        for _ in 0..32 {
            let x = a.next_u64();
            if x == b.next_u64() || x == parent.next_u64() {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn fork_seed_distributes_nearby_inputs() {
        // Adjacent (master, stream) pairs must land on distinct seeds.
        let mut seen = std::collections::BTreeSet::new();
        for master in 0..32u64 {
            for stream in 0..32u64 {
                assert!(seen.insert(fork_seed(master, stream)));
            }
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c} too skewed");
        }
    }

    #[test]
    fn range_bounds() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.range(100, 110);
            assert!((100..110).contains(&v));
        }
        assert_eq!(rng.range(5, 6), 5);
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        SimRng::seed_from_u64(0).range(5, 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = SimRng::seed_from_u64(5);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.choose_weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = SimRng::seed_from_u64(8);
        for &lambda in &[0.5, 4.0, 50.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.08,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn exp_interval_positive_and_mean_reasonable() {
        let mut rng = SimRng::seed_from_u64(9);
        let rate = 0.01; // mean 100 s
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.exp_interval_secs(rate)).sum();
        let mean = total as f64 / n as f64;
        assert!((90.0..110.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn pareto_volume_bounds_and_tail() {
        let mut rng = SimRng::seed_from_u64(10);
        let draws: Vec<u64> = (0..20_000).map(|_| rng.pareto_volume(1.0, 16)).collect();
        assert!(draws.iter().all(|&v| (1..=16).contains(&v)));
        let ones = draws.iter().filter(|&&v| v == 1).count();
        let big = draws.iter().filter(|&&v| v >= 8).count();
        // Mostly small, but a real tail exists.
        assert!(ones > draws.len() / 3, "ones {ones}");
        assert!(big > draws.len() / 50, "big {big}");
    }

    #[test]
    fn fnv1a_known_values() {
        // FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }
}
