//! # cw-netsim
//!
//! The simulated Internet underneath the Cloud Watching reproduction.
//!
//! The paper measured live scanning traffic arriving at honeypots and a
//! network telescope. That world is not reproducible on a laptop, so this
//! crate provides a deterministic, discrete-event substitute:
//!
//! - [`time`] — integer simulated time (no wall clock anywhere);
//! - [`rng`] — SplitMix64 / Xoshiro256★★ PRNGs implemented from scratch and
//!   validated against published reference vectors, so every table is
//!   bit-reproducible across machines and toolchains;
//! - [`ip`] — IPv4 arithmetic, CIDR blocks, and the address-structure
//!   predicates scanners discriminate on (broadcast-looking octets,
//!   first-of-/16 addresses);
//! - [`asn`] — an autonomous-system registry seeded with the real ASes the
//!   paper names (Chinanet, Cogent, PonyNet, Axtel, …);
//! - [`geo`] — continents, countries, and the provider regions of Table 1;
//! - [`flow`] — the unit of observed traffic (a connection attempt with an
//!   intent: probe, first payload, or an interactive login);
//! - [`intern`] — the shared payload/credential interner: distinct byte
//!   blobs are stored once and events carry dense [`intern::PayloadId`] /
//!   [`intern::CredId`] handles with deterministic insertion-order ids;
//! - [`topology`] — the simulated address plan (telescope /24s, cloud
//!   blocks, education /26s);
//! - [`engine`] — the discrete-event loop that wakes scanner agents and
//!   routes their flows to registered listeners (honeypots, telescope);
//! - [`fault`] — deterministic measurement-fault injection: seed-derived
//!   flow loss, per-vantage outage schedules, capture truncation, and
//!   telescope sampling, all pure functions of the scenario seed;
//! - [`sha256`] — a from-scratch FIPS 180-4 SHA-256 shared by the
//!   snapshot cache and the golden-exhibit manifest in `cw-verify`;
//! - [`snap`] — the little-endian binary snapshot codec plus the sealed
//!   container format (magic, format version, payload, SHA-256 trailer)
//!   that backs the simulate-once artifact cache.
//!
//! Everything above this crate — protocols, honeypots, scanners, analysis —
//! treats these primitives as "the Internet".
//!
//! One simulation run is deliberately single-threaded (the [`engine`] wires
//! agents and listeners with `Rc<RefCell<…>>`); parallelism lives one layer
//! up, in `cw_core::fleet`, which runs *independent* scenarios on worker
//! threads with per-run seeds split via [`rng::fork_seed`] — see
//! `docs/ARCHITECTURE.md` for the determinism contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod asn;
pub mod engine;
pub mod fault;
pub mod flow;
pub mod geo;
pub mod intern;
pub mod ip;
pub mod pcap;
pub mod rng;
pub mod sha256;
pub mod snap;
pub mod time;
pub mod topology;

pub use asn::{AsCategory, AsInfo, AsRegistry, Asn};
pub use engine::{Agent, AgentId, Engine, FlowOutcome, Listener, Network, RunStats, ServiceReply};
pub use fault::{FaultPlan, OutageSchedule};
pub use flow::{ConnectionIntent, Flow, FlowSpec, LoginService};
pub use geo::{Continent, Region};
pub use intern::{CredId, Interner, PayloadId};
pub use ip::{Cidr, IpExt};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use topology::{AddressBlock, Topology};
