//! The discrete-event simulation engine.
//!
//! The engine owns a priority queue of agent wake-ups. When an agent wakes
//! it may send any number of [`FlowSpec`]s through the [`Network`] handle;
//! each flow is routed to the first registered [`Listener`] covering its
//! destination and the listener's [`FlowOutcome`] is returned to the agent
//! synchronously (scan → response, e.g. a search-engine indexer learning a
//! banner). The agent then returns its next wake time, or `None` to retire.
//!
//! Listeners are registered as `Rc<RefCell<…>>` so that the caller retains a
//! handle to read captured data after the run — single-threaded determinism
//! is a feature here, not a limitation (see DESIGN.md §7).

use crate::fault::FlowLoss;
use crate::flow::{Flow, FlowSpec};
use crate::time::SimTime;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Engine-assigned agent identifier.
pub type AgentId = u32;

/// What a scanned service answered, as seen by the scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReply {
    /// Protocol label the responder spoke (e.g. `"HTTP"`), if any.
    pub protocol: Option<String>,
    /// Response bytes (banner, status line, …); may be empty.
    pub banner: Vec<u8>,
}

/// The result of delivering one flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowOutcome {
    /// Did the destination complete the TCP handshake? (Telescopes and dark
    /// space never do.)
    pub handshake_completed: bool,
    /// Application-level reply, if the destination spoke back.
    pub reply: Option<ServiceReply>,
}

impl FlowOutcome {
    /// The outcome of sending to unresponsive space.
    pub fn dark() -> Self {
        FlowOutcome {
            handshake_completed: false,
            reply: None,
        }
    }

    /// Handshake completed, no application reply.
    pub fn accepted() -> Self {
        FlowOutcome {
            handshake_completed: true,
            reply: None,
        }
    }

    /// Handshake completed with an application reply.
    pub fn replied(protocol: &str, banner: &[u8]) -> Self {
        FlowOutcome {
            handshake_completed: true,
            reply: Some(ServiceReply {
                protocol: Some(protocol.to_string()),
                banner: banner.to_vec(),
            }),
        }
    }
}

/// A traffic source driven by the engine.
pub trait Agent {
    /// Diagnostic name.
    fn name(&self) -> &str {
        "agent"
    }

    /// Called at each scheduled wake. Send flows via `net`; return the next
    /// wake time (must be `> now` to guarantee progress) or `None` to
    /// retire the agent.
    fn on_wake(&mut self, now: SimTime, net: &mut dyn Network) -> Option<SimTime>;
}

/// A traffic sink (honeypot, telescope) observing a region of address space.
pub trait Listener {
    /// Diagnostic name.
    fn name(&self) -> &str;

    /// Does this listener observe traffic to `ip`? (All ports of a covered
    /// IP are observed; per-port behavior is the listener's business.)
    fn covers(&self, ip: Ipv4Addr) -> bool;

    /// Observe a delivered flow and answer as the covered host would.
    fn on_flow(&mut self, flow: &Flow) -> FlowOutcome;
}

/// The network handle agents send through while awake.
pub trait Network {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Deliver a flow and obtain its outcome.
    fn send(&mut self, spec: FlowSpec) -> FlowOutcome;
}

/// Aggregate run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total agent wake-ups processed.
    pub wakes: u64,
    /// Flows delivered to a listener.
    pub flows_delivered: u64,
    /// Flows sent to space no listener covers.
    pub flows_unrouted: u64,
    /// Flows dropped by injected network loss before reaching any listener
    /// (zero unless a fault plan is active — see [`crate::fault`]).
    pub flows_lost: u64,
    /// Time of the last processed wake.
    pub last_time: SimTime,
}

impl RunStats {
    /// Fold another run's counters into this one — the fleet merge step.
    ///
    /// Counters add; `last_time` takes the maximum. Folding per-run stats
    /// in stream-id order yields the same aggregate for any thread count
    /// (addition of `u64` counters is associative and commutative, and the
    /// fleet presents results in input order regardless of scheduling).
    pub fn absorb(&mut self, other: RunStats) {
        self.wakes += other.wakes;
        self.flows_delivered += other.flows_delivered;
        self.flows_unrouted += other.flows_unrouted;
        self.flows_lost += other.flows_lost;
        self.last_time = self.last_time.max(other.last_time);
    }
}

struct NetworkCtx<'a> {
    now: SimTime,
    agent: AgentId,
    listeners: &'a [Rc<RefCell<dyn Listener>>],
    stats: &'a mut RunStats,
    flow_seq: &'a mut u64,
    flow_loss: Option<FlowLoss>,
}

impl Network for NetworkCtx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn send(&mut self, spec: FlowSpec) -> FlowOutcome {
        let mut flow = Flow::from_spec(spec, self.now, self.agent);
        flow.seq = *self.flow_seq;
        *self.flow_seq += 1;
        // Injected network loss decides on the flow's *identity* — never on
        // its engine-local `seq`, which differs between sharded and
        // unsharded runs of the same world (see `crate::fault`). The seq
        // counter above still advances for lost flows so the surviving
        // flows keep their relative send order either way.
        if let Some(loss) = self.flow_loss {
            if loss.drops(flow.time, flow.src, flow.dst, flow.dst_port) {
                self.stats.flows_lost += 1;
                return FlowOutcome::dark();
            }
        }
        for l in self.listeners {
            // A listener must not send flows, so borrowing here cannot
            // re-enter; `covers` is checked on the same borrow.
            let mut l = l.borrow_mut();
            if l.covers(flow.dst) {
                self.stats.flows_delivered += 1;
                return l.on_flow(&flow);
            }
        }
        self.stats.flows_unrouted += 1;
        FlowOutcome::dark()
    }
}

/// The discrete-event engine.
pub struct Engine {
    agents: Vec<Option<Box<dyn Agent>>>,
    listeners: Vec<Rc<RefCell<dyn Listener>>>,
    queue: BinaryHeap<Reverse<(SimTime, AgentId)>>,
    stats: RunStats,
    flow_seq: u64,
    flow_loss: Option<FlowLoss>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An empty engine.
    pub fn new() -> Self {
        Engine {
            agents: Vec::new(),
            listeners: Vec::new(),
            queue: BinaryHeap::new(),
            stats: RunStats::default(),
            flow_seq: 0,
            flow_loss: None,
        }
    }

    /// Inject deterministic network-level flow loss: every sent flow is
    /// dropped with probability `rate`, decided by a pure hash of the
    /// flow's identity under `salt` (see [`crate::fault::flow_coin`]).
    /// A rate of 0 disables loss entirely.
    pub fn set_flow_loss(&mut self, rate: f64, salt: u64) {
        self.flow_loss = if rate > 0.0 {
            Some(FlowLoss { rate, salt })
        } else {
            None
        };
    }

    /// Register an agent with its first wake time; returns its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>, first_wake: SimTime) -> AgentId {
        let id = self.agents.len() as AgentId;
        self.agents.push(Some(agent));
        self.queue.push(Reverse((first_wake, id)));
        id
    }

    /// Register an agent under a caller-chosen id, leaving gaps for the ids
    /// the caller skips. This is how a simulation shard keeps the *global*
    /// agent-id space of the unsharded world: the wake queue orders by
    /// `(time, id)`, so preserving ids preserves the relative interleaving
    /// of the agents this shard owns.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already occupied.
    pub fn add_agent_with_id(&mut self, id: AgentId, agent: Box<dyn Agent>, first_wake: SimTime) {
        let idx = id as usize;
        if idx >= self.agents.len() {
            self.agents.resize_with(idx + 1, || None);
        }
        assert!(
            self.agents[idx].is_none(),
            "agent id {id} registered twice"
        );
        self.agents[idx] = Some(agent);
        self.queue.push(Reverse((first_wake, id)));
    }

    /// Register a listener. Listeners are consulted in registration order;
    /// the address plan keeps their coverage disjoint.
    pub fn add_listener(&mut self, listener: Rc<RefCell<dyn Listener>>) {
        self.listeners.push(listener);
    }

    /// Number of registered agents (retired agents included).
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Earliest pending wake time, if any work remains queued.
    ///
    /// After [`Engine::run`]`(until)` returns, any value here is `>= until`
    /// — the wakes the horizon cut off, still waiting to be processed.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.queue.peek().map(|&Reverse((t, _))| t)
    }

    /// Run until the queue drains or simulated time reaches `until`
    /// (**exclusive**). Returns aggregate statistics.
    ///
    /// # Horizon boundary
    ///
    /// A wake scheduled at exactly `until` is **not processed and not
    /// dropped**: the engine peeks before popping, so boundary wakes stay
    /// queued (observable via [`Engine::next_wake`]) and are processed by a
    /// later `run` call with a larger horizon. Scenario horizons are
    /// therefore half-open windows `[0, until)` — running a week covers
    /// seconds `0..=604_799`, and splitting a window into consecutive `run`
    /// calls processes every event exactly once.
    pub fn run(&mut self, until: SimTime) -> RunStats {
        while let Some(&Reverse((t, id))) = self.queue.peek() {
            if t >= until {
                break;
            }
            self.queue.pop();
            let mut agent = self.agents[id as usize]
                .take()
                .expect("each agent has at most one outstanding wake");
            self.stats.wakes += 1;
            self.stats.last_time = t;
            let next = {
                let mut ctx = NetworkCtx {
                    now: t,
                    agent: id,
                    listeners: &self.listeners,
                    stats: &mut self.stats,
                    flow_seq: &mut self.flow_seq,
                    flow_loss: self.flow_loss,
                };
                agent.on_wake(t, &mut ctx)
            };
            match next {
                Some(next_t) => {
                    assert!(
                        next_t > t,
                        "agent '{}' scheduled non-advancing wake {next_t:?} at {t:?}",
                        agent.name()
                    );
                    self.agents[id as usize] = Some(agent);
                    self.queue.push(Reverse((next_t, id)));
                }
                None => {
                    // Retire: drop the agent.
                }
            }
        }
        self.stats
    }

    /// Statistics so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::Asn;
    use crate::flow::ConnectionIntent;
    use crate::time::SimDuration;

    /// Agent that sends one probe per wake, `n` times, one second apart.
    struct Pinger {
        remaining: u32,
        dst: Ipv4Addr,
        outcomes: Vec<bool>,
    }

    impl Agent for Pinger {
        fn name(&self) -> &str {
            "pinger"
        }
        fn on_wake(&mut self, now: SimTime, net: &mut dyn Network) -> Option<SimTime> {
            assert_eq!(net.now(), now);
            let out = net.send(FlowSpec {
                src: Ipv4Addr::new(1, 1, 1, 1),
                src_asn: Asn(65000),
                dst: self.dst,
                dst_port: 80,
                intent: ConnectionIntent::ProbeOnly,
            });
            self.outcomes.push(out.handshake_completed);
            self.remaining -= 1;
            if self.remaining == 0 {
                None
            } else {
                Some(now + SimDuration::SECOND)
            }
        }
    }

    /// Listener that accepts everything in 10.0.0.0/24 and logs times.
    struct Sink {
        seen: Vec<(SimTime, Ipv4Addr, u16)>,
    }

    impl Listener for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn covers(&self, ip: Ipv4Addr) -> bool {
            ip.octets()[0] == 10
        }
        fn on_flow(&mut self, flow: &Flow) -> FlowOutcome {
            self.seen.push((flow.time, flow.dst, flow.dst_port));
            FlowOutcome::accepted()
        }
    }

    #[test]
    fn flows_route_to_covering_listener() {
        let mut e = Engine::new();
        let sink = Rc::new(RefCell::new(Sink { seen: vec![] }));
        e.add_listener(sink.clone());
        e.add_agent(
            Box::new(Pinger {
                remaining: 3,
                dst: Ipv4Addr::new(10, 0, 0, 5),
                outcomes: vec![],
            }),
            SimTime(0),
        );
        let stats = e.run(SimTime(1_000));
        assert_eq!(stats.wakes, 3);
        assert_eq!(stats.flows_delivered, 3);
        assert_eq!(stats.flows_unrouted, 0);
        let seen = &sink.borrow().seen;
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, SimTime(0));
        assert_eq!(seen[2].0, SimTime(2));
    }

    /// Sharding registers agents under their *global* ids, leaving `None`
    /// gaps; flows must carry that id and the engine's monotone send
    /// sequence, in wake-queue pop order.
    #[test]
    fn add_agent_with_id_leaves_gaps_and_stamps_send_order() {
        struct SeqSink {
            seen: Vec<(u32, u64)>,
        }
        impl Listener for SeqSink {
            fn name(&self) -> &str {
                "seqsink"
            }
            fn covers(&self, ip: Ipv4Addr) -> bool {
                ip.octets()[0] == 10
            }
            fn on_flow(&mut self, flow: &Flow) -> FlowOutcome {
                self.seen.push((flow.agent, flow.seq));
                FlowOutcome::accepted()
            }
        }
        let mut e = Engine::new();
        let sink = Rc::new(RefCell::new(SeqSink { seen: vec![] }));
        e.add_listener(sink.clone());
        let pinger = |remaining, last| {
            Box::new(Pinger {
                remaining,
                dst: Ipv4Addr::new(10, 0, 0, last),
                outcomes: vec![],
            })
        };
        e.add_agent_with_id(5, pinger(2, 1), SimTime(0));
        e.add_agent_with_id(9, pinger(1, 2), SimTime(0));
        let stats = e.run(SimTime(10));
        assert_eq!(stats.flows_delivered, 3);
        // (time 0, agent 5) pops before (time 0, agent 9); agent 5 wakes
        // again at time 1. seq is global send order across both agents.
        assert_eq!(sink.borrow().seen, vec![(5, 0), (9, 1), (5, 2)]);
    }

    #[test]
    fn unrouted_flows_fall_into_dark_space() {
        let mut e = Engine::new();
        e.add_agent(
            Box::new(Pinger {
                remaining: 2,
                dst: Ipv4Addr::new(99, 0, 0, 1),
                outcomes: vec![],
            }),
            SimTime(0),
        );
        let stats = e.run(SimTime(1_000));
        assert_eq!(stats.flows_unrouted, 2);
        assert_eq!(stats.flows_delivered, 0);
    }

    #[test]
    fn run_stops_at_horizon() {
        let mut e = Engine::new();
        e.add_agent(
            Box::new(Pinger {
                remaining: 1_000_000,
                dst: Ipv4Addr::new(99, 0, 0, 1),
                outcomes: vec![],
            }),
            SimTime(0),
        );
        let stats = e.run(SimTime(10));
        assert_eq!(stats.wakes, 10);
        assert_eq!(stats.last_time, SimTime(9));
        // Resuming continues deterministically.
        let stats = e.run(SimTime(20));
        assert_eq!(stats.wakes, 20);
    }

    #[test]
    fn wake_at_horizon_is_deferred_not_dropped() {
        let mut e = Engine::new();
        e.add_agent(
            Box::new(Pinger {
                remaining: 2,
                dst: Ipv4Addr::new(99, 0, 0, 1),
                outcomes: vec![],
            }),
            SimTime(10),
        );
        // The first wake is at exactly `until`: the exclusive horizon means
        // nothing runs, and the wake stays queued.
        let stats = e.run(SimTime(10));
        assert_eq!(stats.wakes, 0);
        assert_eq!(e.next_wake(), Some(SimTime(10)));
        // A later run with a wider horizon processes it — exactly once.
        let stats = e.run(SimTime(12));
        assert_eq!(stats.wakes, 2);
        assert_eq!(stats.last_time, SimTime(11));
        assert_eq!(e.next_wake(), None);
    }

    #[test]
    fn split_windows_cover_every_event_exactly_once() {
        fn wakes(horizons: &[u64]) -> u64 {
            let mut e = Engine::new();
            e.add_agent(
                Box::new(Pinger {
                    remaining: 30,
                    dst: Ipv4Addr::new(99, 0, 0, 1),
                    outcomes: vec![],
                }),
                SimTime(0),
            );
            let mut stats = RunStats::default();
            for &h in horizons {
                stats = e.run(SimTime(h));
            }
            stats.wakes
        }
        // [0,30) in one go vs. split at boundaries that land exactly on
        // queued wakes: same total, no duplicates, no drops.
        assert_eq!(wakes(&[30]), 30);
        assert_eq!(wakes(&[7, 13, 13, 30]), 30);
    }

    #[test]
    fn run_stats_absorb_folds_counters() {
        let a = RunStats {
            wakes: 3,
            flows_delivered: 2,
            flows_unrouted: 1,
            flows_lost: 4,
            last_time: SimTime(9),
        };
        let mut b = RunStats {
            wakes: 10,
            flows_delivered: 4,
            flows_unrouted: 0,
            flows_lost: 1,
            last_time: SimTime(5),
        };
        b.absorb(a);
        assert_eq!(b.wakes, 13);
        assert_eq!(b.flows_delivered, 6);
        assert_eq!(b.flows_unrouted, 1);
        assert_eq!(b.flows_lost, 5);
        assert_eq!(b.last_time, SimTime(9));
    }

    #[test]
    fn agents_interleave_deterministically() {
        // Two identical runs must produce identical listener logs.
        fn run_once() -> Vec<(SimTime, Ipv4Addr, u16)> {
            let mut e = Engine::new();
            let sink = Rc::new(RefCell::new(Sink { seen: vec![] }));
            e.add_listener(sink.clone());
            for i in 0..5u8 {
                e.add_agent(
                    Box::new(Pinger {
                        remaining: 4,
                        dst: Ipv4Addr::new(10, 0, 0, i),
                        outcomes: vec![],
                    }),
                    SimTime(i as u64 % 2),
                );
            }
            e.run(SimTime(100));
            let log = sink.borrow().seen.clone();
            log
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic]
    fn non_advancing_agent_is_a_bug() {
        struct Stuck;
        impl Agent for Stuck {
            fn on_wake(&mut self, now: SimTime, _net: &mut dyn Network) -> Option<SimTime> {
                Some(now) // not allowed: must advance
            }
        }
        let mut e = Engine::new();
        e.add_agent(Box::new(Stuck), SimTime(0));
        e.run(SimTime(10));
    }

    #[test]
    fn flow_loss_drops_deterministically_and_zero_rate_is_identity() {
        fn run_with(rate: f64) -> (RunStats, Vec<(SimTime, Ipv4Addr, u16)>) {
            let mut e = Engine::new();
            e.set_flow_loss(rate, 0xFA17);
            let sink = Rc::new(RefCell::new(Sink { seen: vec![] }));
            e.add_listener(sink.clone());
            for i in 0..8u8 {
                e.add_agent(
                    Box::new(Pinger {
                        remaining: 50,
                        dst: Ipv4Addr::new(10, 0, 0, i),
                        outcomes: vec![],
                    }),
                    SimTime(i as u64),
                );
            }
            let stats = e.run(SimTime(10_000));
            let log = sink.borrow().seen.clone();
            (stats, log)
        }
        // Zero rate is byte-for-byte the fault-free world.
        let (s0, log0) = run_with(0.0);
        let (s_off, log_off) = run_with(-0.0);
        assert_eq!(s0.flows_lost, 0);
        assert_eq!((s0, &log0), (s_off, &log_off));
        // A lossy run drops a plausible fraction, identically every time.
        let (s1, log1) = run_with(0.3);
        let (s2, log2) = run_with(0.3);
        assert_eq!((s1, &log1), (s2, &log2));
        assert!(s1.flows_lost > 0);
        assert_eq!(s1.flows_delivered + s1.flows_lost, s0.flows_delivered);
        let frac = s1.flows_lost as f64 / s0.flows_delivered as f64;
        assert!((0.2..0.4).contains(&frac), "loss fraction {frac}");
        // Survivors are a subsequence of the fault-free log.
        let mut it = log0.iter();
        assert!(log1.iter().all(|e| it.any(|f| f == e)));
    }

    #[test]
    fn retired_agents_stop_waking() {
        let mut e = Engine::new();
        e.add_agent(
            Box::new(Pinger {
                remaining: 2,
                dst: Ipv4Addr::new(99, 0, 0, 1),
                outcomes: vec![],
            }),
            SimTime(0),
        );
        let stats = e.run(SimTime(1_000_000));
        assert_eq!(stats.wakes, 2);
    }
}
