//! Geography: continents, countries, and provider regions.
//!
//! §5.1 groups regions "in the same manner that AWS and Google group
//! datacenters (i.e., North America, Europe, Asia Pacific)"; the Table 1
//! fleet spans 23 countries. Regions are identified by compact codes like
//! `US-OR` or `AP-SG` mirroring the paper's tables.

use std::fmt;

/// Continental grouping used throughout §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Continent {
    /// North America (US states + Canada).
    NorthAmerica,
    /// Europe.
    Europe,
    /// Asia Pacific — the region where attacker biases concentrate.
    AsiaPacific,
    /// South America (AWS São Paulo).
    SouthAmerica,
    /// Middle East (AWS Bahrain).
    MiddleEast,
    /// Africa (AWS Cape Town).
    Africa,
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Continent::NorthAmerica => "NA",
            Continent::Europe => "EU",
            Continent::AsiaPacific => "AP",
            Continent::SouthAmerica => "SA",
            Continent::MiddleEast => "ME",
            Continent::Africa => "AF",
        };
        f.write_str(s)
    }
}

/// A provider geographic region (datacenter location).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Region {
    /// Compact code, e.g. `US-OR`, `AP-SG`, `EU-DE`.
    pub code: String,
    /// ISO country code.
    pub country: String,
    /// Continental grouping.
    pub continent: Continent,
}

impl Region {
    /// Construct a region.
    pub fn new(code: &str, country: &str, continent: Continent) -> Self {
        Region {
            code: code.to_string(),
            country: country.to_string(),
            continent,
        }
    }

    /// Convenience constructor for US state regions.
    pub fn us(state: &str) -> Self {
        Region::new(&format!("US-{state}"), "US", Continent::NorthAmerica)
    }

    /// Convenience constructor for Asia-Pacific regions.
    pub fn ap(country: &str) -> Self {
        Region::new(&format!("AP-{country}"), country, Continent::AsiaPacific)
    }

    /// Convenience constructor for European regions.
    pub fn eu(country: &str) -> Self {
        Region::new(&format!("EU-{country}"), country, Continent::Europe)
    }

    /// Is this region in the same city/state-level location as `other`?
    /// (Used for Table 6's city-matched cloud–cloud comparisons.)
    pub fn same_location(&self, other: &Region) -> bool {
        self.code == other.code
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.code)
    }
}

/// Classification of a pair of regions, used by Table 5's grouping into
/// US / EU / APAC / intercontinental comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionPairKind {
    /// Both regions are in the United States.
    WithinUs,
    /// Both regions are in Europe.
    WithinEu,
    /// Both regions are in Asia Pacific.
    WithinApac,
    /// The regions are on different continents.
    Intercontinental,
    /// Same continent but not US/EU/APAC (e.g. two South American regions);
    /// the paper has no such pairs, but the type is total.
    OtherSameContinent,
}

/// Classify a pair of regions per Table 5's grouping.
pub fn classify_pair(a: &Region, b: &Region) -> RegionPairKind {
    if a.continent != b.continent {
        return RegionPairKind::Intercontinental;
    }
    match a.continent {
        Continent::NorthAmerica if a.country == "US" && b.country == "US" => {
            RegionPairKind::WithinUs
        }
        // The paper counts Canada–US pairs as intercontinental-style
        // "different region" comparisons only when continents differ; Canada
        // pairs inside North America that are not both-US fall out of the
        // US bucket.
        Continent::NorthAmerica => RegionPairKind::OtherSameContinent,
        Continent::Europe => RegionPairKind::WithinEu,
        Continent::AsiaPacific => RegionPairKind::WithinApac,
        _ => RegionPairKind::OtherSameContinent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = Region::us("OR");
        assert_eq!(r.code, "US-OR");
        assert_eq!(r.continent, Continent::NorthAmerica);
        let r = Region::ap("SG");
        assert_eq!(r.code, "AP-SG");
        assert_eq!(r.continent, Continent::AsiaPacific);
        let r = Region::eu("DE");
        assert_eq!(r.code, "EU-DE");
        assert_eq!(r.continent, Continent::Europe);
    }

    #[test]
    fn pair_classification() {
        let us1 = Region::us("OR");
        let us2 = Region::us("CA");
        let eu1 = Region::eu("DE");
        let eu2 = Region::eu("FR");
        let ap1 = Region::ap("SG");
        let ap2 = Region::ap("JP");
        let ca = Region::new("CA-QC", "CA", Continent::NorthAmerica);

        assert_eq!(classify_pair(&us1, &us2), RegionPairKind::WithinUs);
        assert_eq!(classify_pair(&eu1, &eu2), RegionPairKind::WithinEu);
        assert_eq!(classify_pair(&ap1, &ap2), RegionPairKind::WithinApac);
        assert_eq!(classify_pair(&us1, &eu1), RegionPairKind::Intercontinental);
        assert_eq!(classify_pair(&us1, &ap1), RegionPairKind::Intercontinental);
        assert_eq!(classify_pair(&us1, &ca), RegionPairKind::OtherSameContinent);
    }

    #[test]
    fn same_location() {
        assert!(Region::us("CA").same_location(&Region::us("CA")));
        assert!(!Region::us("CA").same_location(&Region::us("OR")));
    }

    #[test]
    fn display() {
        assert_eq!(Region::ap("HK").to_string(), "AP-HK");
        assert_eq!(Continent::AsiaPacific.to_string(), "AP");
    }
}
