//! Binary snapshot codec for the simulate-once artifact cache.
//!
//! The paper's pipeline is one observation campaign feeding many analyses;
//! this module provides the wire format that lets the reproduction do the
//! same. A simulation's captured state (interned event table, telescope
//! counters, reputation labels, …) is encoded with [`SnapWriter`], sealed
//! into a self-verifying container by [`seal`], and written under
//! `out/.cache/`. Later runs [`unseal`] and decode with [`SnapReader`]
//! instead of re-simulating.
//!
//! # Container format
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CWSNAP\x00\x01"
//! 8       4     format version (u32 LE) — bump on any layout change
//! 12      8     payload length N (u64 LE)
//! 20      N     payload (SnapWriter-encoded body)
//! 20+N    32    SHA-256 of the payload bytes
//! ```
//!
//! [`unseal`] fails closed: a bad magic, unknown version, truncated body,
//! or digest mismatch all return a [`SnapError`] and the caller silently
//! falls back to re-simulating. Corruption can therefore cost time but
//! never correctness.
//!
//! # Encoding rules
//!
//! All integers are little-endian and fixed-width. Collections are
//! length-prefixed with a `u64` count. `f64` travels as its IEEE-754 bit
//! pattern. There is no alignment, padding, or backward compatibility:
//! the format version is part of the cache key, so readers only ever see
//! bytes their own writer produced.

use crate::sha256::sha256;

/// Leading bytes of every sealed snapshot container.
pub const MAGIC: [u8; 8] = *b"CWSNAP\x00\x01";

/// Current snapshot format version. Bump whenever any encoded layout
/// changes; stale cache entries then miss on the version check (and on
/// the content-addressed filename) and are re-simulated.
///
/// Version history: 1 = initial sealed-container layout; 2 = scenario
/// config carries a serialized [`crate::fault::FaultPlan`].
pub const FORMAT_VERSION: u32 = 2;

/// Why a snapshot failed to decode.
///
/// Every variant is a cache *miss*, not a hard error: the caller discards
/// the snapshot and re-simulates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The container or payload ended before an expected field.
    Truncated,
    /// The leading magic bytes are not [`MAGIC`].
    BadMagic,
    /// The container's format version is not the one this build writes.
    VersionMismatch {
        /// Version found in the container header.
        found: u32,
        /// Version this build expects ([`FORMAT_VERSION`]).
        expected: u32,
    },
    /// The payload's SHA-256 does not match the stored trailer digest.
    HashMismatch,
    /// A decoded value is structurally impossible (e.g. a non-UTF-8
    /// string, or a count that contradicts a sibling column).
    Malformed(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "snapshot magic bytes missing"),
            SnapError::VersionMismatch { found, expected } => {
                write!(f, "snapshot format v{found}, expected v{expected}")
            }
            SnapError::HashMismatch => write!(f, "snapshot payload hash mismatch"),
            SnapError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder for the snapshot payload.
///
/// Symmetric with [`SnapReader`]: every `put_*` here has a matching
/// `get_*` there, and a round trip reproduces the values exactly.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Encoded payload size so far, in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the raw payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a byte string: `u64` length prefix, then the raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a UTF-8 string (same wire form as [`SnapWriter::put_bytes`]).
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor-based decoder over a snapshot payload.
///
/// Reads fail with [`SnapError::Truncated`] rather than panicking, so a
/// damaged cache file can never take down an analysis run.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        SnapReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the payload has been fully consumed (decoders check this
    /// at the end so trailing garbage is treated as corruption).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.data.len() {
            return Err(SnapError::Truncated);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16` (little-endian).
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32` (little-endian).
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64` (little-endian).
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.get_u64()?;
        let len = usize::try_from(len).map_err(|_| SnapError::Truncated)?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| SnapError::Malformed("non-UTF-8 string"))
    }

    /// Read a `u64` count and sanity-cap it: a count implying more than
    /// `remaining()` single bytes is corruption, not a huge snapshot.
    pub fn get_count(&mut self) -> Result<usize, SnapError> {
        let n = self.get_u64()?;
        let n = usize::try_from(n).map_err(|_| SnapError::Truncated)?;
        if n > self.data.len() {
            return Err(SnapError::Truncated);
        }
        Ok(n)
    }
}

/// Wrap an encoded payload in the self-verifying container: magic,
/// format version, length, payload, SHA-256 trailer.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len() + 32);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&sha256(payload));
    out
}

/// Verify a sealed container and return its payload slice.
///
/// Checks, in order: magic bytes, format version, declared length vs
/// actual size (exact — trailing bytes are corruption), and the SHA-256
/// trailer over the payload. Any failure is a [`SnapError`] the caller
/// treats as a cache miss.
pub fn unseal(container: &[u8]) -> Result<&[u8], SnapError> {
    let mut r = SnapReader::new(container);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let len = usize::try_from(r.get_u64()?).map_err(|_| SnapError::Truncated)?;
    if r.remaining() != len + 32 {
        return Err(SnapError::Truncated);
    }
    let payload = r.take(len)?;
    let stored: [u8; 32] = r.take(32)?.try_into().unwrap();
    if sha256(payload) != stored {
        return Err(SnapError::HashMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xCDEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-0.1234567890123);
        w.put_bytes(b"\x00blob\xFF");
        w.put_str("p\u{e5}ssword");
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xCDEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), -0.1234567890123);
        assert_eq!(r.get_bytes().unwrap(), b"\x00blob\xFF");
        assert_eq!(r.get_str().unwrap(), "p\u{e5}ssword");
        assert!(r.is_exhausted());
    }

    #[test]
    fn f64_bit_patterns_survive_exactly() {
        for v in [0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1e300] {
            let mut w = SnapWriter::new();
            w.put_f64(v);
            let bytes = w.into_bytes();
            let got = SnapReader::new(&bytes).get_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = SnapWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(SnapError::Truncated));
        // A length prefix promising more bytes than exist is also truncation.
        let mut w = SnapWriter::new();
        w.put_u64(1_000_000);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(SnapError::Truncated));
    }

    #[test]
    fn non_utf8_string_is_malformed() {
        let mut w = SnapWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(SnapError::Malformed(_))));
    }

    #[test]
    fn seal_unseal_round_trip() {
        let payload = b"the quick brown fox";
        let sealed = seal(payload);
        assert_eq!(unseal(&sealed).unwrap(), payload);
    }

    #[test]
    fn unseal_rejects_bad_magic() {
        let mut sealed = seal(b"data");
        sealed[0] ^= 0x01;
        assert_eq!(unseal(&sealed), Err(SnapError::BadMagic));
    }

    #[test]
    fn unseal_rejects_version_mismatch() {
        let mut sealed = seal(b"data");
        sealed[8] = 0xFE; // low byte of the u32 LE version field
        assert!(matches!(
            unseal(&sealed),
            Err(SnapError::VersionMismatch { found: 0xFE, .. })
        ));
    }

    #[test]
    fn unseal_rejects_truncation() {
        let sealed = seal(b"data");
        assert_eq!(unseal(&sealed[..sealed.len() - 1]), Err(SnapError::Truncated));
        // Trailing garbage is equally fatal: length must match exactly.
        let mut padded = sealed.clone();
        padded.push(0);
        assert_eq!(unseal(&padded), Err(SnapError::Truncated));
    }

    #[test]
    fn unseal_rejects_payload_corruption() {
        let mut sealed = seal(b"exhibit payload bytes");
        let payload_start = MAGIC.len() + 4 + 8;
        sealed[payload_start + 3] ^= 0x20;
        assert_eq!(unseal(&sealed), Err(SnapError::HashMismatch));
    }

    #[test]
    fn empty_payload_seals_fine() {
        let sealed = seal(b"");
        assert_eq!(unseal(&sealed).unwrap(), b"");
    }
}
