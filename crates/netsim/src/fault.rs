//! Deterministic measurement-fault injection.
//!
//! The paper's data comes from real honeypots and telescopes, and real
//! vantage points fail: sensors go down for hours, packets are lost in
//! transit, captures are truncated mid-payload, and telescopes sample
//! rather than record. The reproduction's worlds are perfect by default,
//! which means it cannot say which findings *survive* degraded
//! measurement. This module injects exactly those four fault families —
//! without giving up a single byte of determinism.
//!
//! # The purity contract
//!
//! Every fault decision is a **pure function of the fault seed and the
//! flow (or vantage) it applies to** — never of RNG call order, thread
//! count, shard count, or cache state:
//!
//! - per-flow coins ([`flow_coin`]) hash `(salt, time, src, dst, port)`;
//!   the flow's engine-local `seq` is deliberately excluded because it is
//!   *not* shard-invariant (each shard engine numbers its own sends);
//! - per-vantage outage windows ([`OutageSchedule`]) are derived from
//!   `fork_seed(fault_seed, vantage_index)` at deployment build time, so
//!   every shard computes the same schedule from the same config;
//! - the fault seed itself is `fork_seed(scenario_seed, FAULT_DOMAIN)`,
//!   one sub-domain per mechanism ([`FaultDomain`]), so faults never
//!   perturb the population's RNG streams and vice versa.
//!
//! Consequently an injected run is byte-identical across threads × shards
//! × cache states (the same contract as everything else in the pipeline),
//! and [`FaultPlan::none`] reproduces the fault-free world exactly.

use crate::rng::{fork_seed, SimRng, SplitMix64};
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Root RNG domain for all fault schedules: `fork_seed(scenario_seed,
/// FAULT_DOMAIN)` is the fault seed. The constant is arbitrary but fixed —
/// changing it would re-randomize every published degraded world.
pub const FAULT_DOMAIN: u64 = 0xFA17_0000_0000_0001;

/// Per-mechanism sub-domains under the fault seed. Each mechanism draws
/// its salts from its own fork so that, e.g., raising the loss rate never
/// moves an outage window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDomain {
    /// Network-level flow loss (engine drop point).
    FlowLoss,
    /// Per-vantage outage windows (listener drop point).
    Outage,
    /// Capture truncation (honeypot record point).
    Truncation,
    /// Telescope packet sampling (telescope drop point).
    TelescopeSample,
}

impl FaultDomain {
    fn stream_id(self) -> u64 {
        match self {
            FaultDomain::FlowLoss => 1,
            FaultDomain::Outage => 2,
            FaultDomain::Truncation => 3,
            FaultDomain::TelescopeSample => 4,
        }
    }
}

/// The fault seed of a scenario: the root of every fault schedule.
pub fn fault_seed(scenario_seed: u64) -> u64 {
    fork_seed(scenario_seed, FAULT_DOMAIN)
}

/// The salt for one fault mechanism under a scenario's fault seed.
pub fn domain_salt(scenario_seed: u64, domain: FaultDomain) -> u64 {
    fork_seed(fault_seed(scenario_seed), domain.stream_id())
}

/// A deterministic measurement-fault configuration.
///
/// All-zero rates (and `telescope_sample <= 1`) mean "no faults": that is
/// [`FaultPlan::none`], and [`FaultPlan::is_none`] is the gate every drop
/// point uses to take the legacy fault-free fast path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Fraction of all flows the network silently drops before any
    /// listener sees them, in `[0, 1]`.
    pub flow_loss: f64,
    /// Fraction of the collection window each vantage spends down, in
    /// `[0, 1)`. Each vantage gets its own schedule.
    pub outage: f64,
    /// Number of outage windows per vantage the downtime is split into
    /// (0 is treated as 1).
    pub outage_windows: u32,
    /// Fraction of recorded payload captures that are truncated, in
    /// `[0, 1]`.
    pub truncation: f64,
    /// Bytes kept of a truncated payload capture.
    pub truncate_to: u32,
    /// The telescope keeps 1 in `telescope_sample` packets (0 and 1 both
    /// mean "keep everything").
    pub telescope_sample: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: every schedule empty, every coin unwinnable.
    pub const fn none() -> Self {
        FaultPlan {
            flow_loss: 0.0,
            outage: 0.0,
            outage_windows: 1,
            truncation: 0.0,
            truncate_to: 64,
            telescope_sample: 1,
        }
    }

    /// Does this plan inject nothing? (The shape knobs `outage_windows`
    /// and `truncate_to` do not count: with their rates at zero they are
    /// unobservable.)
    pub fn is_none(&self) -> bool {
        self.flow_loss == 0.0
            && self.outage == 0.0
            && self.truncation == 0.0
            && self.telescope_sample <= 1
    }

    /// Panic unless every rate is a sane probability. Called at the
    /// configuration boundary (CLI parse, scenario construction) so a bad
    /// plan fails loudly before any simulation runs.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.flow_loss) && self.flow_loss.is_finite(),
            "flow_loss must be a probability, got {}",
            self.flow_loss
        );
        assert!(
            (0.0..1.0).contains(&self.outage),
            "outage must be in [0, 1), got {}",
            self.outage
        );
        assert!(
            (0.0..=1.0).contains(&self.truncation) && self.truncation.is_finite(),
            "truncation must be a probability, got {}",
            self.truncation
        );
    }

    /// Canonical content-key fragment: distinct plans must never share a
    /// snapshot, so rates enter as IEEE bit patterns (the same rule the
    /// scenario scale uses). Returns `None` for the no-fault plan so that
    /// fault-free cache addresses stay exactly what they were before
    /// fault injection existed.
    pub fn cache_key_fragment(&self) -> Option<String> {
        if self.is_none() {
            return None;
        }
        Some(format!(
            " loss={:016x} outage={:016x} windows={} trunc={:016x} keep={} tsample={}",
            self.flow_loss.to_bits(),
            self.outage.to_bits(),
            self.outage_windows.max(1),
            self.truncation.to_bits(),
            self.truncate_to,
            self.telescope_sample.max(1),
        ))
    }

    /// Encode into a snapshot payload (format version 2 layout).
    pub fn snap_write(&self, w: &mut SnapWriter) {
        w.put_f64(self.flow_loss);
        w.put_f64(self.outage);
        w.put_u32(self.outage_windows);
        w.put_f64(self.truncation);
        w.put_u32(self.truncate_to);
        w.put_u32(self.telescope_sample);
    }

    /// Decode from a snapshot payload.
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<FaultPlan, SnapError> {
        Ok(FaultPlan {
            flow_loss: r.get_f64()?,
            outage: r.get_f64()?,
            outage_windows: r.get_u32()?,
            truncation: r.get_f64()?,
            truncate_to: r.get_u32()?,
            telescope_sample: r.get_u32()?,
        })
    }

    /// Bit-exact equality (the identity test snapshot loading uses; `==`
    /// on `f64` fields would treat `-0.0` and `0.0` rates as equal but
    /// give them different cache addresses).
    pub fn same_bits(&self, other: &FaultPlan) -> bool {
        self.flow_loss.to_bits() == other.flow_loss.to_bits()
            && self.outage.to_bits() == other.outage.to_bits()
            && self.outage_windows == other.outage_windows
            && self.truncation.to_bits() == other.truncation.to_bits()
            && self.truncate_to == other.truncate_to
            && self.telescope_sample == other.telescope_sample
    }
}

/// Hash one flow identity under a salt. `seq` is deliberately not an
/// input: it is engine-local and therefore differs between sharded and
/// unsharded runs of the same world (see the module docs).
pub fn flow_hash(salt: u64, time: SimTime, src: Ipv4Addr, dst: Ipv4Addr, port: u16) -> u64 {
    let mut sm = SplitMix64::new(salt ^ time.secs().wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let a = sm.next_u64();
    let key = (u32::from(src) as u64) << 32 | u32::from(dst) as u64;
    let mut sm = SplitMix64::new(a ^ key);
    let b = sm.next_u64();
    let mut sm = SplitMix64::new(b ^ port as u64);
    sm.next_u64()
}

/// A uniform coin in `[0, 1)` for one flow identity under a salt — the
/// per-flow fault decision primitive. Pure in its inputs, so every
/// execution strategy flips the same coins.
pub fn flow_coin(salt: u64, time: SimTime, src: Ipv4Addr, dst: Ipv4Addr, port: u16) -> f64 {
    // 53 high bits → uniform double in [0, 1).
    (flow_hash(salt, time, src, dst, port) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Network-level flow loss: the engine's drop point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowLoss {
    /// Loss probability in `[0, 1]`.
    pub rate: f64,
    /// Decision salt ([`domain_salt`] with [`FaultDomain::FlowLoss`]).
    pub salt: u64,
}

impl FlowLoss {
    /// Does the network drop this flow? Pure in the flow identity.
    pub fn drops(&self, time: SimTime, src: Ipv4Addr, dst: Ipv4Addr, port: u16) -> bool {
        self.rate > 0.0 && flow_coin(self.salt, time, src, dst, port) < self.rate
    }
}

/// A vantage point's deterministic downtime schedule: a sorted list of
/// half-open `[from, to)` windows within the collection horizon.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutageSchedule {
    windows: Vec<(SimTime, SimTime)>,
}

impl OutageSchedule {
    /// An always-up schedule.
    pub fn none() -> Self {
        OutageSchedule::default()
    }

    /// Derive vantage `vantage_index`'s schedule: `windows` outages of
    /// equal length totalling `frac` of `horizon`, window *i* placed
    /// uniformly at random inside the *i*-th equal segment of the horizon
    /// (so windows never overlap and their spread looks like real sensor
    /// downtime rather than one long gap).
    ///
    /// Pure in `(outage_salt, vantage_index, horizon, frac, windows)`:
    /// the schedule is computed identically by every shard that builds
    /// the deployment.
    pub fn derive(
        outage_salt: u64,
        vantage_index: u64,
        horizon: SimDuration,
        frac: f64,
        windows: u32,
    ) -> Self {
        if frac <= 0.0 || horizon.secs() == 0 {
            return OutageSchedule::none();
        }
        let n = windows.max(1) as u64;
        let mut rng = SimRng::seed_from_u64(fork_seed(outage_salt, vantage_index));
        let seg = horizon.secs() / n;
        if seg == 0 {
            return OutageSchedule::none();
        }
        let down_per_window = ((horizon.secs() as f64 * frac) / n as f64).round() as u64;
        let down_per_window = down_per_window.min(seg).max(1);
        let mut out = Vec::with_capacity(n as usize);
        for i in 0..n {
            let seg_start = i * seg;
            let slack = seg - down_per_window;
            let offset = if slack == 0 { 0 } else { rng.range(0, slack) };
            let from = SimTime(seg_start + offset);
            let to = SimTime(seg_start + offset + down_per_window);
            out.push((from, to));
        }
        OutageSchedule { windows: out }
    }

    /// Is the vantage down at `t`?
    pub fn is_down(&self, t: SimTime) -> bool {
        // Schedules are tiny (a handful of windows) and sorted; a linear
        // scan with early exit beats a binary search at this size.
        for &(from, to) in &self.windows {
            if t < from {
                return false;
            }
            if t < to {
                return true;
            }
        }
        false
    }

    /// The scheduled windows (sorted, non-overlapping).
    pub fn windows(&self) -> &[(SimTime, SimTime)] {
        &self.windows
    }

    /// Total scheduled downtime.
    pub fn total_downtime(&self) -> SimDuration {
        SimDuration::from_secs(self.windows.iter().map(|(f, t)| t.secs() - f.secs()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WEEK: SimDuration = SimDuration::WEEK;

    #[test]
    fn none_plan_is_none_and_validates() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        p.validate();
        assert!(p.cache_key_fragment().is_none());
        // Shape knobs alone do not make a plan observable.
        let shaped = FaultPlan {
            outage_windows: 9,
            truncate_to: 3,
            ..FaultPlan::none()
        };
        assert!(shaped.is_none());
        assert!(shaped.cache_key_fragment().is_none());
    }

    #[test]
    fn non_trivial_plans_have_distinct_key_fragments() {
        let base = FaultPlan {
            flow_loss: 0.1,
            ..FaultPlan::none()
        };
        let a = base.cache_key_fragment().unwrap();
        let b = FaultPlan {
            flow_loss: 0.2,
            ..base
        }
        .cache_key_fragment()
        .unwrap();
        let c = FaultPlan {
            telescope_sample: 4,
            ..base
        }
        .cache_key_fragment()
        .unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn same_bits_distinguishes_negative_zero() {
        let a = FaultPlan {
            flow_loss: 0.0,
            telescope_sample: 4,
            ..FaultPlan::none()
        };
        let b = FaultPlan {
            flow_loss: -0.0,
            ..a
        };
        assert!(a == b); // PartialEq: -0.0 == 0.0
        assert!(!a.same_bits(&b)); // identity: different worlds keys
    }

    #[test]
    fn flow_coin_is_pure_and_uniform_ish() {
        let salt = domain_salt(42, FaultDomain::FlowLoss);
        let src = Ipv4Addr::new(1, 2, 3, 4);
        let dst = Ipv4Addr::new(10, 0, 0, 1);
        let a = flow_coin(salt, SimTime(100), src, dst, 22);
        let b = flow_coin(salt, SimTime(100), src, dst, 22);
        assert_eq!(a, b);
        // Distinct identities decorrelate; a 10% coin hits ~10% of flows.
        let mut hits = 0u32;
        let n = 10_000u32;
        for i in 0..n {
            let t = SimTime(i as u64);
            if flow_coin(salt, t, src, dst, 22) < 0.1 {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((0.07..0.13).contains(&rate), "rate {rate}");
    }

    #[test]
    fn domain_salts_are_distinct() {
        let s = 7;
        let all = [
            domain_salt(s, FaultDomain::FlowLoss),
            domain_salt(s, FaultDomain::Outage),
            domain_salt(s, FaultDomain::Truncation),
            domain_salt(s, FaultDomain::TelescopeSample),
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_ne!(fault_seed(7), 7);
    }

    #[test]
    fn zero_rate_loss_never_drops() {
        let loss = FlowLoss { rate: 0.0, salt: 1 };
        for i in 0..1000 {
            assert!(!loss.drops(
                SimTime(i),
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                80
            ));
        }
    }

    #[test]
    fn outage_schedule_is_pure_and_respects_budget() {
        let salt = domain_salt(11, FaultDomain::Outage);
        let a = OutageSchedule::derive(salt, 3, WEEK, 0.25, 4);
        let b = OutageSchedule::derive(salt, 3, WEEK, 0.25, 4);
        assert_eq!(a, b);
        assert_ne!(a, OutageSchedule::derive(salt, 4, WEEK, 0.25, 4));
        assert_eq!(a.windows().len(), 4);
        let down = a.total_downtime().secs() as f64;
        let want = WEEK.secs() as f64 * 0.25;
        assert!((down - want).abs() / want < 0.01, "down {down}, want {want}");
        // Windows are sorted, non-overlapping, inside the horizon.
        let mut last_end = 0;
        for &(from, to) in a.windows() {
            assert!(from.secs() >= last_end);
            assert!(to.secs() <= WEEK.secs());
            assert!(from < to);
            last_end = to.secs();
        }
    }

    #[test]
    fn is_down_matches_windows() {
        let salt = domain_salt(11, FaultDomain::Outage);
        let s = OutageSchedule::derive(salt, 0, WEEK, 0.1, 3);
        for &(from, to) in s.windows() {
            assert!(s.is_down(from));
            assert!(s.is_down(SimTime(to.secs() - 1)));
            assert!(!s.is_down(to) || s.windows().iter().any(|&(f, t)| to >= f && to < t));
        }
        assert!(!OutageSchedule::none().is_down(SimTime(0)));
        assert_eq!(
            OutageSchedule::derive(salt, 0, WEEK, 0.0, 3),
            OutageSchedule::none()
        );
    }
}
