//! libpcap file export: synthesize Ethernet/IPv4/TCP frames for observed
//! flows so captures open in Wireshark/tcpdump.
//!
//! The honeypots record application-level observations; for interchange
//! with standard tooling the exporter rebuilds a minimal but well-formed
//! packet per event: Ethernet II → IPv4 (with correct header checksum) →
//! TCP (SYN for probe observations, PSH+ACK with payload otherwise).

use crate::time::SimTime;
use std::io::{self, Write};
use std::net::Ipv4Addr;

/// Classic libpcap global header values.
const MAGIC: u32 = 0xA1B2_C3D4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const SNAPLEN: u32 = 65_535;
const LINKTYPE_ETHERNET: u32 = 1;

/// A libpcap writer over any byte sink.
pub struct PcapWriter<W: Write> {
    out: W,
    /// Wall-clock epoch offset added to simulated seconds (the paper's
    /// window starts July 1; callers pick the year's epoch).
    epoch: u32,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header. `epoch` is the UNIX
    /// timestamp of simulated time zero.
    pub fn new(mut out: W, epoch: u32) -> io::Result<Self> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&VERSION_MAJOR.to_le_bytes())?;
        out.write_all(&VERSION_MINOR.to_le_bytes())?;
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&SNAPLEN.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out, epoch })
    }

    /// Write one TCP packet record.
    #[allow(clippy::too_many_arguments)]
    ///
    /// `syn_only` selects a bare SYN (telescope-style first packet); with
    /// `payload` bytes the packet is a PSH+ACK data segment.
    pub fn write_tcp(
        &mut self,
        time: SimTime,
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
        syn_only: bool,
    ) -> io::Result<()> {
        let frame = build_frame(src, src_port, dst, dst_port, payload, syn_only);
        let ts_sec = self.epoch.wrapping_add(time.secs() as u32);
        self.out.write_all(&ts_sec.to_le_bytes())?;
        self.out.write_all(&0u32.to_le_bytes())?; // microseconds
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&frame)
    }

    /// Flush and return the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Build the Ethernet/IPv4/TCP frame bytes.
pub fn build_frame(
    src: Ipv4Addr,
    src_port: u16,
    dst: Ipv4Addr,
    dst_port: u16,
    payload: &[u8],
    syn_only: bool,
) -> Vec<u8> {
    let payload = if syn_only { &[][..] } else { payload };
    // The IPv4 total-length field is 16 bits; clamp oversized payloads so
    // the record stays well-formed (a real stack would segment).
    const MAX_PAYLOAD: usize = 65_535 - 40;
    let payload = &payload[..payload.len().min(MAX_PAYLOAD)];
    let tcp_len = 20 + payload.len();
    let ip_len = 20 + tcp_len;
    let mut frame = Vec::with_capacity(14 + ip_len);

    // Ethernet II.
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01]); // dst MAC
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x02]); // src MAC
    frame.extend_from_slice(&[0x08, 0x00]); // IPv4 ethertype

    // IPv4 header.
    let ip_start = frame.len();
    frame.push(0x45); // version 4, IHL 5
    frame.push(0x00); // DSCP/ECN
    frame.extend_from_slice(&(ip_len as u16).to_be_bytes());
    frame.extend_from_slice(&[0x00, 0x00]); // identification
    frame.extend_from_slice(&[0x40, 0x00]); // don't fragment
    frame.push(64); // TTL
    frame.push(6); // TCP
    frame.extend_from_slice(&[0x00, 0x00]); // checksum placeholder
    frame.extend_from_slice(&src.octets());
    frame.extend_from_slice(&dst.octets());
    let checksum = ipv4_checksum(&frame[ip_start..ip_start + 20]);
    frame[ip_start + 10..ip_start + 12].copy_from_slice(&checksum.to_be_bytes());

    // TCP header (checksum left zero — standard for synthesized captures).
    frame.extend_from_slice(&src_port.to_be_bytes());
    frame.extend_from_slice(&dst_port.to_be_bytes());
    frame.extend_from_slice(&1u32.to_be_bytes()); // seq
    frame.extend_from_slice(&(if syn_only { 0u32 } else { 1u32 }).to_be_bytes()); // ack
    frame.push(0x50); // data offset 5
    frame.push(if syn_only { 0x02 } else { 0x18 }); // SYN vs PSH+ACK
    frame.extend_from_slice(&0xFFFFu16.to_be_bytes()); // window
    frame.extend_from_slice(&[0x00, 0x00]); // checksum
    frame.extend_from_slice(&[0x00, 0x00]); // urgent
    frame.extend_from_slice(payload);
    frame
}

/// RFC 1071 ones-complement checksum over an IPv4 header.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]);
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_header_is_wellformed() {
        let mut buf = Vec::new();
        PcapWriter::new(&mut buf, 1_625_097_600).unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], &MAGIC.to_le_bytes());
        assert_eq!(u32::from_le_bytes(buf[20..24].try_into().unwrap()), 1);
    }

    #[test]
    fn syn_record_has_correct_lengths_and_flags() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 0).unwrap();
        w.write_tcp(
            SimTime(60),
            Ipv4Addr::new(100, 0, 0, 1),
            40_000,
            Ipv4Addr::new(10, 0, 0, 1),
            445,
            b"ignored for syn",
            true,
        )
        .unwrap();
        w.finish().unwrap();
        // record header at offset 24: ts=60, lens = 14+20+20 = 54.
        assert_eq!(u32::from_le_bytes(buf[24..28].try_into().unwrap()), 60);
        assert_eq!(u32::from_le_bytes(buf[32..36].try_into().unwrap()), 54);
        let frame = &buf[40..];
        assert_eq!(frame.len(), 54);
        // TCP flags: SYN at eth(14)+ip(20)+13.
        assert_eq!(frame[14 + 20 + 13], 0x02);
    }

    #[test]
    fn payload_record_carries_bytes_and_valid_ip_checksum() {
        let payload = b"GET / HTTP/1.1\r\n\r\n";
        let frame = build_frame(
            Ipv4Addr::new(100, 0, 0, 2),
            55_555,
            Ipv4Addr::new(20, 10, 0, 1),
            80,
            payload,
            false,
        );
        assert!(frame.ends_with(payload));
        // PSH+ACK flags.
        assert_eq!(frame[14 + 20 + 13], 0x18);
        // Recomputing the checksum over the header (with its checksum field
        // in place) must give zero.
        let ip = &frame[14..34];
        let mut sum = 0u32;
        for c in ip.chunks(2) {
            sum += u16::from_be_bytes([c[0], c[1]]) as u32;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(!(sum as u16), 0, "IPv4 checksum must validate");
        // Total length field matches.
        let total = u16::from_be_bytes([ip[2], ip[3]]) as usize;
        assert_eq!(total, frame.len() - 14);
    }

    #[test]
    fn ports_and_addresses_round_trip() {
        let frame = build_frame(
            Ipv4Addr::new(1, 2, 3, 4),
            1234,
            Ipv4Addr::new(5, 6, 7, 8),
            2323,
            b"x",
            false,
        );
        assert_eq!(&frame[26..30], &[1, 2, 3, 4]); // src ip
        assert_eq!(&frame[30..34], &[5, 6, 7, 8]); // dst ip
        assert_eq!(u16::from_be_bytes([frame[34], frame[35]]), 1234);
        assert_eq!(u16::from_be_bytes([frame[36], frame[37]]), 2323);
    }
}
