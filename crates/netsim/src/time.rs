//! Simulated time: integer seconds since the start of a measurement window.
//!
//! The paper's measurement windows are one-week slices (July 1–7 of 2020,
//! 2021, 2022). We model time as seconds from the start of such a window;
//! no wall clock is consulted anywhere in the workspace, which keeps every
//! experiment bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (seconds since window start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The window start.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since window start.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Zero-based hour index within the window (Table 3 is per-hour).
    pub fn hour(self) -> u64 {
        self.0 / 3600
    }

    /// Zero-based day index within the window.
    pub fn day(self) -> u64 {
        self.0 / 86_400
    }

    /// Saturating difference between two times.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// One simulated second.
    pub const SECOND: SimDuration = SimDuration(1);
    /// One simulated minute.
    pub const MINUTE: SimDuration = SimDuration(60);
    /// One simulated hour.
    pub const HOUR: SimDuration = SimDuration(3600);
    /// One simulated day.
    pub const DAY: SimDuration = SimDuration(86_400);
    /// The paper's one-week collection window.
    pub const WEEK: SimDuration = SimDuration(7 * 86_400);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s)
    }

    /// The span in seconds.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// The span in whole hours (rounded down).
    pub fn hours(self) -> u64 {
        self.0 / 3600
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day();
        let h = (self.0 % 86_400) / 3600;
        let m = (self.0 % 3600) / 60;
        let s = self.0 % 60;
        write!(f, "d{d} {h:02}:{m:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_and_day_indices() {
        assert_eq!(SimTime(0).hour(), 0);
        assert_eq!(SimTime(3599).hour(), 0);
        assert_eq!(SimTime(3600).hour(), 1);
        assert_eq!(SimTime(86_400).day(), 1);
        assert_eq!((SimTime::ZERO + SimDuration::WEEK).hour(), 168);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration::from_secs(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t.since(SimTime(100)), SimDuration(50));
        // Saturating in both directions.
        assert_eq!(SimTime(10).since(SimTime(20)), SimDuration(0));
        assert_eq!(SimTime(10) - SimDuration(20), SimTime(0));
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime(90_061).to_string(), "d1 01:01:01");
    }

    #[test]
    fn week_constant() {
        assert_eq!(SimDuration::WEEK.secs(), 604_800);
        assert_eq!(SimDuration::WEEK.hours(), 168);
    }
}
