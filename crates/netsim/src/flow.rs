//! Flows: the unit of traffic an agent sends and a listener observes.
//!
//! A flow models one connection attempt. What the observer *records* depends
//! on its collection method (§3.1): a telescope sees only the first packet
//! (SYN); Honeytrap completes the handshake and records the first client
//! payload; Cowrie additionally speaks enough SSH/Telnet to harvest the
//! attempted credentials. The scanner encodes its intent once; the listener
//! decides what it can observe.

use crate::asn::Asn;
use crate::intern::{Interner, PayloadId};
use crate::time::SimTime;
use std::net::Ipv4Addr;

/// The SSH client version banner a first-payload collector records from an
/// interactive SSH login attempt (sent immediately after the TCP handshake).
pub const SSH_CLIENT_BANNER: &[u8] = b"SSH-2.0-Go\r\n";

/// Which login-prompting service an interactive attempt is aimed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LoginService {
    /// SSH (ports 22 / 2222 in the deployment).
    Ssh,
    /// Telnet (ports 23 / 2323 in the deployment).
    Telnet,
}

impl LoginService {
    /// Canonical protocol label.
    pub fn label(&self) -> &'static str {
        match self {
            LoginService::Ssh => "SSH",
            LoginService::Telnet => "TELNET",
        }
    }
}

/// What the client plans to do once (if) the connection opens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectionIntent {
    /// SYN-scan style probe: connect (or not even that) and send nothing.
    ProbeOnly,
    /// Client-first protocol: send these bytes as the first payload.
    Payload(Vec<u8>),
    /// Interactive login attempt against an SSH/Telnet-style service. Only a
    /// listener that actually speaks the protocol (Cowrie) observes the
    /// credentials; a handshake-only listener sees at most the client
    /// banner (SSH) or nothing (Telnet is server-first).
    Login {
        /// Target service dialect.
        service: LoginService,
        /// Attempted username.
        username: String,
        /// Attempted password.
        password: String,
    },
}

impl ConnectionIntent {
    /// The first bytes a handshake-only observer (Honeytrap/GreyNoise
    /// non-interactive port) would record for this intent, if any.
    pub fn first_payload_bytes(&self) -> Option<Vec<u8>> {
        match self {
            ConnectionIntent::ProbeOnly => None,
            ConnectionIntent::Payload(p) => Some(p.clone()),
            ConnectionIntent::Login { service, .. } => match service {
                // SSH clients send their version banner immediately after
                // the TCP handshake, so a first-payload collector sees it.
                LoginService::Ssh => Some(SSH_CLIENT_BANNER.to_vec()),
                // Telnet is server-first: a silent collector records nothing.
                LoginService::Telnet => None,
            },
        }
    }

    /// Like [`ConnectionIntent::first_payload_bytes`], but interning the
    /// bytes instead of cloning them — the record-path fast lane.
    pub fn first_payload_id(&self, interner: &mut Interner) -> Option<PayloadId> {
        match self {
            ConnectionIntent::ProbeOnly => None,
            ConnectionIntent::Payload(p) => Some(interner.intern_payload(p)),
            ConnectionIntent::Login { service, .. } => match service {
                LoginService::Ssh => Some(interner.intern_payload(SSH_CLIENT_BANNER)),
                LoginService::Telnet => None,
            },
        }
    }
}

/// A flow as specified by the sending agent (engine stamps time / delivery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source address the agent scans from.
    pub src: Ipv4Addr,
    /// Source autonomous system.
    pub src_asn: Asn,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination TCP port.
    pub dst_port: u16,
    /// Client behavior after connect.
    pub intent: ConnectionIntent,
}

/// A delivered flow: a [`FlowSpec`] stamped with time and the sending agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Delivery time.
    pub time: SimTime,
    /// Engine-assigned id of the sending agent (ground truth for tests;
    /// analyses must not use it).
    pub agent: u32,
    /// Engine-local send sequence number, monotone in delivery order.
    /// `(time, agent, seq)` totally orders every flow an engine delivers,
    /// which is what lets sharded runs merge back into the exact unsharded
    /// record order (analyses must not use it).
    pub seq: u64,
    /// Source address.
    pub src: Ipv4Addr,
    /// Source autonomous system.
    pub src_asn: Asn,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination TCP port.
    pub dst_port: u16,
    /// Client behavior after connect.
    pub intent: ConnectionIntent,
}

impl Flow {
    /// Assemble a [`Flow`] from its spec plus engine-provided stamps. The
    /// send sequence number starts at 0; the engine stamps the real value
    /// just before delivery.
    pub fn from_spec(spec: FlowSpec, time: SimTime, agent: u32) -> Self {
        Flow {
            time,
            agent,
            seq: 0,
            src: spec.src,
            src_asn: spec.src_asn,
            dst: spec.dst,
            dst_port: spec.dst_port,
            intent: spec.intent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssh_login_leaks_client_banner_to_payload_collectors() {
        let intent = ConnectionIntent::Login {
            service: LoginService::Ssh,
            username: "root".into(),
            password: "admin".into(),
        };
        let bytes = intent.first_payload_bytes().unwrap();
        assert!(bytes.starts_with(b"SSH-"));
    }

    #[test]
    fn telnet_login_is_invisible_to_payload_collectors() {
        let intent = ConnectionIntent::Login {
            service: LoginService::Telnet,
            username: "root".into(),
            password: "root".into(),
        };
        assert!(intent.first_payload_bytes().is_none());
    }

    #[test]
    fn probe_has_no_payload() {
        assert!(ConnectionIntent::ProbeOnly.first_payload_bytes().is_none());
    }

    #[test]
    fn payload_round_trips() {
        let intent = ConnectionIntent::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec());
        assert_eq!(
            intent.first_payload_bytes().unwrap(),
            b"GET / HTTP/1.1\r\n\r\n".to_vec()
        );
    }

    #[test]
    fn first_payload_id_matches_first_payload_bytes() {
        let mut interner = Interner::new();
        let intents = [
            ConnectionIntent::ProbeOnly,
            ConnectionIntent::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec()),
            ConnectionIntent::Login {
                service: LoginService::Ssh,
                username: "root".into(),
                password: "admin".into(),
            },
            ConnectionIntent::Login {
                service: LoginService::Telnet,
                username: "root".into(),
                password: "root".into(),
            },
        ];
        for intent in &intents {
            let id = intent.first_payload_id(&mut interner);
            let bytes = intent.first_payload_bytes();
            assert_eq!(
                id.map(|i| interner.payload(i).to_vec()),
                bytes,
                "intent {intent:?}"
            );
        }
    }

    #[test]
    fn flow_from_spec_stamps_fields() {
        let spec = FlowSpec {
            src: Ipv4Addr::new(1, 2, 3, 4),
            src_asn: Asn(4134),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            dst_port: 22,
            intent: ConnectionIntent::ProbeOnly,
        };
        let f = Flow::from_spec(spec, SimTime(77), 9);
        assert_eq!(f.time, SimTime(77));
        assert_eq!(f.agent, 9);
        assert_eq!(f.dst_port, 22);
    }
}
