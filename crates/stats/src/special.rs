//! Special functions: log-gamma, regularized incomplete gamma, error
//! function, normal CDF, and the chi-squared survival function.
//!
//! These are the numerical kernels behind every p-value in the pipeline.
//! Implementations follow the classical Lanczos / series / continued-fraction
//! formulations; accuracy targets (≈1e-10 relative over the ranges we use)
//! are asserted against reference values in the tests below.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with g = 7, n = 9 coefficients; relative error is
/// below 1e-13 for the arguments that arise in chi-squared testing.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise, per Numerical Recipes §6.2.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

const EPS: f64 = 1e-15;
const MAX_ITER: usize = 500;

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction representation.
    let fpmin = f64::MIN_POSITIVE / EPS;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / fpmin;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = b + an / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Survival function of the chi-squared distribution with `df` degrees of
/// freedom: `P(X >= x)` — i.e. the p-value of a chi-squared statistic.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_sf requires df > 0, got {df}");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

/// Error function `erf(x)`, computed via the incomplete gamma identity
/// `erf(x) = sgn(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, accurate for large
/// positive `x` where `1 - erf(x)` would cancel.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 - Φ(z)`, accurate in the upper tail.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Kolmogorov distribution survival function
/// `Q_KS(λ) = 2 Σ_{j≥1} (-1)^{j-1} e^{-2 j² λ²}`.
///
/// Used for the asymptotic p-value of the two-sample KS statistic.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let j = j as f64;
        let term = sign * (-2.0 * j * j * lambda * lambda).exp();
        sum += term;
        if term.abs() < 1e-12 * sum.abs().max(1e-300) {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol * expected.abs().max(1.0),
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-12);
        assert_close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (1.0, 1.0), (2.5, 4.0), (10.0, 3.0), (10.0, 30.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert_close(p + q, 1.0, 1e-10);
        }
    }

    #[test]
    fn gamma_p_reference_values() {
        // P(1, x) = 1 - e^{-x}
        assert_close(gamma_p(1.0, 2.0), 1.0 - (-2.0f64).exp(), 1e-12);
        // P(2, x) = 1 - e^{-x}(1 + x)
        assert_close(gamma_p(2.0, 3.0), 1.0 - (-3.0f64).exp() * 4.0, 1e-12);
    }

    #[test]
    fn chi2_sf_reference_values() {
        // Classical chi-squared critical values: P(X >= 3.841) with df=1 is 0.05.
        assert_close(chi2_sf(3.841_458_820_694_124, 1.0), 0.05, 1e-9);
        // df=4, x=9.487729036781154 → 0.05
        assert_close(chi2_sf(9.487_729_036_781_154, 4.0), 0.05, 1e-9);
        // df=2: sf(x) = e^{-x/2}
        assert_close(chi2_sf(5.0, 2.0), (-2.5f64).exp(), 1e-12);
    }

    #[test]
    fn chi2_sf_edges() {
        assert_eq!(chi2_sf(0.0, 3.0), 1.0);
        assert!(chi2_sf(1e6, 3.0) < 1e-12);
    }

    #[test]
    fn erf_reference_values() {
        assert_close(erf(0.0), 0.0, 1e-15);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
    }

    #[test]
    fn erfc_upper_tail_no_cancellation() {
        // erfc(5) ≈ 1.5374597944280347e-12; a naive 1-erf would lose it all.
        assert_close(erfc(5.0), 1.537_459_794_428_034_7e-12, 1e-6);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert_close(normal_cdf(0.0), 0.5, 1e-12);
        assert_close(normal_cdf(1.96), 0.975_002_104_851_780_4, 1e-9);
        assert_close(normal_cdf(-1.96), 0.024_997_895_148_219_6, 1e-9);
        assert_close(normal_sf(1.644_853_626_951_472_5), 0.05, 1e-9);
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Q_KS(λ) at the classical 5% critical value λ = 1.358 is ≈ 0.0501.
        let q = kolmogorov_sf(1.358);
        assert!((q - 0.05).abs() < 2e-3, "got {q}");
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn kolmogorov_sf_monotone() {
        let mut prev = 1.0;
        for i in 1..=40 {
            let q = kolmogorov_sf(i as f64 * 0.1);
            assert!(q <= prev + 1e-12, "not monotone at λ={}", i as f64 * 0.1);
            prev = q;
        }
    }
}
