//! Two-sample Kolmogorov–Smirnov test.
//!
//! §4.3 uses KS "to compare the distributions of the average volume of
//! traffic per hour targeting leaked and non-leaked services"; a significant
//! difference whose root cause is bursts flags "spikes" of attacker traffic.

use crate::special::kolmogorov_sf;

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic: max |F1(x) − F2(x)|.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution).
    pub p_value: f64,
}

/// Two-sample Kolmogorov–Smirnov test with asymptotic p-value.
///
/// Returns `None` on an empty sample. The asymptotic approximation includes
/// the Stephens small-sample adjustment
/// `λ = (√Ne + 0.12 + 0.11/√Ne) · D` with `Ne = n1·n2/(n1+n2)`.
pub fn ks_two_sample(x: &[f64], y: &[f64]) -> Option<KsResult> {
    if x.is_empty() || y.is_empty() {
        return None;
    }
    let mut xs = x.to_vec();
    let mut ys = y.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in KS sample"));
    ys.sort_by(|a, b| a.partial_cmp(b).expect("NaN in KS sample"));

    let n1 = xs.len();
    let n2 = ys.len();
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d = 0.0f64;
    while i < n1 && j < n2 {
        let xv = xs[i];
        let yv = ys[j];
        let step = xv.min(yv);
        while i < n1 && xs[i] <= step {
            i += 1;
        }
        while j < n2 && ys[j] <= step {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let ne = (n1 as f64 * n2 as f64) / (n1 as f64 + n2 as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Some(KsResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[]).is_none());
    }

    #[test]
    fn identical_samples_d_zero() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let r = ks_two_sample(&x, &x).unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.999);
    }

    #[test]
    fn disjoint_samples_d_one() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| 1000.0 + i as f64).collect();
        let r = ks_two_sample(&x, &y).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn shifted_distribution_detected() {
        let x: Vec<f64> = (0..200).map(|i| (i % 20) as f64).collect();
        let y: Vec<f64> = (0..200).map(|i| (i % 20) as f64 + 6.0).collect();
        let r = ks_two_sample(&x, &y).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn spiky_vs_flat_same_mean_detected() {
        // Flat traffic: 10 events every hour. Spiky traffic: mostly 2, with
        // rare bursts of 90 — the same mean but a very different
        // distribution. This is the paper's "spikes" signature.
        let flat = vec![10.0f64; 168];
        let spiky: Vec<f64> = (0..168)
            .map(|h| if h % 11 == 0 { 90.0 } else { 2.0 })
            .collect();
        let r = ks_two_sample(&flat, &spiky).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn statistic_reference_small() {
        // x = [1,2,3,4], y = [3,4,5,6]: D = 0.5 (at t in [2,3): F1=0.5, F2=0).
        let r = ks_two_sample(&[1.0, 2.0, 3.0, 4.0], &[3.0, 4.0, 5.0, 6.0]).unwrap();
        assert!((r.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ties_across_samples_handled() {
        let x = [1.0, 1.0, 1.0, 2.0];
        let y = [1.0, 2.0, 2.0, 2.0];
        let r = ks_two_sample(&x, &y).unwrap();
        // F1(1)=0.75, F2(1)=0.25 → D = 0.5.
        assert!((r.statistic - 0.5).abs() < 1e-12);
    }
}
