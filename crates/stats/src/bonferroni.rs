//! Bonferroni correction for families of simultaneous comparisons.
//!
//! §3.3: "we use a p-value of 0.05 and apply Bonferroni correction to
//! accommodate the comparisons across all vantage points. Often, Bonferroni
//! correction shrinks p-values by several orders of magnitude."

/// The family-wise significance level after Bonferroni correction:
/// `alpha / m` for `m` simultaneous comparisons.
///
/// # Panics
/// Panics if `m == 0` — an empty comparison family is a caller bug.
pub fn bonferroni_alpha(alpha: f64, m: usize) -> f64 {
    assert!(m > 0, "Bonferroni correction needs at least one comparison");
    alpha / m as f64
}

/// Adjust raw p-values for `m = p_values.len()` comparisons: each p-value is
/// multiplied by `m` and clipped to 1. A test is then significant when its
/// adjusted p-value is below the uncorrected `alpha`.
pub fn bonferroni_correct(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len() as f64;
    p_values.iter().map(|&p| (p * m).min(1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_shrinks_linearly() {
        assert!((bonferroni_alpha(0.05, 1) - 0.05).abs() < 1e-15);
        assert!((bonferroni_alpha(0.05, 10) - 0.005).abs() < 1e-15);
        // 53 neighborhoods × several characteristics → orders of magnitude.
        assert!(bonferroni_alpha(0.05, 5000) < 1e-4);
    }

    #[test]
    #[should_panic]
    fn zero_comparisons_is_a_bug() {
        bonferroni_alpha(0.05, 0);
    }

    #[test]
    fn correction_clips_at_one() {
        let adj = bonferroni_correct(&[0.001, 0.04, 0.5]);
        assert!((adj[0] - 0.003).abs() < 1e-12);
        assert!((adj[1] - 0.12).abs() < 1e-12);
        assert!((adj[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_test_unchanged() {
        let adj = bonferroni_correct(&[0.03]);
        assert!((adj[0] - 0.03).abs() < 1e-15);
    }

    #[test]
    fn decision_equivalence() {
        // p < alpha/m  ⇔  p*m < alpha
        let ps = [0.0004, 0.02, 0.06];
        let m = ps.len();
        let alpha = 0.05;
        let adj = bonferroni_correct(&ps);
        for (p, a) in ps.iter().zip(&adj) {
            assert_eq!(*p < bonferroni_alpha(alpha, m), *a < alpha);
        }
    }
}
