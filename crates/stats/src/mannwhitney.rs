//! Mann–Whitney U test (Wilcoxon rank-sum) with tie correction.
//!
//! §4.3 uses "a one-sided Mann-Whitney U test to evaluate whether the volume
//! of traffic per hour that targets leaked services is stochastically greater
//! than the volume targeting the control group". Our leak harness feeds
//! per-hour volumes through this module.

use crate::special::normal_sf;

/// Alternative hypothesis for the Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// Sample `x` is stochastically greater than sample `y`.
    Greater,
    /// Sample `x` is stochastically less than sample `y`.
    Less,
    /// Two-sided.
    TwoSided,
}

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyResult {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Standardized z-score (with tie correction and continuity correction).
    pub z: f64,
    /// p-value under the requested alternative.
    pub p_value: f64,
}

/// Run the Mann–Whitney U test on two samples.
///
/// Uses the normal approximation with tie correction and a 0.5 continuity
/// correction; this is the standard approach for n ≥ 8 per group and is what
/// the per-hour volume samples in the leak experiment look like (168 hours
/// per group). Returns `None` if either sample is empty.
pub fn mann_whitney_u(x: &[f64], y: &[f64], alternative: Alternative) -> Option<MannWhitneyResult> {
    if x.is_empty() || y.is_empty() {
        return None;
    }
    let n1 = x.len() as f64;
    let n2 = y.len() as f64;

    // Rank the pooled sample, with mid-ranks for ties.
    let mut pooled: Vec<(f64, usize)> = x
        .iter()
        .map(|&v| (v, 0usize))
        .chain(y.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in MWU sample"));

    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0f64; // Σ (t³ − t) over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        let t = (j - i) as f64;
        // Mid-rank for positions i..j (1-based ranks).
        let rank = (i + 1 + j) as f64 / 2.0;
        for r in ranks.iter_mut().take(j).skip(i) {
            *r = rank;
        }
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j;
    }

    // Rank sum for the first sample.
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let mean_u = n1 * n2 / 2.0;
    let nt = n1 + n2;
    let var_u = n1 * n2 / 12.0 * ((nt + 1.0) - tie_term / (nt * (nt - 1.0)));
    if var_u <= 0.0 {
        // All observations identical: no evidence either way.
        return Some(MannWhitneyResult {
            u: u1,
            z: 0.0,
            p_value: 1.0,
        });
    }
    let sd = var_u.sqrt();

    // Continuity-corrected z for each alternative.
    let (z, p) = match alternative {
        Alternative::Greater => {
            let z = (u1 - mean_u - 0.5) / sd;
            (z, normal_sf(z))
        }
        Alternative::Less => {
            let z = (u1 - mean_u + 0.5) / sd;
            (z, 1.0 - normal_sf(z))
        }
        Alternative::TwoSided => {
            let raw = u1 - mean_u;
            let z = (raw.abs() - 0.5).max(0.0) / sd * raw.signum();
            (z, (2.0 * normal_sf(z.abs())).min(1.0))
        }
    };

    Some(MannWhitneyResult {
        u: u1,
        z,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(mann_whitney_u(&[], &[1.0], Alternative::Greater).is_none());
        assert!(mann_whitney_u(&[1.0], &[], Alternative::Greater).is_none());
    }

    #[test]
    fn clearly_greater_sample_is_significant() {
        let x: Vec<f64> = (0..40).map(|i| 100.0 + i as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let r = mann_whitney_u(&x, &y, Alternative::Greater).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        // And the reversed direction is not significant.
        let r = mann_whitney_u(&y, &x, Alternative::Greater).unwrap();
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn identical_distributions_not_significant() {
        let x: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let y = x.clone();
        let r = mann_whitney_u(&x, &y, Alternative::Greater).unwrap();
        assert!(r.p_value > 0.4, "p = {}", r.p_value);
    }

    #[test]
    fn u_statistic_reference() {
        // scipy.stats.mannwhitneyu([1,2,3], [4,5,6], alternative='greater'):
        // U = 0 for x.
        let r = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], Alternative::Greater).unwrap();
        assert!((r.u - 0.0).abs() < 1e-12);
        assert!(r.p_value > 0.9);
        let r = mann_whitney_u(&[4.0, 5.0, 6.0], &[1.0, 2.0, 3.0], Alternative::Greater).unwrap();
        assert!((r.u - 9.0).abs() < 1e-12);
    }

    #[test]
    fn all_tied_degenerates_gracefully() {
        let x = [5.0; 10];
        let y = [5.0; 10];
        let r = mann_whitney_u(&x, &y, Alternative::TwoSided).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    fn tie_correction_reduces_variance() {
        // With heavy ties, the tie-corrected test should still flag a clear
        // shift as significant.
        let x: Vec<f64> = std::iter::repeat_n(2.0, 30).chain(std::iter::repeat_n(3.0, 30)).collect();
        let y: Vec<f64> = std::iter::repeat_n(1.0, 30).chain(std::iter::repeat_n(2.0, 30)).collect();
        let r = mann_whitney_u(&x, &y, Alternative::Greater).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn two_sided_matches_direction_agnostic() {
        let x = [10.0, 12.0, 9.0, 14.0, 11.0, 13.0, 15.0, 10.5];
        let y = [1.0, 2.0, 3.0, 2.5, 1.5, 2.2, 3.3, 1.8];
        let g = mann_whitney_u(&x, &y, Alternative::Greater).unwrap();
        let t = mann_whitney_u(&x, &y, Alternative::TwoSided).unwrap();
        assert!(t.p_value >= g.p_value);
        assert!(t.p_value < 0.01);
    }
}
