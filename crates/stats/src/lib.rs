//! # cw-stats
//!
//! Statistical machinery used by the Cloud Watching measurement pipeline.
//!
//! The paper (§3.3) compares unsolicited scanning traffic across vantage
//! points with a specific, reproducible recipe:
//!
//! 1. extract the **top-3** values of a traffic characteristic (top ASes,
//!    usernames, passwords, payloads) per vantage point ([`topk`]);
//! 2. build a contingency table over the union of those top-3 sets
//!    ([`contingency`]);
//! 3. run a non-parametric **chi-squared test** ([`chi2`]) at p = 0.05 with
//!    **Bonferroni correction** across all pairwise comparisons
//!    ([`bonferroni`]);
//! 4. report the **Cramér's V** effect size φ together with a
//!    degrees-of-freedom-aware magnitude label ([`cramers`]).
//!
//! The search-engine leak experiment (§4.3) additionally uses a one-sided
//! **Mann–Whitney U** test on per-hour traffic volumes ([`mannwhitney`]) and
//! a two-sample **Kolmogorov–Smirnov** test to detect traffic "spikes"
//! ([`ks`]).
//!
//! Everything is implemented from scratch on `std` only; the special
//! functions in [`special`] are validated against published reference values
//! in the unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bonferroni;
pub mod chi2;
pub mod contingency;
pub mod cramers;
pub mod descriptive;
pub mod ks;
pub mod mannwhitney;
pub mod special;
pub mod spikes;
pub mod topk;

pub use bonferroni::{bonferroni_alpha, bonferroni_correct};
pub use chi2::{chi_squared_from_table, Chi2Result};
pub use contingency::ContingencyTable;
pub use cramers::{cramers_v, EffectMagnitude, EffectSize};
pub use ks::{ks_two_sample, KsResult};
pub use mannwhitney::{mann_whitney_u, Alternative, MannWhitneyResult};
pub use spikes::{detect_spikes, spike_profile, Spike, SpikeProfile};
pub use topk::{top_k_union_table, TopKSpec};
