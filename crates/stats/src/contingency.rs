//! Contingency tables: the input shape for chi-squared comparison.
//!
//! A table has one **row per group** (e.g. per vantage point) and one
//! **column per category** (e.g. per scanning AS). Cells hold observed
//! counts. The paper requires the expected frequency of every retained
//! variable to be non-zero (§3.3), so the table offers a pruning step that
//! drops all-zero rows and columns before testing.

/// A rows × cols table of observed counts, with labeled columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    /// Category label per column (e.g. AS number as a string, a username…).
    pub categories: Vec<String>,
    /// Observed counts: `counts[row][col]`.
    pub counts: Vec<Vec<u64>>,
}

impl ContingencyTable {
    /// Build a table from labeled columns and per-group count rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or don't match `categories`.
    pub fn new(categories: Vec<String>, counts: Vec<Vec<u64>>) -> Self {
        for (i, row) in counts.iter().enumerate() {
            assert_eq!(
                row.len(),
                categories.len(),
                "row {i} has {} cells but there are {} categories",
                row.len(),
                categories.len()
            );
        }
        Self { categories, counts }
    }

    /// Number of group rows.
    pub fn n_rows(&self) -> usize {
        self.counts.len()
    }

    /// Number of category columns.
    pub fn n_cols(&self) -> usize {
        self.categories.len()
    }

    /// Grand total of all observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Row sums (observations per group).
    pub fn row_totals(&self) -> Vec<u64> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column sums (observations per category).
    pub fn col_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.n_cols()];
        for row in &self.counts {
            for (c, &v) in row.iter().enumerate() {
                totals[c] += v;
            }
        }
        totals
    }

    /// Expected frequency for each cell under independence:
    /// `E[r][c] = row_total[r] * col_total[c] / grand_total`.
    pub fn expected(&self) -> Vec<Vec<f64>> {
        let rows = self.row_totals();
        let cols = self.col_totals();
        let n = self.total() as f64;
        rows.iter()
            .map(|&rt| {
                cols.iter()
                    .map(|&ct| {
                        if n == 0.0 {
                            0.0
                        } else {
                            rt as f64 * ct as f64 / n
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Drop all-zero rows and all-zero columns.
    ///
    /// Zero marginals make the expected frequency of a cell zero, which the
    /// chi-squared test cannot accommodate (§3.3); pruning them is exactly
    /// the paper's "ensure the expected frequency of a variable is larger
    /// than zero" step.
    pub fn pruned(&self) -> ContingencyTable {
        let col_keep: Vec<bool> = self.col_totals().iter().map(|&t| t > 0).collect();
        let categories: Vec<String> = self
            .categories
            .iter()
            .zip(&col_keep)
            .filter(|(_, &k)| k)
            .map(|(c, _)| c.clone())
            .collect();
        let counts: Vec<Vec<u64>> = self
            .counts
            .iter()
            .filter(|row| row.iter().any(|&v| v > 0))
            .map(|row| {
                row.iter()
                    .zip(&col_keep)
                    .filter(|(_, &k)| k)
                    .map(|(&v, _)| v)
                    .collect()
            })
            .collect();
        ContingencyTable { categories, counts }
    }

    /// True when the pruned table is still testable: at least 2 rows and
    /// 2 columns with positive marginals.
    pub fn is_testable(&self) -> bool {
        let p = self.pruned();
        p.n_rows() >= 2 && p.n_cols() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cats(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn totals_and_expected() {
        let t = ContingencyTable::new(cats(&["a", "b"]), vec![vec![10, 20], vec![30, 40]]);
        assert_eq!(t.total(), 100);
        assert_eq!(t.row_totals(), vec![30, 70]);
        assert_eq!(t.col_totals(), vec![40, 60]);
        let e = t.expected();
        assert!((e[0][0] - 12.0).abs() < 1e-12);
        assert!((e[0][1] - 18.0).abs() < 1e-12);
        assert!((e[1][0] - 28.0).abs() < 1e-12);
        assert!((e[1][1] - 42.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_drops_zero_marginals() {
        let t = ContingencyTable::new(
            cats(&["a", "zero", "b"]),
            vec![vec![5, 0, 1], vec![0, 0, 0], vec![2, 0, 7]],
        );
        let p = t.pruned();
        assert_eq!(p.categories, cats(&["a", "b"]));
        assert_eq!(p.counts, vec![vec![5, 1], vec![2, 7]]);
        assert!(p.is_testable());
    }

    #[test]
    fn untestable_when_single_category_survives() {
        let t = ContingencyTable::new(cats(&["a", "b"]), vec![vec![5, 0], vec![9, 0]]);
        assert!(!t.is_testable());
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        ContingencyTable::new(cats(&["a", "b"]), vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn empty_table_total_zero() {
        let t = ContingencyTable::new(vec![], vec![]);
        assert_eq!(t.total(), 0);
        assert!(!t.is_testable());
    }
}
