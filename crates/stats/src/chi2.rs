//! Pearson's chi-squared test of independence on contingency tables.

use crate::contingency::ContingencyTable;
use crate::special::chi2_sf;

/// Outcome of a chi-squared test of independence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The chi-squared statistic Σ (O−E)²/E over all cells.
    pub statistic: f64,
    /// Degrees of freedom `(rows − 1)(cols − 1)` of the pruned table.
    pub df: usize,
    /// Upper-tail p-value.
    pub p_value: f64,
    /// Grand total of observations (needed for Cramér's V).
    pub n: u64,
    /// Rows and columns of the pruned table (needed for Cramér's V).
    pub rows: usize,
    /// Columns of the pruned table.
    pub cols: usize,
}

impl Chi2Result {
    /// Is the difference significant at level `alpha`?
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run Pearson's chi-squared test on a contingency table.
///
/// The table is pruned of all-zero rows/columns first (the paper's
/// expected-frequency > 0 requirement, §3.3). Returns `None` when the pruned
/// table is degenerate (fewer than 2 rows or 2 columns) — the paper treats
/// such comparisons as "cannot be calculated".
/// # Example
///
/// ```
/// use cw_stats::{chi_squared_from_table, ContingencyTable};
///
/// // Two honeypots, three scanning ASes: clearly different mixes.
/// let table = ContingencyTable::new(
///     vec!["AS4134".into(), "AS174".into(), "AS9009".into()],
///     vec![vec![120, 10, 5], vec![8, 95, 40]],
/// );
/// let result = chi_squared_from_table(&table).unwrap();
/// assert!(result.significant(0.05));
/// ```
pub fn chi_squared_from_table(table: &ContingencyTable) -> Option<Chi2Result> {
    let t = table.pruned();
    if t.n_rows() < 2 || t.n_cols() < 2 {
        return None;
    }
    let expected = t.expected();
    let mut stat = 0.0;
    for (r, row) in t.counts.iter().enumerate() {
        for (c, &obs) in row.iter().enumerate() {
            let e = expected[r][c];
            debug_assert!(e > 0.0, "pruned table must have positive expectations");
            let d = obs as f64 - e;
            stat += d * d / e;
        }
    }
    let df = (t.n_rows() - 1) * (t.n_cols() - 1);
    Some(Chi2Result {
        statistic: stat,
        df,
        p_value: chi2_sf(stat, df as f64),
        n: t.total(),
        rows: t.n_rows(),
        cols: t.n_cols(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cats(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_rows_yield_zero_statistic() {
        let t = ContingencyTable::new(cats(&["a", "b", "c"]), vec![vec![10, 20, 30]; 2]);
        let r = chi_squared_from_table(&t).unwrap();
        assert!(r.statistic.abs() < 1e-9);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn textbook_2x2() {
        // Classic 2x2 example: observed [[10, 20], [30, 40]].
        // chi2 = 100 * (10*40 - 20*30)^2 / (30*70*40*60) = 0.7936507936...
        let t = ContingencyTable::new(cats(&["a", "b"]), vec![vec![10, 20], vec![30, 40]]);
        let r = chi_squared_from_table(&t).unwrap();
        assert!((r.statistic - 0.793_650_793_650_79).abs() < 1e-9, "{}", r.statistic);
        assert_eq!(r.df, 1);
        // For df = 1, sf(x) = erfc(√(x/2)); erfc is independently validated
        // against reference values in `special`.
        let expected_p = crate::special::erfc((r.statistic / 2.0).sqrt());
        assert!((r.p_value - expected_p).abs() < 1e-12, "{}", r.p_value);
        assert!((r.p_value - 0.373).abs() < 1e-3, "{}", r.p_value);
    }

    #[test]
    fn strongly_different_rows_are_significant() {
        let t = ContingencyTable::new(
            cats(&["a", "b"]),
            vec![vec![100, 5], vec![5, 100]],
        );
        let r = chi_squared_from_table(&t).unwrap();
        assert!(r.significant(0.001));
        assert!(r.statistic > 100.0);
    }

    #[test]
    fn degenerate_tables_return_none() {
        // Only one non-zero column.
        let t = ContingencyTable::new(cats(&["a", "b"]), vec![vec![5, 0], vec![7, 0]]);
        assert!(chi_squared_from_table(&t).is_none());
        // Only one row.
        let t = ContingencyTable::new(cats(&["a", "b"]), vec![vec![5, 3]]);
        assert!(chi_squared_from_table(&t).is_none());
    }

    #[test]
    fn pruning_is_applied_before_df() {
        // 3 columns but one is all-zero → df should be (2-1)(2-1) = 1.
        let t = ContingencyTable::new(
            cats(&["a", "zero", "b"]),
            vec![vec![10, 0, 20], vec![30, 0, 40]],
        );
        let r = chi_squared_from_table(&t).unwrap();
        assert_eq!(r.df, 1);
        assert_eq!(r.cols, 2);
    }

    #[test]
    fn three_groups_three_categories() {
        // All marginals are 30 over n = 90, so every expectation is 10 and
        // the statistic is 3 × (10² + 5² + 5²)/10 = 45 with df = 4.
        // p = Q(2, 22.5) = e^{-22.5}·23.5 ≈ 3.976e-9.
        let t = ContingencyTable::new(
            cats(&["x", "y", "z"]),
            vec![vec![20, 5, 5], vec![5, 20, 5], vec![5, 5, 20]],
        );
        let r = chi_squared_from_table(&t).unwrap();
        assert!((r.statistic - 45.0).abs() < 1e-9);
        assert_eq!(r.df, 4);
        let expected_p = (-22.5f64).exp() * 23.5;
        assert!((r.p_value - expected_p).abs() < 1e-15, "{}", r.p_value);
    }
}
