//! The paper's top-k characteristic methodology (§3.3).
//!
//! "We always choose the most popular 3 values for each characteristic
//! (e.g., top 3 payloads, top 3 scanning ASes) for each vantage point and
//! perform the chi-squared test on the union of all unique top 3
//! characteristics across vantage points."
//!
//! This module turns per-group frequency maps into that union contingency
//! table. Ordering is made deterministic by breaking count ties on the
//! category label.

use crate::contingency::ContingencyTable;
use std::collections::BTreeMap;

/// Configuration for top-k union table construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKSpec {
    /// How many top categories to take per group (the paper uses 3).
    pub k: usize,
}

impl Default for TopKSpec {
    fn default() -> Self {
        TopKSpec { k: 3 }
    }
}

impl TopKSpec {
    /// The paper's top-3 configuration.
    pub fn paper() -> Self {
        Self::default()
    }
}

/// The top-`k` categories of a frequency map, by descending count, with
/// deterministic lexicographic tie-breaking.
pub fn top_k_of(freqs: &BTreeMap<String, u64>, k: usize) -> Vec<String> {
    let mut entries: Vec<(&String, &u64)> = freqs.iter().filter(|(_, &c)| c > 0).collect();
    entries.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    entries.into_iter().take(k).map(|(s, _)| s.clone()).collect()
}

/// Build the §3.3 union contingency table from per-group frequency maps.
///
/// Each group contributes its top-k categories; the union of those sets
/// becomes the columns, and each group's row holds its observed counts for
/// every union category (including categories that entered the union via a
/// *different* group — that asymmetry is what the test detects).
/// # Example
///
/// ```
/// use cw_stats::topk::{frequency_map, top_k_union_table, TopKSpec};
///
/// let honeypot_a = frequency_map(vec![("AS1", 90u64), ("AS2", 50), ("AS3", 10)]);
/// let honeypot_b = frequency_map(vec![("AS9", 80u64), ("AS2", 60), ("AS1", 2)]);
/// let table = top_k_union_table(&[honeypot_a, honeypot_b], TopKSpec::paper());
/// // The union holds both honeypots' top-3 sets.
/// assert!(table.categories.contains(&"AS9".to_string()));
/// assert!(table.categories.contains(&"AS3".to_string()));
/// ```
pub fn top_k_union_table(groups: &[BTreeMap<String, u64>], spec: TopKSpec) -> ContingencyTable {
    let mut union: Vec<String> = Vec::new();
    for g in groups {
        for cat in top_k_of(g, spec.k) {
            if !union.contains(&cat) {
                union.push(cat);
            }
        }
    }
    union.sort();
    let counts: Vec<Vec<u64>> = groups
        .iter()
        .map(|g| union.iter().map(|c| *g.get(c).unwrap_or(&0)).collect())
        .collect();
    ContingencyTable::new(union, counts)
}

/// Convenience: collect an iterator of `(category, weight)` samples into the
/// frequency-map shape expected by [`top_k_union_table`].
pub fn frequency_map<I, S>(items: I) -> BTreeMap<String, u64>
where
    I: IntoIterator<Item = (S, u64)>,
    S: Into<String>,
{
    let mut map = BTreeMap::new();
    for (cat, w) in items {
        *map.entry(cat.into()).or_insert(0) += w;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freqs(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(s, c)| (s.to_string(), *c)).collect()
    }

    #[test]
    fn top_k_orders_by_count_then_label() {
        let f = freqs(&[("b", 10), ("a", 10), ("c", 5), ("d", 99)]);
        assert_eq!(top_k_of(&f, 3), vec!["d", "a", "b"]);
    }

    #[test]
    fn top_k_skips_zero_counts() {
        let f = freqs(&[("a", 0), ("b", 1)]);
        assert_eq!(top_k_of(&f, 3), vec!["b"]);
    }

    #[test]
    fn union_includes_other_groups_tops() {
        let g1 = freqs(&[("as1", 100), ("as2", 50), ("as3", 30), ("as4", 1)]);
        let g2 = freqs(&[("as9", 80), ("as2", 60), ("as8", 40), ("as1", 2)]);
        let t = top_k_union_table(&[g1, g2], TopKSpec::paper());
        // Union of {as1,as2,as3} and {as9,as2,as8} = 5 categories, sorted.
        assert_eq!(t.categories, vec!["as1", "as2", "as3", "as8", "as9"]);
        // Row 1 includes its count for as9 (0) and as8 (0).
        assert_eq!(t.counts[0], vec![100, 50, 30, 0, 0]);
        // Row 2 includes its (small) count for as1 even though as1 is not in
        // its own top 3 — the cross-group asymmetry the test relies on.
        assert_eq!(t.counts[1], vec![2, 60, 0, 40, 80]);
    }

    #[test]
    fn identical_groups_give_identical_rows() {
        let g = freqs(&[("a", 5), ("b", 3), ("c", 2)]);
        let t = top_k_union_table(&[g.clone(), g], TopKSpec::paper());
        assert_eq!(t.counts[0], t.counts[1]);
    }

    #[test]
    fn frequency_map_accumulates() {
        let m = frequency_map(vec![("x", 1u64), ("y", 2), ("x", 3)]);
        assert_eq!(m.get("x"), Some(&4));
        assert_eq!(m.get("y"), Some(&2));
    }

    #[test]
    fn empty_groups_give_empty_table() {
        let t = top_k_union_table(&[BTreeMap::new(), BTreeMap::new()], TopKSpec::paper());
        assert_eq!(t.n_cols(), 0);
        assert!(!t.is_testable());
    }

    #[test]
    fn k_one_restricts_union() {
        let g1 = freqs(&[("a", 10), ("b", 9)]);
        let g2 = freqs(&[("c", 10), ("b", 9)]);
        let t = top_k_union_table(&[g1, g2], TopKSpec { k: 1 });
        assert_eq!(t.categories, vec!["a", "c"]);
    }
}
