//! Small descriptive-statistics helpers used across the pipeline:
//! medians (the §4.4 group-median filtering), means, and fold changes.

/// Median of a sample (average of the two middle elements for even n).
/// Returns `None` on an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Fold increase of `treatment` over `control` means.
///
/// Used for Table 3's "Fold Increase in Traffic per Hour". When the control
/// mean is zero, the fold is reported against a floor of one event over the
/// whole window (the smallest observable control signal) to keep the
/// statistic finite and monotone.
pub fn fold_increase(treatment: &[f64], control: &[f64]) -> Option<f64> {
    let t = mean(treatment)?;
    let c = mean(control)?;
    let window = control.len().max(1) as f64;
    let floor = 1.0 / window;
    Some(t / c.max(floor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn fold_increase_basic() {
        let t = vec![20.0; 10];
        let c = vec![5.0; 10];
        assert!((fold_increase(&t, &c).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fold_increase_zero_control_is_finite() {
        let t = vec![10.0; 168];
        let c = vec![0.0; 168];
        let f = fold_increase(&t, &c).unwrap();
        assert!(f.is_finite());
        assert!(f > 100.0);
    }
}
