//! Spike detection on hourly traffic series.
//!
//! §4.3 observes that leaked services receive "spikes" of traffic —
//! attackers "only briefly scan a leaked service, likely after it has been
//! found … on a search engine". The paper detects the phenomenon with a KS
//! test plus manual verification; this module makes the manual step
//! explicit: a spike hour is one whose volume exceeds the series'
//! median-based robust threshold.

use crate::descriptive::median;

/// A detected spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// Hour index in the series.
    pub hour: usize,
    /// Volume at that hour.
    pub volume: f64,
    /// The threshold it exceeded.
    pub threshold: f64,
}

/// Detect spike hours: volume > median + `k` · MAD-scale (robust sigma).
///
/// The median absolute deviation is scaled by 1.4826 to estimate σ under
/// normality; a floor of 1 event keeps flat-zero series from flagging every
/// blip. `k = 3` is a conventional robust outlier cut.
pub fn detect_spikes(hourly: &[f64], k: f64) -> Vec<Spike> {
    let Some(med) = median(hourly) else {
        return Vec::new();
    };
    let deviations: Vec<f64> = hourly.iter().map(|v| (v - med).abs()).collect();
    let mad = median(&deviations).unwrap_or(0.0);
    let sigma = (1.4826 * mad).max(0.5);
    let threshold = med + k * sigma;
    let threshold = threshold.max(med + 1.0);
    hourly
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > threshold)
        .map(|(hour, &volume)| Spike {
            hour,
            volume,
            threshold,
        })
        .collect()
}

/// Summary of a series' burstiness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeProfile {
    /// Number of spike hours.
    pub spike_hours: usize,
    /// Fraction of total volume concentrated in spike hours.
    pub volume_in_spikes: f64,
    /// Peak-to-median ratio (∞-safe: 0 when the series is empty).
    pub peak_to_median: f64,
}

/// Profile a series' burstiness with the default k = 3 cut.
pub fn spike_profile(hourly: &[f64]) -> SpikeProfile {
    let spikes = detect_spikes(hourly, 3.0);
    let total: f64 = hourly.iter().sum();
    let in_spikes: f64 = spikes.iter().map(|s| s.volume).sum();
    let med = median(hourly).unwrap_or(0.0);
    let peak = hourly.iter().cloned().fold(0.0f64, f64::max);
    SpikeProfile {
        spike_hours: spikes.len(),
        volume_in_spikes: if total > 0.0 { in_spikes / total } else { 0.0 },
        peak_to_median: if med > 0.0 { peak / med } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_series_has_no_spikes() {
        let flat = vec![5.0; 168];
        assert!(detect_spikes(&flat, 3.0).is_empty());
        let p = spike_profile(&flat);
        assert_eq!(p.spike_hours, 0);
        assert!((p.peak_to_median - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bursts_are_detected() {
        let mut series = vec![2.0; 168];
        series[10] = 80.0;
        series[99] = 60.0;
        let spikes = detect_spikes(&series, 3.0);
        let hours: Vec<usize> = spikes.iter().map(|s| s.hour).collect();
        assert_eq!(hours, vec![10, 99]);
        let p = spike_profile(&series);
        assert_eq!(p.spike_hours, 2);
        assert!(p.volume_in_spikes > 0.25);
        assert!(p.peak_to_median > 30.0);
    }

    #[test]
    fn zero_series_is_quiet() {
        let z = vec![0.0; 24];
        assert!(detect_spikes(&z, 3.0).is_empty());
        let p = spike_profile(&z);
        assert_eq!(p.spike_hours, 0);
        assert_eq!(p.volume_in_spikes, 0.0);
    }

    #[test]
    fn empty_series_is_safe() {
        assert!(detect_spikes(&[], 3.0).is_empty());
        let p = spike_profile(&[]);
        assert_eq!(p.spike_hours, 0);
    }

    #[test]
    fn noisy_but_unspiked_series_stays_quiet() {
        // Alternating 4/6 around median 5 — well inside 3 robust sigmas.
        let series: Vec<f64> = (0..168).map(|h| if h % 2 == 0 { 4.0 } else { 6.0 }).collect();
        assert!(detect_spikes(&series, 3.0).is_empty());
    }
}
