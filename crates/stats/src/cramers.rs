//! Cramér's V effect size (the paper's φ) with df-aware magnitude labels.
//!
//! §3.3: "the magnitudes of effect sizes do not have predefined limits …
//! magnitudes are derived using the chi-statistic and the degrees of freedom
//! within the chi-test". We follow Cohen's convention for contingency
//! tables: the small/medium/large thresholds 0.10/0.30/0.50 apply to
//! `df* = min(rows, cols) − 1 = 1` and shrink as `1/√df*` for larger tables,
//! which is exactly why "identical φ values can represent different effect
//! sizes if the degrees of freedom between two tests are different".

use crate::chi2::Chi2Result;

/// Qualitative magnitude of an effect size, relative to its table shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EffectMagnitude {
    /// Below the df-adjusted small threshold.
    Negligible,
    /// Colored blue in the paper's tables.
    Small,
    /// Colored yellow in the paper's tables.
    Medium,
    /// Colored red in the paper's tables.
    Large,
}

impl std::fmt::Display for EffectMagnitude {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EffectMagnitude::Negligible => "negligible",
            EffectMagnitude::Small => "small",
            EffectMagnitude::Medium => "medium",
            EffectMagnitude::Large => "large",
        };
        f.write_str(s)
    }
}

/// Cramér's V (φ) together with its df-aware magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectSize {
    /// The φ value in [0, 1].
    pub phi: f64,
    /// `min(rows, cols) − 1`, the df* used for magnitude thresholds.
    pub df_star: usize,
    /// Qualitative magnitude.
    pub magnitude: EffectMagnitude,
}

/// Compute Cramér's V from a chi-squared result:
/// `V = sqrt(χ² / (n · (min(r, c) − 1)))`.
pub fn cramers_v(chi2: &Chi2Result) -> EffectSize {
    let df_star = chi2.rows.min(chi2.cols).saturating_sub(1).max(1);
    let phi = if chi2.n == 0 {
        0.0
    } else {
        (chi2.statistic / (chi2.n as f64 * df_star as f64)).sqrt()
    };
    // Numerical noise can push V fractionally above 1 on extreme tables.
    let phi = phi.clamp(0.0, 1.0);
    EffectSize {
        phi,
        df_star,
        magnitude: magnitude_for(phi, df_star),
    }
}

/// Cohen's df*-adjusted magnitude thresholds.
///
/// For df* = 1 the thresholds are 0.10 / 0.30 / 0.50; for larger df* they
/// shrink by `1/√df*` (Cohen 1988, §7.2), so e.g. a φ of 0.25 is *large*
/// when comparing 5-category distributions but only *small–medium* on a 2×2.
pub fn magnitude_for(phi: f64, df_star: usize) -> EffectMagnitude {
    let scale = (df_star.max(1) as f64).sqrt();
    let small = 0.10 / scale;
    let medium = 0.30 / scale;
    let large = 0.50 / scale;
    if phi >= large {
        EffectMagnitude::Large
    } else if phi >= medium {
        EffectMagnitude::Medium
    } else if phi >= small {
        EffectMagnitude::Small
    } else {
        EffectMagnitude::Negligible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi2::chi_squared_from_table;
    use crate::contingency::ContingencyTable;

    fn table(counts: Vec<Vec<u64>>) -> Chi2Result {
        let cols = counts[0].len();
        let categories = (0..cols).map(|i| format!("c{i}")).collect();
        chi_squared_from_table(&ContingencyTable::new(categories, counts)).unwrap()
    }

    #[test]
    fn perfect_association_gives_v_one() {
        let r = table(vec![vec![50, 0], vec![0, 50]]);
        let v = cramers_v(&r);
        assert!((v.phi - 1.0).abs() < 1e-9);
        assert_eq!(v.magnitude, EffectMagnitude::Large);
    }

    #[test]
    fn no_association_gives_v_zero() {
        let r = table(vec![vec![25, 25], vec![25, 25]]);
        let v = cramers_v(&r);
        assert!(v.phi.abs() < 1e-9);
        assert_eq!(v.magnitude, EffectMagnitude::Negligible);
    }

    #[test]
    fn textbook_value() {
        // [[10,20],[30,40]]: χ²=0.79365, n=100, df*=1 → V = sqrt(0.0079365) ≈ 0.0891.
        let r = table(vec![vec![10, 20], vec![30, 40]]);
        let v = cramers_v(&r);
        assert!((v.phi - 0.089_087).abs() < 1e-5, "{}", v.phi);
    }

    #[test]
    fn df_star_uses_smaller_dimension() {
        // 2 rows × 3 cols → df* = 1.
        let r = table(vec![vec![30, 5, 5], vec![5, 30, 5]]);
        assert_eq!(cramers_v(&r).df_star, 1);
        // 3 rows × 3 cols → df* = 2.
        let r = table(vec![vec![20, 5, 5], vec![5, 20, 5], vec![5, 5, 20]]);
        assert_eq!(cramers_v(&r).df_star, 2);
    }

    #[test]
    fn same_phi_different_magnitude_across_df() {
        // The paper's caveat: identical φ can be different magnitudes.
        assert_eq!(magnitude_for(0.25, 1), EffectMagnitude::Negligible.max(EffectMagnitude::Small));
        assert_eq!(magnitude_for(0.25, 1), EffectMagnitude::Small);
        assert_eq!(magnitude_for(0.25, 4), EffectMagnitude::Large);
    }

    #[test]
    fn thresholds_shrink_with_df() {
        assert_eq!(magnitude_for(0.09, 1), EffectMagnitude::Negligible);
        assert_eq!(magnitude_for(0.09, 4), EffectMagnitude::Small);
        assert_eq!(magnitude_for(0.16, 4), EffectMagnitude::Medium);
    }
}
