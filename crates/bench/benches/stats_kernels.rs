//! Criterion benches for the statistical kernels that run thousands of
//! times per analysis (every neighborhood × characteristic × slice).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cw_netsim::rng::SimRng;
use cw_stats::{
    chi_squared_from_table, cramers_v, ks_two_sample, mann_whitney_u, top_k_union_table,
    Alternative, ContingencyTable, TopKSpec,
};
use std::collections::BTreeMap;
use std::hint::black_box;

fn random_table(rng: &mut SimRng, rows: usize, cols: usize) -> ContingencyTable {
    let categories = (0..cols).map(|i| format!("c{i}")).collect();
    let counts = (0..rows)
        .map(|_| (0..cols).map(|_| rng.below(500)).collect())
        .collect();
    ContingencyTable::new(categories, counts)
}

fn bench_chi2(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(1);
    let tables: Vec<ContingencyTable> = (0..64).map(|_| random_table(&mut rng, 4, 9)).collect();
    c.bench_function("chi2_4x9_with_v", |b| {
        let mut i = 0;
        b.iter(|| {
            let t = &tables[i % tables.len()];
            i += 1;
            let r = chi_squared_from_table(black_box(t)).unwrap();
            black_box(cramers_v(&r));
        })
    });
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(2);
    let groups: Vec<BTreeMap<String, u64>> = (0..4)
        .map(|_| {
            (0..200)
                .map(|i| (format!("AS{}", 1000 + i), rng.below(1000)))
                .collect()
        })
        .collect();
    c.bench_function("top3_union_4_groups_200_cats", |b| {
        b.iter(|| black_box(top_k_union_table(black_box(&groups), TopKSpec::paper())))
    });
}

fn bench_rank_tests(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(3);
    let x: Vec<f64> = (0..168).map(|_| rng.f64() * 50.0).collect();
    let y: Vec<f64> = (0..168).map(|_| rng.f64() * 60.0).collect();
    c.bench_function("mann_whitney_168x168", |b| {
        b.iter_batched(
            || (x.clone(), y.clone()),
            |(x, y)| black_box(mann_whitney_u(&x, &y, Alternative::Greater)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("ks_two_sample_168x168", |b| {
        b.iter_batched(
            || (x.clone(), y.clone()),
            |(x, y)| black_box(ks_two_sample(&x, &y)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_chi2, bench_topk, bench_rank_tests);
criterion_main!(benches);
