//! End-to-end scenario benches: a (scaled-down) simulated week plus the
//! heaviest analyses — what an experiment binary actually costs.

use criterion::{criterion_group, criterion_main, Criterion};
use cw_core::scenario::{Scenario, ScenarioConfig};
use cw_scanners::population::ScenarioYear;
use std::hint::black_box;

fn bench_scenario_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("simulated_week_scale_0.05", |b| {
        b.iter(|| {
            black_box(Scenario::run(
                ScenarioConfig::fast(ScenarioYear::Y2021)
                    .with_scale(0.05)
                    .with_seed(99),
            ))
        })
    });
    g.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let s = Scenario::run(
        ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_scale(0.05)
            .with_seed(99),
    );
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("table2_neighborhoods", |b| {
        b.iter(|| black_box(cw_core::neighborhood::table2(&s.dataset, &s.deployment)))
    });
    g.bench_function("table8_overlap", |b| {
        b.iter(|| {
            let tel = s.telescope.borrow();
            black_box(cw_core::overlap::table8(&s.dataset, &s.deployment, &tel))
        })
    });
    g.bench_function("figure1_series_port22", |b| {
        b.iter(|| {
            let tel = s.telescope.borrow();
            black_box(cw_core::figure1::series(&tel, 22))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scenario_run, bench_analyses);
criterion_main!(benches);
