//! Criterion benches for the discrete-event engine: flow routing and
//! telescope counting throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cw_honeypot::deployment::Deployment;
use cw_netsim::asn::Asn;
use cw_netsim::engine::{Agent, Engine, Network};
use cw_netsim::flow::{ConnectionIntent, FlowSpec};
use cw_netsim::rng::SimRng;
use cw_netsim::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::net::Ipv4Addr;

/// Sends `n` probes to random telescope addresses, then retires.
struct Blaster {
    rng: SimRng,
    n: u64,
    telescope_base: u32,
    telescope_size: u64,
}

impl Agent for Blaster {
    fn on_wake(&mut self, _now: SimTime, net: &mut dyn Network) -> Option<SimTime> {
        for _ in 0..self.n {
            let dst =
                Ipv4Addr::from(self.telescope_base + self.rng.below(self.telescope_size) as u32);
            net.send(FlowSpec {
                src: Ipv4Addr::new(100, 0, 0, 1),
                src_asn: Asn(64_512),
                dst,
                dst_port: 445,
                intent: ConnectionIntent::ProbeOnly,
            });
        }
        None
    }
}

fn bench_flow_routing(c: &mut Criterion) {
    const FLOWS: u64 = 50_000;
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(FLOWS));
    g.sample_size(10);
    g.bench_function("route_50k_telescope_probes", |b| {
        b.iter(|| {
            let deployment = Deployment::standard();
            let mut engine = Engine::new();
            deployment.register(&mut engine);
            engine.add_agent(
                Box::new(Blaster {
                    rng: SimRng::seed_from_u64(5),
                    n: FLOWS,
                    telescope_base: u32::from(Ipv4Addr::new(10, 0, 0, 0)),
                    telescope_size: 7 * 65_536,
                }),
                SimTime::ZERO,
            );
            black_box(engine.run(SimTime::ZERO + SimDuration::WEEK))
        })
    });
    g.finish();
}

fn bench_deployment_build(c: &mut Criterion) {
    c.bench_function("deployment_standard_build", |b| {
        b.iter(|| black_box(Deployment::standard()))
    });
}

criterion_group!(benches, bench_flow_routing, bench_deployment_build);
criterion_main!(benches);
