//! Criterion benches for the LZR-style fingerprinter — it runs once per
//! captured payload (hundreds of thousands per scenario).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cw_protocols::fingerprint;
use std::hint::black_box;

fn corpus() -> Vec<Vec<u8>> {
    vec![
        cw_protocols::HttpRequest::new("GET", "/")
            .header("Host", "x")
            .header("User-Agent", "zgrab/0.x")
            .to_bytes(),
        cw_protocols::tls::build_client_hello(7, Some("example.test")),
        cw_protocols::ssh::build_banner("OpenSSH_8.9"),
        cw_protocols::telnet::build_negotiation(&[1, 3]),
        cw_protocols::smb::build_negotiate(),
        cw_protocols::rtsp::build_request("OPTIONS", "rtsp://x/"),
        cw_protocols::sip::build_options("100@x"),
        cw_protocols::ntp::build_client_request(),
        cw_protocols::rdp::build_connection_request("probe"),
        cw_protocols::adb::build_connect(),
        cw_protocols::fox::build_hello(),
        cw_protocols::redis::build_command(&["CONFIG", "GET", "*"]),
        cw_protocols::sql::build_prelogin(),
        b"completely unknown garbage payload \x00\x01\x02".to_vec(),
    ]
}

fn bench_fingerprint(c: &mut Criterion) {
    let payloads = corpus();
    let bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
    let mut g = c.benchmark_group("fingerprint");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("all_14_payload_kinds", |b| {
        b.iter(|| {
            for p in &payloads {
                black_box(fingerprint(black_box(p)));
            }
        })
    });
    g.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let req = cw_protocols::HttpRequest::new("POST", "/api/user/login")
        .header("Host", "10.1.2.3")
        .header("Date", "Mon, 05 Jul 2021 00:00:00 GMT")
        .header("User-Agent", "Mozilla/5.0")
        .body(b"username=admin&password=123456")
        .to_bytes();
    c.bench_function("http_normalize", |b| {
        b.iter(|| black_box(cw_protocols::http::normalize(black_box(&req))))
    });
}

criterion_group!(benches, bench_fingerprint, bench_normalize);
criterion_main!(benches);
