//! Criterion benches for the Suricata-like rule engine — every payload
//! event is classified through the full vetted ruleset.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cw_detection::RuleSet;
use std::hint::black_box;

fn bench_ruleset(c: &mut Criterion) {
    let rules = RuleSet::builtin();
    let malicious = cw_scanners::exploits::log4shell("198.51.100.1:1389");
    let benign = cw_scanners::exploits::benign_get("Mozilla/5.0 zgrab/0.x");
    let shell = cw_scanners::exploits::shell_chain("198.51.100.2");

    let mut g = c.benchmark_group("rule_engine");
    g.throughput(Throughput::Bytes(
        (malicious.len() + benign.len() + shell.len()) as u64,
    ));
    g.bench_function("classify_three_payloads", |b| {
        b.iter(|| {
            black_box(rules.is_malicious(black_box(&malicious), 80));
            black_box(rules.is_malicious(black_box(&benign), 80));
            black_box(rules.is_malicious(black_box(&shell), 23));
        })
    });
    g.finish();

    c.bench_function("ruleset_compile", |b| {
        b.iter(|| black_box(RuleSet::builtin()))
    });
}

criterion_group!(benches, bench_ruleset);
criterion_main!(benches);
