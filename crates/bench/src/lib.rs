//! Shared plumbing for the experiment regenerator binaries.
//!
//! Every binary accepts `--scale <f64>`, `--seed <u64>` and (where
//! relevant) `--year <2020|2021|2022>`; defaults regenerate the published
//! EXPERIMENTS.md values.

use cw_core::scenario::{Scenario, ScenarioConfig, DEFAULT_SEED};
use cw_scanners::population::ScenarioYear;

/// Parsed command-line options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Population scale.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Year override.
    pub year: Option<ScenarioYear>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: 1.0,
            seed: DEFAULT_SEED,
            year: None,
        }
    }
}

/// Parse `std::env::args()`. Malformed arguments print a usage message
/// and exit with status 2.
pub fn parse_args() -> RunOptions {
    fn usage(problem: &str) -> ! {
        eprintln!("error: {problem}");
        eprintln!("usage: <binary> [--scale <f64>] [--seed <u64>] [--year <2020|2021|2022>]");
        std::process::exit(2);
    }
    let mut opts = RunOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage("--scale expects a number"));
                if !(opts.scale > 0.0) {
                    usage("--scale must be positive");
                }
            }
            "--seed" => {
                opts.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed expects an unsigned integer"));
            }
            "--year" => {
                opts.year = Some(match value("--year").as_str() {
                    "2020" => ScenarioYear::Y2020,
                    "2021" => ScenarioYear::Y2021,
                    "2022" => ScenarioYear::Y2022,
                    other => usage(&format!("unknown year '{other}' (use 2020, 2021 or 2022)")),
                })
            }
            "--help" | "-h" => {
                eprintln!("usage: <binary> [--scale <f64>] [--seed <u64>] [--year <2020|2021|2022>]");
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

/// Run the scenario for a year under the given options.
pub fn scenario(opts: RunOptions, default_year: ScenarioYear) -> Scenario {
    let year = opts.year.unwrap_or(default_year);
    let config = ScenarioConfig::paper(year)
        .with_seed(opts.seed)
        .with_scale(opts.scale);
    eprintln!(
        "[cw] running {} scenario (scale {}, seed {:#x}) ...",
        year.year(),
        opts.scale,
        opts.seed
    );
    let start = std::time::Instant::now();
    let s = Scenario::run(config);
    eprintln!(
        "[cw] simulated week complete in {:.1?}: {} flows delivered, {} honeypot events, {} telescope packets",
        start.elapsed(),
        s.stats.flows_delivered,
        s.dataset.events().len(),
        s.telescope.borrow().total_packets()
    );
    s
}

/// Print a titled section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Print a `paper vs measured` context line.
pub fn paper_note(note: &str) {
    println!("(paper: {note})\n");
}
