//! Shared plumbing for the experiment regenerator binaries.
//!
//! Every binary accepts `--scale <f64>`, `--seed <u64>`, `--threads <N>`
//! and (where relevant) `--year <2020|2021|2022>`; defaults regenerate the
//! published EXPERIMENTS.md values.
//!
//! Binaries that run more than one scenario go through
//! [`cw_core::fleet`]: each scenario is built, run, and rendered to its
//! output sections inside a worker thread, and the main thread prints the
//! sections in canonical order — so stdout is byte-identical for any
//! `--threads` value (see `docs/ARCHITECTURE.md`). `--threads` beats the
//! `CW_THREADS` environment variable, which beats autodetection.

use cw_core::scenario::{Scenario, ScenarioConfig, DEFAULT_SEED};
use cw_scanners::population::ScenarioYear;

/// Parsed command-line options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Population scale.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Year override.
    pub year: Option<ScenarioYear>,
    /// Worker threads for fleet binaries (`None` = `CW_THREADS` or
    /// autodetect; see [`cw_core::fleet::resolve_threads`]).
    pub threads: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: 1.0,
            seed: DEFAULT_SEED,
            year: None,
            threads: None,
        }
    }
}

const USAGE: &str =
    "usage: <binary> [--scale <f64>] [--seed <u64>] [--year <2020|2021|2022>] [--threads <N>]";

/// Parse `std::env::args()`. Malformed arguments print a usage message
/// and exit with status 2.
pub fn parse_args() -> RunOptions {
    fn usage(problem: &str) -> ! {
        eprintln!("error: {problem}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let mut opts = RunOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage("--scale expects a number"));
                if opts.scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    usage("--scale must be positive");
                }
            }
            "--seed" => {
                opts.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed expects an unsigned integer"));
            }
            "--year" => {
                opts.year = Some(match value("--year").as_str() {
                    "2020" => ScenarioYear::Y2020,
                    "2021" => ScenarioYear::Y2021,
                    "2022" => ScenarioYear::Y2022,
                    other => usage(&format!("unknown year '{other}' (use 2020, 2021 or 2022)")),
                })
            }
            "--threads" => {
                let n: usize = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| usage("--threads expects an unsigned integer"));
                if n == 0 {
                    usage("--threads must be at least 1");
                }
                opts.threads = Some(n);
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

/// Worker-thread count for these options (flag, then `CW_THREADS`, then
/// autodetect).
pub fn threads(opts: RunOptions) -> usize {
    cw_core::fleet::resolve_threads(opts.threads)
}

/// The scenario configuration these options select for a year.
pub fn config_for(opts: RunOptions, default_year: ScenarioYear) -> ScenarioConfig {
    let year = opts.year.unwrap_or(default_year);
    ScenarioConfig::paper(year)
        .with_seed(opts.seed)
        .with_scale(opts.scale)
}

/// Run one configured scenario with progress logging on stderr.
///
/// Safe to call from fleet workers: progress goes to stderr (unordered
/// under parallelism), results to the caller.
pub fn run_config(config: ScenarioConfig) -> Scenario {
    eprintln!(
        "[cw] running {} scenario (scale {}, seed {:#x}) ...",
        config.year.year(),
        config.scale,
        config.seed
    );
    let start = std::time::Instant::now();
    let s = Scenario::run(config);
    eprintln!(
        "[cw] simulated {} week complete in {:.1?}: {} flows delivered, {} honeypot events, {} telescope packets",
        config.year.year(),
        start.elapsed(),
        s.stats.flows_delivered,
        s.dataset.len(),
        s.telescope.borrow().total_packets()
    );
    s
}

/// Run the scenario for a year under the given options.
pub fn scenario(opts: RunOptions, default_year: ScenarioYear) -> Scenario {
    run_config(config_for(opts, default_year))
}

/// Print a titled section header.
pub fn header(title: &str) {
    print!("{}", header_str(title));
}

/// A titled section header, rendered to a string (for fleet workers that
/// build sections off the main thread).
pub fn header_str(title: &str) -> String {
    format!("\n=== {title} ===\n\n")
}

/// Print a `paper vs measured` context line.
pub fn paper_note(note: &str) {
    print!("{}", paper_note_str(note));
}

/// A `paper vs measured` context line, rendered to a string.
pub fn paper_note_str(note: &str) -> String {
    format!("(paper: {note})\n\n")
}
