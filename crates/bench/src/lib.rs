//! Shared plumbing for the `cw` multicall CLI and the benchmark harness.
//!
//! Every command accepts `--scale <f64>`, `--seed <u64>`, `--threads <N>`,
//! `--shards <K>`, `--no-cache` and (where relevant) `--year
//! <2020|2021|2022>`; defaults regenerate the published EXPERIMENTS.md
//! values.
//!
//! Commands that need more than one simulated world go through
//! [`cw_core::fleet`]: each world is obtained (snapshot cache or fresh
//! simulation) inside a worker thread, and exhibits render from the shared
//! bundles in canonical order — so stdout is byte-identical for any
//! `--threads` value (see `docs/ARCHITECTURE.md`). `--threads` beats the
//! `CW_THREADS` environment variable, which beats autodetection. The
//! snapshot cache can never change results either ([`cw_core::snapshot`]),
//! so `--no-cache` is purely a wall-clock/debugging knob.

use cw_core::scenario::{Scenario, ScenarioConfig, DEFAULT_SEED};
use cw_netsim::fault::FaultPlan;
use cw_scanners::population::ScenarioYear;

/// Parsed command-line options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Population scale.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Year override.
    pub year: Option<ScenarioYear>,
    /// Worker threads for fleet commands (`None` = `CW_THREADS` or
    /// autodetect; see [`cw_core::fleet::resolve_threads`]).
    pub threads: Option<usize>,
    /// Engine shards per scenario (`None` = `CW_SHARDS` or autodetect; see
    /// [`cw_core::fleet::resolve_shards`]). Output is byte-identical for
    /// any value — a purely wall-clock knob.
    pub shards: Option<usize>,
    /// Bypass the snapshot cache (always simulate, never read or write
    /// `out/.cache`). Results are identical either way.
    pub no_cache: bool,
    /// Deterministic measurement-fault plan (`--loss`, `--outage`,
    /// `--outage-windows`, `--truncate`, `--truncate-to`,
    /// `--telescope-sample`). Unlike threads/shards/cache this *is* part
    /// of world identity: any non-none plan changes the output bytes and
    /// the snapshot addresses.
    pub fault: FaultPlan,
    /// Print per-bundle plan-fusion stats and an end-of-run scan-counter
    /// summary on stderr (`--trace-scans`). Purely observational: rendered
    /// stdout bytes are identical either way.
    pub trace_scans: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: 1.0,
            seed: DEFAULT_SEED,
            year: None,
            threads: None,
            shards: None,
            no_cache: false,
            fault: FaultPlan::none(),
            trace_scans: false,
        }
    }
}

/// The flag summary shared by usage/error messages.
pub const USAGE: &str = "usage: cw <exhibit|list|all|export|degrade|sweep> [--scale <f64>] [--seed <u64>] \
     [--year <2020|2021|2022>] [--threads <N>] [--shards <K>] [--no-cache] [--trace-scans] \
     [--loss <f64>] [--outage <f64>] [--outage-windows <N>] \
     [--truncate <f64>] [--truncate-to <bytes>] [--telescope-sample <N>]\n\
sweep only: [--scales <csv of f64, default 1,10,100>] [--years <csv of years>] \
     [--replicates <N>] [--variants <csv of none|mild|moderate|severe>]";

fn usage_exit(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Parse flag arguments from an explicit iterator (everything after the
/// subcommand). Malformed arguments print a usage message and exit with
/// status 2.
pub fn parse_from(args: impl Iterator<Item = String>) -> RunOptions {
    let mut opts = RunOptions::default();
    let mut args = args;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--scale expects a number"));
                if opts.scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    usage_exit("--scale must be positive");
                }
            }
            "--seed" => {
                opts.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--seed expects an unsigned integer"));
            }
            "--year" => {
                opts.year = Some(match value("--year").as_str() {
                    "2020" => ScenarioYear::Y2020,
                    "2021" => ScenarioYear::Y2021,
                    "2022" => ScenarioYear::Y2022,
                    other => usage_exit(&format!("unknown year '{other}' (use 2020, 2021 or 2022)")),
                })
            }
            "--threads" => {
                let n: usize = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--threads expects an unsigned integer"));
                if n == 0 {
                    usage_exit("--threads must be at least 1");
                }
                opts.threads = Some(n);
            }
            "--shards" => {
                let n: usize = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--shards expects an unsigned integer"));
                if n == 0 {
                    usage_exit("--shards must be at least 1");
                }
                opts.shards = Some(n);
            }
            "--no-cache" => {
                opts.no_cache = true;
            }
            "--trace-scans" => {
                opts.trace_scans = true;
            }
            "--loss" => {
                opts.fault.flow_loss = value("--loss")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--loss expects a number"));
                if !(0.0..=1.0).contains(&opts.fault.flow_loss) {
                    usage_exit("--loss must be in [0, 1]");
                }
            }
            "--outage" => {
                opts.fault.outage = value("--outage")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--outage expects a number"));
                if !(0.0..1.0).contains(&opts.fault.outage) {
                    usage_exit("--outage must be in [0, 1)");
                }
            }
            "--outage-windows" => {
                let n: u32 = value("--outage-windows")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--outage-windows expects an unsigned integer"));
                if n == 0 {
                    usage_exit("--outage-windows must be at least 1");
                }
                opts.fault.outage_windows = n;
            }
            "--truncate" => {
                opts.fault.truncation = value("--truncate")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--truncate expects a number"));
                if !(0.0..=1.0).contains(&opts.fault.truncation) {
                    usage_exit("--truncate must be in [0, 1]");
                }
            }
            "--truncate-to" => {
                opts.fault.truncate_to = value("--truncate-to")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--truncate-to expects a byte count"));
            }
            "--telescope-sample" => {
                let n: u32 = value("--telescope-sample")
                    .parse()
                    .unwrap_or_else(|_| {
                        usage_exit("--telescope-sample expects an unsigned integer")
                    });
                if n == 0 {
                    usage_exit("--telescope-sample must be at least 1");
                }
                opts.fault.telescope_sample = n;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_exit(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

/// Parse `std::env::args()` (flags only, no subcommand — the benchmark
/// harness entry point).
pub fn parse_args() -> RunOptions {
    parse_from(std::env::args().skip(1))
}

/// Worker-thread count for these options (flag, then `CW_THREADS`, then
/// autodetect).
pub fn threads(opts: RunOptions) -> usize {
    cw_core::fleet::resolve_threads(opts.threads)
}

/// Shard count for the benchmark's sharded phase (Phase 1b).
///
/// An explicit request (`--shards`/`CW_SHARDS`, pre-resolved by
/// [`cw_core::fleet::resolve_shards`]) is honored as-is. On auto (`0`),
/// multi-core machines get at least 2 shards so the merge machinery is
/// always exercised — but a single-core machine gets 1: forcing shards
/// there benchmarks pure merge overhead on hardware that can never overlap
/// shard work (the regression recorded as 8.66s sharded vs 2.82s single in
/// an earlier `BENCH_scenario.json`), and the scenario path itself resolves
/// auto to the single-engine build on such machines.
pub fn phase1b_shards(resolved: usize, hardware_threads: usize) -> usize {
    match resolved {
        0 if hardware_threads <= 1 => 1,
        0 => hardware_threads.max(2),
        k => k,
    }
}

/// The scenario configuration these options select for a year. The shard
/// count resolves flag → `CW_SHARDS` → auto (0, resolved to the machine's
/// parallelism at run time); any value yields the same bytes.
pub fn config_for(opts: RunOptions, default_year: ScenarioYear) -> ScenarioConfig {
    let year = opts.year.unwrap_or(default_year);
    ScenarioConfig::paper(year)
        .with_seed(opts.seed)
        .with_scale(opts.scale)
        .with_shards(cw_core::fleet::resolve_shards(opts.shards))
        .with_fault(opts.fault)
}

/// Run one configured scenario with progress logging on stderr.
///
/// Safe to call from fleet workers: progress goes to stderr (unordered
/// under parallelism), results to the caller.
pub fn run_config(config: ScenarioConfig) -> Scenario {
    eprintln!(
        "[cw] running {} scenario (scale {}, seed {:#x}) ...",
        config.year.year(),
        config.scale,
        config.seed
    );
    let start = std::time::Instant::now();
    let s = Scenario::run(config);
    eprintln!(
        "[cw] simulated {} week complete in {:.1?}: {} flows delivered, {} honeypot events, {} telescope packets",
        config.year.year(),
        start.elapsed(),
        s.stats.flows_delivered,
        s.dataset.len(),
        s.telescope.borrow().total_packets()
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs<'a>(args: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        args.iter().map(|s| s.to_string())
    }

    #[test]
    fn parse_from_defaults_and_flags() {
        let d = parse_from(strs(&[]));
        assert_eq!(d.scale, 1.0);
        assert_eq!(d.seed, DEFAULT_SEED);
        assert!(d.year.is_none());
        assert!(d.threads.is_none());
        assert!(d.shards.is_none());
        assert!(!d.no_cache);
        assert!(!d.trace_scans);

        let o = parse_from(strs(&[
            "--scale", "0.25", "--seed", "7", "--year", "2020", "--threads", "3", "--shards",
            "4", "--no-cache", "--trace-scans",
        ]));
        assert_eq!(o.scale, 0.25);
        assert_eq!(o.seed, 7);
        assert_eq!(o.year, Some(ScenarioYear::Y2020));
        assert_eq!(o.threads, Some(3));
        assert_eq!(o.shards, Some(4));
        assert!(o.no_cache);
        assert!(o.trace_scans);
    }

    #[test]
    fn phase1b_never_forces_shards_on_a_single_core_machine() {
        // Auto on one hardware thread takes the legacy single-engine path.
        assert_eq!(phase1b_shards(0, 1), 1);
        // Auto on multi-core exercises the merge machinery.
        assert_eq!(phase1b_shards(0, 2), 2);
        assert_eq!(phase1b_shards(0, 8), 8);
        // An explicit request is always honored, even on one core.
        assert_eq!(phase1b_shards(3, 1), 3);
        assert_eq!(phase1b_shards(1, 8), 1);
    }

    #[test]
    fn parse_from_fault_flags() {
        assert!(parse_from(strs(&[])).fault.is_none());
        let o = parse_from(strs(&[
            "--loss",
            "0.1",
            "--outage",
            "0.05",
            "--outage-windows",
            "2",
            "--truncate",
            "0.25",
            "--truncate-to",
            "32",
            "--telescope-sample",
            "4",
        ]));
        assert!(!o.fault.is_none());
        assert_eq!(o.fault.flow_loss, 0.1);
        assert_eq!(o.fault.outage, 0.05);
        assert_eq!(o.fault.outage_windows, 2);
        assert_eq!(o.fault.truncation, 0.25);
        assert_eq!(o.fault.truncate_to, 32);
        assert_eq!(o.fault.telescope_sample, 4);
        // The parsed plan lands in the scenario config bit-for-bit.
        let cfg = config_for(o, ScenarioYear::Y2021);
        assert!(cfg.fault.same_bits(&o.fault));
    }
}
