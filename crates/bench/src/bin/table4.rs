//! Table 4: geographic regions with the most different traffic patterns.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::geography::table4;
use cw_core::report::{phi_value, TextTable};
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Table 4: most-different geographic region per provider (2021)");
    paper_note(
        "Asia-Pacific regions dominate: e.g. Top-AS SSH/22 AWS=AP-JP (0.68), Google=AP-SG (0.16), \
         Linode=AP-SG (0.27); Username TEL/23 AWS=AP-AU (0.56); Payload HTTP/80 AWS=AP-HK (0.31) \
         — expect most named regions to be AP-*",
    );
    let rows = table4(&s.dataset, &s.deployment);
    let mut t = TextTable::new(&["Characteristic", "Slice", "Provider", "Most Dif. Region", "Avg phi"]);
    let mut ap_hits = 0usize;
    let mut named = 0usize;
    for r in &rows {
        if let Some(region) = &r.region {
            named += 1;
            if region.starts_with("AP-") {
                ap_hits += 1;
            }
        }
        t.row(vec![
            r.characteristic.label().to_string(),
            r.slice.label().to_string(),
            format!("{:?}", r.provider),
            r.region.clone().unwrap_or_else(|| "-".into()),
            phi_value(r.avg_phi, 1),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Asia-Pacific share of most-different regions: {ap_hits}/{named} \
         (paper: AP dominates the grid)"
    );
}
