//! Ablation: the §4.4 median filter.
//!
//! "We account for attacker preferences for certain IPs … by comparing the
//! median expected values across groups." Without the filter, the Axtel
//! flood on one Linode Singapore honeypot makes the *region* look wildly
//! different; the median representative removes the single-honeypot
//! anomaly. This ablation compares Linode AP-SG against the other Linode
//! regions both ways.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::compare::{compare_freqs, median_freqs, CharKind};
use cw_core::dataset::TrafficSlice;
use cw_core::report::TextTable;
use cw_honeypot::deployment::{CollectorKind, Provider};
use cw_scanners::population::ScenarioYear;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Ablation: §4.4 median filtering vs naive pooling (Linode SSH/22 Top-AS)");
    paper_note(
        "the Axtel (AS6503) flood hits one of four Linode AP-SG honeypots with ~3 orders of \
         magnitude more IPs (§4.1); naive pooling attributes it to the whole region",
    );

    // Group Linode honeypots per region.
    let mut regions: Vec<(String, Vec<Ipv4Addr>)> = Vec::new();
    for v in &s.deployment.vantages {
        if v.provider != Provider::Linode || v.collector != CollectorKind::GreyNoise {
            continue;
        }
        match regions.iter_mut().find(|(c, _)| *c == v.region.code) {
            Some((_, ips)) => ips.push(v.ip),
            None => regions.push((v.region.code.clone(), vec![v.ip])),
        }
    }
    let rep = |ips: &[Ipv4Addr], use_median: bool| -> BTreeMap<String, u64> {
        let per: Vec<BTreeMap<String, u64>> = ips
            .iter()
            .map(|&ip| {
                CharKind::TopAs.freqs(&s.dataset.events_at_in(ip, TrafficSlice::SshPort22))
            })
            .collect();
        if use_median {
            median_freqs(&per)
        } else {
            let mut pooled: BTreeMap<String, u64> = BTreeMap::new();
            for m in per {
                for (k, v) in m {
                    *pooled.entry(k).or_insert(0) += v;
                }
            }
            pooled
        }
    };

    let sg = regions
        .iter()
        .find(|(c, _)| c == "AP-SG")
        .expect("Linode AP-SG exists");
    let others: Vec<&(String, Vec<Ipv4Addr>)> =
        regions.iter().filter(|(c, _)| c != "AP-SG").collect();

    let mut t = TextTable::new(&["Other region", "naive phi", "sig?", "median phi", "sig?"]);
    let m = others.len();
    for (code, ips) in &others {
        let mut row = vec![code.clone()];
        for use_median in [false, true] {
            let a = rep(&sg.1, use_median);
            let b = rep(ips, use_median);
            match compare_freqs(CharKind::TopAs, &[a, b], 0.05, m) {
                Some(cmp) => {
                    row.push(format!("{:.2}", cmp.effect.phi));
                    row.push(if cmp.significant { "yes" } else { "no" }.into());
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        t.row(row);
    }
    println!("{}", t.render());
    // The flood itself, for context.
    let per_honeypot: Vec<u64> = sg
        .1
        .iter()
        .map(|&ip| {
            *CharKind::TopAs
                .freqs(&s.dataset.events_at_in(ip, TrafficSlice::SshPort22))
                .get("AS6503")
                .unwrap_or(&0)
        })
        .collect();
    println!(
        "AS6503 (Axtel) SSH events per AP-SG honeypot: {per_honeypot:?} — the anomaly the \
         median filter suppresses"
    );
}
