//! §3.2 traffic-composition statistics.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::ports::composition_stats;
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Section 3.2: traffic composition (2021)");
    paper_note(
        "34% of Telnet/23 traffic does not attempt login; 24% on SSH/22; 75% of HTTP/80 \
         payloads send no exploit; Suricata labels 6% of distinct HTTP payloads malicious",
    );
    let c = composition_stats(&s.dataset, &s.deployment);
    println!(
        "Telnet/23 traffic not attempting login : {:.0}%  (paper 34%)",
        c.telnet_non_auth_pct
    );
    println!(
        "SSH/22 traffic not attempting login    : {:.0}%  (paper 24%)",
        c.ssh_non_auth_pct
    );
    println!(
        "HTTP/80 payloads without exploits      : {:.0}%  (paper 75%)",
        c.http80_benign_pct
    );
    println!(
        "Distinct HTTP payloads labeled malicious: {:.0}%  (paper 6%)",
        c.distinct_http_malicious_pct
    );
}
