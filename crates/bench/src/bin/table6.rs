//! Table 6: honeypots in multiple clouds — the city-matched placement matrix.

use cw_bench::{header, paper_note};
use cw_core::report::TextTable;
use cw_honeypot::deployment::{Deployment, Provider};

fn main() {
    header("Table 6: city/state-matched multi-cloud deployments");
    paper_note(
        "paper lists CA, GA, OR, TX, VG, FRA rows; our Table 1-derived fleet yields the \
         city-matched pairs below (the paper's own Tables 1 and 6 disagree slightly — see DESIGN.md)",
    );
    let d = Deployment::standard();
    let regions = d.greynoise_provider_regions();
    let mut codes: Vec<String> = regions.iter().map(|(_, r)| r.code.clone()).collect();
    codes.sort();
    codes.dedup();

    let providers = [Provider::Aws, Provider::Google, Provider::Linode, Provider::Azure];
    let mut t = TextTable::new(&["Region", "AWS", "Google", "Linode", "Azure"]);
    for code in codes {
        let has = |p: Provider| {
            regions
                .iter()
                .any(|(pp, r)| *pp == p && r.code == code)
        };
        let marks: Vec<bool> = providers.iter().map(|&p| has(p)).collect();
        if marks.iter().filter(|&&m| m).count() >= 2 {
            t.row(vec![
                code.clone(),
                if marks[0] { "+" } else { "" }.to_string(),
                if marks[1] { "+" } else { "" }.to_string(),
                if marks[2] { "+" } else { "" }.to_string(),
                if marks[3] { "+" } else { "" }.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
}
