//! Table 1: vantage points — unique scanning IPs and ASes per network.

use cw_bench::{config_for, header_str, paper_note_str, parse_args, run_config, threads};
use cw_core::fleet;
use cw_core::report::TextTable;
use cw_core::scenario::Scenario;
use cw_honeypot::deployment::{CollectorKind, Provider};
use cw_scanners::population::ScenarioYear;

fn main() {
    let opts = parse_args();
    // One config, but routed through the fleet so the render happens in
    // the worker and only the finished section crosses back.
    let configs = vec![config_for(opts, ScenarioYear::Y2021)];
    let sections = fleet::map(configs, threads(opts), |_, cfg| render(&run_config(cfg)));
    for s in sections {
        print!("{s}");
    }
}

fn render(s: &Scenario) -> String {
    let mut out = header_str("Table 1: Vantage points — unique scan IPs / ASes, July 1-7 (simulated)");
    out.push_str(&paper_note_str(
        "HE 130K/8.3K · AWS 99.6K/7.1K · Azure 19.9K/2.5K · Google 103K/7.5K · Linode 72K/6.0K · \
         Stanford 105K/6.2K · Merit 107K/6.3K · Orion 5.1M/24.8K — absolute counts scale with the \
         simulated population; compare shapes (per-network ordering), not magnitudes",
    ));

    let mut t = TextTable::new(&[
        "Network",
        "Collection",
        "# Geo Regions",
        "Vantage IPs",
        "Unique Scan IPs",
        "Unique Scan ASes",
    ]);

    let rows: Vec<(&str, Provider, CollectorKind)> = vec![
        ("Hurricane Electric", Provider::HurricaneElectric, CollectorKind::GreyNoise),
        ("AWS", Provider::Aws, CollectorKind::GreyNoise),
        ("Azure", Provider::Azure, CollectorKind::GreyNoise),
        ("Google", Provider::Google, CollectorKind::GreyNoise),
        ("Linode", Provider::Linode, CollectorKind::GreyNoise),
        ("Stanford", Provider::Stanford, CollectorKind::Honeytrap),
        ("AWS (Honeytrap)", Provider::Aws, CollectorKind::Honeytrap),
        ("Google (Honeytrap)", Provider::Google, CollectorKind::Honeytrap),
        ("Merit", Provider::Merit, CollectorKind::Honeytrap),
    ];
    for (name, provider, collector) in rows {
        let vantages: Vec<_> = s
            .deployment
            .vantages
            .iter()
            .filter(|v| v.provider == provider && v.collector == collector)
            .collect();
        if vantages.is_empty() {
            continue;
        }
        let mut regions: Vec<&str> = vantages.iter().map(|v| v.region.code.as_str()).collect();
        regions.sort();
        regions.dedup();
        let ips: Vec<_> = vantages.iter().map(|v| v.ip).collect();
        let (srcs, asns) = s.dataset.unique_sources(&ips);
        t.row(vec![
            name.to_string(),
            format!("{collector:?}"),
            regions.len().to_string(),
            ips.len().to_string(),
            srcs.to_string(),
            asns.to_string(),
        ]);
    }
    // The telescope row.
    let tel = s.telescope.borrow();
    t.row(vec![
        "Orion".to_string(),
        "Telescope".to_string(),
        "1".to_string(),
        tel.block().size().to_string(),
        tel.unique_source_count().to_string(),
        tel.unique_asn_count().to_string(),
    ]);
    out.push_str(&format!("{}\n", t.render()));
    out
}
