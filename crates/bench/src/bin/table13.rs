//! Table 13 (Appendix C.3): region-pair similarity on 2020 data.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::compare::CharKind;
use cw_core::dataset::TrafficSlice;
use cw_core::geography::table5;
use cw_core::report::TextTable;
use cw_netsim::geo::RegionPairKind;
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2020);
    header("Table 13: % similar pairs of regions per bucket (2020)");
    paper_note(
        "2020 keeps the APAC-least-similar shape (e.g. SSH/22 Top-AS: US 71, EU 42, APAC 30, IC 46)",
    );
    let mut t = TextTable::new(&["Slice", "Characteristic", "US", "EU", "APAC", "Intercont."]);
    for (slice, kinds) in [
        (
            TrafficSlice::SshPort22,
            vec![CharKind::TopAs, CharKind::FracMalicious, CharKind::TopUsername, CharKind::TopPassword],
        ),
        (
            TrafficSlice::TelnetPort23,
            vec![CharKind::TopAs, CharKind::FracMalicious, CharKind::TopUsername, CharKind::TopPassword],
        ),
        (
            TrafficSlice::HttpPort80,
            vec![CharKind::TopAs, CharKind::FracMalicious, CharKind::TopPayload],
        ),
        (
            TrafficSlice::HttpAllPorts,
            vec![CharKind::TopAs, CharKind::FracMalicious, CharKind::TopPayload],
        ),
    ] {
        for kind in kinds {
            let cells = table5(&s.dataset, &s.deployment, slice, kind);
            let find = |b: RegionPairKind| {
                cells
                    .iter()
                    .find(|c| c.bucket == b)
                    .map(|c| format!("{:.0}%", c.pct_similar))
                    .unwrap_or_else(|| "-".into())
            };
            t.row(vec![
                slice.label().to_string(),
                kind.label().to_string(),
                find(RegionPairKind::WithinUs),
                find(RegionPairKind::WithinEu),
                find(RegionPairKind::WithinApac),
                find(RegionPairKind::Intercontinental),
            ]);
        }
    }
    println!("{}", t.render());
}
