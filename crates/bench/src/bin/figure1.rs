//! Figure 1: address-structure preferences inside the telescope.
//!
//! Prints ASCII sparklines of the rolling-512 unique-scanner series for the
//! four panels and writes full CSVs to `out/figure1_port<k>.csv`.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::figure1::{
    ascii_sparkline, series, slash16_first_preference, structure_stats,
};
use cw_netsim::ip::IpExt;
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Figure 1: telescope address-structure preferences (2021)");
    paper_note(
        "(a) port 22: spikes at /16 first addresses (order of magnitude); \
         (b) port 445 / (c) port 80: dips at any-255-octet addresses (9x / strong); \
         (d) port 17128: a four-address latch",
    );
    std::fs::create_dir_all("out").expect("create out/");
    let tel = s.telescope.borrow();
    for (panel, port) in [("a", 22u16), ("b", 445), ("c", 80), ("d", 17_128)] {
        let Some(fig) = series(&tel, port) else {
            println!("(1{panel}) port {port}: not tracked");
            continue;
        };
        println!("(1{panel}) port {port} — rolling-512 unique scanners per IP:");
        println!("      {}", ascii_sparkline(&fig.rolling, 96));
        let path = format!("out/figure1_port{port}.csv");
        let file = std::fs::File::create(&path).expect("create csv");
        cw_core::figure1::write_csv(&tel, &fig, std::io::BufWriter::new(file))
            .expect("write csv");
        println!("      series written to {path}");
    }
    println!();
    if let Some(pref) = slash16_first_preference(&tel, 22) {
        println!("port 22: /16-first addresses are {pref:.1}x more targeted (paper: ~10x)");
    }
    for (port, paper) in [(445u16, "9x"), (80, "dips visible"), (7_574, "61x")] {
        if let Some(st) = structure_stats(&tel, port, |ip| ip.has_255_octet()) {
            println!(
                "port {port}: 255-octet addresses are {:.1}x less targeted \
                 (mean {:.3} vs {:.3}; paper: {paper})",
                st.avoidance_factor, st.mean_matching, st.mean_rest
            );
        }
    }
    if let Some(fig) = series(&tel, 17_128) {
        let mut sorted: Vec<(usize, u32)> = fig.counts.iter().copied().enumerate().collect();
        sorted.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let top: Vec<String> = sorted
            .iter()
            .take(4)
            .map(|&(i, c)| format!("{} ({c})", tel.block().nth(i as u64)))
            .collect();
        println!("port 17128 latch targets: {}", top.join(", "));
    }
}
