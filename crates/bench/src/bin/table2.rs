//! Table 2: attackers target neighboring services differently.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::neighborhood::table2;
use cw_core::report::{phi_value, TextTable};
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Table 2: % neighborhoods with significantly different traffic (2021)");
    paper_note(
        "SSH/22: AS 44% (0.31), FracMal 36% (0.12), User 55% (0.22), Pwd 4% (0.13) · \
         Telnet/23: AS 38% (0.43), FracMal 15%, User 21% (0.24), Pwd 19% (0.39) · \
         HTTP/80: AS 31% (0.43), FracMal 0%, Payload 15% (0.39) · \
         HTTP/All: AS 42% (0.23), FracMal 19% (0.04), Payload 77% (0.17)",
    );
    let rows = table2(&s.dataset, &s.deployment);
    let mut t = TextTable::new(&["Slice", "Characteristic", "n", "% dif neighborhoods", "Avg phi"]);
    for r in &rows {
        t.row(vec![
            r.slice.label().to_string(),
            r.characteristic.label().to_string(),
            r.n.to_string(),
            format!("{:.0}%", r.pct_different),
            phi_value(r.avg_phi, 1),
        ]);
    }
    println!("{}", t.render());
}
