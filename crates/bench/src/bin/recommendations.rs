//! §8: the paper's recommendations, re-derived from this run's data.

use cw_bench::{header, parse_args, scenario};
use cw_core::recommendations::evaluate;
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Section 8: recommendations, with this run's supporting evidence");
    for r in evaluate(&s) {
        println!(
            "{} {}\n    {}\n",
            if r.supported { "✔" } else { "✘" },
            r.title,
            r.evidence
        );
    }
}
