//! Table 14 (Appendix C.2): network differences — Cloud–Cloud on 2020 data,
//! Cloud–EDU and EDU–EDU on 2022 data.
//!
//! The two year scenarios are independent, so they run as a two-worker
//! [`cw_core::fleet`]; each worker folds its scenario down to the grid's
//! cell strings and the table is assembled (in fixed grid order) on the
//! main thread.

use cw_bench::{config_for, header, paper_note, parse_args, run_config, threads, RunOptions};
use cw_core::compare::CharKind;
use cw_core::dataset::TrafficSlice;
use cw_core::fleet;
use cw_core::network::{cloud_cloud_cell, honeytrap_cell, NetworkCell, CLOUD_EDU_PAIRS};
use cw_core::report::{phi_value, TextTable};
use cw_core::scenario::Scenario;
use cw_scanners::population::ScenarioYear;

const GRID: &[(CharKind, TrafficSlice)] = &[
    (CharKind::TopAs, TrafficSlice::SshPort22),
    (CharKind::TopAs, TrafficSlice::TelnetPort23),
    (CharKind::TopAs, TrafficSlice::HttpPort80),
    (CharKind::TopAs, TrafficSlice::HttpAllPorts),
    (CharKind::TopUsername, TrafficSlice::SshPort22),
    (CharKind::TopUsername, TrafficSlice::TelnetPort23),
    (CharKind::TopPassword, TrafficSlice::TelnetPort23),
    (CharKind::TopPassword, TrafficSlice::SshPort22),
    (CharKind::TopPayload, TrafficSlice::HttpPort80),
    (CharKind::TopPayload, TrafficSlice::HttpAllPorts),
    (CharKind::FracMalicious, TrafficSlice::SshPort22),
    (CharKind::FracMalicious, TrafficSlice::TelnetPort23),
    (CharKind::FracMalicious, TrafficSlice::HttpPort80),
    (CharKind::FracMalicious, TrafficSlice::HttpAllPorts),
];

fn cells(c: &NetworkCell) -> (String, String) {
    if c.uncomputable {
        ("×".into(), "×".into())
    } else {
        (format!("{}/{}", c.n_different, c.n), phi_value(c.avg_phi, 1))
    }
}

/// Per grid row: the cell-string pairs this year contributes (one CC pair
/// for 2020, CE then EE pairs for 2022).
fn fold_year(s: &Scenario) -> Vec<Vec<(String, String)>> {
    let edu_edu: [(&str, &str); 1] = [("honeytrap/stanford", "honeytrap/merit")];
    GRID.iter()
        .map(|&(kind, slice)| match s.config.year {
            ScenarioYear::Y2020 => {
                vec![cells(&cloud_cloud_cell(&s.dataset, &s.deployment, slice, kind, 0.05))]
            }
            _ => vec![
                cells(&honeytrap_cell(&s.dataset, &s.deployment, &CLOUD_EDU_PAIRS, slice, kind, 0.05)),
                cells(&honeytrap_cell(&s.dataset, &s.deployment, &edu_edu, slice, kind, 0.05)),
            ],
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    let configs = vec![
        config_for(
            RunOptions {
                year: Some(ScenarioYear::Y2020),
                ..opts
            },
            ScenarioYear::Y2020,
        ),
        config_for(
            RunOptions {
                year: Some(ScenarioYear::Y2022),
                ..opts
            },
            ScenarioYear::Y2022,
        ),
    ];
    let mut folded = fleet::map(configs, threads(opts), |_, cfg| fold_year(&run_config(cfg)));
    let y2022 = folded.pop().unwrap();
    let y2020 = folded.pop().unwrap();

    header("Table 14: Cloud-Cloud (2020) / Cloud-EDU (2022) / EDU-EDU (2022)");
    paper_note(
        "scanners are more likely to partially avoid education networks than to prefer a \
         specific cloud; the 2022 Merit router-bruteforce anomaly yields a medium (0.34) \
         EDU-EDU payload difference",
    );
    let mut t = TextTable::new(&[
        "Characteristic",
        "Slice",
        "CC'20 dif",
        "phi",
        "CE'22 dif",
        "phi",
        "EE'22 dif",
        "phi",
    ]);
    for (i, &(kind, slice)) in GRID.iter().enumerate() {
        let mut row = vec![kind.label().to_string(), slice.label().to_string()];
        for (a, b) in y2020[i].iter().chain(y2022[i].iter()) {
            row.push(a.clone());
            row.push(b.clone());
        }
        t.row(row);
    }
    println!("{}", t.render());
}
