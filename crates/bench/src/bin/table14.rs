//! Table 14 (Appendix C.2): network differences — Cloud–Cloud on 2020 data,
//! Cloud–EDU and EDU–EDU on 2022 data.

use cw_bench::{header, paper_note, parse_args, scenario, RunOptions};
use cw_core::compare::CharKind;
use cw_core::dataset::TrafficSlice;
use cw_core::network::{cloud_cloud_cell, honeytrap_cell, NetworkCell, CLOUD_EDU_PAIRS};
use cw_core::report::{phi_value, TextTable};
use cw_scanners::population::ScenarioYear;

fn cells(c: &NetworkCell) -> (String, String) {
    if c.uncomputable {
        ("×".into(), "×".into())
    } else {
        (format!("{}/{}", c.n_different, c.n), phi_value(c.avg_phi, 1))
    }
}

fn main() {
    let opts = parse_args();
    let s2020 = scenario(
        RunOptions {
            year: Some(ScenarioYear::Y2020),
            ..opts
        },
        ScenarioYear::Y2020,
    );
    let s2022 = scenario(
        RunOptions {
            year: Some(ScenarioYear::Y2022),
            ..opts
        },
        ScenarioYear::Y2022,
    );
    header("Table 14: Cloud-Cloud (2020) / Cloud-EDU (2022) / EDU-EDU (2022)");
    paper_note(
        "scanners are more likely to partially avoid education networks than to prefer a \
         specific cloud; the 2022 Merit router-bruteforce anomaly yields a medium (0.34) \
         EDU-EDU payload difference",
    );
    let grid: &[(CharKind, TrafficSlice)] = &[
        (CharKind::TopAs, TrafficSlice::SshPort22),
        (CharKind::TopAs, TrafficSlice::TelnetPort23),
        (CharKind::TopAs, TrafficSlice::HttpPort80),
        (CharKind::TopAs, TrafficSlice::HttpAllPorts),
        (CharKind::TopUsername, TrafficSlice::SshPort22),
        (CharKind::TopUsername, TrafficSlice::TelnetPort23),
        (CharKind::TopPassword, TrafficSlice::TelnetPort23),
        (CharKind::TopPassword, TrafficSlice::SshPort22),
        (CharKind::TopPayload, TrafficSlice::HttpPort80),
        (CharKind::TopPayload, TrafficSlice::HttpAllPorts),
        (CharKind::FracMalicious, TrafficSlice::SshPort22),
        (CharKind::FracMalicious, TrafficSlice::TelnetPort23),
        (CharKind::FracMalicious, TrafficSlice::HttpPort80),
        (CharKind::FracMalicious, TrafficSlice::HttpAllPorts),
    ];
    let edu_edu: [(&str, &str); 1] = [("honeytrap/stanford", "honeytrap/merit")];
    let mut t = TextTable::new(&[
        "Characteristic",
        "Slice",
        "CC'20 dif",
        "phi",
        "CE'22 dif",
        "phi",
        "EE'22 dif",
        "phi",
    ]);
    for &(kind, slice) in grid {
        let cc = cloud_cloud_cell(&s2020.dataset, &s2020.deployment, slice, kind, 0.05);
        let ce = honeytrap_cell(&s2022.dataset, &s2022.deployment, &CLOUD_EDU_PAIRS, slice, kind, 0.05);
        let ee = honeytrap_cell(&s2022.dataset, &s2022.deployment, &edu_edu, slice, kind, 0.05);
        let (a, b) = cells(&cc);
        let (c, d) = cells(&ce);
        let (e, f) = cells(&ee);
        t.row(vec![
            kind.label().to_string(),
            slice.label().to_string(),
            a,
            b,
            c,
            d,
            e,
            f,
        ]);
    }
    println!("{}", t.render());
}
