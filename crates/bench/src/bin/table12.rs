//! Table 12 (Appendix C.1): neighborhood differences on 2020 data.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::neighborhood::table2;
use cw_core::report::{phi_value, TextTable};
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2020);
    header("Table 12: % neighborhoods with different traffic (2020)");
    paper_note(
        "2020 shows the same phenomenon as 2021 with shifted magnitudes: SSH/22 AS 73% (0.23), \
         FracMal 60% (0.10), User 74% (0.20), Pwd 19% (0.24); Telnet/23 AS 43% (0.38); \
         HTTP/80 AS 2% (0.58); HTTP/All AS 61% (0.29), Payload 64% (0.50)",
    );
    let rows = table2(&s.dataset, &s.deployment);
    let mut t = TextTable::new(&["Slice", "Characteristic", "n", "% dif neighborhoods", "Avg phi"]);
    for r in &rows {
        t.row(vec![
            r.slice.label().to_string(),
            r.characteristic.label().to_string(),
            r.n.to_string(),
            format!("{:.0}%", r.pct_different),
            phi_value(r.avg_phi, 1),
        ]);
    }
    println!("{}", t.render());
}
