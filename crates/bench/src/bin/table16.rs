//! Table 16 (Appendix C.3): geographic traffic patterns on 2020 data.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::geography::table4;
use cw_core::report::{phi_value, TextTable};
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2020);
    header("Table 16: most-different geographic regions (2020)");
    paper_note(
        "Asia-Pacific still dominates in 2020 (AWS SSH AP-JP 0.21, Google SSH AP-HK 0.37, \
         Linode SSH AP-SG 0.26, ...), with a few non-AP anomalies",
    );
    let rows = table4(&s.dataset, &s.deployment);
    let mut t = TextTable::new(&["Characteristic", "Slice", "Provider", "Most Dif. Region", "Avg phi"]);
    let mut ap = 0;
    let mut named = 0;
    for r in &rows {
        if let Some(region) = &r.region {
            named += 1;
            if region.starts_with("AP-") {
                ap += 1;
            }
        }
        t.row(vec![
            r.characteristic.label().to_string(),
            r.slice.label().to_string(),
            format!("{:?}", r.provider),
            r.region.clone().unwrap_or_else(|| "-".into()),
            phi_value(r.avg_phi, 1),
        ]);
    }
    println!("{}", t.render());
    println!("Asia-Pacific share of most-different regions: {ap}/{named}");
}
