//! Table 11: scanner-targeted protocols on HTTP-assigned ports.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::ports::protocol_breakdown;
use cw_core::report::TextTable;
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Table 11: protocol breakdown on ports 80/8080 (2021)");
    paper_note(
        "HTTP/80 85% (42% benign, 55% malicious) vs ~HTTP/80 15% (42%, 51%); \
         HTTP/8080 84% (22%, 77%) vs ~HTTP/8080 16% (35%, 49%); \
         ~HTTP split: TLS 7%, Telnet 0.5%, SQL 0.4%, RTSP 0.3%, SMB 0.3%, …",
    );
    let mut t = TextTable::new(&["Protocol/Port", "Breakdown", "% Benign", "% Malicious", "Scanners"]);
    for port in [80u16, 8080] {
        let (rows, shares) =
            protocol_breakdown(&s.dataset, &s.deployment, &s.handles.reputation, port);
        for r in &rows {
            t.row(vec![
                format!("{}HTTP/{}", if r.is_http { "" } else { "~" }, port),
                format!("{:.0}%", r.pct_of_scanners),
                format!("{:.0}%", r.pct_benign),
                format!("{:.0}%", r.pct_malicious),
                r.scanners.to_string(),
            ]);
        }
        if port == 80 {
            println!("~HTTP/80 per-protocol shares:");
            for sh in &shares {
                println!("  {:<7} {:.2}%", sh.protocol.label(), sh.pct);
            }
            println!();
        }
    }
    println!("{}", t.render());
}
