//! Table 3: impact of Internet-service search engines (the leak experiment).

use cw_bench::{header, paper_note, parse_args};
use cw_core::leak::{run, LeakConfig, LeakGroup, LeakService};
use cw_core::report::{fold_cell, TextTable};

fn main() {
    let opts = parse_args();
    header("Table 3: fold increase in traffic/hour toward leaked services");
    paper_note(
        "HTTP/80 all: Censys 7.7* Shodan 15.7* Prev 17.2* · malicious: 4.0* / 5.8 / 7.3 · \
         SSH/22 all: 2.4 / 2.6* / 1.5* · malicious: 2.5 / 2.8* / 1.7* · \
         Telnet/23 all: 72.6* / 1.06* / 201 · malicious: 1.6* / 1.3* / 1.8 \
         (** = MWU-significant increase; trailing * = KS-different distribution/spikes)",
    );
    eprintln!("[cw] running leak experiment (scale {}, seed {:#x}) ...", opts.scale, opts.seed);
    let started = std::time::Instant::now();
    let outcome = run(&LeakConfig {
        seed: opts.seed ^ 0x1EA4,
        scale: opts.scale,
        horizon: cw_netsim::time::SimDuration::WEEK,
    });
    eprintln!("[cw] leak experiment complete in {:.1?}", started.elapsed());

    let mut t = TextTable::new(&["Service", "Traffic", "Censys Leaked", "Shodan Leaked", "Previously Leaked"]);
    for svc in LeakService::ALL {
        for malicious in [false, true] {
            let cell = |group: LeakGroup| -> String {
                outcome
                    .cells
                    .iter()
                    .find(|c| c.service == svc && c.group == group && c.malicious_only == malicious)
                    .map(|c| fold_cell(c.fold, c.mwu_significant, c.ks_different))
                    .unwrap_or_else(|| "-".into())
            };
            t.row(vec![
                if malicious { String::new() } else { svc.label().to_string() },
                if malicious { "Malicious" } else { "All" }.to_string(),
                cell(LeakGroup::CensysLeaked(svc)),
                cell(LeakGroup::ShodanLeaked(svc)),
                cell(LeakGroup::PreviouslyLeaked),
            ]);
        }
    }
    println!("{}", t.render());
    let (leaked_pw, control_pw) = outcome.ssh_unique_passwords;
    println!(
        "Unique SSH passwords attempted: leaked {leaked_pw:.1} vs control {control_pw:.1} \
         ({:.1}x; paper: ~3x)",
        leaked_pw / control_pw.max(1.0)
    );
}
