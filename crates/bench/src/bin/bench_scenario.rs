//! End-to-end scenario benchmark: machine-readable perf trajectory.
//!
//! Runs the 2021 scenario, times the engine phase and the
//! classification+dataset-build phase separately, and writes
//! `BENCH_scenario.json` into the current directory so successive PRs can
//! record before/after numbers. The same world is then re-run through the
//! sharded path (`shards` / `sharded_scenario_wall_secs` /
//! `shard_busy_secs`), gated on event-count invariants against the
//! single-engine run — the bench fails before reporting timings if the
//! two worlds disagree. Fleet wall time is measured at requested
//! thread counts 1 and 8 (`run_replicates_timed`, so the thread axis
//! exercises the merge path too), with per-worker wall clocks and the
//! machine's hardware parallelism recorded alongside — each fleet entry
//! carries `requested_threads` so a `workers` count capped at the hardware
//! is explained rather than silent. The snapshot-cache round trip
//! (`snapshot_write_secs` / `snapshot_read_secs`) and a fully warm
//! all-exhibits render (`all_cached_wall_secs` — every world served from
//! `out/.cache`) are timed too, so the simulate-once speedup is recorded
//! next to the simulation cost it replaces; the warm render runs twice,
//! once without plan prefetching and once with it, and the scan counters
//! of each pass land as `unfused_scans` / `fused_scans` (with
//! `fused_rows_per_sec` over the fused pass) so the registry-wide scan
//! fusion is a measured number, not a claim. The `bench_query` phase times
//! the query layer's fused scan (the Tables 8+9 [`cw_core::PlanSet`])
//! against hand-rolled independent sweeps producing identical sets,
//! recording both as `query_rows_per_sec` / `handrolled_rows_per_sec`. The
//! streaming
//! dataset build is timed on the same world (`streaming_build_secs`, with
//! `stream_windows` / `peak_window_rows` / a modeled
//! `peak_resident_estimate`), and a final `sweep` phase runs the `cw
//! sweep` driver cold and warm over a tiny 2-cell grid against a private
//! cache, asserting the simulate-once contract (cold simulations ==
//! distinct cells, warm == 0, byte-identical reports) before recording the
//! walls.

use cw_bench::{parse_args, phase1b_shards, run_config};
use cw_core::dataset::Dataset;
use cw_core::exhibit::{self, ExhibitCx, ExhibitOptions};
use cw_core::fleet;
use cw_core::overlap::{cloud_ips, edu_ips, TABLE9_PORTS};
use cw_core::scenario::ScenarioConfig;
use cw_core::{snapshot, Plan, PlanSet, SimBundle};
use cw_detection::Verdict;
use cw_honeypot::deployment::Deployment;
use cw_protocols::iana::POPULAR_PORTS;
use cw_scanners::population::ScenarioYear;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::time::Instant;

/// Repetitions of the dataset-build phase (the min is reported).
const BUILD_REPS: usize = 5;

/// Repetitions of the query-vs-hand-rolled microbenchmark.
const QUERY_REPS: usize = 5;

fn main() {
    let opts = parse_args();
    let year = opts.year.unwrap_or(ScenarioYear::Y2021);
    let config = ScenarioConfig::paper(year)
        .with_seed(opts.seed)
        .with_scale(opts.scale);

    let hardware_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // Phase 1: one full scenario (engine + first dataset build), pinned to
    // the single-engine *materialized* path so `scenario_wall_secs` keeps
    // its historical meaning across machines — and so Phase 2 below can
    // re-run the dataset build from the still-live captures, which the
    // streaming build drains.
    eprintln!(
        "[cw] running {} scenario (scale {}, seed {:#x}, materialized) ...",
        config.year.year(),
        config.scale,
        config.seed
    );
    let t0 = Instant::now();
    let s = cw_core::scenario::Scenario::run_materialized(config.with_shards(1));
    let scenario_secs = t0.elapsed().as_secs_f64();
    let events = s.dataset.len() as u64;

    // Phase 1b: the same world through the sharded path. `--shards`/
    // `CW_SHARDS` is honored; auto picks at least 2 on multi-core machines
    // so the merge machinery is always exercised, but resolves to the
    // single-engine path on a 1-thread machine, where forced sharding only
    // measures merge overhead (see `phase1b_shards`). The event-count
    // invariants gate the run: if the sharded world disagrees with the
    // single-engine world, fail loudly before any timing is reported.
    let n_shards = phase1b_shards(fleet::resolve_shards(opts.shards), hardware_threads);
    let t = Instant::now();
    let sh = run_config(config.with_shards(n_shards));
    let sharded_scenario_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        sh.dataset.len() as u64,
        events,
        "sharded run changed the event count"
    );
    assert_eq!(sh.stats, s.stats, "sharded run changed the engine counters");
    assert_eq!(
        sh.telescope.borrow().total_packets(),
        s.telescope.borrow().total_packets(),
        "sharded run changed the telescope packet count"
    );
    let shard_busy = sh.shard_busy_secs.clone();
    eprintln!(
        "[bench] sharded scenario @ {n_shards} shards: {:.2}s (single-engine {:.2}s) [{}]",
        sharded_scenario_secs,
        scenario_secs,
        shard_busy
            .iter()
            .enumerate()
            .map(|(i, b)| format!("s{i}: {b:.2}s"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    drop(sh);

    // Phase 1c: the same world through the streaming dataset build (the
    // `Scenario::run` default) — engine windows absorbed into the columnar
    // dataset incrementally. Gated on the same event-count invariant, and
    // reported next to a modeled peak-resident estimate: the finished
    // dataset plus at most one window of undrained capture rows per
    // engine, which is the buffering the streaming path is allowed.
    let t = Instant::now();
    let st = run_config(config.with_shards(n_shards));
    let streaming_build_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        st.dataset.len() as u64,
        events,
        "streaming run changed the event count"
    );
    let stream = st.stream.expect("streaming path records window stats");
    // Modeled bytes per event row across the SoA columns (time, src, ASN,
    // dst, port, observation tag + interned id).
    const ROW_BYTES: u64 = 34;
    let peak_resident_estimate =
        (events + stream.peak_window_rows as u64) * ROW_BYTES;
    eprintln!(
        "[bench] streaming scenario @ {n_shards} shard(s): {streaming_build_secs:.2}s \
         ({} windows, peak window {} rows, modeled peak resident {} bytes)",
        stream.windows, stream.peak_window_rows, peak_resident_estimate
    );
    drop(st);

    // Phase 2: classification + dataset build alone, re-run on the retained
    // captures (the honeypots stay alive inside the scenario).
    let caps: Vec<_> = s
        .deployment
        .honeypots
        .iter()
        .map(|h| h.borrow().capture())
        .collect();
    let mut build_secs = f64::INFINITY;
    for _ in 0..BUILD_REPS {
        let borrows: Vec<_> = caps.iter().map(|c| c.borrow()).collect();
        let refs: Vec<&cw_honeypot::capture::Capture> = borrows.iter().map(|b| &**b).collect();
        let t = Instant::now();
        let ds = Dataset::from_captures(&refs, &s.deployment);
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(ds.len() as u64, events);
        build_secs = build_secs.min(dt);
    }
    let events_per_sec = events as f64 / build_secs;
    drop(caps);

    // Distinct-payload ratio: distinct payload blobs / payload-carrying
    // events (the quantity memoized classification scales with). The
    // interner already deduplicates, so distinct = arena size.
    let payload_events = s
        .dataset
        .table()
        .observed()
        .iter()
        .filter(|o| matches!(o, cw_honeypot::capture::Observed::Payload(_)))
        .count() as u64;
    let distinct_payloads = s.dataset.interner().payload_count() as u64;
    let distinct_ratio = if payload_events == 0 {
        0.0
    } else {
        distinct_payloads as f64 / payload_events as f64
    };

    // Phase 2b: `bench_query` — the Tables 8+9 backbone through the query
    // layer's fused scan versus hand-rolled independent sweeps. The
    // [`PlanSet`] sweeps each fleet once for both plans (all-sources and
    // attackers-only); the baseline runs one full column scan per
    // (fleet, plan), the shape the retired `port_source_sets` sweeps had.
    // Outputs are asserted identical; rows/sec divides the event rows the
    // fused path enumerates (fleet-destined rows, each visited once) by
    // each implementation's wall time, so the two throughputs compare the
    // same job directly.
    let cloud = cloud_ips(&s.deployment);
    let edu = edu_ips(&s.deployment);
    let run_query = || -> Vec<BTreeMap<u16, BTreeSet<Ipv4Addr>>> {
        let mut set = PlanSet::over(&s.dataset);
        for plan in [
            Plan::at(&cloud).grouped_by_port(&POPULAR_PORTS).distinct_srcs(),
            Plan::at(&cloud)
                .malicious()
                .grouped_by_port(&TABLE9_PORTS)
                .distinct_srcs(),
            Plan::at(&edu).grouped_by_port(&POPULAR_PORTS).distinct_srcs(),
            Plan::at(&edu)
                .malicious()
                .grouped_by_port(&[80, 8080])
                .distinct_srcs(),
        ] {
            set.submit(plan).expect("grouped distinct-srcs plans validate");
        }
        set.execute()
            .into_iter()
            .map(|r| r.into_port_srcs())
            .collect()
    };
    let hand_rolled = |ips: &[Ipv4Addr],
                       ports: &[u16],
                       malicious: bool|
     -> BTreeMap<u16, BTreeSet<Ipv4Addr>> {
        let fleet: BTreeSet<Ipv4Addr> = ips.iter().copied().collect();
        let table = s.dataset.table();
        let verdicts = s.dataset.verdicts();
        let mut sets: BTreeMap<u16, BTreeSet<Ipv4Addr>> =
            ports.iter().map(|&p| (p, BTreeSet::new())).collect();
        for (i, &dst) in table.dsts().iter().enumerate() {
            if !fleet.contains(&dst) {
                continue;
            }
            if malicious && verdicts[i] != Verdict::Attacker {
                continue;
            }
            if let Some(set) = sets.get_mut(&table.dst_ports()[i]) {
                set.insert(table.srcs()[i]);
            }
        }
        sets
    };
    let run_hand_rolled = || -> Vec<BTreeMap<u16, BTreeSet<Ipv4Addr>>> {
        vec![
            hand_rolled(&cloud, &POPULAR_PORTS, false),
            hand_rolled(&cloud, &TABLE9_PORTS, true),
            hand_rolled(&edu, &POPULAR_PORTS, false),
            hand_rolled(&edu, &[80, 8080], true),
        ]
    };
    assert_eq!(run_query(), run_hand_rolled(), "query layer drifted");
    let job_rows = (s.dataset.query().at(&cloud).count()
        + s.dataset.query().at(&edu).count()) as f64;
    let mut query_secs = f64::INFINITY;
    let mut hand_secs = f64::INFINITY;
    for _ in 0..QUERY_REPS {
        let t = Instant::now();
        std::hint::black_box(run_query());
        query_secs = query_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(run_hand_rolled());
        hand_secs = hand_secs.min(t.elapsed().as_secs_f64());
    }
    let query_rows_per_sec = job_rows / query_secs;
    let handrolled_rows_per_sec = job_rows / hand_secs;
    eprintln!(
        "[bench] query shared scan: {query_rows_per_sec:.0} rows/s vs hand-rolled \
         {handrolled_rows_per_sec:.0} rows/s over {job_rows:.0} fleet rows"
    );

    // Phase 3: snapshot-cache round trip on the world just simulated.
    let bundle = s.into_bundle();
    let cache = snapshot::cache_dir();
    let t = Instant::now();
    snapshot::store_in(&cache, &bundle).expect("write snapshot");
    let snapshot_write_secs = t.elapsed().as_secs_f64();
    let deployment = Deployment::standard();
    let t = Instant::now();
    let restored = snapshot::load_from(&cache, &config, &deployment).expect("read snapshot back");
    let snapshot_read_secs = t.elapsed().as_secs_f64();
    assert_eq!(restored.dataset.len() as u64, events);
    drop(restored);
    drop(bundle);

    // Phase 4: fully warm all-exhibits render — every world the registry
    // needs served from the snapshot cache (primed here if cold), then all
    // 25 exhibits rendered from the shared bundles. This is `cw all` on a
    // warm cache, minus the out/*.txt writes.
    let ex_opts = ExhibitOptions {
        scale: opts.scale,
        seed: opts.seed,
        year: opts.year,
        shards: fleet::resolve_shards(opts.shards),
        fault: opts.fault,
    };
    let n_threads = fleet::resolve_threads(opts.threads);
    let configs = exhibit::required_configs(exhibit::REGISTRY, &ex_opts);
    fleet::map(configs.clone(), n_threads, |_, cfg| {
        snapshot::load_or_run(*cfg, true).1.is_hit()
    });
    let t = Instant::now();
    let bundles: BTreeMap<u16, SimBundle> =
        fleet::map(configs, n_threads, |_, cfg| snapshot::load_or_run(*cfg, true).0)
            .into_iter()
            .map(|b| (b.config.year.year(), b))
            .collect();
    // Unfused pass: the legacy path — no prefetch, every declared plan
    // runs standalone. The counter delta is the pass count fusion removes.
    let c0 = cw_core::query::scan_counters();
    let cx = ExhibitCx::new(ex_opts, &bundles);
    let rendered = fleet::map(exhibit::REGISTRY.to_vec(), n_threads, |_, e| {
        e.run(&cx).len()
    });
    let all_cached_wall_secs = t.elapsed().as_secs_f64();
    let unfused = cw_core::query::scan_counters().since(c0);
    drop(cx);
    // Fused pass: the same renders behind a registry-wide plan prefetch,
    // the shape `cw all` runs. Both passes render identical bytes (the
    // golden gate pins that); here the sizes are cross-checked and the
    // scan counters measured.
    let c0 = cw_core::query::scan_counters();
    let t = Instant::now();
    let mut fused_cx = ExhibitCx::new(ex_opts, &bundles);
    fused_cx.prefetch(exhibit::REGISTRY);
    let rendered_fused = fleet::map(exhibit::REGISTRY.to_vec(), n_threads, |_, e| {
        e.run(&fused_cx).len()
    });
    let all_cached_fused_wall_secs = t.elapsed().as_secs_f64();
    let fused = cw_core::query::scan_counters().since(c0);
    assert_eq!(rendered, rendered_fused, "fusion changed a rendered length");
    assert!(
        fused.fused < unfused.fused,
        "prefetch must fuse column passes ({} fused vs {} unfused)",
        fused.fused,
        unfused.fused
    );
    let fused_rows_per_sec = fused.rows as f64 / all_cached_fused_wall_secs;
    eprintln!(
        "[bench] warm all-exhibits render: {} exhibits, {} bytes, {:.2}s unfused \
         ({} passes) / {:.2}s fused ({} passes, {:.0} rows/s)",
        rendered.len(),
        rendered.iter().sum::<usize>(),
        all_cached_wall_secs,
        unfused.fused,
        all_cached_fused_wall_secs,
        fused.fused,
        fused_rows_per_sec
    );

    // Phase 5: fleet wall time at requested thread counts 1 and 8
    // (4 replicates), with per-worker breakdowns.
    let base = config;
    let mut fleet_runs = Vec::new();
    for threads in [1usize, 8] {
        let t = Instant::now();
        let (merged, timings) = fleet::run_replicates_timed(base, 4, threads);
        let dt = t.elapsed().as_secs_f64();
        let per_worker = timings
            .iter()
            .map(|w| format!("w{}: {} jobs {:.2}s", w.worker, w.jobs, w.busy_secs))
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "[bench] fleet 4 replicates @ {threads} threads ({} workers): {:.2}s ({} events) [{per_worker}]",
            timings.len(),
            dt,
            merged.dataset.len()
        );
        fleet_runs.push((threads, dt, timings));
    }

    // Phase 6: the `cw sweep` driver on a tiny 2-cell grid against a
    // private cache directory — cold (every cell simulated, counted via the
    // simulate-call counter) then warm (every cell a snapshot hit, zero
    // simulations). The simulate-once contract is asserted, not just
    // recorded.
    let sweep_dir = std::env::temp_dir().join(format!("cw-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sweep_dir);
    let sweep_base = ScenarioConfig::paper(year).with_seed(opts.seed).with_scale(0.01);
    let sweep_grid = cw_core::sweep::SweepGrid {
        years: vec![year],
        seeds: vec![opts.seed],
        variants: vec![cw_core::degrade::ladder().remove(0)],
        scales: vec![1.0, 2.0],
    };
    let sweep_cells = sweep_grid.cell_count() as u64;
    let sweep_distinct = sweep_grid.distinct_configs(&sweep_base) as u64;
    let run_sweep = || {
        cw_core::sweep::report(&sweep_grid, sweep_base, &|cfg| {
            snapshot::load_or_run_in(&sweep_dir, cfg, true).0
        })
    };
    let sims0 = snapshot::simulations_performed();
    let t = Instant::now();
    let cold_report = run_sweep();
    let sweep_cold_wall_secs = t.elapsed().as_secs_f64();
    let sweep_cold_simulations = snapshot::simulations_performed() - sims0;
    let t = Instant::now();
    let warm_report = run_sweep();
    let sweep_warm_wall_secs = t.elapsed().as_secs_f64();
    let sweep_warm_simulations = snapshot::simulations_performed() - sims0 - sweep_cold_simulations;
    assert_eq!(sweep_cold_simulations, sweep_distinct, "cold sweep must simulate each distinct cell once");
    assert_eq!(sweep_warm_simulations, 0, "warm sweep must be all cache hits");
    assert_eq!(cold_report, warm_report, "sweep report must be cache-invariant");
    let _ = std::fs::remove_dir_all(&sweep_dir);
    eprintln!(
        "[bench] sweep {sweep_cells} cells: cold {sweep_cold_wall_secs:.2}s \
         ({sweep_cold_simulations} simulations), warm {sweep_warm_wall_secs:.2}s (0 simulations)"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": {{\"year\": {}, \"scale\": {}, \"seed\": {}}},\n",
            "  \"events\": {},\n",
            "  \"payload_events\": {},\n",
            "  \"distinct_payloads\": {},\n",
            "  \"distinct_payload_ratio\": {:.6},\n",
            "  \"scenario_wall_secs\": {:.4},\n",
            "  \"shards\": {},\n",
            "  \"sharded_scenario_wall_secs\": {:.4},\n",
            "  \"shard_busy_secs\": [{}],\n",
            "  \"streaming_build_secs\": {:.4},\n",
            "  \"stream_windows\": {},\n",
            "  \"peak_window_rows\": {},\n",
            "  \"peak_resident_estimate\": {},\n",
            "  \"dataset_build_secs\": {:.4},\n",
            "  \"classification_events_per_sec\": {:.1},\n",
            "  \"snapshot_write_secs\": {:.4},\n",
            "  \"snapshot_read_secs\": {:.4},\n",
            "  \"query_rows_per_sec\": {:.1},\n",
            "  \"handrolled_rows_per_sec\": {:.1},\n",
            "  \"all_cached_wall_secs\": {:.4},\n",
            "  \"all_cached_fused_wall_secs\": {:.4},\n",
            "  \"unfused_scans\": {},\n",
            "  \"fused_scans\": {},\n",
            "  \"fused_rows_per_sec\": {:.1},\n",
            "  \"hardware_threads\": {},\n",
            "  \"fleet\": [{}],\n",
            "  \"sweep\": {{\"cells\": {}, \"distinct_configs\": {}, ",
            "\"cold_wall_secs\": {:.4}, \"warm_wall_secs\": {:.4}, ",
            "\"cold_simulations\": {}, \"warm_simulations\": {}}}\n",
            "}}\n"
        ),
        year.year(),
        opts.scale,
        opts.seed,
        events,
        payload_events,
        distinct_payloads,
        distinct_ratio,
        scenario_secs,
        n_shards,
        sharded_scenario_secs,
        shard_busy
            .iter()
            .map(|b| format!("{b:.4}"))
            .collect::<Vec<_>>()
            .join(", "),
        streaming_build_secs,
        stream.windows,
        stream.peak_window_rows,
        peak_resident_estimate,
        build_secs,
        events_per_sec,
        snapshot_write_secs,
        snapshot_read_secs,
        query_rows_per_sec,
        handrolled_rows_per_sec,
        all_cached_wall_secs,
        all_cached_fused_wall_secs,
        unfused.fused,
        fused.fused,
        fused_rows_per_sec,
        hardware_threads,
        fleet_runs
            .iter()
            .map(|(t, s, timings)| {
                let workers = timings
                    .iter()
                    .map(|w| {
                        format!(
                            "{{\"worker\": {}, \"jobs\": {}, \"busy_secs\": {:.4}}}",
                            w.worker, w.jobs, w.busy_secs
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"requested_threads\": {t}, \"workers\": {}, \"wall_secs\": {s:.4}, \"per_worker\": [{workers}]}}",
                    timings.len()
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
        sweep_cells,
        sweep_distinct,
        sweep_cold_wall_secs,
        sweep_warm_wall_secs,
        sweep_cold_simulations,
        sweep_warm_simulations
    );
    std::fs::write("BENCH_scenario.json", &json).expect("write BENCH_scenario.json");
    print!("{json}");
}
