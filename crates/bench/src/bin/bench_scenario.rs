//! End-to-end scenario benchmark: machine-readable perf trajectory.
//!
//! Runs the 2021 scenario, times the engine phase and the
//! classification+dataset-build phase separately, and writes
//! `BENCH_scenario.json` into the current directory so successive PRs can
//! record before/after numbers. Fleet wall time is measured at requested
//! thread counts 1 and 8 (`run_replicates_timed`, so the thread axis
//! exercises the merge path too), with per-worker wall clocks and the
//! machine's hardware parallelism recorded alongside — on a small box the
//! fleet caps its workers at the hardware, and the numbers show why.

use cw_bench::{parse_args, run_config};
use cw_core::dataset::Dataset;
use cw_core::fleet;
use cw_core::scenario::ScenarioConfig;
use cw_scanners::population::ScenarioYear;
use std::time::Instant;

/// Repetitions of the dataset-build phase (the min is reported).
const BUILD_REPS: usize = 5;

fn main() {
    let opts = parse_args();
    let year = opts.year.unwrap_or(ScenarioYear::Y2021);
    let config = ScenarioConfig::paper(year)
        .with_seed(opts.seed)
        .with_scale(opts.scale);

    // Phase 1: one full scenario (engine + first dataset build).
    let t0 = Instant::now();
    let s = run_config(config);
    let scenario_secs = t0.elapsed().as_secs_f64();
    let events = s.dataset.len() as u64;

    // Phase 2: classification + dataset build alone, re-run on the retained
    // captures (the honeypots stay alive inside the scenario).
    let caps: Vec<_> = s
        .deployment
        .honeypots
        .iter()
        .map(|h| h.borrow().capture())
        .collect();
    let mut build_secs = f64::INFINITY;
    for _ in 0..BUILD_REPS {
        let borrows: Vec<_> = caps.iter().map(|c| c.borrow()).collect();
        let refs: Vec<&cw_honeypot::capture::Capture> = borrows.iter().map(|b| &**b).collect();
        let t = Instant::now();
        let ds = Dataset::from_captures(&refs, &s.deployment);
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(ds.len() as u64, events);
        build_secs = build_secs.min(dt);
    }
    let events_per_sec = events as f64 / build_secs;

    // Distinct-payload ratio: distinct payload blobs / payload-carrying
    // events (the quantity memoized classification scales with). The
    // interner already deduplicates, so distinct = arena size.
    let payload_events = s
        .dataset
        .table()
        .observed()
        .iter()
        .filter(|o| matches!(o, cw_honeypot::capture::Observed::Payload(_)))
        .count() as u64;
    let distinct_payloads = s.dataset.interner().payload_count() as u64;
    let distinct_ratio = if payload_events == 0 {
        0.0
    } else {
        distinct_payloads as f64 / payload_events as f64
    };

    // Phase 3: fleet wall time at requested thread counts 1 and 8
    // (4 replicates), with per-worker breakdowns.
    let base = config;
    let hardware_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut fleet_runs = Vec::new();
    for threads in [1usize, 8] {
        let t = Instant::now();
        let (merged, timings) = fleet::run_replicates_timed(base, 4, threads);
        let dt = t.elapsed().as_secs_f64();
        let per_worker = timings
            .iter()
            .map(|w| format!("w{}: {} jobs {:.2}s", w.worker, w.jobs, w.busy_secs))
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "[bench] fleet 4 replicates @ {threads} threads ({} workers): {:.2}s ({} events) [{per_worker}]",
            timings.len(),
            dt,
            merged.dataset.len()
        );
        fleet_runs.push((threads, dt, timings));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": {{\"year\": {}, \"scale\": {}, \"seed\": {}}},\n",
            "  \"events\": {},\n",
            "  \"payload_events\": {},\n",
            "  \"distinct_payloads\": {},\n",
            "  \"distinct_payload_ratio\": {:.6},\n",
            "  \"scenario_wall_secs\": {:.4},\n",
            "  \"dataset_build_secs\": {:.4},\n",
            "  \"classification_events_per_sec\": {:.1},\n",
            "  \"hardware_threads\": {},\n",
            "  \"fleet\": [{}]\n",
            "}}\n"
        ),
        year.year(),
        opts.scale,
        opts.seed,
        events,
        payload_events,
        distinct_payloads,
        distinct_ratio,
        scenario_secs,
        build_secs,
        events_per_sec,
        hardware_threads,
        fleet_runs
            .iter()
            .map(|(t, s, timings)| {
                let workers = timings
                    .iter()
                    .map(|w| {
                        format!(
                            "{{\"worker\": {}, \"jobs\": {}, \"busy_secs\": {:.4}}}",
                            w.worker, w.jobs, w.busy_secs
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"threads\": {t}, \"workers\": {}, \"wall_secs\": {s:.4}, \"per_worker\": [{workers}]}}",
                    timings.len()
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::fs::write("BENCH_scenario.json", &json).expect("write BENCH_scenario.json");
    print!("{json}");
}
