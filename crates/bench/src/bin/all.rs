//! Regenerate every table and figure in one run (shares scenario runs
//! across exhibits of the same year).
//!
//! The four independent simulations (2021 main, leak experiment, 2020 and
//! 2022 appendix) run as a [`cw_core::fleet`] — each worker renders its
//! sections to strings, and the main thread prints them in canonical
//! order, so stdout is byte-identical for any `--threads`/`CW_THREADS`
//! value.

use cw_bench::{header_str, parse_args, run_config, threads, RunOptions};
use cw_core::compare::CharKind;
use cw_core::dataset::TrafficSlice;
use cw_core::fleet;
use cw_core::leak::{run as run_leak, LeakConfig, LeakGroup, LeakService};
use cw_core::report::{fold_cell, pct, phi_value, TextTable};
use cw_core::scenario::ScenarioConfig;
use cw_scanners::population::ScenarioYear;

/// One independent simulation, rendered to its output sections.
enum Job {
    /// The 2021 scenario: Tables 2, 4, 8/9, 11+§3.2, Figure 1, Table 7.
    Main2021,
    /// The Table 3 leak experiment (its own world and seed).
    Leak,
    /// An appendix-year snapshot.
    Appendix(ScenarioYear),
}

fn main() {
    let opts = parse_args();
    let jobs = vec![
        Job::Main2021,
        Job::Leak,
        Job::Appendix(ScenarioYear::Y2020),
        Job::Appendix(ScenarioYear::Y2022),
    ];
    let mut rendered = fleet::map(jobs, threads(opts), |_, job| render(job, opts));
    // Canonical print order interleaves the 2021 sections with the leak
    // experiment exactly as the serial version always did.
    let app2022 = rendered.pop().unwrap();
    let app2020 = rendered.pop().unwrap();
    let leak = rendered.pop().unwrap();
    let mut main2021 = rendered.pop().unwrap();
    print!("{}", main2021.remove(0)); // Table 2
    for s in leak {
        print!("{s}"); // Table 3
    }
    for s in main2021 {
        print!("{s}"); // Tables 4, 8/9, 11+§3.2, Figure 1, Table 7 sample
    }
    for s in app2020.into_iter().chain(app2022) {
        print!("{s}");
    }
}

fn render(job: Job, opts: RunOptions) -> Vec<String> {
    match job {
        Job::Main2021 => render_2021(opts),
        Job::Leak => vec![render_leak(opts)],
        Job::Appendix(year) => vec![render_appendix(opts, year)],
    }
}

fn render_2021(opts: RunOptions) -> Vec<String> {
    let s21 = run_config(cw_bench::config_for(opts, ScenarioYear::Y2021));
    let mut sections = Vec::new();

    let mut out = header_str("Table 2 (2021 neighborhoods)");
    let mut t = TextTable::new(&["Slice", "Characteristic", "n", "% dif", "Avg phi"]);
    for r in cw_core::neighborhood::table2(&s21.dataset, &s21.deployment) {
        t.row(vec![
            r.slice.label().to_string(),
            r.characteristic.label().to_string(),
            r.n.to_string(),
            format!("{:.0}%", r.pct_different),
            phi_value(r.avg_phi, 1),
        ]);
    }
    out.push_str(&format!("{}\n", t.render()));
    sections.push(out);

    let mut out = header_str("Table 4 (2021 geography)");
    let mut t = TextTable::new(&["Characteristic", "Slice", "Provider", "Region", "phi"]);
    for r in cw_core::geography::table4(&s21.dataset, &s21.deployment) {
        t.row(vec![
            r.characteristic.label().to_string(),
            r.slice.label().to_string(),
            format!("{:?}", r.provider),
            r.region.unwrap_or_else(|| "-".into()),
            phi_value(r.avg_phi, 1),
        ]);
    }
    out.push_str(&format!("{}\n", t.render()));
    sections.push(out);

    let mut out = header_str("Table 8 / Table 9 (telescope avoidance)");
    {
        let tel = s21.telescope.borrow();
        let mut t = TextTable::new(&["Port", "Tel∩Cloud", "Tel∩EDU", "Cloud∩EDU"]);
        for r in cw_core::overlap::table8(&s21.dataset, &s21.deployment, &tel) {
            t.row(vec![
                r.port.to_string(),
                pct(r.tel_cloud),
                pct(r.tel_edu),
                pct(r.cloud_edu),
            ]);
        }
        out.push_str(&format!("{}\n", t.render()));
        let mut t = TextTable::new(&["Port", "Tel∩Mal-Cloud", "Tel∩Mal-EDU"]);
        for r in cw_core::overlap::table9(&s21.dataset, &s21.deployment, &tel) {
            t.row(vec![r.port.to_string(), pct(r.tel_cloud), pct(r.tel_edu)]);
        }
        out.push_str(&format!("{}\n", t.render()));
    }
    sections.push(out);

    let mut out = header_str("Table 11 + §3.2 (2021 ports)");
    for port in [80u16, 8080] {
        let (rows, _) = cw_core::ports::protocol_breakdown(
            &s21.dataset,
            &s21.deployment,
            &s21.handles.reputation,
            port,
        );
        for r in rows {
            out.push_str(&format!(
                "  {}HTTP/{port}: {:.0}% (benign {:.0}%, malicious {:.0}%)\n",
                if r.is_http { "" } else { "~" },
                r.pct_of_scanners,
                r.pct_benign,
                r.pct_malicious
            ));
        }
    }
    let c = cw_core::ports::composition_stats(&s21.dataset, &s21.deployment);
    out.push_str(&format!(
        "  non-auth telnet {:.0}%, ssh {:.0}%; http80 benign {:.0}%; distinct-http malicious {:.0}%\n",
        c.telnet_non_auth_pct, c.ssh_non_auth_pct, c.http80_benign_pct, c.distinct_http_malicious_pct
    ));
    sections.push(out);

    let mut out = header_str("Figure 1 (sparklines)");
    {
        let tel = s21.telescope.borrow();
        for port in [22u16, 445, 80, 17_128] {
            if let Some(fig) = cw_core::figure1::series(&tel, port) {
                out.push_str(&format!(
                    "  port {port:>5}: {}\n",
                    cw_core::figure1::ascii_sparkline(&fig.rolling, 80)
                ));
            }
        }
    }
    sections.push(out);

    let mut out = header_str("Table 7 sample (network types, 2021)");
    let cc = cw_core::network::cloud_cloud_cell(
        &s21.dataset,
        &s21.deployment,
        TrafficSlice::SshPort22,
        CharKind::TopAs,
        0.05,
    );
    out.push_str(&format!(
        "  cloud-cloud SSH/22 Top-AS: {}/{} different, avg phi {}\n",
        cc.n_different,
        cc.n,
        phi_value(cc.avg_phi, 1)
    ));
    sections.push(out);

    sections
}

fn render_leak(opts: RunOptions) -> String {
    let mut out = header_str("Table 3 (leak experiment)");
    let leak = run_leak(&LeakConfig {
        seed: opts.seed ^ 0x1EA4,
        scale: opts.scale,
        horizon: cw_netsim::time::SimDuration::WEEK,
    });
    let mut t = TextTable::new(&["Service", "Traffic", "Censys", "Shodan", "Prev"]);
    for svc in LeakService::ALL {
        for malicious in [false, true] {
            let cell = |g: LeakGroup| {
                leak.cells
                    .iter()
                    .find(|c| c.service == svc && c.group == g && c.malicious_only == malicious)
                    .map(|c| fold_cell(c.fold, c.mwu_significant, c.ks_different))
                    .unwrap_or_default()
            };
            t.row(vec![
                svc.label().to_string(),
                if malicious { "Malicious" } else { "All" }.to_string(),
                cell(LeakGroup::CensysLeaked(svc)),
                cell(LeakGroup::ShodanLeaked(svc)),
                cell(LeakGroup::PreviouslyLeaked),
            ]);
        }
    }
    out.push_str(&format!("{}\n", t.render()));
    out
}

fn render_appendix(opts: RunOptions, year: ScenarioYear) -> String {
    let config: ScenarioConfig = cw_bench::config_for(
        RunOptions {
            year: Some(year),
            ..opts
        },
        year,
    );
    let s = run_config(config);
    let mut out = header_str(&format!("Appendix snapshot ({})", year.year()));
    let rows = cw_core::neighborhood::table2(&s.dataset, &s.deployment);
    out.push_str(&format!(
        "  neighborhoods different (SSH/22 Top-AS): {:.0}% of {}\n",
        rows[0].pct_different, rows[0].n
    ));
    {
        let port = 80u16;
        let (rows, _) = cw_core::ports::protocol_breakdown(
            &s.dataset,
            &s.deployment,
            &s.handles.reputation,
            port,
        );
        if let Some(r) = rows.iter().find(|r| !r.is_http) {
            out.push_str(&format!("  ~HTTP/{port} share: {:.0}%\n", r.pct_of_scanners));
        }
    }
    out
}
