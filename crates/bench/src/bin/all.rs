//! Regenerate every table and figure in one run (shares scenario runs
//! across exhibits of the same year).

use cw_bench::{header, parse_args, scenario, RunOptions};
use cw_core::compare::CharKind;
use cw_core::dataset::TrafficSlice;
use cw_core::leak::{run as run_leak, LeakConfig, LeakGroup, LeakService};
use cw_core::report::{fold_cell, pct, phi_value, TextTable};
use cw_scanners::population::ScenarioYear;

fn main() {
    let opts = parse_args();
    let s21 = scenario(opts, ScenarioYear::Y2021);

    header("Table 2 (2021 neighborhoods)");
    let mut t = TextTable::new(&["Slice", "Characteristic", "n", "% dif", "Avg phi"]);
    for r in cw_core::neighborhood::table2(&s21.dataset, &s21.deployment) {
        t.row(vec![
            r.slice.label().to_string(),
            r.characteristic.label().to_string(),
            r.n.to_string(),
            format!("{:.0}%", r.pct_different),
            phi_value(r.avg_phi, 1),
        ]);
    }
    println!("{}", t.render());

    header("Table 3 (leak experiment)");
    let leak = run_leak(&LeakConfig {
        seed: opts.seed ^ 0x1EA4,
        scale: opts.scale,
        horizon: cw_netsim::time::SimDuration::WEEK,
    });
    let mut t = TextTable::new(&["Service", "Traffic", "Censys", "Shodan", "Prev"]);
    for svc in LeakService::ALL {
        for malicious in [false, true] {
            let cell = |g: LeakGroup| {
                leak.cells
                    .iter()
                    .find(|c| c.service == svc && c.group == g && c.malicious_only == malicious)
                    .map(|c| fold_cell(c.fold, c.mwu_significant, c.ks_different))
                    .unwrap_or_default()
            };
            t.row(vec![
                svc.label().to_string(),
                if malicious { "Malicious" } else { "All" }.to_string(),
                cell(LeakGroup::CensysLeaked(svc)),
                cell(LeakGroup::ShodanLeaked(svc)),
                cell(LeakGroup::PreviouslyLeaked),
            ]);
        }
    }
    println!("{}", t.render());

    header("Table 4 (2021 geography)");
    let mut t = TextTable::new(&["Characteristic", "Slice", "Provider", "Region", "phi"]);
    for r in cw_core::geography::table4(&s21.dataset, &s21.deployment) {
        t.row(vec![
            r.characteristic.label().to_string(),
            r.slice.label().to_string(),
            format!("{:?}", r.provider),
            r.region.unwrap_or_else(|| "-".into()),
            phi_value(r.avg_phi, 1),
        ]);
    }
    println!("{}", t.render());

    header("Table 8 / Table 9 (telescope avoidance)");
    {
        let tel = s21.telescope.borrow();
        let mut t = TextTable::new(&["Port", "Tel∩Cloud", "Tel∩EDU", "Cloud∩EDU"]);
        for r in cw_core::overlap::table8(&s21.dataset, &s21.deployment, &tel) {
            t.row(vec![
                r.port.to_string(),
                pct(r.tel_cloud),
                pct(r.tel_edu),
                pct(r.cloud_edu),
            ]);
        }
        println!("{}", t.render());
        let mut t = TextTable::new(&["Port", "Tel∩Mal-Cloud", "Tel∩Mal-EDU"]);
        for r in cw_core::overlap::table9(&s21.dataset, &s21.deployment, &tel) {
            t.row(vec![r.port.to_string(), pct(r.tel_cloud), pct(r.tel_edu)]);
        }
        println!("{}", t.render());
    }

    header("Table 11 + §3.2 (2021 ports)");
    for port in [80u16, 8080] {
        let (rows, _) = cw_core::ports::protocol_breakdown(
            &s21.dataset,
            &s21.deployment,
            &s21.handles.reputation,
            port,
        );
        for r in rows {
            println!(
                "  {}HTTP/{port}: {:.0}% (benign {:.0}%, malicious {:.0}%)",
                if r.is_http { "" } else { "~" },
                r.pct_of_scanners,
                r.pct_benign,
                r.pct_malicious
            );
        }
    }
    let c = cw_core::ports::composition_stats(&s21.dataset, &s21.deployment);
    println!(
        "  non-auth telnet {:.0}%, ssh {:.0}%; http80 benign {:.0}%; distinct-http malicious {:.0}%",
        c.telnet_non_auth_pct, c.ssh_non_auth_pct, c.http80_benign_pct, c.distinct_http_malicious_pct
    );

    header("Figure 1 (sparklines)");
    {
        let tel = s21.telescope.borrow();
        for port in [22u16, 445, 80, 17_128] {
            if let Some(fig) = cw_core::figure1::series(&tel, port) {
                println!(
                    "  port {port:>5}: {}",
                    cw_core::figure1::ascii_sparkline(&fig.rolling, 80)
                );
            }
        }
    }

    header("Table 7 sample (network types, 2021)");
    let cc = cw_core::network::cloud_cloud_cell(
        &s21.dataset,
        &s21.deployment,
        TrafficSlice::SshPort22,
        CharKind::TopAs,
        0.05,
    );
    println!(
        "  cloud-cloud SSH/22 Top-AS: {}/{} different, avg phi {}",
        cc.n_different,
        cc.n,
        phi_value(cc.avg_phi, 1)
    );

    // Appendix years.
    for year in [ScenarioYear::Y2020, ScenarioYear::Y2022] {
        let s = scenario(
            RunOptions {
                year: Some(year),
                ..opts
            },
            year,
        );
        header(&format!("Appendix snapshot ({})", year.year()));
        let rows = cw_core::neighborhood::table2(&s.dataset, &s.deployment);
        println!(
            "  neighborhoods different (SSH/22 Top-AS): {:.0}% of {}",
            rows[0].pct_different, rows[0].n
        );
        {
            let port = 80u16;
            let (rows, _) = cw_core::ports::protocol_breakdown(
                &s.dataset,
                &s.deployment,
                &s.handles.reputation,
                port,
            );
            if let Some(r) = rows.iter().find(|r| !r.is_http) {
                println!("  ~HTTP/{port} share: {:.0}%", r.pct_of_scanners);
            }
        }
    }
}
