//! Table 5: traffic similarities within and between geo-locations.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::compare::CharKind;
use cw_core::dataset::TrafficSlice;
use cw_core::geography::table5;
use cw_core::report::TextTable;
use cw_netsim::geo::RegionPairKind;
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Table 5: % similar pairs of regions per geographic bucket (2021)");
    paper_note(
        "US/EU pairs are nearly always similar (94-100%), APAC much less (e.g. Top-3 AS SSH/22: \
         US 94, EU 100, APAC 63, intercontinental 70; HTTP/All payloads: US 50, EU 53, APAC 20, IC 11)",
    );
    let cells_for: &[(TrafficSlice, CharKind)] = &[
        (TrafficSlice::SshPort22, CharKind::TopAs),
        (TrafficSlice::SshPort22, CharKind::FracMalicious),
        (TrafficSlice::SshPort22, CharKind::TopUsername),
        (TrafficSlice::SshPort22, CharKind::TopPassword),
        (TrafficSlice::TelnetPort23, CharKind::TopAs),
        (TrafficSlice::TelnetPort23, CharKind::FracMalicious),
        (TrafficSlice::TelnetPort23, CharKind::TopUsername),
        (TrafficSlice::TelnetPort23, CharKind::TopPassword),
        (TrafficSlice::HttpPort80, CharKind::TopAs),
        (TrafficSlice::HttpPort80, CharKind::FracMalicious),
        (TrafficSlice::HttpPort80, CharKind::TopPayload),
        (TrafficSlice::HttpAllPorts, CharKind::TopAs),
        (TrafficSlice::HttpAllPorts, CharKind::FracMalicious),
        (TrafficSlice::HttpAllPorts, CharKind::TopPayload),
    ];
    let mut t = TextTable::new(&["Slice", "Characteristic", "US", "EU", "APAC", "Intercont."]);
    for &(slice, kind) in cells_for {
        let cells = table5(&s.dataset, &s.deployment, slice, kind);
        let find = |b: RegionPairKind| {
            cells
                .iter()
                .find(|c| c.bucket == b)
                .map(|c| format!("{:.0}% (n={})", c.pct_similar, c.n))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            slice.label().to_string(),
            kind.label().to_string(),
            find(RegionPairKind::WithinUs),
            find(RegionPairKind::WithinEu),
            find(RegionPairKind::WithinApac),
            find(RegionPairKind::Intercontinental),
        ]);
    }
    println!("{}", t.render());
}
