//! Table 8: scanners avoid telescopes — per-port source-IP overlap.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::overlap::table8;
use cw_core::report::{pct, TextTable};
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Table 8: |Tel ∩ X| overlap per port (2021)");
    paper_note(
        "Tel∩Cloud/Cloud: 23→91%, 2323→53%, 80→73%, 8080→80%, 21→29%, 2222→9%, 25→19%, \
         7547→33%, 22→13%, 443→30%; Tel∩EDU higher everywhere; Cloud∩EDU 81-97%",
    );
    let tel = s.telescope.borrow();
    let rows = table8(&s.dataset, &s.deployment, &tel);
    let mut t = TextTable::new(&["Port", "Tel∩Cloud / Cloud", "Tel∩EDU / EDU", "Cloud∩EDU / Cloud"]);
    for r in &rows {
        t.row(vec![
            r.port.to_string(),
            pct(r.tel_cloud),
            pct(r.tel_edu),
            pct(r.cloud_edu),
        ]);
    }
    println!("{}", t.render());
}
