//! §3.4 / Appendix C: temporal stability of attacker preferences.

use cw_bench::{header, paper_note, parse_args, scenario, RunOptions};
use cw_core::report::TextTable;
use cw_core::temporal::stability;
use cw_scanners::population::ScenarioYear;

fn main() {
    let opts = parse_args();
    let a = scenario(
        RunOptions {
            year: Some(ScenarioYear::Y2021),
            ..opts
        },
        ScenarioYear::Y2021,
    );
    let b = scenario(
        RunOptions {
            year: Some(ScenarioYear::Y2020),
            ..opts
        },
        ScenarioYear::Y2020,
    );
    header("Temporal stability: 2021 vs 2020");
    paper_note(
        "\"attackers and scanners broadly exhibit similar preferences between 2020-2022\"; \
         the biggest differences lie in one-off anomalous events",
    );
    let r = stability(&a, &b);
    println!(
        "per-region top-3 Telnet AS similarity (Jaccard): {:.2} over {} regions\n",
        r.top_as_jaccard, r.regions_compared
    );
    let mut t = TextTable::new(&["Port", "Tel∩Cloud 2021", "Tel∩Cloud 2020"]);
    for (port, y1, y0) in &r.telescope_overlap {
        t.row(vec![
            port.to_string(),
            y1.map(|v| format!("{v:.0}%")).unwrap_or_else(|| "-".into()),
            y0.map(|v| format!("{v:.0}%")).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());
}
