//! Export the released dataset (CSV + JSONL), mirroring the paper's
//! scans.io release of cloud-targeting scan traffic.

use cw_bench::{header, parse_args, scenario};
use cw_scanners::population::ScenarioYear;
use std::io::BufWriter;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Dataset export");
    std::fs::create_dir_all("out").expect("create out/");
    let csv = std::fs::File::create("out/cloud_watching_2021.csv").expect("create csv");
    s.dataset
        .write_csv(BufWriter::new(csv))
        .expect("write csv");
    let jsonl = std::fs::File::create("out/cloud_watching_2021.jsonl").expect("create jsonl");
    s.dataset
        .write_jsonl(BufWriter::new(jsonl))
        .expect("write jsonl");
    let pcap = std::fs::File::create("out/cloud_watching_2021.pcap").expect("create pcap");
    // 2021-07-01T00:00:00Z.
    s.dataset
        .write_pcap(BufWriter::new(pcap), 1_625_097_600)
        .expect("write pcap");
    println!(
        "wrote {} events to out/cloud_watching_2021.{{csv,jsonl,pcap}}",
        s.dataset.len()
    );
}
