//! Table 15 (Appendix C.2): telescope-vs-X AS differences on 2022 data.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::dataset::TrafficSlice;
use cw_core::network::telescope_vs_fleet;
use cw_core::report::{phi_value, TextTable};
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2022);
    header("Table 15: telescope vs EDU / cloud, 2022 — preferences strengthen");
    paper_note(
        "2022 effect sizes grow vs 2021 (e.g. Any/All: Tel-EDU 0.90, Tel-Cloud 0.89 vs 0.30 in 2021)",
    );
    let tel = s.telescope.borrow();
    let edu = ["honeytrap/stanford", "honeytrap/merit"];
    let cloud = ["honeytrap/aws-west", "honeytrap/google-west"];
    let mut t = TextTable::new(&[
        "Slice",
        "Tel-EDU dif",
        "avg phi",
        "Tel-Cloud dif",
        "avg phi",
    ]);
    for slice in [
        TrafficSlice::SshPort22,
        TrafficSlice::TelnetPort23,
        TrafficSlice::HttpPort80,
        TrafficSlice::AnyAll,
    ] {
        let run = |fleets: &[&str]| {
            let mut n = 0;
            let mut dif = 0;
            let mut phis = Vec::new();
            for f in fleets {
                if let Some(cmp) =
                    telescope_vs_fleet(&s.dataset, &s.deployment, &tel, f, slice, 0.05, fleets.len())
                {
                    n += 1;
                    if cmp.significant {
                        dif += 1;
                        phis.push(cmp.effect.phi);
                    }
                }
            }
            (n, dif, cw_stats::descriptive::mean(&phis))
        };
        let (en, ed, ep) = run(&edu);
        let (cn, cd, cp) = run(&cloud);
        t.row(vec![
            slice.label().to_string(),
            format!("{ed}/{en}"),
            phi_value(ep, 1),
            format!("{cd}/{cn}"),
            phi_value(cp, 1),
        ]);
    }
    println!("{}", t.render());
}
