//! Table 17 (Appendix C.4): unexpected protocols on 2022 data.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::ports::protocol_breakdown;
use cw_core::report::TextTable;
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2022);
    header("Table 17: protocol breakdown on ports 80/8080 (2022)");
    paper_note(
        "the unexpected share roughly doubles vs 2021: HTTP/80 66% vs ~HTTP/80 34%; \
         HTTP/8080 66% vs ~HTTP/8080 34% (no reputation split — the GreyNoise feed ended)",
    );
    let mut t = TextTable::new(&["Protocol/Port", "Breakdown", "Scanners"]);
    for port in [80u16, 8080] {
        let (rows, _) = protocol_breakdown(&s.dataset, &s.deployment, &s.handles.reputation, port);
        for r in &rows {
            t.row(vec![
                format!("{}HTTP/{}", if r.is_http { "" } else { "~" }, port),
                format!("{:.0}%", r.pct_of_scanners),
                r.scanners.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
}
