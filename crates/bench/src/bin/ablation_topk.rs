//! Ablation: why top-3? (§3.3 footnote 2)
//!
//! "Expanding evaluation to even the top-5 ASes increases the number of
//! near-zero frequency variables by over 200%, significantly increasing
//! bias towards small distributional-differences; studying top-3 decreases
//! bias." This ablation re-runs the Table 2 SSH/22 Top-AS comparison with
//! k ∈ {1, 3, 5, 10} and reports how the union size (degrees of freedom)
//! and the significant fraction move.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::dataset::TrafficSlice;
use cw_core::neighborhood::neighborhoods;
use cw_core::report::TextTable;
use cw_scanners::population::ScenarioYear;
use cw_stats::{bonferroni_alpha, chi_squared_from_table, cramers_v, top_k_union_table, TopKSpec};
use std::collections::BTreeMap;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Ablation: top-k choice for the §3.3 comparison (SSH/22, Top ASes)");
    paper_note(
        "top-5 inflates near-zero frequency variables by >200% vs top-3, biasing the test \
         toward small distributional differences — expect union size (df) to balloon and the \
         significant fraction to drift as k grows",
    );

    let hoods = neighborhoods(&s.deployment);
    let mut t = TextTable::new(&[
        "k",
        "avg union categories",
        "avg near-zero cells",
        "% neighborhoods dif",
        "avg phi (sig)",
    ]);
    for k in [1usize, 3, 5, 10] {
        let mut tested = 0usize;
        let mut sig = 0usize;
        let mut union_sizes = Vec::new();
        let mut near_zero = Vec::new();
        let mut phis = Vec::new();
        // First pass for the Bonferroni family size.
        let mut tables = Vec::new();
        for (_name, ips) in &hoods {
            let groups: Vec<BTreeMap<String, u64>> = ips
                .iter()
                .map(|&ip| {
                    cw_core::compare::CharKind::TopAs
                        .freqs(&s.dataset.events_at_in(ip, TrafficSlice::SshPort22))
                })
                .collect();
            if groups.iter().any(|g| g.values().sum::<u64>() < 8) {
                continue;
            }
            let table = top_k_union_table(&groups, TopKSpec { k });
            union_sizes.push(table.n_cols() as f64);
            let nz = table
                .counts
                .iter()
                .flatten()
                .filter(|&&c| c <= 2)
                .count() as f64;
            near_zero.push(nz);
            tables.push(table);
        }
        let m = tables.len().max(1);
        let alpha = bonferroni_alpha(0.05, m);
        for table in &tables {
            if let Some(r) = chi_squared_from_table(table) {
                tested += 1;
                if r.p_value < alpha {
                    sig += 1;
                    phis.push(cramers_v(&r).phi);
                }
            }
        }
        t.row(vec![
            k.to_string(),
            format!("{:.1}", mean(&union_sizes)),
            format!("{:.1}", mean(&near_zero)),
            format!("{:.0}%", 100.0 * sig as f64 / tested.max(1) as f64),
            format!("{:.2}", mean(&phis)),
        ]);
    }
    println!("{}", t.render());
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
