//! Ablation: Bonferroni correction (§3.3, §2).
//!
//! "Most prior works do not perform statistical tests in their analysis,
//! making it unclear to what extent their observed differences are
//! statistically significant or due to chance." This ablation counts how
//! many Table 2 neighborhood comparisons look "different" at raw p < 0.05
//! versus after family-wise correction — the gap is the false-conclusion
//! budget of uncorrected honeypot comparisons.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::compare::{characteristic_table, CharKind};
use cw_core::dataset::TrafficSlice;
use cw_core::neighborhood::neighborhoods;
use cw_core::report::TextTable;
use cw_scanners::population::ScenarioYear;
use cw_stats::{bonferroni_alpha, chi_squared_from_table};
use std::collections::BTreeMap;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Ablation: raw p<0.05 vs Bonferroni-corrected (Table 2 comparisons)");
    paper_note(
        "uncorrected comparisons overstate differences; the paper corrects across all \
         vantage-point comparisons (often shrinking p-value thresholds by orders of magnitude)",
    );

    let hoods = neighborhoods(&s.deployment);
    let cells: &[(TrafficSlice, CharKind)] = &[
        (TrafficSlice::SshPort22, CharKind::TopAs),
        (TrafficSlice::SshPort22, CharKind::TopUsername),
        (TrafficSlice::TelnetPort23, CharKind::TopAs),
        (TrafficSlice::TelnetPort23, CharKind::TopPassword),
        (TrafficSlice::HttpPort80, CharKind::TopPayload),
        (TrafficSlice::HttpAllPorts, CharKind::TopPayload),
    ];
    let mut t = TextTable::new(&[
        "Slice",
        "Characteristic",
        "n",
        "raw p<0.05",
        "Bonferroni",
        "would-be false positives",
    ]);
    for &(slice, kind) in cells {
        let mut p_values = Vec::new();
        for (_name, ips) in &hoods {
            // Keep only honeypots that can observe the slice (HTTP ports
            // live on 2 of the 4 GreyNoise IPs per region).
            let groups: Vec<BTreeMap<String, u64>> = ips
                .iter()
                .map(|&ip| kind.freqs(&s.dataset.events_at_in(ip, slice)))
                .filter(|g| g.values().sum::<u64>() >= 8)
                .collect();
            if groups.len() < 2 {
                continue;
            }
            let table = characteristic_table(kind, &groups);
            if let Some(r) = chi_squared_from_table(&table) {
                p_values.push(r.p_value);
            }
        }
        let n = p_values.len();
        let raw = p_values.iter().filter(|&&p| p < 0.05).count();
        let corrected_alpha = bonferroni_alpha(0.05, n.max(1));
        let corrected = p_values.iter().filter(|&&p| p < corrected_alpha).count();
        t.row(vec![
            slice.label().to_string(),
            kind.label().to_string(),
            n.to_string(),
            format!("{raw} ({:.0}%)", 100.0 * raw as f64 / n.max(1) as f64),
            format!("{corrected} ({:.0}%)", 100.0 * corrected as f64 / n.max(1) as f64),
            (raw - corrected).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Every 'would-be false positive' is a neighborhood a no-statistics study would have \
         reported as an attacker preference."
    );
}
