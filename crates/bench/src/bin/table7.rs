//! Table 7: differences across network types (cloud–cloud, cloud–EDU,
//! EDU–EDU).

use cw_bench::{config_for, header_str, paper_note_str, parse_args, run_config, threads};
use cw_core::compare::CharKind;
use cw_core::dataset::TrafficSlice;
use cw_core::fleet;
use cw_core::network::{cloud_cloud_cell, honeytrap_cell, NetworkCell, CLOUD_EDU_PAIRS};
use cw_core::report::{phi_value, TextTable};
use cw_core::scenario::Scenario;
use cw_scanners::population::ScenarioYear;

fn cell_str(c: &NetworkCell) -> (String, String) {
    if c.uncomputable {
        ("×".to_string(), "×".to_string())
    } else {
        (
            format!("{}/{}", c.n_different, c.n),
            phi_value(c.avg_phi, 1),
        )
    }
}

fn main() {
    let opts = parse_args();
    let configs = vec![config_for(opts, ScenarioYear::Y2021)];
    let sections = fleet::map(configs, threads(opts), |_, cfg| render(&run_config(cfg)));
    for s in sections {
        print!("{s}");
    }
}

fn render(s: &Scenario) -> String {
    let mut out = header_str("Table 7: differences across network types (2021)");
    out.push_str(&paper_note_str(
        "cloud-cloud differences are small (avg phi ≤ 0.23); cloud-EDU mostly similar except \
         SSH/22 Top-AS in 2021 (phi 0.48: Chinanet→EDU, Cogent→cloud); EDU-EDU never different; \
         credentials are × for Honeytrap fleets",
    ));
    let grid: &[(CharKind, TrafficSlice)] = &[
        (CharKind::TopAs, TrafficSlice::SshPort22),
        (CharKind::TopAs, TrafficSlice::TelnetPort23),
        (CharKind::TopAs, TrafficSlice::HttpPort80),
        (CharKind::TopAs, TrafficSlice::HttpAllPorts),
        (CharKind::TopUsername, TrafficSlice::SshPort22),
        (CharKind::TopUsername, TrafficSlice::TelnetPort23),
        (CharKind::TopPassword, TrafficSlice::TelnetPort23),
        (CharKind::TopPassword, TrafficSlice::SshPort22),
        (CharKind::TopPayload, TrafficSlice::HttpPort80),
        (CharKind::TopPayload, TrafficSlice::HttpAllPorts),
        (CharKind::FracMalicious, TrafficSlice::SshPort22),
        (CharKind::FracMalicious, TrafficSlice::TelnetPort23),
        (CharKind::FracMalicious, TrafficSlice::HttpPort80),
        (CharKind::FracMalicious, TrafficSlice::HttpAllPorts),
    ];
    let mut t = TextTable::new(&[
        "Characteristic",
        "Slice",
        "Cloud-Cloud dif",
        "phi",
        "Cloud-EDU dif",
        "phi",
        "EDU-EDU dif",
        "phi",
    ]);
    let edu_edu_pairs: [(&str, &str); 1] = [("honeytrap/stanford", "honeytrap/merit")];
    for &(kind, slice) in grid {
        let cc = cloud_cloud_cell(&s.dataset, &s.deployment, slice, kind, 0.05);
        let ce = honeytrap_cell(&s.dataset, &s.deployment, &CLOUD_EDU_PAIRS, slice, kind, 0.05);
        let ee = honeytrap_cell(&s.dataset, &s.deployment, &edu_edu_pairs, slice, kind, 0.05);
        let (cc_n, cc_phi) = cell_str(&cc);
        let (ce_n, ce_phi) = cell_str(&ce);
        let (ee_n, ee_phi) = cell_str(&ee);
        t.row(vec![
            kind.label().to_string(),
            slice.label().to_string(),
            cc_n,
            cc_phi,
            ce_n,
            ce_phi,
            ee_n,
            ee_phi,
        ]);
    }
    out.push_str(&format!("{}\n", t.render()));
    out
}
