//! `cw` — the multicall exhibit driver.
//!
//! One binary replaces the 27 single-purpose regenerators:
//!
//! ```text
//! cw list                 # every exhibit in the registry
//! cw table1               # render one exhibit to stdout
//! cw all                  # render all 25 exhibits into out/<name>.txt
//! cw export               # write the released dataset under out/
//! cw degrade              # finding stability under injected faults
//! cw sweep                # finding stability across 10x/100x scales
//! ```
//!
//! The driver resolves the union of simulated worlds the requested
//! exhibits need ([`cw_core::exhibit::required_configs`]), obtains each
//! distinct world exactly once — from the content-addressed snapshot cache
//! when possible ([`cw_core::snapshot`]), simulating on a miss — and fans
//! the shared bundles out to every render. Renders are byte-identical to
//! the retired binaries for any `--threads` value, with or without the
//! cache.
//!
//! # Graceful degradation and exit codes
//!
//! `cw all` isolates every world-obtain and every render with the fleet's
//! `catch_unwind` + one-retry machinery ([`cw_core::fleet::try_map`]): a
//! panicking exhibit costs only its own `out/<name>.txt`, every other
//! exhibit still renders, and a per-job failure summary lands on stderr.
//! Exit codes are distinct by failure class:
//!
//! - `0` — success;
//! - `2` — usage error (unknown command/flag);
//! - `3` — I/O error writing outputs;
//! - `4` — one or more worlds or renders failed (after retries).
//!
//! Setting `CW_INJECT_PANIC=<exhibit>` makes exactly that render panic —
//! the hook `scripts/verify.sh` uses to prove the isolation contract.
//! `CW_INJECT_PANIC=sweep:<i>` instead aborts `cw sweep` on its i-th
//! (0-based) world-obtain, the hook the sweep-resume contract is tested
//! with: rerunning after the abort resumes from the snapshot cache without
//! recomputing completed cells.

use cw_bench::{parse_from, threads, RunOptions, USAGE};
use cw_core::exhibit::{self, Exhibit, ExhibitCx, ExhibitOptions};
use cw_core::fleet::{self, JobError};
use cw_core::scenario::ScenarioConfig;
use cw_core::snapshot::{self, Provenance};
use cw_core::SimBundle;
use cw_scanners::population::ScenarioYear;
use std::collections::BTreeMap;
use std::io::Write;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("error: missing command");
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    // `sweep` owns extra grid flags, so it parses its own argument list;
    // every other command shares `parse_from`.
    let code = if command == "sweep" {
        cmd_sweep(args.collect())
    } else {
        let opts = parse_from(args);
        match command.as_str() {
            "list" => {
                cmd_list();
                0
            }
            "all" => cmd_all(opts),
            "export" => cmd_export(opts),
            "degrade" => cmd_degrade(opts),
            name => match exhibit::find(name) {
                Some(e) => cmd_exhibit(e, opts),
                None => {
                    eprintln!("error: unknown command or exhibit '{name}' (try `cw list`)");
                    eprintln!("{USAGE}");
                    2
                }
            },
        }
    };
    std::process::exit(code);
}

fn exhibit_options(opts: RunOptions) -> ExhibitOptions {
    ExhibitOptions {
        scale: opts.scale,
        seed: opts.seed,
        year: opts.year,
        shards: fleet::resolve_shards(opts.shards),
        fault: opts.fault,
    }
}

/// Obtain one simulated world — snapshot cache first (unless disabled),
/// simulating and filling the cache on a miss — with progress on stderr.
fn obtain(config: ScenarioConfig, use_cache: bool) -> SimBundle {
    eprintln!(
        "[cw] obtaining {} world (scale {}, seed {:#x}) ...",
        config.year.year(),
        config.scale,
        config.seed
    );
    let (bundle, provenance) = snapshot::load_or_run(config, use_cache);
    match provenance {
        Provenance::CacheHit { read_secs } => eprintln!(
            "[cw] {} world: snapshot hit ({:.0} ms read, {} events)",
            config.year.year(),
            read_secs * 1e3,
            bundle.dataset.len()
        ),
        Provenance::Simulated { sim_secs, write_secs } => eprintln!(
            "[cw] {} world: simulated in {:.1}s ({} events{})",
            config.year.year(),
            sim_secs,
            bundle.dataset.len(),
            match write_secs {
                Some(w) => format!(", snapshot written in {:.0} ms", w * 1e3),
                None => String::new(),
            }
        ),
    }
    bundle
}

/// Obtain every world in `configs` in parallel with per-job fault
/// isolation, keyed by scenario year. Failed worlds come back as
/// [`JobError`]s instead of poisoning the whole run.
fn obtain_all(
    configs: Vec<ScenarioConfig>,
    n_threads: usize,
    use_cache: bool,
) -> (BTreeMap<u16, SimBundle>, Vec<JobError>) {
    let results = fleet::try_map(configs, n_threads, |_, cfg| obtain(*cfg, use_cache));
    let mut bundles = BTreeMap::new();
    let mut errors = Vec::new();
    for r in results {
        match r {
            Ok(b) => {
                bundles.insert(b.config.year.year(), b);
            }
            Err(e) => errors.push(e),
        }
    }
    (bundles, errors)
}

/// Print the per-job failure summary `cw all` / `cw <exhibit>` report on
/// stderr before exiting nonzero.
fn print_failure_summary(world_errors: &[JobError], render_errors: &[(String, JobError)]) {
    eprintln!(
        "[cw] failure summary: {} world(s), {} render(s) failed",
        world_errors.len(),
        render_errors.len()
    );
    for e in world_errors {
        eprintln!("[cw]   world {e}");
    }
    for (name, e) in render_errors {
        eprintln!("[cw]   exhibit '{name}': {e}");
    }
}

fn cmd_list() {
    for e in exhibit::REGISTRY {
        println!("{:<20} {}", e.name(), e.title());
    }
}

/// Report one bundle's prefetch fusion stats on stderr (`--trace-scans`).
fn trace_prefetch(stats: &[exhibit::PrefetchStats]) {
    for s in stats {
        eprintln!(
            "[cw] plan prefetch: year {}: {} plans fused into {} passes",
            s.year, s.plans, s.passes
        );
    }
}

/// Report the invocation-wide scan counters on stderr (`--trace-scans`):
/// `fused` column passes actually run vs `planned` logical scans served.
/// `scripts/verify.sh` parses this line for the scan-budget gate.
fn trace_summary(before: cw_core::query::ScanCounters) {
    let d = cw_core::query::scan_counters().since(before);
    eprintln!(
        "[cw] scan summary: fused={} planned={} rows={}",
        d.fused, d.planned, d.rows
    );
}

fn cmd_exhibit(e: &'static dyn Exhibit, opts: RunOptions) -> i32 {
    let before = cw_core::query::scan_counters();
    let ex_opts = exhibit_options(opts);
    let configs = exhibit::required_configs(&[e], &ex_opts);
    let (bundles, world_errors) = obtain_all(configs, threads(opts), !opts.no_cache);
    if !world_errors.is_empty() {
        print_failure_summary(&world_errors, &[]);
        return 4;
    }
    let mut cx = ExhibitCx::new(ex_opts, &bundles);
    let stats = cx.prefetch(&[e]);
    if opts.trace_scans {
        trace_prefetch(&stats);
    }
    print!("{}", e.run(&cx));
    if opts.trace_scans {
        trace_summary(before);
    }
    0
}

fn cmd_all(opts: RunOptions) -> i32 {
    let started = Instant::now();
    let before = cw_core::query::scan_counters();
    let ex_opts = exhibit_options(opts);
    let n_threads = threads(opts);
    let configs = exhibit::required_configs(exhibit::REGISTRY, &ex_opts);
    let n_worlds = configs.len();
    let (bundles, world_errors) = obtain_all(configs, n_threads, !opts.no_cache);
    let mut cx = ExhibitCx::new(ex_opts, &bundles);
    // The registry-wide fusion step: every declared plan runs now, one
    // fused pass per destination fleet per bundle; renders hit the store.
    let prefetch_stats = cx.prefetch(exhibit::REGISTRY);
    if opts.trace_scans {
        trace_prefetch(&prefetch_stats);
    }

    if let Err(e) = std::fs::create_dir_all("out") {
        eprintln!("[cw] error: create out/: {e}");
        return 3;
    }
    // Every render is isolated: a panicking exhibit (including one whose
    // world failed to obtain — its `cx.bundle` lookup panics) becomes a
    // JobError for its slot while the siblings keep rendering.
    let inject = std::env::var("CW_INJECT_PANIC").ok();
    let rendered = fleet::try_map(exhibit::REGISTRY.to_vec(), n_threads, |_, e| {
        if inject.as_deref() == Some(e.name()) {
            panic!("injected render panic for '{}'", e.name());
        }
        (e.name(), e.run(&cx))
    });

    let mut render_errors: Vec<(String, JobError)> = Vec::new();
    let mut io_error = false;
    let mut written = 0usize;
    for (i, r) in rendered.into_iter().enumerate() {
        match r {
            Ok((name, text)) => {
                let path = format!("out/{name}.txt");
                let write = std::fs::File::create(&path)
                    .and_then(|mut f| f.write_all(text.as_bytes()));
                match write {
                    Ok(()) => written += 1,
                    Err(e) => {
                        eprintln!("[cw] error: write {path}: {e}");
                        io_error = true;
                    }
                }
            }
            Err(e) => render_errors.push((exhibit::REGISTRY[i].name().to_string(), e)),
        }
    }
    eprintln!(
        "[cw] rendered {written} of {} exhibits from {n_worlds} simulated worlds into out/ in {:.1}s",
        exhibit::REGISTRY.len(),
        started.elapsed().as_secs_f64()
    );
    if opts.trace_scans {
        trace_summary(before);
    }
    if !world_errors.is_empty() || !render_errors.is_empty() {
        print_failure_summary(&world_errors, &render_errors);
    }
    if io_error {
        3
    } else if !world_errors.is_empty() || !render_errors.is_empty() {
        4
    } else {
        0
    }
}

fn cmd_degrade(opts: RunOptions) -> i32 {
    let ex_opts = exhibit_options(opts);
    let base = ex_opts.config(opts.year.unwrap_or(ScenarioYear::Y2021));
    let use_cache = !opts.no_cache;
    let report = cw_core::degrade::report(base, opts.seed ^ 0x1EA4, &|cfg| {
        obtain(cfg, use_cache)
    });
    print!("{report}");
    0
}

/// Parse `cw sweep`'s grid flags (`--scales`, `--years`, `--replicates`,
/// `--variants`) out of the raw argument list, handing everything else to
/// the shared [`parse_from`]. Exits 2 on malformed grid flags, matching
/// the shared parser's behavior.
fn parse_sweep_args(raw: Vec<String>) -> (cw_core::sweep::SweepGrid, RunOptions) {
    fn grid_usage_exit(problem: &str) -> ! {
        eprintln!("error: {problem}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let mut scales = vec![1.0, 10.0, 100.0];
    let mut years: Option<Vec<ScenarioYear>> = None;
    let mut replicates = 1usize;
    let mut variants: Vec<&'static str> = vec!["none"];
    let mut rest = Vec::new();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| grid_usage_exit(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--scales" => {
                scales = value("--scales")
                    .split(',')
                    .map(|s| match s.trim().parse::<f64>() {
                        Ok(m) if m > 0.0 => m,
                        _ => grid_usage_exit("--scales expects positive numbers"),
                    })
                    .collect();
            }
            "--years" => {
                years = Some(
                    value("--years")
                        .split(',')
                        .map(|y| match y.trim() {
                            "2020" => ScenarioYear::Y2020,
                            "2021" => ScenarioYear::Y2021,
                            "2022" => ScenarioYear::Y2022,
                            other => grid_usage_exit(&format!(
                                "unknown year '{other}' in --years (use 2020, 2021 or 2022)"
                            )),
                        })
                        .collect(),
                );
            }
            "--replicates" => {
                replicates = match value("--replicates").parse() {
                    Ok(n) if n >= 1 => n,
                    _ => grid_usage_exit("--replicates expects an integer >= 1"),
                };
            }
            "--variants" => {
                let ladder = cw_core::degrade::ladder();
                variants = value("--variants")
                    .split(',')
                    .map(|v| {
                        let v = v.trim();
                        match ladder.iter().find(|r| r.label == v) {
                            Some(r) => r.label,
                            None => grid_usage_exit(&format!(
                                "unknown variant '{v}' (use none, mild, moderate or severe)"
                            )),
                        }
                    })
                    .collect();
            }
            other => rest.push(other.to_string()),
        }
    }
    let opts = parse_from(rest.into_iter());
    let ladder = cw_core::degrade::ladder();
    let grid = cw_core::sweep::SweepGrid {
        years: years.unwrap_or_else(|| vec![opts.year.unwrap_or(ScenarioYear::Y2021)]),
        seeds: (0..replicates as u64).map(|i| opts.seed.wrapping_add(i)).collect(),
        variants: variants
            .iter()
            .map(|label| {
                *ladder
                    .iter()
                    .find(|r| r.label == *label)
                    .expect("validated against the ladder above")
            })
            .collect(),
        scales,
    };
    (grid, opts)
}

fn cmd_sweep(raw: Vec<String>) -> i32 {
    let (grid, opts) = parse_sweep_args(raw);
    let ex_opts = exhibit_options(opts);
    let base = ex_opts.config(opts.year.unwrap_or(ScenarioYear::Y2021));
    let use_cache = !opts.no_cache;
    // `CW_INJECT_PANIC=sweep:<i>` aborts on the i-th world-obtain — the
    // interrupted-sweep hook. The rerun resumes from the snapshot cache.
    let inject: Option<usize> = std::env::var("CW_INJECT_PANIC")
        .ok()
        .and_then(|v| v.strip_prefix("sweep:").and_then(|i| i.parse().ok()));
    let obtained = std::cell::Cell::new(0usize);
    let report = cw_core::sweep::report(&grid, base, &|cfg| {
        let i = obtained.get();
        obtained.set(i + 1);
        if inject == Some(i) {
            panic!("injected sweep panic before obtain #{i}");
        }
        obtain(cfg, use_cache)
    });
    print!("{report}");
    0
}

fn cmd_export(opts: RunOptions) -> i32 {
    match export(opts) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("[cw] error: export failed: {e}");
            match e {
                ExportError::World(_) => 4,
                ExportError::Io(..) => 3,
            }
        }
    }
}

/// Distinguish the export stages so I/O failures exit 3 and world
/// failures exit 4 without stringly-typed matching at the call site.
enum ExportError {
    World(JobError),
    Io(&'static str, std::io::Error),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::World(e) => write!(f, "obtaining world: {e}"),
            ExportError::Io(what, e) => write!(f, "{what}: {e}"),
        }
    }
}

fn export(opts: RunOptions) -> Result<(), ExportError> {
    use std::io::BufWriter;
    let ex_opts = exhibit_options(opts);
    let configs = exhibit::required_configs(
        &[exhibit::find("table1").expect("table1 registered")],
        &ex_opts,
    );
    let (bundles, mut world_errors) = obtain_all(configs, threads(opts), !opts.no_cache);
    if let Some(e) = world_errors.pop() {
        return Err(ExportError::World(e));
    }
    let (_, bundle) = bundles.iter().next().expect("one world");
    print!("{}", cw_core::report::header_str("Dataset export"));
    let io = |what: &'static str| move |e: std::io::Error| ExportError::Io(what, e);
    std::fs::create_dir_all("out").map_err(io("create out/"))?;
    let csv = std::fs::File::create("out/cloud_watching_2021.csv")
        .map_err(io("create out/cloud_watching_2021.csv"))?;
    bundle
        .dataset
        .write_csv(BufWriter::new(csv))
        .map_err(io("write out/cloud_watching_2021.csv"))?;
    let jsonl = std::fs::File::create("out/cloud_watching_2021.jsonl")
        .map_err(io("create out/cloud_watching_2021.jsonl"))?;
    bundle
        .dataset
        .write_jsonl(BufWriter::new(jsonl))
        .map_err(io("write out/cloud_watching_2021.jsonl"))?;
    let pcap = std::fs::File::create("out/cloud_watching_2021.pcap")
        .map_err(io("create out/cloud_watching_2021.pcap"))?;
    // 2021-07-01T00:00:00Z.
    bundle
        .dataset
        .write_pcap(BufWriter::new(pcap), 1_625_097_600)
        .map_err(io("write out/cloud_watching_2021.pcap"))?;
    println!(
        "wrote {} events to out/cloud_watching_2021.{{csv,jsonl,pcap}}",
        bundle.dataset.len()
    );
    Ok(())
}
