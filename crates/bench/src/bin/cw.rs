//! `cw` — the multicall exhibit driver.
//!
//! One binary replaces the 27 single-purpose regenerators:
//!
//! ```text
//! cw list                 # every exhibit in the registry
//! cw table1               # render one exhibit to stdout
//! cw all                  # render all 25 exhibits into out/<name>.txt
//! cw export               # write the released dataset under out/
//! ```
//!
//! The driver resolves the union of simulated worlds the requested
//! exhibits need ([`cw_core::exhibit::required_configs`]), obtains each
//! distinct world exactly once — from the content-addressed snapshot cache
//! when possible ([`cw_core::snapshot`]), simulating on a miss — and fans
//! the shared bundles out to every render. Renders are byte-identical to
//! the retired binaries for any `--threads` value, with or without the
//! cache.

use cw_bench::{parse_from, threads, RunOptions, USAGE};
use cw_core::exhibit::{self, Exhibit, ExhibitCx, ExhibitOptions};
use cw_core::fleet;
use cw_core::scenario::ScenarioConfig;
use cw_core::snapshot::{self, Provenance};
use cw_core::SimBundle;
use std::collections::BTreeMap;
use std::io::Write;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("error: missing command");
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let opts = parse_from(args);
    match command.as_str() {
        "list" => cmd_list(),
        "all" => cmd_all(opts),
        "export" => cmd_export(opts),
        name => match exhibit::find(name) {
            Some(e) => cmd_exhibit(e, opts),
            None => {
                eprintln!("error: unknown command or exhibit '{name}' (try `cw list`)");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        },
    }
}

fn exhibit_options(opts: RunOptions) -> ExhibitOptions {
    ExhibitOptions {
        scale: opts.scale,
        seed: opts.seed,
        year: opts.year,
        shards: fleet::resolve_shards(opts.shards),
    }
}

/// Obtain one simulated world — snapshot cache first (unless disabled),
/// simulating and filling the cache on a miss — with progress on stderr.
fn obtain(config: ScenarioConfig, use_cache: bool) -> SimBundle {
    eprintln!(
        "[cw] obtaining {} world (scale {}, seed {:#x}) ...",
        config.year.year(),
        config.scale,
        config.seed
    );
    let (bundle, provenance) = snapshot::load_or_run(config, use_cache);
    match provenance {
        Provenance::CacheHit { read_secs } => eprintln!(
            "[cw] {} world: snapshot hit ({:.0} ms read, {} events)",
            config.year.year(),
            read_secs * 1e3,
            bundle.dataset.len()
        ),
        Provenance::Simulated { sim_secs, write_secs } => eprintln!(
            "[cw] {} world: simulated in {:.1}s ({} events{})",
            config.year.year(),
            sim_secs,
            bundle.dataset.len(),
            match write_secs {
                Some(w) => format!(", snapshot written in {:.0} ms", w * 1e3),
                None => String::new(),
            }
        ),
    }
    bundle
}

/// Obtain every world in `configs`, in parallel, keyed by scenario year.
fn obtain_all(
    configs: Vec<ScenarioConfig>,
    n_threads: usize,
    use_cache: bool,
) -> BTreeMap<u16, SimBundle> {
    fleet::map(configs, n_threads, |_, cfg| obtain(cfg, use_cache))
        .into_iter()
        .map(|b| (b.config.year.year(), b))
        .collect()
}

fn cmd_list() {
    for e in exhibit::REGISTRY {
        println!("{:<20} {}", e.name(), e.title());
    }
}

fn cmd_exhibit(e: &'static dyn Exhibit, opts: RunOptions) {
    let ex_opts = exhibit_options(opts);
    let configs = exhibit::required_configs(&[e], &ex_opts);
    let bundles = obtain_all(configs, threads(opts), !opts.no_cache);
    let cx = ExhibitCx::new(ex_opts, &bundles);
    print!("{}", e.run(&cx));
}

fn cmd_all(opts: RunOptions) {
    let started = Instant::now();
    let ex_opts = exhibit_options(opts);
    let n_threads = threads(opts);
    let configs = exhibit::required_configs(exhibit::REGISTRY, &ex_opts);
    let n_worlds = configs.len();
    let bundles = obtain_all(configs, n_threads, !opts.no_cache);
    let cx = ExhibitCx::new(ex_opts, &bundles);

    std::fs::create_dir_all("out").expect("create out/");
    let rendered = fleet::map(exhibit::REGISTRY.to_vec(), n_threads, |_, e| {
        (e.name(), e.run(&cx))
    });
    for (name, text) in &rendered {
        let path = format!("out/{name}.txt");
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("create {path}: {e}"));
        f.write_all(text.as_bytes())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
    eprintln!(
        "[cw] rendered {} exhibits from {} simulated worlds into out/ in {:.1}s",
        rendered.len(),
        n_worlds,
        started.elapsed().as_secs_f64()
    );
}

fn cmd_export(opts: RunOptions) {
    use std::io::BufWriter;
    let ex_opts = exhibit_options(opts);
    let configs = exhibit::required_configs(
        &[exhibit::find("table1").expect("table1 registered")],
        &ex_opts,
    );
    let bundles = obtain_all(configs, threads(opts), !opts.no_cache);
    let (_, bundle) = bundles.iter().next().expect("one world");
    print!("{}", cw_core::report::header_str("Dataset export"));
    std::fs::create_dir_all("out").expect("create out/");
    let csv = std::fs::File::create("out/cloud_watching_2021.csv").expect("create csv");
    bundle
        .dataset
        .write_csv(BufWriter::new(csv))
        .expect("write csv");
    let jsonl = std::fs::File::create("out/cloud_watching_2021.jsonl").expect("create jsonl");
    bundle
        .dataset
        .write_jsonl(BufWriter::new(jsonl))
        .expect("write jsonl");
    let pcap = std::fs::File::create("out/cloud_watching_2021.pcap").expect("create pcap");
    // 2021-07-01T00:00:00Z.
    bundle
        .dataset
        .write_pcap(BufWriter::new(pcap), 1_625_097_600)
        .expect("write pcap");
    println!(
        "wrote {} events to out/cloud_watching_2021.{{csv,jsonl,pcap}}",
        bundle.dataset.len()
    );
}
