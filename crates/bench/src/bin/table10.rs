//! Table 10: a significantly different set of ASes target telescopes.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::dataset::TrafficSlice;
use cw_core::network::telescope_vs_fleet;
use cw_core::report::{phi_value, TextTable};
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Table 10: telescope vs EDU / cloud — top-AS differences (2021)");
    paper_note(
        "Telescope-EDU: SSH 2/2 dif (0.41), TEL 2/2 (0.68), HTTP/80 0/2, All 2/2 (0.20); \
         Telescope-Cloud: SSH 3/3 (0.71), TEL 3/3 (0.82), HTTP/80 2/3 (0.40), All 3/3 (0.30)",
    );
    let tel = s.telescope.borrow();
    let edu_fleets = ["honeytrap/stanford", "honeytrap/merit"];
    let cloud_fleets = [
        "honeytrap/aws-west",
        "honeytrap/google-west",
        "honeytrap/google-east",
    ];
    let slices = [
        TrafficSlice::SshPort22,
        TrafficSlice::TelnetPort23,
        TrafficSlice::HttpPort80,
        TrafficSlice::AnyAll,
    ];
    let mut t = TextTable::new(&[
        "Slice",
        "Tel-EDU dif",
        "Tel-EDU avg phi",
        "Tel-Cloud dif",
        "Tel-Cloud avg phi",
    ]);
    for slice in slices {
        let run = |fleets: &[&str]| -> (usize, usize, Option<f64>) {
            let mut n = 0;
            let mut dif = 0;
            let mut phis = Vec::new();
            for f in fleets {
                if let Some(cmp) = telescope_vs_fleet(
                    &s.dataset,
                    &s.deployment,
                    &tel,
                    f,
                    slice,
                    0.05,
                    fleets.len(),
                ) {
                    n += 1;
                    if cmp.significant {
                        dif += 1;
                        phis.push(cmp.effect.phi);
                    }
                }
            }
            (n, dif, cw_stats::descriptive::mean(&phis))
        };
        let (en, ed, ephi) = run(&edu_fleets);
        let (cn, cd, cphi) = run(&cloud_fleets);
        t.row(vec![
            slice.label().to_string(),
            format!("{ed}/{en}"),
            phi_value(ephi, 1),
            format!("{cd}/{cn}"),
            phi_value(cphi, 1),
        ]);
    }
    println!("{}", t.render());
}
