//! Table 9: attackers on SSH-assigned ports avoid telescopes.

use cw_bench::{header, paper_note, parse_args, scenario};
use cw_core::overlap::table9;
use cw_core::report::{pct, TextTable};
use cw_scanners::population::ScenarioYear;

fn main() {
    let s = scenario(parse_args(), ScenarioYear::Y2021);
    header("Table 9: attacker-IP overlap with the telescope (2021)");
    paper_note(
        "Tel∩Mal-Cloud/Mal-Cloud: 23→94%, 2323→88%, 80→84%, 8080→84%, 2222→3.6%, 22→7.5%; \
         EDU column only computable on 80/8080 (96%/97%), × elsewhere",
    );
    let tel = s.telescope.borrow();
    let rows = table9(&s.dataset, &s.deployment, &tel);
    let mut t = TextTable::new(&["Port", "Tel∩Mal-Cloud / Mal-Cloud", "Tel∩Mal-EDU / Mal-EDU"]);
    for r in &rows {
        t.row(vec![r.port.to_string(), pct(r.tel_cloud), pct(r.tel_edu)]);
    }
    println!("{}", t.render());
}
