//! The queryable event store behind every analysis.
//!
//! A [`Dataset`] flattens all honeypot captures into one columnar
//! [`EventTable`], attaches vantage metadata, pre-classifies every event
//! with the vetted ruleset (§3.2), and exposes the §3.3 traffic slices.
//! It also writes the released dataset as CSV/JSONL/pcap. Analyses sweep
//! it through the typed query layer ([`Dataset::query`], [`crate::query`]):
//! the sweep shorthands on this type are thin query expressions.
//!
//! # Interned, memoized classification
//!
//! Events carry [`PayloadId`]/[`cw_netsim::intern::CredId`] handles instead of bytes. The
//! build step remaps each capture's ids into the dataset's own
//! [`Interner`] (captures of one deployment share an id space, so the
//! remap runs once per deployment, not once per capture) and then
//! classifies + LZR-fingerprints **once per distinct `(PayloadId, port)`
//! pair** — a memo over a few thousand distinct payloads instead of a
//! rule-matcher run per event. Verdicts are pure functions of
//! `(payload bytes, port)`, so memoization is observationally identical
//! to the per-event path.
//!
//! The same remap machinery powers [`Dataset::absorb`]: fleet workers
//! build worker-local datasets whose interners are merged in stream-id
//! order, keeping merged output byte-identical for any thread count.

use cw_detection::{is_malicious_payload, RuleSet, Verdict};
use cw_honeypot::capture::{Capture, EventTable, Observed, ScanEvent};
use cw_honeypot::deployment::{Deployment, VantagePoint};
use cw_netsim::flow::LoginService;
use cw_netsim::intern::{CredId, Interner, PayloadId, Remap};
use cw_netsim::snap::{SnapError, SnapReader, SnapWriter};
use cw_protocols::ProtocolId;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::net::Ipv4Addr;

/// The §3.3 traffic slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficSlice {
    /// Traffic to port 22.
    SshPort22,
    /// Traffic to port 23.
    TelnetPort23,
    /// Traffic to port 80.
    HttpPort80,
    /// HTTP-fingerprinted payloads on any port ("HTTP/All Ports").
    HttpAllPorts,
    /// Everything ("Any/All").
    AnyAll,
}

impl TrafficSlice {
    /// The slices of Table 2/4/5/7.
    pub const PAPER: [TrafficSlice; 4] = [
        TrafficSlice::SshPort22,
        TrafficSlice::TelnetPort23,
        TrafficSlice::HttpPort80,
        TrafficSlice::HttpAllPorts,
    ];

    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficSlice::SshPort22 => "SSH/22",
            TrafficSlice::TelnetPort23 => "Telnet/23",
            TrafficSlice::HttpPort80 => "HTTP/80",
            TrafficSlice::HttpAllPorts => "HTTP/All",
            TrafficSlice::AnyAll => "Any/All",
        }
    }
}

/// A classified event: the capture record plus analysis metadata, with a
/// borrow of the dataset's interner so display strings resolve on demand.
#[derive(Debug, Clone, Copy)]
pub struct ClassifiedEvent<'a> {
    /// The raw observation (interned ids in the dataset's id space).
    pub event: ScanEvent,
    /// §3.2 verdict.
    pub verdict: Verdict,
    /// LZR fingerprint of the payload, if one was observed.
    pub fingerprint: Option<ProtocolId>,
    interner: &'a Interner,
}

impl<'a> ClassifiedEvent<'a> {
    /// Assemble a classified event from parts — for harnesses that
    /// classify outside a [`Dataset`] (the leak experiment, axes tests).
    /// `interner` must be the interner `event`'s ids were minted by.
    pub fn new(
        event: ScanEvent,
        verdict: Verdict,
        fingerprint: Option<ProtocolId>,
        interner: &'a Interner,
    ) -> Self {
        ClassifiedEvent {
            event,
            verdict,
            fingerprint,
            interner,
        }
    }

    /// Does the event fall into a traffic slice?
    pub fn in_slice(&self, slice: TrafficSlice) -> bool {
        match slice {
            TrafficSlice::SshPort22 => self.event.dst_port == 22,
            TrafficSlice::TelnetPort23 => self.event.dst_port == 23,
            TrafficSlice::HttpPort80 => self.event.dst_port == 80,
            TrafficSlice::HttpAllPorts => self.fingerprint == Some(ProtocolId::Http),
            TrafficSlice::AnyAll => true,
        }
    }

    /// The interner this event's ids resolve against.
    pub fn interner(&self) -> &'a Interner {
        self.interner
    }

    /// The observed payload bytes, if any.
    pub fn payload_bytes(&self) -> Option<&'a [u8]> {
        self.event.observed.payload().map(|p| self.interner.payload(p))
    }

    /// The harvested username, if this was a credential observation.
    pub fn username(&self) -> Option<&'a str> {
        match self.event.observed {
            Observed::Credentials { username, .. } => Some(self.interner.cred(username)),
            _ => None,
        }
    }

    /// The harvested password, if this was a credential observation.
    pub fn password(&self) -> Option<&'a str> {
        match self.event.observed {
            Observed::Credentials { password, .. } => Some(self.interner.cred(password)),
            _ => None,
        }
    }
}

/// The flattened, classified event store (columnar, interned).
#[derive(Debug, Clone)]
pub struct Dataset {
    table: EventTable,
    verdicts: Vec<Verdict>,
    fingerprints: Vec<Option<ProtocolId>>,
    interner: Interner,
    vantage_by_ip: BTreeMap<Ipv4Addr, VantagePoint>,
    by_dst: BTreeMap<Ipv4Addr, Vec<usize>>,
}

/// Per-distinct classification memo: `(payload id, port)` → verdict +
/// fingerprint. Ids are in the dataset's interner space.
type ClassifyMemo = HashMap<(PayloadId, u16), (Verdict, Option<ProtocolId>)>;

/// Streaming assembler for a [`Dataset`] — the incremental counterpart of
/// [`Dataset::from_captures`].
///
/// The materialized build sees every capture in full at the end of a run;
/// the streaming scenario path instead drains each capture at every window
/// boundary ([`Capture::take_rows`]) and feeds the chunks here as they
/// appear. The builder keeps one accumulation slot per capture so the
/// finished dataset's row order is exactly the materialized order — all of
/// capture 0's rows (in recording order), then capture 1's, and so on —
/// while the dataset interner grows in the shared capture interner's
/// *insertion* order, which is independent of the drain schedule. The two
/// builds are therefore byte-identical; `tests/determinism.rs` enforces it
/// across window sizes and shard counts.
///
/// Two ingestion paths exist, matching the two scenario paths:
///
/// - [`DatasetBuilder::absorb_table`] bulk-appends a drained chunk whose
///   ids are translated through a [`Remap`] kept current with
///   [`DatasetBuilder::extend_remap`] (single-engine streaming);
/// - [`DatasetBuilder::push_event`] appends one event already in the
///   builder's id space (the sharded merge interns lazily in global
///   `(time, agent, seq)` order via [`DatasetBuilder::intern_payload`] /
///   [`DatasetBuilder::intern_cred`]).
pub struct DatasetBuilder {
    slots: Vec<BuilderSlot>,
    interner: Interner,
    memo: ClassifyMemo,
    rules: &'static RuleSet,
    vantage_by_ip: BTreeMap<Ipv4Addr, VantagePoint>,
}

/// One capture's accumulated, already-classified rows (dataset id space).
#[derive(Default)]
struct BuilderSlot {
    table: EventTable,
    verdicts: Vec<Verdict>,
    fingerprints: Vec<Option<ProtocolId>>,
}

impl DatasetBuilder {
    /// An empty builder with `slots` capture slots over `deployment`'s
    /// vantage metadata. Slot indices follow the deployment's honeypot
    /// registration order — the same order [`Dataset::from_captures`]
    /// walks.
    pub fn new(deployment: &Deployment, slots: usize) -> Self {
        let vantage_by_ip: BTreeMap<Ipv4Addr, VantagePoint> = deployment
            .vantages
            .iter()
            .map(|v| (v.ip, v.clone()))
            .collect();
        DatasetBuilder {
            slots: (0..slots).map(|_| BuilderSlot::default()).collect(),
            interner: Interner::new(),
            memo: HashMap::new(),
            rules: RuleSet::builtin_cached(),
            vantage_by_ip,
        }
    }

    /// Pre-size the builder's interner arenas and classification memo for
    /// an expected number of distinct payloads/credentials (derived from
    /// the scenario scale). A pure allocation hint.
    pub fn with_interner_capacity(mut self, payloads: usize, creds: usize) -> Self {
        self.interner.reserve(payloads, creds);
        self.memo.reserve(payloads);
        self
    }

    /// Bring `remap` up to date with `src`: every value `src` has interned
    /// since the last call gets a dataset-space id, in `src`'s insertion
    /// order. See [`Interner::extend_remap_from`] for why the incremental
    /// schedule reproduces the one-shot remap exactly.
    pub fn extend_remap(&mut self, src: &Interner, remap: &mut Remap) {
        self.interner.extend_remap_from(src, remap);
    }

    /// Intern a payload blob directly into the builder's id space (the
    /// sharded merge's first-occurrence re-interning).
    pub fn intern_payload(&mut self, bytes: &[u8]) -> PayloadId {
        self.interner.intern_payload(bytes)
    }

    /// Intern a credential string directly into the builder's id space.
    pub fn intern_cred(&mut self, s: &str) -> CredId {
        self.interner.intern_cred(s)
    }

    /// Append one drained chunk to slot `slot`, translating ids through
    /// `remap` (which must already cover them — call
    /// [`DatasetBuilder::extend_remap`] first) and classifying each row
    /// with the per-distinct memo.
    pub fn absorb_table(&mut self, slot: usize, table: &EventTable, remap: &Remap) {
        let s = &mut self.slots[slot];
        let base = s.table.len();
        s.table
            .extend_remapped(table, |observed| remap_observed(observed, remap));
        let observed = &s.table.observed()[base..];
        let ports = &s.table.dst_ports()[base..];
        for (&observed, &port) in observed.iter().zip(ports) {
            let (verdict, fingerprint) =
                classify_interned(observed, port, &self.interner, self.rules, &mut self.memo);
            s.verdicts.push(verdict);
            s.fingerprints.push(fingerprint);
        }
    }

    /// Append one event (ids already in the builder's space) to slot
    /// `slot`, classifying it with the per-distinct memo.
    pub fn push_event(&mut self, slot: usize, event: ScanEvent) {
        let (verdict, fingerprint) = classify_interned(
            event.observed,
            event.dst_port,
            &self.interner,
            self.rules,
            &mut self.memo,
        );
        let s = &mut self.slots[slot];
        s.table.push(event);
        s.verdicts.push(verdict);
        s.fingerprints.push(fingerprint);
    }

    /// Total rows accumulated so far, across all slots.
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| s.table.len()).sum()
    }

    /// Whether nothing has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assemble the final [`Dataset`]: concatenate the slots in capture
    /// order and build the destination index. Each slot's storage is
    /// dropped as soon as it is copied, so the transient overlay above the
    /// final columns shrinks as assembly proceeds.
    pub fn finish(self) -> Dataset {
        let total: usize = self.slots.iter().map(|s| s.table.len()).sum();
        let mut ds = Dataset {
            table: EventTable::with_capacity(total),
            verdicts: Vec::with_capacity(total),
            fingerprints: Vec::with_capacity(total),
            interner: self.interner,
            vantage_by_ip: self.vantage_by_ip,
            by_dst: BTreeMap::new(),
        };
        for slot in self.slots {
            let base = ds.table.len();
            for (i, &dst) in slot.table.dsts().iter().enumerate() {
                ds.by_dst.entry(dst).or_default().push(base + i);
            }
            ds.table.extend_remapped(&slot.table, |o| o);
            ds.verdicts.extend(slot.verdicts);
            ds.fingerprints.extend(slot.fingerprints);
        }
        ds
    }
}

impl Dataset {
    /// Build from captures and the deployment's vantage metadata.
    ///
    /// This is the materialized build: every capture is complete before
    /// assembly starts. It is implemented over [`DatasetBuilder`] (one
    /// whole capture per chunk), so the streaming scenario path and this
    /// one cannot drift apart.
    pub fn from_captures(captures: &[&Capture], deployment: &Deployment) -> Self {
        let mut b = DatasetBuilder::new(deployment, captures.len());
        // Captures of one deployment share an interner; cache the remap by
        // source-interner identity so it is computed once, not per capture.
        let mut cached: Option<(*const (), Remap)> = None;
        for (slot, cap) in captures.iter().enumerate() {
            let src_interner = cap.interner();
            let key = std::rc::Rc::as_ptr(&src_interner) as *const ();
            let remap = match &cached {
                Some((k, remap)) if *k == key => remap.clone(),
                _ => {
                    let mut remap = Remap::identity();
                    b.extend_remap(&src_interner.borrow(), &mut remap);
                    cached = Some((key, remap.clone()));
                    remap
                }
            };
            b.absorb_table(slot, cap.table(), &remap);
        }
        b.finish()
    }

    /// An empty dataset — the identity element for [`Dataset::absorb`].
    pub fn empty() -> Self {
        Dataset {
            table: EventTable::new(),
            verdicts: Vec::new(),
            fingerprints: Vec::new(),
            interner: Interner::new(),
            vantage_by_ip: BTreeMap::new(),
            by_dst: BTreeMap::new(),
        }
    }

    /// Fold another dataset into this one — the fleet merge step.
    ///
    /// `other`'s events are appended after `self`'s (its per-destination
    /// indices are rebased) and its interned ids are remapped into `self`'s
    /// id space by re-interning `other`'s distinct values in *their*
    /// insertion order. Folding per-run datasets in stream-id order
    /// therefore yields the same merged dataset — same ids, same bytes —
    /// for any worker-thread count. Vantage metadata is unioned; identical
    /// IPs must describe identical vantages (always true for runs built
    /// from [`Deployment::standard`]).
    pub fn absorb(&mut self, other: Dataset) {
        let base = self.table.len();
        for (dst, idxs) in other.by_dst {
            self.by_dst
                .entry(dst)
                .or_default()
                .extend(idxs.into_iter().map(|i| i + base));
        }
        let remap = self.interner.remap_from(&other.interner);
        self.table
            .extend_remapped(&other.table, |o| remap_observed(o, &remap));
        // Verdicts/fingerprints are pure functions of (bytes, port) and
        // bytes survive remapping unchanged — copy them straight over.
        self.verdicts.extend(other.verdicts);
        self.fingerprints.extend(other.fingerprints);
        self.vantage_by_ip.extend(other.vantage_by_ip);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the dataset holds no events.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The interner every event id resolves against.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The columnar event store.
    pub fn table(&self) -> &EventTable {
        &self.table
    }

    /// The §3.2 verdict column (parallel to the event table's rows).
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The LZR fingerprint column (parallel to the event table's rows).
    pub fn fingerprints(&self) -> &[Option<ProtocolId>] {
        &self.fingerprints
    }

    /// Row indices destined to `ip`, in capture order — the pushdown index
    /// behind [`crate::query::Query::at`].
    pub(crate) fn dst_index(&self, ip: Ipv4Addr) -> Option<&[usize]> {
        self.by_dst.get(&ip).map(|v| v.as_slice())
    }

    /// Start a typed query over this dataset (see [`crate::query`]).
    ///
    /// The sweep helpers below ([`Dataset::events_at_in`],
    /// [`Dataset::sources_on_port`], [`Dataset::port_source_sets`], …) are
    /// retained as shorthands and are themselves thin query expressions.
    pub fn query(&self) -> crate::query::Query<'_> {
        crate::query::Query::over(self)
    }

    /// Event `i` with its classification.
    pub fn event(&self, i: usize) -> ClassifiedEvent<'_> {
        ClassifiedEvent {
            event: self.table.get(i),
            verdict: self.verdicts[i],
            fingerprint: self.fingerprints[i],
            interner: &self.interner,
        }
    }

    /// All classified events, in capture order.
    pub fn events(&self) -> impl Iterator<Item = ClassifiedEvent<'_>> {
        (0..self.len()).map(move |i| self.event(i))
    }

    /// Events destined to one vantage IP.
    pub fn events_at(&self, ip: Ipv4Addr) -> Vec<ClassifiedEvent<'_>> {
        self.query().at(&[ip]).classified()
    }

    /// Events at one vantage IP within a slice.
    pub fn events_at_in(&self, ip: Ipv4Addr, slice: TrafficSlice) -> Vec<ClassifiedEvent<'_>> {
        self.query().at(&[ip]).slice(slice).classified()
    }

    /// Events pooled across a set of vantage IPs within a slice
    /// (enumerated per IP, in the order given).
    pub fn events_at_group(
        &self,
        ips: &[Ipv4Addr],
        slice: TrafficSlice,
    ) -> Vec<ClassifiedEvent<'_>> {
        self.query().at(ips).slice(slice).classified()
    }

    /// Vantage metadata for an observed IP.
    pub fn vantage(&self, ip: Ipv4Addr) -> Option<&VantagePoint> {
        self.vantage_by_ip.get(&ip)
    }

    /// Distinct source IPs seen on one port across a set of vantages.
    pub fn sources_on_port(&self, ips: &[Ipv4Addr], port: u16) -> std::collections::BTreeSet<Ipv4Addr> {
        self.query().at(ips).port(port).distinct_srcs()
    }

    /// Distinct *attacker* source IPs (≥1 malicious event) on one port.
    pub fn malicious_sources_on_port(
        &self,
        ips: &[Ipv4Addr],
        port: u16,
    ) -> std::collections::BTreeSet<Ipv4Addr> {
        self.query().at(ips).port(port).malicious().distinct_srcs()
    }

    /// Distinct source IPs per destination port across a vantage set, for
    /// a fixed port list, in one sweep. Tables 8/9 ask for ~10 ports over
    /// the same 440-vantage fleet; per-port [`Self::sources_on_port`]
    /// calls would rescan the same rows once per port. (Tables that also
    /// coincide on the vantage set share one scan via a fused
    /// [`crate::query::PlanSet`].)
    pub fn port_source_sets(
        &self,
        ips: &[Ipv4Addr],
        ports: &[u16],
        malicious_only: bool,
    ) -> std::collections::BTreeMap<u16, std::collections::BTreeSet<Ipv4Addr>> {
        let q = if malicious_only {
            self.query().malicious()
        } else {
            self.query()
        };
        q.at(ips).group_by_port().keys(ports).distinct_srcs()
    }

    /// Distinct (source IP, source AS) pairs across a set of vantages —
    /// Table 1's unique-scanner columns.
    pub fn unique_sources(&self, ips: &[Ipv4Addr]) -> (usize, usize) {
        self.query().at(ips).unique_src_and_asn()
    }

    /// Encode the dataset into a snapshot payload: the interner, the
    /// columnar table, and both classification columns. The derived
    /// indexes (`vantage_by_ip`, `by_dst`) are *not* written — they are
    /// pure functions of the table and the deployment, so
    /// [`Dataset::snap_read`] rebuilds them instead of trusting the disk.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        self.interner.snap_write(w);
        self.table.snap_write(w);
        w.put_u64(self.verdicts.len() as u64);
        for v in &self.verdicts {
            w.put_u8(match v {
                Verdict::Attacker => 0,
                Verdict::Scanner => 1,
            });
        }
        w.put_u64(self.fingerprints.len() as u64);
        for fp in &self.fingerprints {
            w.put_u8(match fp {
                None => 0xFF,
                // The stable wire id of a protocol is its index in
                // `ProtocolId::ALL` (13 variants, fits a u8).
                Some(p) => ProtocolId::ALL
                    .iter()
                    .position(|q| q == p)
                    .expect("every ProtocolId appears in ALL") as u8,
            });
        }
    }

    /// Decode a dataset from a snapshot payload, rebuilding the derived
    /// indexes from `deployment` (which must be the deployment the dataset
    /// was captured on — always [`Deployment::standard`] here).
    ///
    /// Beyond the container hash, this validates that every interned id in
    /// the table resolves inside the decoded interner, so a logically
    /// inconsistent snapshot is rejected rather than panicking later.
    pub fn snap_read(
        r: &mut SnapReader<'_>,
        deployment: &Deployment,
    ) -> Result<Dataset, SnapError> {
        let interner = Interner::snap_read(r)?;
        let table = EventTable::snap_read(r)?;
        for o in table.observed() {
            match *o {
                Observed::Payload(p) => {
                    if p.index() >= interner.payload_count() {
                        return Err(SnapError::Malformed("payload id out of interner range"));
                    }
                }
                Observed::Credentials {
                    username, password, ..
                } => {
                    if username.index() >= interner.cred_count()
                        || password.index() >= interner.cred_count()
                    {
                        return Err(SnapError::Malformed("credential id out of interner range"));
                    }
                }
                Observed::Syn | Observed::Handshake => {}
            }
        }
        if r.get_count()? != table.len() {
            return Err(SnapError::Malformed("verdict column length mismatch"));
        }
        let mut verdicts = Vec::with_capacity(table.len());
        for _ in 0..table.len() {
            verdicts.push(match r.get_u8()? {
                0 => Verdict::Attacker,
                1 => Verdict::Scanner,
                _ => return Err(SnapError::Malformed("unknown verdict tag")),
            });
        }
        if r.get_count()? != table.len() {
            return Err(SnapError::Malformed("fingerprint column length mismatch"));
        }
        let mut fingerprints = Vec::with_capacity(table.len());
        for _ in 0..table.len() {
            fingerprints.push(match r.get_u8()? {
                0xFF => None,
                t if (t as usize) < ProtocolId::ALL.len() => Some(ProtocolId::ALL[t as usize]),
                _ => return Err(SnapError::Malformed("unknown protocol fingerprint tag")),
            });
        }
        let vantage_by_ip: BTreeMap<Ipv4Addr, VantagePoint> = deployment
            .vantages
            .iter()
            .map(|v| (v.ip, v.clone()))
            .collect();
        let mut by_dst: BTreeMap<Ipv4Addr, Vec<usize>> = BTreeMap::new();
        for (i, &dst) in table.dsts().iter().enumerate() {
            by_dst.entry(dst).or_default().push(i);
        }
        Ok(Dataset {
            table,
            verdicts,
            fingerprints,
            interner,
            vantage_by_ip,
            by_dst,
        })
    }

    /// Write the dataset as CSV (one row per event; payloads hex-encoded).
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "time,src,src_asn,dst,dst_port,kind,verdict,fingerprint,username,password,payload_hex"
        )?;
        for ce in self.events() {
            let e = &ce.event;
            let (kind, user, pass, payload) = match e.observed {
                Observed::Syn => ("syn", "", "", String::new()),
                Observed::Handshake => ("handshake", "", "", String::new()),
                Observed::Payload(p) => ("payload", "", "", hex(self.interner.payload(p))),
                Observed::Credentials {
                    username, password, ..
                } => (
                    "credentials",
                    self.interner.cred(username),
                    self.interner.cred(password),
                    String::new(),
                ),
            };
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{},{},{}",
                e.time.secs(),
                e.src,
                e.src_asn.0,
                e.dst,
                e.dst_port,
                kind,
                match ce.verdict {
                    Verdict::Attacker => "attacker",
                    Verdict::Scanner => "scanner",
                },
                ce.fingerprint.map(|p| p.label()).unwrap_or(""),
                csv_escape(user),
                csv_escape(pass),
                payload,
            )?;
        }
        Ok(())
    }

    /// Write the dataset as a libpcap capture (synthesized Ethernet/IPv4/TCP
    /// frames; opens in Wireshark/tcpdump). `epoch` is the UNIX timestamp of
    /// simulated time zero — e.g. 1625097600 for 2021-07-01T00:00:00Z.
    ///
    /// Credential observations are rendered as the client's first protocol
    /// bytes (SSH banner / Telnet negotiation) since a pcap carries wire
    /// data, not harvested application state.
    pub fn write_pcap<W: Write>(&self, w: W, epoch: u32) -> std::io::Result<()> {
        use cw_netsim::pcap::PcapWriter;
        const TELNET_NEGOTIATION: &[u8] = &[0xFF, 0xFD, 0x01, 0xFF, 0xFD, 0x03];
        let mut pcap = PcapWriter::new(w, epoch)?;
        for ce in self.events() {
            let e = &ce.event;
            // Deterministic ephemeral source port derived from the flow.
            let src_port = 32_768 + (cw_netsim::rng::fnv1a(&e.src.octets()) % 28_000) as u16;
            let (payload, syn_only): (&[u8], bool) = match e.observed {
                Observed::Syn => (&[], true),
                Observed::Handshake => (&[], false),
                Observed::Payload(p) => (self.interner.payload(p), false),
                Observed::Credentials { service, .. } => match service {
                    LoginService::Ssh => (cw_netsim::flow::SSH_CLIENT_BANNER, false),
                    LoginService::Telnet => (TELNET_NEGOTIATION, false),
                },
            };
            pcap.write_tcp(e.time, e.src, src_port, e.dst, e.dst_port, payload, syn_only)?;
        }
        pcap.finish()?;
        Ok(())
    }

    /// Write the dataset as JSON Lines.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for ce in self.events() {
            let e = &ce.event;
            let mut obj = format!(
                "{{\"time\":{},\"src\":\"{}\",\"src_asn\":{},\"dst\":\"{}\",\"dst_port\":{},\"verdict\":\"{}\"",
                e.time.secs(),
                e.src,
                e.src_asn.0,
                e.dst,
                e.dst_port,
                match ce.verdict {
                    Verdict::Attacker => "attacker",
                    Verdict::Scanner => "scanner",
                }
            );
            match e.observed {
                Observed::Syn => obj.push_str(",\"kind\":\"syn\""),
                Observed::Handshake => obj.push_str(",\"kind\":\"handshake\""),
                Observed::Payload(p) => {
                    obj.push_str(&format!(
                        ",\"kind\":\"payload\",\"payload_hex\":\"{}\"",
                        hex(self.interner.payload(p))
                    ));
                }
                Observed::Credentials {
                    username, password, ..
                } => {
                    obj.push_str(&format!(
                        ",\"kind\":\"credentials\",\"username\":{},\"password\":{}",
                        json_string(self.interner.cred(username)),
                        json_string(self.interner.cred(password))
                    ));
                }
            }
            if let Some(fp) = ce.fingerprint {
                obj.push_str(&format!(",\"fingerprint\":\"{}\"", fp.label()));
            }
            obj.push('}');
            writeln!(w, "{obj}")?;
        }
        Ok(())
    }
}

fn remap_observed(o: Observed, remap: &Remap) -> Observed {
    match o {
        Observed::Syn => Observed::Syn,
        Observed::Handshake => Observed::Handshake,
        Observed::Payload(p) => Observed::Payload(remap.payload(p)),
        Observed::Credentials {
            service,
            username,
            password,
        } => Observed::Credentials {
            service,
            username: remap.cred(username),
            password: remap.cred(password),
        },
    }
}

/// Classify one interned observation per §3.2, memoized per distinct
/// `(payload, port)` pair.
fn classify_interned(
    observed: Observed,
    dst_port: u16,
    interner: &Interner,
    rules: &RuleSet,
    memo: &mut ClassifyMemo,
) -> (Verdict, Option<ProtocolId>) {
    match observed {
        Observed::Syn | Observed::Handshake => (Verdict::Scanner, None),
        Observed::Payload(p) => *memo.entry((p, dst_port)).or_insert_with(|| {
            let bytes = interner.payload(p);
            let verdict = if is_malicious_payload(bytes, dst_port, rules) {
                Verdict::Attacker
            } else {
                Verdict::Scanner
            };
            (verdict, cw_protocols::fingerprint(bytes))
        }),
        Observed::Credentials { service, .. } => {
            let fp = match service {
                LoginService::Ssh => Some(ProtocolId::Ssh),
                LoginService::Telnet => Some(ProtocolId::Telnet),
            };
            (Verdict::Attacker, fp)
        }
    }
}

/// Classify one capture event per §3.2, resolving ids via `interner`.
///
/// This is the unmemoized reference path; [`Dataset::from_captures`] uses
/// the per-distinct memo internally and must agree with this function on
/// every event (the equivalence tests enforce it).
pub fn classify_event(
    e: &ScanEvent,
    interner: &Interner,
    rules: &RuleSet,
) -> (Verdict, Option<ProtocolId>) {
    match e.observed {
        Observed::Syn | Observed::Handshake => (Verdict::Scanner, None),
        Observed::Payload(p) => {
            let bytes = interner.payload(p);
            let verdict = if is_malicious_payload(bytes, e.dst_port, rules) {
                Verdict::Attacker
            } else {
                Verdict::Scanner
            };
            (verdict, cw_protocols::fingerprint(bytes))
        }
        Observed::Credentials { service, .. } => {
            let fp = match service {
                LoginService::Ssh => Some(ProtocolId::Ssh),
                LoginService::Telnet => Some(ProtocolId::Telnet),
            };
            (Verdict::Attacker, fp)
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0x0F) as usize] as char);
    }
    s
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_netsim::asn::Asn;
    use cw_netsim::time::SimTime;

    /// Test-side raw observation (bytes, pre-interning).
    enum Raw {
        Syn,
        Handshake,
        Payload(Vec<u8>),
        Creds(LoginService, &'static str, &'static str),
    }

    struct Builder {
        cap: Capture,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                cap: Capture::new("test"),
            }
        }

        fn push_from(&mut self, src: Ipv4Addr, asn: Asn, dst_port: u16, raw: Raw) {
            let observed = match raw {
                Raw::Syn => Observed::Syn,
                Raw::Handshake => Observed::Handshake,
                Raw::Payload(p) => Observed::Payload(self.cap.intern_payload(&p)),
                Raw::Creds(service, u, p) => Observed::Credentials {
                    service,
                    username: self.cap.intern_cred(u),
                    password: self.cap.intern_cred(p),
                },
            };
            self.cap.record(ScanEvent {
                time: SimTime(60),
                src,
                src_asn: asn,
                dst: Ipv4Addr::new(20, 10, 0, 0),
                dst_port,
                observed,
            });
        }

        fn push(&mut self, dst_port: u16, raw: Raw) {
            self.push_from(Ipv4Addr::new(100, 0, 0, 1), Asn(4134), dst_port, raw);
        }

        fn build(self) -> Dataset {
            let deployment = Deployment::standard();
            Dataset::from_captures(&[&self.cap], &deployment)
        }
    }

    #[test]
    fn classification_is_applied() {
        let mut b = Builder::new();
        b.push(22, Raw::Creds(LoginService::Ssh, "root", "123456"));
        b.push(80, Raw::Payload(cw_scanners::exploits::log4shell("x")));
        b.push(80, Raw::Payload(cw_scanners::exploits::benign_get("zgrab")));
        b.push(443, Raw::Handshake);
        let ds = b.build();
        let verdicts: Vec<Verdict> = ds.events().map(|e| e.verdict).collect();
        assert_eq!(
            verdicts,
            vec![
                Verdict::Attacker,
                Verdict::Attacker,
                Verdict::Scanner,
                Verdict::Scanner
            ]
        );
    }

    #[test]
    fn memoized_build_matches_reference_classification() {
        let mut b = Builder::new();
        // Duplicate payloads on the same and different ports exercise the
        // memo's (id, port) key.
        for _ in 0..3 {
            b.push(80, Raw::Payload(cw_scanners::exploits::log4shell("x")));
            b.push(80, Raw::Payload(cw_scanners::exploits::benign_get("zgrab")));
            b.push(8080, Raw::Payload(cw_scanners::exploits::benign_get("zgrab")));
            b.push(22, Raw::Creds(LoginService::Ssh, "root", "root"));
            b.push(443, Raw::Syn);
        }
        let ds = b.build();
        let rules = RuleSet::builtin_cached();
        for ce in ds.events() {
            let (v, fp) = classify_event(&ce.event, ds.interner(), rules);
            assert_eq!((v, fp), (ce.verdict, ce.fingerprint));
        }
    }

    #[test]
    fn slices_select_correctly() {
        let mut b = Builder::new();
        b.push(22, Raw::Handshake);
        b.push(23, Raw::Handshake);
        b.push(8080, Raw::Payload(cw_scanners::exploits::benign_get("x")));
        b.push(
            8080,
            Raw::Payload(cw_protocols::tls::build_client_hello(1, None)),
        );
        let ds = b.build();
        let ip = Ipv4Addr::new(20, 10, 0, 0);
        assert_eq!(ds.events_at_in(ip, TrafficSlice::SshPort22).len(), 1);
        assert_eq!(ds.events_at_in(ip, TrafficSlice::TelnetPort23).len(), 1);
        assert_eq!(ds.events_at_in(ip, TrafficSlice::HttpPort80).len(), 0);
        // HTTP/All catches the HTTP payload on 8080 but not the TLS one.
        assert_eq!(ds.events_at_in(ip, TrafficSlice::HttpAllPorts).len(), 1);
        assert_eq!(ds.events_at_in(ip, TrafficSlice::AnyAll).len(), 4);
    }

    #[test]
    fn source_sets_and_unique_counts() {
        let mut b = Builder::new();
        b.push_from(Ipv4Addr::new(100, 0, 0, 1), Asn(4134), 22, Raw::Handshake);
        b.push_from(
            Ipv4Addr::new(100, 0, 0, 2),
            Asn(174),
            22,
            Raw::Creds(LoginService::Ssh, "root", "root"),
        );
        let ds = b.build();
        let ip = Ipv4Addr::new(20, 10, 0, 0);
        assert_eq!(ds.sources_on_port(&[ip], 22).len(), 2);
        assert_eq!(ds.malicious_sources_on_port(&[ip], 22).len(), 1);
        assert_eq!(ds.unique_sources(&[ip]), (2, 2));
    }

    #[test]
    fn csv_and_jsonl_export() {
        let mut b = Builder::new();
        b.push(23, Raw::Creds(LoginService::Telnet, "ad,min", "p\"w"));
        b.push(80, Raw::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec()));
        let ds = b.build();
        let mut csv = Vec::new();
        ds.write_csv(&mut csv).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        assert!(csv.starts_with("time,src"));
        assert!(csv.contains("\"ad,min\""));
        assert!(csv.contains("\"p\"\"w\""));

        let mut jsonl = Vec::new();
        ds.write_jsonl(&mut jsonl).unwrap();
        let jsonl = String::from_utf8(jsonl).unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\\\""));
        assert!(jsonl.contains("\"fingerprint\":\"HTTP\""));
    }

    #[test]
    fn pcap_export_is_wellformed() {
        let mut b = Builder::new();
        b.push(22, Raw::Syn);
        b.push(80, Raw::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec()));
        b.push(23, Raw::Creds(LoginService::Telnet, "root", "root"));
        let ds = b.build();
        let mut buf = Vec::new();
        ds.write_pcap(&mut buf, 1_625_097_600).unwrap();
        // Global header + 3 records.
        assert_eq!(&buf[0..4], &0xA1B2_C3D4u32.to_le_bytes());
        let mut offset = 24;
        let mut records = 0;
        while offset + 16 <= buf.len() {
            let incl = u32::from_le_bytes(buf[offset + 8..offset + 12].try_into().unwrap());
            offset += 16 + incl as usize;
            records += 1;
        }
        assert_eq!(offset, buf.len());
        assert_eq!(records, 3);
    }

    #[test]
    fn absorb_remaps_ids_across_interner_spaces() {
        let deployment = Deployment::standard();
        // Two captures with *private* interners recording the same payload:
        // locally it gets different surroundings, so ids must be remapped.
        let mut ca = Capture::new("a");
        let pa = ca.intern_payload(b"AAAA");
        let shared = ca.intern_payload(b"GET / HTTP/1.1\r\n\r\n");
        let mk = |port: u16, observed: Observed| ScanEvent {
            time: SimTime(1),
            src: Ipv4Addr::new(100, 0, 0, 9),
            src_asn: Asn(1),
            dst: Ipv4Addr::new(20, 10, 0, 0),
            dst_port: port,
            observed,
        };
        ca.record(mk(80, Observed::Payload(pa)));
        ca.record(mk(80, Observed::Payload(shared)));
        let mut cb = Capture::new("b");
        let pb = cb.intern_payload(b"GET / HTTP/1.1\r\n\r\n"); // id 0 locally
        cb.record(mk(8080, Observed::Payload(pb)));
        let mut da = Dataset::from_captures(&[&ca], &deployment);
        let db = Dataset::from_captures(&[&cb], &deployment);
        da.absorb(db);
        assert_eq!(da.len(), 3);
        // Events 1 and 2 carry the same bytes — after remapping they must
        // share one id even though their local ids differed (1 vs 0).
        assert_eq!(da.event(1).payload_bytes(), da.event(2).payload_bytes());
        assert_eq!(
            da.event(1).event.observed.payload(),
            da.event(2).event.observed.payload()
        );
        assert_eq!(da.event(0).payload_bytes(), Some(b"AAAA".as_slice()));
    }

    #[test]
    fn snapshot_round_trip_preserves_classification_and_indexes() {
        let mut b = Builder::new();
        b.push(22, Raw::Creds(LoginService::Ssh, "root", "123456"));
        b.push(80, Raw::Payload(cw_scanners::exploits::log4shell("x")));
        b.push(80, Raw::Payload(cw_scanners::exploits::benign_get("zgrab")));
        b.push(443, Raw::Handshake);
        let ds = b.build();
        let mut w = cw_netsim::snap::SnapWriter::new();
        ds.snap_write(&mut w);
        let bytes = w.into_bytes();
        let deployment = Deployment::standard();
        let mut r = cw_netsim::snap::SnapReader::new(&bytes);
        let back = Dataset::snap_read(&mut r, &deployment).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.events().zip(back.events()) {
            assert_eq!(a.event, b.event);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.payload_bytes(), b.payload_bytes());
            assert_eq!(a.username(), b.username());
        }
        // Derived indexes are rebuilt, not deserialized.
        let ip = Ipv4Addr::new(20, 10, 0, 0);
        assert_eq!(back.events_at(ip).len(), ds.events_at(ip).len());
        assert!(back.vantage(ip).is_some());
    }

    #[test]
    fn snapshot_rejects_out_of_range_interned_ids() {
        // An empty interner followed by a table referencing payload id 3:
        // logically inconsistent even though each part decodes cleanly.
        let mut w = cw_netsim::snap::SnapWriter::new();
        Interner::new().snap_write(&mut w);
        let mut table = EventTable::new();
        table.push(ScanEvent {
            time: SimTime(1),
            src: Ipv4Addr::new(100, 0, 0, 1),
            src_asn: Asn(1),
            dst: Ipv4Addr::new(20, 10, 0, 0),
            dst_port: 80,
            observed: Observed::Payload(PayloadId(3)),
        });
        table.snap_write(&mut w);
        w.put_u64(1);
        w.put_u8(1);
        w.put_u64(1);
        w.put_u8(0xFF);
        let bytes = w.into_bytes();
        let deployment = Deployment::standard();
        let err = Dataset::snap_read(&mut cw_netsim::snap::SnapReader::new(&bytes), &deployment);
        assert!(matches!(err, Err(SnapError::Malformed(_))));
    }

    #[test]
    fn vantage_lookup() {
        let ds = Builder::new().build();
        let v = ds.vantage(Ipv4Addr::new(20, 10, 0, 0)).unwrap();
        assert!(v.id.starts_with("greynoise/aws/"));
        assert!(ds.vantage(Ipv4Addr::new(9, 9, 9, 9)).is_none());
    }
}
