//! The queryable event store behind every analysis.
//!
//! A [`Dataset`] flattens all honeypot captures, attaches vantage metadata,
//! pre-classifies every event with the vetted ruleset (§3.2), and exposes
//! the §3.3 traffic slices. It also writes the released dataset as
//! CSV/JSONL.

use cw_detection::{classify_intent, RuleSet, Verdict};
use cw_honeypot::capture::{Capture, Observed, ScanEvent};
use cw_honeypot::deployment::{Deployment, VantagePoint};
use cw_netsim::flow::{ConnectionIntent, LoginService};
use cw_protocols::ProtocolId;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::Ipv4Addr;

/// The §3.3 traffic slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficSlice {
    /// Traffic to port 22.
    SshPort22,
    /// Traffic to port 23.
    TelnetPort23,
    /// Traffic to port 80.
    HttpPort80,
    /// HTTP-fingerprinted payloads on any port ("HTTP/All Ports").
    HttpAllPorts,
    /// Everything ("Any/All").
    AnyAll,
}

impl TrafficSlice {
    /// The slices of Table 2/4/5/7.
    pub const PAPER: [TrafficSlice; 4] = [
        TrafficSlice::SshPort22,
        TrafficSlice::TelnetPort23,
        TrafficSlice::HttpPort80,
        TrafficSlice::HttpAllPorts,
    ];

    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficSlice::SshPort22 => "SSH/22",
            TrafficSlice::TelnetPort23 => "Telnet/23",
            TrafficSlice::HttpPort80 => "HTTP/80",
            TrafficSlice::HttpAllPorts => "HTTP/All",
            TrafficSlice::AnyAll => "Any/All",
        }
    }
}

/// A classified event: the capture record plus analysis metadata.
#[derive(Debug, Clone)]
pub struct ClassifiedEvent {
    /// The raw observation.
    pub event: ScanEvent,
    /// §3.2 verdict.
    pub verdict: Verdict,
    /// LZR fingerprint of the payload, if one was observed.
    pub fingerprint: Option<ProtocolId>,
}

impl ClassifiedEvent {
    /// Does the event fall into a traffic slice?
    pub fn in_slice(&self, slice: TrafficSlice) -> bool {
        match slice {
            TrafficSlice::SshPort22 => self.event.dst_port == 22,
            TrafficSlice::TelnetPort23 => self.event.dst_port == 23,
            TrafficSlice::HttpPort80 => self.event.dst_port == 80,
            TrafficSlice::HttpAllPorts => self.fingerprint == Some(ProtocolId::Http),
            TrafficSlice::AnyAll => true,
        }
    }
}

/// The flattened, classified event store.
pub struct Dataset {
    events: Vec<ClassifiedEvent>,
    vantage_by_ip: BTreeMap<Ipv4Addr, VantagePoint>,
    by_dst: BTreeMap<Ipv4Addr, Vec<usize>>,
}

impl Dataset {
    /// Build from captures and the deployment's vantage metadata.
    pub fn from_captures(captures: &[&Capture], deployment: &Deployment) -> Self {
        let rules = RuleSet::builtin();
        let vantage_by_ip: BTreeMap<Ipv4Addr, VantagePoint> = deployment
            .vantages
            .iter()
            .map(|v| (v.ip, v.clone()))
            .collect();
        let mut events = Vec::new();
        let mut by_dst: BTreeMap<Ipv4Addr, Vec<usize>> = BTreeMap::new();
        for cap in captures {
            for e in &cap.events {
                let (verdict, fingerprint) = classify_event(e, &rules);
                by_dst.entry(e.dst).or_default().push(events.len());
                events.push(ClassifiedEvent {
                    event: e.clone(),
                    verdict,
                    fingerprint,
                });
            }
        }
        Dataset {
            events,
            vantage_by_ip,
            by_dst,
        }
    }

    /// An empty dataset — the identity element for [`Dataset::absorb`].
    pub fn empty() -> Self {
        Dataset {
            events: Vec::new(),
            vantage_by_ip: BTreeMap::new(),
            by_dst: BTreeMap::new(),
        }
    }

    /// Fold another dataset into this one — the fleet merge step.
    ///
    /// `other`'s events are appended after `self`'s (its per-destination
    /// indices are rebased), so folding per-run datasets in stream-id order
    /// yields the same merged dataset for any worker-thread count. Vantage
    /// metadata is unioned; identical IPs must describe identical vantages
    /// (always true for runs built from [`Deployment::standard`]).
    pub fn absorb(&mut self, other: Dataset) {
        let base = self.events.len();
        for (dst, idxs) in other.by_dst {
            self.by_dst
                .entry(dst)
                .or_default()
                .extend(idxs.into_iter().map(|i| i + base));
        }
        self.events.extend(other.events);
        self.vantage_by_ip.extend(other.vantage_by_ip);
    }

    /// All classified events.
    pub fn events(&self) -> &[ClassifiedEvent] {
        &self.events
    }

    /// Events destined to one vantage IP.
    pub fn events_at(&self, ip: Ipv4Addr) -> Vec<&ClassifiedEvent> {
        self.by_dst
            .get(&ip)
            .map(|idxs| idxs.iter().map(|&i| &self.events[i]).collect())
            .unwrap_or_default()
    }

    /// Events at one vantage IP within a slice.
    pub fn events_at_in(&self, ip: Ipv4Addr, slice: TrafficSlice) -> Vec<&ClassifiedEvent> {
        self.events_at(ip)
            .into_iter()
            .filter(|e| e.in_slice(slice))
            .collect()
    }

    /// Events pooled across a set of vantage IPs within a slice.
    pub fn events_at_group(
        &self,
        ips: &[Ipv4Addr],
        slice: TrafficSlice,
    ) -> Vec<&ClassifiedEvent> {
        let mut out = Vec::new();
        for &ip in ips {
            out.extend(self.events_at_in(ip, slice));
        }
        out
    }

    /// Vantage metadata for an observed IP.
    pub fn vantage(&self, ip: Ipv4Addr) -> Option<&VantagePoint> {
        self.vantage_by_ip.get(&ip)
    }

    /// Distinct source IPs seen on one port across a set of vantages.
    pub fn sources_on_port(&self, ips: &[Ipv4Addr], port: u16) -> std::collections::BTreeSet<Ipv4Addr> {
        let mut out = std::collections::BTreeSet::new();
        for &ip in ips {
            for e in self.events_at(ip) {
                if e.event.dst_port == port {
                    out.insert(e.event.src);
                }
            }
        }
        out
    }

    /// Distinct *attacker* source IPs (≥1 malicious event) on one port.
    pub fn malicious_sources_on_port(
        &self,
        ips: &[Ipv4Addr],
        port: u16,
    ) -> std::collections::BTreeSet<Ipv4Addr> {
        let mut out = std::collections::BTreeSet::new();
        for &ip in ips {
            for e in self.events_at(ip) {
                if e.event.dst_port == port && e.verdict == Verdict::Attacker {
                    out.insert(e.event.src);
                }
            }
        }
        out
    }

    /// Distinct (source IP, source AS) pairs across a set of vantages —
    /// Table 1's unique-scanner columns.
    pub fn unique_sources(&self, ips: &[Ipv4Addr]) -> (usize, usize) {
        let mut srcs = std::collections::BTreeSet::new();
        let mut asns = std::collections::BTreeSet::new();
        for &ip in ips {
            for e in self.events_at(ip) {
                srcs.insert(e.event.src);
                asns.insert(e.event.src_asn.0);
            }
        }
        (srcs.len(), asns.len())
    }

    /// Write the dataset as CSV (one row per event; payloads hex-encoded).
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "time,src,src_asn,dst,dst_port,kind,verdict,fingerprint,username,password,payload_hex"
        )?;
        for ce in &self.events {
            let e = &ce.event;
            let (kind, user, pass, payload) = match &e.observed {
                Observed::Syn => ("syn", "", "", String::new()),
                Observed::Handshake => ("handshake", "", "", String::new()),
                Observed::Payload(p) => ("payload", "", "", hex(p)),
                Observed::Credentials {
                    username, password, ..
                } => ("credentials", username.as_str(), password.as_str(), String::new()),
            };
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{},{},{}",
                e.time.secs(),
                e.src,
                e.src_asn.0,
                e.dst,
                e.dst_port,
                kind,
                match ce.verdict {
                    Verdict::Attacker => "attacker",
                    Verdict::Scanner => "scanner",
                },
                ce.fingerprint.map(|p| p.label()).unwrap_or(""),
                csv_escape(user),
                csv_escape(pass),
                payload,
            )?;
        }
        Ok(())
    }

    /// Write the dataset as a libpcap capture (synthesized Ethernet/IPv4/TCP
    /// frames; opens in Wireshark/tcpdump). `epoch` is the UNIX timestamp of
    /// simulated time zero — e.g. 1625097600 for 2021-07-01T00:00:00Z.
    ///
    /// Credential observations are rendered as the client's first protocol
    /// bytes (SSH banner / Telnet negotiation) since a pcap carries wire
    /// data, not harvested application state.
    pub fn write_pcap<W: Write>(&self, w: W, epoch: u32) -> std::io::Result<()> {
        use cw_netsim::pcap::PcapWriter;
        let mut pcap = PcapWriter::new(w, epoch)?;
        for ce in &self.events {
            let e = &ce.event;
            // Deterministic ephemeral source port derived from the flow.
            let src_port = 32_768 + (cw_netsim::rng::fnv1a(&e.src.octets()) % 28_000) as u16;
            let (payload, syn_only): (Vec<u8>, bool) = match &e.observed {
                Observed::Syn => (Vec::new(), true),
                Observed::Handshake => (Vec::new(), false),
                Observed::Payload(p) => (p.clone(), false),
                Observed::Credentials { service, .. } => match service {
                    LoginService::Ssh => (b"SSH-2.0-Go\r\n".to_vec(), false),
                    LoginService::Telnet => (vec![0xFF, 0xFD, 0x01, 0xFF, 0xFD, 0x03], false),
                },
            };
            pcap.write_tcp(e.time, e.src, src_port, e.dst, e.dst_port, &payload, syn_only)?;
        }
        pcap.finish()?;
        Ok(())
    }

    /// Write the dataset as JSON Lines.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for ce in &self.events {
            let e = &ce.event;
            let mut obj = format!(
                "{{\"time\":{},\"src\":\"{}\",\"src_asn\":{},\"dst\":\"{}\",\"dst_port\":{},\"verdict\":\"{}\"",
                e.time.secs(),
                e.src,
                e.src_asn.0,
                e.dst,
                e.dst_port,
                match ce.verdict {
                    Verdict::Attacker => "attacker",
                    Verdict::Scanner => "scanner",
                }
            );
            match &e.observed {
                Observed::Syn => obj.push_str(",\"kind\":\"syn\""),
                Observed::Handshake => obj.push_str(",\"kind\":\"handshake\""),
                Observed::Payload(p) => {
                    obj.push_str(&format!(",\"kind\":\"payload\",\"payload_hex\":\"{}\"", hex(p)));
                }
                Observed::Credentials {
                    username, password, ..
                } => {
                    obj.push_str(&format!(
                        ",\"kind\":\"credentials\",\"username\":{},\"password\":{}",
                        json_string(username),
                        json_string(password)
                    ));
                }
            }
            if let Some(fp) = ce.fingerprint {
                obj.push_str(&format!(",\"fingerprint\":\"{}\"", fp.label()));
            }
            obj.push('}');
            writeln!(w, "{obj}")?;
        }
        Ok(())
    }
}

/// Classify one capture event per §3.2.
pub fn classify_event(e: &ScanEvent, rules: &RuleSet) -> (Verdict, Option<ProtocolId>) {
    match &e.observed {
        Observed::Syn | Observed::Handshake => (Verdict::Scanner, None),
        Observed::Payload(p) => {
            let intent = ConnectionIntent::Payload(p.clone());
            (
                classify_intent(&intent, e.dst_port, rules),
                cw_protocols::fingerprint(p),
            )
        }
        Observed::Credentials { service, .. } => {
            let fp = match service {
                LoginService::Ssh => Some(ProtocolId::Ssh),
                LoginService::Telnet => Some(ProtocolId::Telnet),
            };
            (Verdict::Attacker, fp)
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0x0F) as usize] as char);
    }
    s
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_netsim::asn::Asn;
    use cw_netsim::time::SimTime;

    fn mk_event(dst_port: u16, observed: Observed) -> ScanEvent {
        ScanEvent {
            time: SimTime(60),
            src: Ipv4Addr::new(100, 0, 0, 1),
            src_asn: Asn(4134),
            dst: Ipv4Addr::new(20, 10, 0, 0),
            dst_port,
            observed,
        }
    }

    fn mk_dataset(events: Vec<ScanEvent>) -> Dataset {
        let mut cap = Capture::new("test");
        for e in events {
            cap.record(e);
        }
        let deployment = Deployment::standard();
        Dataset::from_captures(&[&cap], &deployment)
    }

    #[test]
    fn classification_is_applied() {
        let ds = mk_dataset(vec![
            mk_event(
                22,
                Observed::Credentials {
                    service: LoginService::Ssh,
                    username: "root".into(),
                    password: "123456".into(),
                },
            ),
            mk_event(80, Observed::Payload(cw_scanners::exploits::log4shell("x"))),
            mk_event(
                80,
                Observed::Payload(cw_scanners::exploits::benign_get("zgrab")),
            ),
            mk_event(443, Observed::Handshake),
        ]);
        let verdicts: Vec<Verdict> = ds.events().iter().map(|e| e.verdict).collect();
        assert_eq!(
            verdicts,
            vec![
                Verdict::Attacker,
                Verdict::Attacker,
                Verdict::Scanner,
                Verdict::Scanner
            ]
        );
    }

    #[test]
    fn slices_select_correctly() {
        let ds = mk_dataset(vec![
            mk_event(22, Observed::Handshake),
            mk_event(23, Observed::Handshake),
            mk_event(
                8080,
                Observed::Payload(cw_scanners::exploits::benign_get("x")),
            ),
            mk_event(
                8080,
                Observed::Payload(cw_protocols::tls::build_client_hello(1, None)),
            ),
        ]);
        let ip = Ipv4Addr::new(20, 10, 0, 0);
        assert_eq!(ds.events_at_in(ip, TrafficSlice::SshPort22).len(), 1);
        assert_eq!(ds.events_at_in(ip, TrafficSlice::TelnetPort23).len(), 1);
        assert_eq!(ds.events_at_in(ip, TrafficSlice::HttpPort80).len(), 0);
        // HTTP/All catches the HTTP payload on 8080 but not the TLS one.
        assert_eq!(ds.events_at_in(ip, TrafficSlice::HttpAllPorts).len(), 1);
        assert_eq!(ds.events_at_in(ip, TrafficSlice::AnyAll).len(), 4);
    }

    #[test]
    fn source_sets_and_unique_counts() {
        let mut e1 = mk_event(22, Observed::Handshake);
        e1.src = Ipv4Addr::new(100, 0, 0, 1);
        let mut e2 = mk_event(
            22,
            Observed::Credentials {
                service: LoginService::Ssh,
                username: "root".into(),
                password: "root".into(),
            },
        );
        e2.src = Ipv4Addr::new(100, 0, 0, 2);
        e2.src_asn = Asn(174);
        let ds = mk_dataset(vec![e1, e2]);
        let ip = Ipv4Addr::new(20, 10, 0, 0);
        assert_eq!(ds.sources_on_port(&[ip], 22).len(), 2);
        assert_eq!(ds.malicious_sources_on_port(&[ip], 22).len(), 1);
        assert_eq!(ds.unique_sources(&[ip]), (2, 2));
    }

    #[test]
    fn csv_and_jsonl_export() {
        let ds = mk_dataset(vec![
            mk_event(
                23,
                Observed::Credentials {
                    service: LoginService::Telnet,
                    username: "ad,min".into(),
                    password: "p\"w".into(),
                },
            ),
            mk_event(80, Observed::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec())),
        ]);
        let mut csv = Vec::new();
        ds.write_csv(&mut csv).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        assert!(csv.starts_with("time,src"));
        assert!(csv.contains("\"ad,min\""));
        assert!(csv.contains("\"p\"\"w\""));

        let mut jsonl = Vec::new();
        ds.write_jsonl(&mut jsonl).unwrap();
        let jsonl = String::from_utf8(jsonl).unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\\\""));
        assert!(jsonl.contains("\"fingerprint\":\"HTTP\""));
    }

    #[test]
    fn pcap_export_is_wellformed() {
        let ds = mk_dataset(vec![
            mk_event(22, Observed::Syn),
            mk_event(80, Observed::Payload(b"GET / HTTP/1.1\r\n\r\n".to_vec())),
            mk_event(
                23,
                Observed::Credentials {
                    service: LoginService::Telnet,
                    username: "root".into(),
                    password: "root".into(),
                },
            ),
        ]);
        let mut buf = Vec::new();
        ds.write_pcap(&mut buf, 1_625_097_600).unwrap();
        // Global header + 3 records.
        assert_eq!(&buf[0..4], &0xA1B2_C3D4u32.to_le_bytes());
        let mut offset = 24;
        let mut records = 0;
        while offset + 16 <= buf.len() {
            let incl = u32::from_le_bytes(buf[offset + 8..offset + 12].try_into().unwrap());
            offset += 16 + incl as usize;
            records += 1;
        }
        assert_eq!(offset, buf.len());
        assert_eq!(records, 3);
    }

    #[test]
    fn vantage_lookup() {
        let ds = mk_dataset(vec![]);
        let v = ds.vantage(Ipv4Addr::new(20, 10, 0, 0)).unwrap();
        assert!(v.id.starts_with("greynoise/aws/"));
        assert!(ds.vantage(Ipv4Addr::new(9, 9, 9, 9)).is_none());
    }
}
