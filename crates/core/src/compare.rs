//! The §3.3 group-comparison procedure, plus the §4.4 median filter.
//!
//! A comparison takes k groups of events (honeypots, regions, or networks),
//! extracts one characteristic's frequency map per group, builds the top-3
//! union contingency table, runs chi-squared, applies Bonferroni correction
//! for the whole comparison family, and reports Cramér's V with its
//! df-aware magnitude.

use crate::axes;
use crate::dataset::ClassifiedEvent;
use cw_stats::{
    bonferroni_alpha, chi_squared_from_table, cramers_v, top_k_union_table, Chi2Result,
    ContingencyTable, EffectSize, TopKSpec,
};
use std::collections::BTreeMap;

/// The comparable traffic characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CharKind {
    /// Top scanning ASes ("who").
    TopAs,
    /// Fraction of malicious traffic ("why").
    FracMalicious,
    /// Top attempted usernames ("what", login protocols).
    TopUsername,
    /// Top attempted passwords ("what", login protocols).
    TopPassword,
    /// Top normalized payloads ("what", payload protocols).
    TopPayload,
}

impl CharKind {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            CharKind::TopAs => "Top 3 AS",
            CharKind::FracMalicious => "Fraction Malicious",
            CharKind::TopUsername => "Top 3 Username",
            CharKind::TopPassword => "Top 3 Password",
            CharKind::TopPayload => "Top 3 Payloads",
        }
    }

    /// Extract this characteristic's frequency map from one group.
    ///
    /// When the group is definable as a query, prefer
    /// [`crate::query::Query::char_freqs`], which folds over the interned
    /// ID columns without materializing `ClassifiedEvent`s and resolves
    /// each distinct ID to its string exactly once.
    pub fn freqs(&self, events: &[ClassifiedEvent<'_>]) -> BTreeMap<String, u64> {
        match self {
            CharKind::TopAs => axes::as_freqs(events),
            CharKind::FracMalicious => axes::maliciousness_freqs(events),
            CharKind::TopUsername => axes::username_freqs(events),
            CharKind::TopPassword => axes::password_freqs(events),
            CharKind::TopPayload => axes::payload_freqs(events),
        }
    }

    /// Is this a top-3 characteristic (vs the 2-category maliciousness)?
    pub fn uses_top_k(&self) -> bool {
        !matches!(self, CharKind::FracMalicious)
    }
}

/// Outcome of one k-group comparison.
#[derive(Debug, Clone, Copy)]
pub struct GroupComparison {
    /// The chi-squared result.
    pub chi2: Chi2Result,
    /// Cramér's V with magnitude.
    pub effect: EffectSize,
    /// Significant at the Bonferroni-corrected level?
    pub significant: bool,
}

/// Build the contingency table for a characteristic across groups.
pub fn characteristic_table(
    kind: CharKind,
    group_freqs: &[BTreeMap<String, u64>],
) -> ContingencyTable {
    if kind.uses_top_k() {
        top_k_union_table(group_freqs, TopKSpec::paper())
    } else {
        // Maliciousness: use both categories directly.
        let categories = vec!["malicious".to_string(), "not-malicious".to_string()];
        let counts = group_freqs
            .iter()
            .map(|g| {
                categories
                    .iter()
                    .map(|c| *g.get(c).unwrap_or(&0))
                    .collect()
            })
            .collect();
        ContingencyTable::new(categories, counts)
    }
}

/// Run one comparison: `family_size` is the number of simultaneous tests in
/// this analysis (Bonferroni `m`); `alpha` is the uncorrected level (0.05 in
/// the paper). Returns `None` when the table is degenerate (the paper's
/// "cannot be calculated" ×).
pub fn compare_freqs(
    kind: CharKind,
    group_freqs: &[BTreeMap<String, u64>],
    alpha: f64,
    family_size: usize,
) -> Option<GroupComparison> {
    let table = characteristic_table(kind, group_freqs);
    let chi2 = chi_squared_from_table(&table)?;
    let effect = cramers_v(&chi2);
    let corrected = bonferroni_alpha(alpha, family_size.max(1));
    Some(GroupComparison {
        chi2,
        effect,
        significant: chi2.p_value < corrected,
    })
}

/// Convenience: extract each group's frequencies and compare.
pub fn compare_groups(
    kind: CharKind,
    groups: &[Vec<ClassifiedEvent<'_>>],
    alpha: f64,
    family_size: usize,
) -> Option<GroupComparison> {
    let freqs: Vec<BTreeMap<String, u64>> =
        groups.iter().map(|g| kind.freqs(g)).collect();
    compare_freqs(kind, &freqs, alpha, family_size)
}

/// Null-model hook: split events into `k` equal-size groups by a random
/// label permutation and extract each group's frequencies for `kind`.
///
/// Under this relabeling the groups are exchangeable by construction — any
/// vantage signal is destroyed, only sampling noise remains — so a
/// comparison run on the result is a draw from the pipeline's *null*
/// distribution. The calibration harness (`cw-verify`) repeats this with
/// fresh permutations and checks the resulting p-values are approximately
/// uniform: the machinery must not manufacture significance from
/// exchangeable inputs.
///
/// Group sizes differ by at most one (event `i` of the shuffled order goes
/// to group `i % k`). The permutation is drawn from `rng`, so the caller
/// controls reproducibility.
pub fn permuted_label_freqs(
    kind: CharKind,
    events: &[ClassifiedEvent<'_>],
    k: usize,
    rng: &mut cw_netsim::rng::SimRng,
) -> Vec<BTreeMap<String, u64>> {
    assert!(k >= 2, "a comparison needs at least two groups");
    let mut order: Vec<usize> = (0..events.len()).collect();
    rng.shuffle(&mut order);
    let mut groups: Vec<Vec<ClassifiedEvent<'_>>> = vec![Vec::new(); k];
    for (pos, &idx) in order.iter().enumerate() {
        groups[pos % k].push(events[idx]);
    }
    groups.iter().map(|g| kind.freqs(g)).collect()
}

/// §4.4 median filtering: combine per-honeypot frequency maps into one
/// region-representative map by taking, per category, the median count
/// across the region's honeypots. This damps single-honeypot anomalies
/// (botnet latches, single-IP floods) when comparing *regions*.
pub fn median_freqs(per_honeypot: &[BTreeMap<String, u64>]) -> BTreeMap<String, u64> {
    let mut categories: Vec<&String> = per_honeypot.iter().flat_map(|m| m.keys()).collect();
    categories.sort();
    categories.dedup();
    let mut out = BTreeMap::new();
    for cat in categories {
        let counts: Vec<f64> = per_honeypot
            .iter()
            .map(|m| *m.get(cat).unwrap_or(&0) as f64)
            .collect();
        let med = cw_stats::descriptive::median(&counts).unwrap_or(0.0);
        let med = med.round() as u64;
        if med > 0 {
            out.insert(cat.clone(), med);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freqs(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(s, c)| (s.to_string(), *c)).collect()
    }

    #[test]
    fn identical_groups_not_significant() {
        let g = freqs(&[("AS1", 100), ("AS2", 50), ("AS3", 25)]);
        let r = compare_freqs(CharKind::TopAs, &[g.clone(), g], 0.05, 1).unwrap();
        assert!(!r.significant);
        assert!(r.effect.phi < 0.01);
    }

    #[test]
    fn disjoint_groups_significant_with_large_effect() {
        let g1 = freqs(&[("AS1", 200), ("AS2", 100), ("AS3", 50)]);
        let g2 = freqs(&[("AS7", 200), ("AS8", 100), ("AS9", 50)]);
        let r = compare_freqs(CharKind::TopAs, &[g1, g2], 0.05, 10).unwrap();
        assert!(r.significant);
        assert_eq!(r.effect.magnitude, cw_stats::EffectMagnitude::Large);
    }

    #[test]
    fn bonferroni_family_size_matters() {
        // A borderline difference: significant alone, not after correcting
        // for a large family.
        let g1 = freqs(&[("AS1", 60), ("AS2", 40), ("AS3", 20)]);
        let g2 = freqs(&[("AS1", 40), ("AS2", 60), ("AS3", 20)]);
        let alone = compare_freqs(CharKind::TopAs, &[g1.clone(), g2.clone()], 0.05, 1).unwrap();
        let family = compare_freqs(CharKind::TopAs, &[g1, g2], 0.05, 100_000).unwrap();
        assert!(alone.significant);
        assert!(!family.significant);
    }

    #[test]
    fn frac_malicious_uses_two_categories() {
        let g1 = freqs(&[("malicious", 90), ("not-malicious", 10)]);
        let g2 = freqs(&[("malicious", 10), ("not-malicious", 90)]);
        let r = compare_freqs(CharKind::FracMalicious, &[g1, g2], 0.05, 1).unwrap();
        assert!(r.significant);
        assert_eq!(r.chi2.cols, 2);
    }

    #[test]
    fn empty_characteristic_cannot_be_calculated() {
        // Honeytrap vantages never observe credentials: × in the tables.
        let empty = BTreeMap::new();
        assert!(compare_freqs(CharKind::TopUsername, &[empty.clone(), empty], 0.05, 1).is_none());
    }

    #[test]
    fn median_filter_damps_single_honeypot_anomaly() {
        // Four honeypots; one is flooded by AS666 (the Axtel shape).
        let normal = freqs(&[("AS1", 50), ("AS2", 30)]);
        let flooded = freqs(&[("AS1", 50), ("AS2", 30), ("AS666", 5_000)]);
        let med = median_freqs(&[normal.clone(), normal.clone(), normal, flooded]);
        assert_eq!(med.get("AS1"), Some(&50));
        assert!(!med.contains_key("AS666"), "median must drop the flood");
    }

    #[test]
    fn median_filter_keeps_majority_signals() {
        let a = freqs(&[("AS1", 10)]);
        let b = freqs(&[("AS1", 20)]);
        let c = freqs(&[("AS1", 30)]);
        let med = median_freqs(&[a, b, c]);
        assert_eq!(med.get("AS1"), Some(&20));
    }

    #[test]
    fn char_labels() {
        assert_eq!(CharKind::TopAs.label(), "Top 3 AS");
        assert!(CharKind::TopAs.uses_top_k());
        assert!(!CharKind::FracMalicious.uses_top_k());
    }
}
