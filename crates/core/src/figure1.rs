//! Figure 1: address-structure preferences inside the telescope.
//!
//! "To suppress inconsistent outliers, we compute a rolling average of the
//! # of scanning IPs across every consecutive 512 IPs." The four panels:
//! (a) port 22 — spikes at /16 first addresses; (b) port 445 and (c) port
//! 80 — dips at addresses with a 255 octet; (d) port 17128 — a four-address
//! latch.

use cw_honeypot::telescope::Telescope;
use cw_netsim::ip::IpExt;
use std::net::Ipv4Addr;

/// The paper's rolling window.
pub const WINDOW: usize = 512;

/// Rolling average over consecutive windows of `window` values (trailing;
/// the first `window-1` positions average the prefix).
pub fn rolling_average(counts: &[u32], window: usize) -> Vec<f64> {
    assert!(window > 0);
    let mut out = Vec::with_capacity(counts.len());
    let mut sum = 0u64;
    for i in 0..counts.len() {
        sum += counts[i] as u64;
        if i >= window {
            sum -= counts[i - window] as u64;
        }
        let n = (i + 1).min(window);
        out.push(sum as f64 / n as f64);
    }
    out
}

/// One Figure 1 panel.
#[derive(Debug, Clone)]
pub struct Figure1Series {
    /// The port.
    pub port: u16,
    /// Per-IP unique-scanner counts (block offset order).
    pub counts: Vec<u32>,
    /// Rolling-512 average.
    pub rolling: Vec<f64>,
}

/// Extract the series for a tracked port.
pub fn series(telescope: &Telescope, port: u16) -> Option<Figure1Series> {
    let counts = telescope.unique_scanners_per_ip(port)?.to_vec();
    let rolling = rolling_average(&counts, WINDOW);
    Some(Figure1Series {
        port,
        counts,
        rolling,
    })
}

/// Structure statistics quantifying the §4.2 claims.
#[derive(Debug, Clone, Copy)]
pub struct StructureStats {
    /// Mean unique scanners on addresses matching the predicate.
    pub mean_matching: f64,
    /// Mean on the rest.
    pub mean_rest: f64,
    /// `mean_rest / mean_matching` — the "N× less likely" factor.
    pub avoidance_factor: f64,
}

/// Compare per-IP means between addresses matching `pred` and the rest.
pub fn structure_stats<F: Fn(Ipv4Addr) -> bool>(
    telescope: &Telescope,
    port: u16,
    pred: F,
) -> Option<StructureStats> {
    let counts = telescope.unique_scanners_per_ip(port)?;
    let block = telescope.block();
    let mut m_sum = 0u64;
    let mut m_n = 0u64;
    let mut r_sum = 0u64;
    let mut r_n = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        let ip = block.nth(i as u64);
        if pred(ip) {
            m_sum += c as u64;
            m_n += 1;
        } else {
            r_sum += c as u64;
            r_n += 1;
        }
    }
    if m_n == 0 || r_n == 0 {
        return None;
    }
    let mean_matching = m_sum as f64 / m_n as f64;
    let mean_rest = r_sum as f64 / r_n as f64;
    Some(StructureStats {
        mean_matching,
        mean_rest,
        avoidance_factor: if mean_matching > 0.0 {
            mean_rest / mean_matching
        } else {
            f64::INFINITY
        },
    })
}

/// The §4.2 "first address of a /16" preference factor for a port:
/// mean(unique scanners at x.y.0.0) / mean(elsewhere).
pub fn slash16_first_preference(telescope: &Telescope, port: u16) -> Option<f64> {
    let s = structure_stats(telescope, port, |ip| ip.is_first_of_slash16())?;
    if s.mean_rest == 0.0 {
        return None;
    }
    Some(s.mean_matching / s.mean_rest)
}

/// Render a series as a fixed-width ASCII sparkline (for terminal output
/// and EXPERIMENTS.md). Downsamples by averaging into `width` buckets.
pub fn ascii_sparkline(series: &[f64], width: usize) -> String {
    if series.is_empty() || width == 0 {
        return String::new();
    }
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let bucket = (series.len() as f64 / width as f64).max(1.0);
    let mut values = Vec::with_capacity(width);
    for w in 0..width {
        let lo = (w as f64 * bucket) as usize;
        let hi = (((w + 1) as f64 * bucket) as usize).min(series.len());
        if lo >= hi {
            break;
        }
        let mean: f64 = series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        values.push(mean);
    }
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return "▁".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| LEVELS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}

/// Write a series as CSV (`offset,ip,count,rolling`).
pub fn write_csv<W: std::io::Write>(
    telescope: &Telescope,
    s: &Figure1Series,
    mut w: W,
) -> std::io::Result<()> {
    writeln!(w, "offset,ip,count,rolling")?;
    let block = telescope.block();
    for (i, (&c, &r)) in s.counts.iter().zip(&s.rolling).enumerate() {
        writeln!(w, "{},{},{},{:.4}", i, block.nth(i as u64), c, r)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use cw_scanners::population::ScenarioYear;

    #[test]
    fn rolling_average_basics() {
        let r = rolling_average(&[4, 0, 0, 0], 2);
        assert_eq!(r, vec![4.0, 2.0, 0.0, 0.0]);
        let r = rolling_average(&[1, 1, 1], 5);
        assert_eq!(r, vec![1.0, 1.0, 1.0]);
        assert!(rolling_average(&[], 3).is_empty());
    }

    #[test]
    fn sparkline_shapes() {
        let flat = ascii_sparkline(&[0.0; 100], 10);
        assert_eq!(flat, "▁".repeat(10));
        let spike = ascii_sparkline(&[0.0, 0.0, 10.0, 0.0], 4);
        assert!(spike.contains('█'));
    }

    #[test]
    fn figure1_shapes_on_fast_scenario() {
        let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(17));
        let tel = s.telescope.borrow();

        // (a) port 22: /16-first addresses strongly preferred.
        let pref = slash16_first_preference(&tel, 22).unwrap();
        assert!(pref > 3.0, "slash16-first preference only {pref:.1}x");

        // (b) port 445: 255-octet addresses avoided.
        let stats = structure_stats(&tel, 445, |ip| ip.has_255_octet()).unwrap();
        assert!(
            stats.avoidance_factor > 2.0,
            "445 avoidance only {:.2}x",
            stats.avoidance_factor
        );

        // (d) port 17128: four latched addresses dominate.
        let fig = series(&tel, 17_128).unwrap();
        let mut sorted = fig.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top4: u64 = sorted.iter().take(4).map(|&c| c as u64).sum();
        let total: u64 = fig.counts.iter().map(|&c| c as u64).sum();
        assert!(
            top4 as f64 > 0.9 * total as f64,
            "latch: top4 {top4} of {total}"
        );
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(17));
        let tel = s.telescope.borrow();
        let fig = series(&tel, 80).unwrap();
        let mut out = Vec::new();
        write_csv(&tel, &fig, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("offset,ip,count,rolling"));
        assert_eq!(text.lines().count(), 1 + fig.counts.len());
    }
}
