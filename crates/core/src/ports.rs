//! Tables 11 and 17, plus the §3.2 traffic-composition statistics.
//!
//! §6 methodology: take the three /26 Honeytrap fleets (Stanford, AWS-west,
//! Google-west), fingerprint every first payload on ports 80/8080 with the
//! LZR-style fingerprinter, and split scanners into HTTP-speaking vs
//! not-HTTP-speaking, then label each source with the GreyNoise-style
//! reputation oracle.

use crate::dataset::{Dataset, TrafficSlice};
use crate::network::honeytrap_fleet_ips;
use crate::query::{ObsKind, Plan, PlanStore, ScanExec};
use cw_detection::{ActorLabel, ReputationDb, Verdict};
use cw_honeypot::capture::Observed;
use cw_honeypot::deployment::Deployment;
use cw_protocols::ProtocolId;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One Table 11 row: the scanners on a port, split by spoken protocol.
#[derive(Debug, Clone)]
pub struct ProtocolBreakdownRow {
    /// Destination port.
    pub port: u16,
    /// True for the HTTP-speaking row, false for the ~HTTP row.
    pub is_http: bool,
    /// Share of fingerprinted scanners in this row (percent).
    pub pct_of_scanners: f64,
    /// Percent of this row's scanners labeled benign.
    pub pct_benign: f64,
    /// Percent labeled malicious.
    pub pct_malicious: f64,
    /// Distinct scanner IPs in the row.
    pub scanners: usize,
}

/// Per-protocol share of the non-HTTP scanners (the §6 "7% TLS, 0.5%
/// Telnet, …" breakdown).
#[derive(Debug, Clone)]
pub struct UnexpectedShare {
    /// The protocol spoken.
    pub protocol: ProtocolId,
    /// Percent of all fingerprinted scanners on the port.
    pub pct: f64,
}

/// The §6 fleets.
pub fn section6_fleets(deployment: &Deployment) -> Vec<Ipv4Addr> {
    let mut ips = Vec::new();
    for fleet in [
        "honeytrap/stanford",
        "honeytrap/aws-west",
        "honeytrap/google-west",
    ] {
        ips.extend(honeytrap_fleet_ips(deployment, fleet));
    }
    ips
}

/// The one declared plan behind [`protocol_breakdown`] for `port`:
/// fingerprint scanners over the §6 fleets — filter to the port, group by
/// fingerprint, collect distinct sources. The 80 and 8080 plans share the
/// fleet domain, so prefetching both costs one pass instead of two.
pub fn protocol_breakdown_plans(deployment: &Deployment, port: u16) -> Vec<Plan> {
    let ips = section6_fleets(deployment);
    vec![Plan::at(&ips)
        .port(port)
        .grouped_by_fingerprint()
        .distinct_srcs()]
}

/// Table 11 (and Table 17's left column) for one port, through a
/// [`ScanExec`].
pub fn protocol_breakdown_with(
    exec: &ScanExec<'_>,
    deployment: &Deployment,
    reputation: &ReputationDb,
    port: u16,
) -> (Vec<ProtocolBreakdownRow>, Vec<UnexpectedShare>) {
    let plan = protocol_breakdown_plans(deployment, port).pop().expect("one plan");
    let by_proto = exec.run(&plan).into_fingerprint_srcs();
    let total: usize = by_proto.values().map(|s| s.len()).sum();
    if total == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut http_set = BTreeSet::new();
    let mut other_set = BTreeSet::new();
    let mut shares = Vec::new();
    for (proto, srcs) in &by_proto {
        if *proto == ProtocolId::Http {
            http_set.extend(srcs.iter().copied());
        } else {
            other_set.extend(srcs.iter().copied());
            shares.push(UnexpectedShare {
                protocol: *proto,
                pct: 100.0 * srcs.len() as f64 / total as f64,
            });
        }
    }
    shares.sort_by(|a, b| b.pct.partial_cmp(&a.pct).unwrap());
    let label_split = |set: &BTreeSet<Ipv4Addr>| -> (f64, f64) {
        if set.is_empty() {
            return (0.0, 0.0);
        }
        let benign = set
            .iter()
            .filter(|&&s| reputation.label(s) == ActorLabel::Benign)
            .count();
        let malicious = set
            .iter()
            .filter(|&&s| reputation.label(s) == ActorLabel::Malicious)
            .count();
        (
            100.0 * benign as f64 / set.len() as f64,
            100.0 * malicious as f64 / set.len() as f64,
        )
    };
    let (hb, hm) = label_split(&http_set);
    let (ob, om) = label_split(&other_set);
    let rows = vec![
        ProtocolBreakdownRow {
            port,
            is_http: true,
            pct_of_scanners: 100.0 * http_set.len() as f64 / total as f64,
            pct_benign: hb,
            pct_malicious: hm,
            scanners: http_set.len(),
        },
        ProtocolBreakdownRow {
            port,
            is_http: false,
            pct_of_scanners: 100.0 * other_set.len() as f64 / total as f64,
            pct_benign: ob,
            pct_malicious: om,
            scanners: other_set.len(),
        },
    ];
    (rows, shares)
}

/// Table 11 for one port without prefetched plans.
pub fn protocol_breakdown(
    dataset: &Dataset,
    deployment: &Deployment,
    reputation: &ReputationDb,
    port: u16,
) -> (Vec<ProtocolBreakdownRow>, Vec<UnexpectedShare>) {
    protocol_breakdown_with(&ScanExec::unplanned(dataset), deployment, reputation, port)
}

/// The §3.2 composition statistics.
#[derive(Debug, Clone, Copy)]
pub struct CompositionStats {
    /// % of Telnet/23 events that do not attempt login.
    pub telnet_non_auth_pct: f64,
    /// % of SSH/22 events that do not attempt login.
    pub ssh_non_auth_pct: f64,
    /// % of HTTP/80 payloads that are not exploits.
    pub http80_benign_pct: f64,
    /// % of *distinct* normalized HTTP payloads labeled malicious.
    pub distinct_http_malicious_pct: f64,
}

/// The GreyNoise fleet the §3.2 statistics run over.
fn greynoise_ips(deployment: &Deployment) -> Vec<Ipv4Addr> {
    deployment
        .vantages
        .iter()
        .filter(|v| v.collector == cw_honeypot::deployment::CollectorKind::GreyNoise)
        .map(|v| v.ip)
        .collect()
}

/// The seven declared plans behind [`composition_stats`], in fixed order:
/// six counts over the GreyNoise fleet (total and non-auth per login
/// slice, HTTP/80 payloads total and benign) plus one whole-table row scan
/// for the distinct-payload dedup. Fused they cost two passes — one over
/// the fleet, one over the table.
pub fn composition_stats_plans(deployment: &Deployment) -> Vec<Plan> {
    let g = greynoise_ips(deployment);
    vec![
        Plan::at(&g).slice(TrafficSlice::TelnetPort23).count(),
        Plan::at(&g)
            .slice(TrafficSlice::TelnetPort23)
            .not_kind(ObsKind::Credentials)
            .count(),
        Plan::at(&g).slice(TrafficSlice::SshPort22).count(),
        Plan::at(&g)
            .slice(TrafficSlice::SshPort22)
            .not_kind(ObsKind::Credentials)
            .count(),
        Plan::at(&g)
            .slice(TrafficSlice::HttpPort80)
            .kind(ObsKind::Payload)
            .count(),
        Plan::at(&g)
            .slice(TrafficSlice::HttpPort80)
            .kind(ObsKind::Payload)
            .verdict(Verdict::Scanner)
            .count(),
        Plan::scan().fingerprint(ProtocolId::Http).rows(),
    ]
}

/// Compute the §3.2 statistics over the GreyNoise fleet, through a
/// [`ScanExec`].
pub fn composition_stats_with(exec: &ScanExec<'_>, deployment: &Deployment) -> CompositionStats {
    let dataset = exec.dataset();
    let plans = composition_stats_plans(deployment);
    let count = |p: &Plan| exec.run(p).into_count();

    let pct_non_auth = |total: usize, non_auth: usize| -> f64 {
        if total == 0 {
            return 0.0;
        }
        100.0 * non_auth as f64 / total as f64
    };
    let telnet_non_auth_pct = pct_non_auth(count(&plans[0]), count(&plans[1]));
    let ssh_non_auth_pct = pct_non_auth(count(&plans[2]), count(&plans[3]));

    let payloads = count(&plans[4]);
    let benign = count(&plans[5]);
    let http80_benign_pct = if payloads == 0 {
        0.0
    } else {
        100.0 * benign as f64 / payloads as f64
    };

    // Distinct normalized HTTP payloads anywhere, labeled by the ruleset.
    // Interned ids make the dedup cheap: normalization and key rendering
    // run once per distinct payload id, not once per event. The plan
    // yields rows in table order, so the first (id, port) pair per
    // normalized key is the first one ever captured — order-sensitive.
    let rules = cw_detection::RuleSet::builtin_cached();
    let interner = dataset.interner();
    let mut seen_ids: std::collections::HashSet<cw_netsim::intern::PayloadId> =
        std::collections::HashSet::new();
    let mut distinct: BTreeMap<String, (cw_netsim::intern::PayloadId, u16)> = BTreeMap::new();
    for i in exec.run(&plans[6]).into_rows() {
        if let Observed::Payload(p) = dataset.table().observed()[i] {
            if seen_ids.insert(p) {
                let normalized = cw_protocols::http::normalize(interner.payload(p));
                let key = crate::axes::payload_key(&normalized);
                distinct.entry(key).or_insert((p, dataset.table().dst_ports()[i]));
            }
        }
    }
    let malicious_distinct = distinct
        .values()
        .filter(|(p, port)| rules.is_malicious(interner.payload(*p), *port))
        .count();
    let distinct_http_malicious_pct = if distinct.is_empty() {
        0.0
    } else {
        100.0 * malicious_distinct as f64 / distinct.len() as f64
    };

    CompositionStats {
        telnet_non_auth_pct,
        ssh_non_auth_pct,
        http80_benign_pct,
        distinct_http_malicious_pct,
    }
}

/// Compute the §3.2 statistics without prefetched plans: a local
/// [`PlanStore`] fuses the seven plans into two passes.
pub fn composition_stats(dataset: &Dataset, deployment: &Deployment) -> CompositionStats {
    let store = PlanStore::build(dataset, &composition_stats_plans(deployment))
        .expect("composition plans validate");
    composition_stats_with(&ScanExec::with_store(dataset, &store), deployment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use cw_scanners::population::ScenarioYear;

    fn scenario() -> Scenario {
        Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(31))
    }

    #[test]
    fn breakdown_finds_unexpected_protocols() {
        let s = scenario();
        let (rows, shares) =
            protocol_breakdown(&s.dataset, &s.deployment, &s.handles.reputation, 80);
        assert_eq!(rows.len(), 2);
        let http = rows.iter().find(|r| r.is_http).unwrap();
        let other = rows.iter().find(|r| !r.is_http).unwrap();
        assert!(http.pct_of_scanners > other.pct_of_scanners);
        assert!(other.pct_of_scanners > 1.0, "unexpected share too small");
        assert!((http.pct_of_scanners + other.pct_of_scanners - 100.0).abs() < 1e-6);
        // TLS should lead the unexpected protocols (§6).
        assert_eq!(shares.first().map(|s| s.protocol), Some(ProtocolId::Tls));
    }

    #[test]
    fn composition_stats_have_the_paper_shape() {
        let s = scenario();
        let c = composition_stats(&s.dataset, &s.deployment);
        // Non-trivial non-auth fractions on login ports; the majority of
        // HTTP/80 payloads benign.
        assert!(c.ssh_non_auth_pct > 5.0 && c.ssh_non_auth_pct < 80.0, "{c:?}");
        assert!(c.telnet_non_auth_pct > 5.0 && c.telnet_non_auth_pct < 80.0, "{c:?}");
        assert!(c.http80_benign_pct > 50.0, "{c:?}");
        assert!(c.distinct_http_malicious_pct > 0.0 && c.distinct_http_malicious_pct < 60.0, "{c:?}");
    }
}
