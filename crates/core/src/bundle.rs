//! The `Send + Sync` result of one simulation, ready for fan-out.
//!
//! A [`Scenario`] is deliberately not `Send`: its event loop wires agents
//! with `Rc<RefCell<…>>`. But everything the *analyses* consume is plain
//! data — the classified [`Dataset`], the telescope counters, the
//! reputation oracle, two index sizes, and the engine stats. A
//! [`SimBundle`] extracts exactly that subset, so one simulation result can
//! cross fleet worker threads, be shared by every exhibit that needs the
//! same (year, seed), and round-trip through the snapshot cache
//! ([`crate::snapshot`]).
//!
//! What a bundle does *not* carry is the [`Deployment`]: it holds `Rc`
//! honeypot handles, and `Deployment::standard()` is a cheap deterministic
//! pure function (a few milliseconds against a multi-second simulation), so
//! consumers rebuild it at the use site instead of shipping it across
//! threads or to disk.

use crate::dataset::Dataset;
use crate::scenario::{Scenario, ScenarioConfig};
use cw_detection::ReputationDb;
use cw_honeypot::deployment::Deployment;
use cw_honeypot::telescope::Telescope;
use cw_netsim::engine::RunStats;
use cw_netsim::fault::FaultPlan;
use cw_netsim::snap::{SnapError, SnapReader, SnapWriter};
use cw_netsim::time::{SimDuration, SimTime};
use cw_scanners::population::ScenarioYear;

/// Everything the analyses need from one scenario run, with no `Rc` in
/// sight. See the module docs for what is included and why.
#[derive(Debug, Clone)]
pub struct SimBundle {
    /// The configuration that produced this bundle.
    pub config: ScenarioConfig,
    /// The classified event store.
    pub dataset: Dataset,
    /// The telescope with its per-port counters (analysis state only —
    /// see [`Telescope::snap_write`] for what a restored copy omits).
    pub telescope: Telescope,
    /// The GreyNoise-style reputation oracle.
    pub reputation: ReputationDb,
    /// Services indexed by the simulated Censys at window end.
    pub censys_indexed: u64,
    /// Services indexed by the simulated Shodan at window end.
    pub shodan_indexed: u64,
    /// Engine counters for the run.
    pub stats: RunStats,
}

impl Scenario {
    /// Extract the `Send + Sync` analysis subset of a completed run.
    ///
    /// The telescope is cloned out of its shared handle; the reputation
    /// database is moved out of the population handles; the search-engine
    /// indexes are folded to their sizes (the only thing any exhibit reads
    /// from them).
    pub fn into_bundle(self) -> SimBundle {
        let telescope = self.telescope.borrow().clone();
        let censys_indexed = self.handles.censys.borrow().len() as u64;
        let shodan_indexed = self.handles.shodan.borrow().len() as u64;
        SimBundle {
            config: self.config,
            dataset: self.dataset,
            telescope,
            reputation: self.handles.reputation,
            censys_indexed,
            shodan_indexed,
            stats: self.stats,
        }
    }
}

/// Stable wire tag of a scenario year.
fn year_tag(year: ScenarioYear) -> u8 {
    match year {
        ScenarioYear::Y2020 => 0,
        ScenarioYear::Y2021 => 1,
        ScenarioYear::Y2022 => 2,
    }
}

impl SimBundle {
    /// Simulate `config` and fold the result to a bundle.
    pub fn run(config: ScenarioConfig) -> SimBundle {
        Scenario::run(config).into_bundle()
    }

    /// Does this bundle carry the result of exactly `config`? Scale and
    /// fault-plan rates are compared bit-for-bit — any difference means a
    /// different world.
    pub fn matches(&self, config: &ScenarioConfig) -> bool {
        year_tag(self.config.year) == year_tag(config.year)
            && self.config.seed == config.seed
            && self.config.scale.to_bits() == config.scale.to_bits()
            && self.config.horizon == config.horizon
            && self.config.fault.same_bits(&config.fault)
    }

    /// Encode the bundle into a snapshot payload.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        w.put_u8(year_tag(self.config.year));
        w.put_u64(self.config.seed);
        w.put_f64(self.config.scale);
        w.put_u64(self.config.horizon.secs());
        self.config.fault.snap_write(w);
        w.put_u64(self.stats.wakes);
        w.put_u64(self.stats.flows_delivered);
        w.put_u64(self.stats.flows_unrouted);
        w.put_u64(self.stats.flows_lost);
        w.put_u64(self.stats.last_time.secs());
        w.put_u64(self.censys_indexed);
        w.put_u64(self.shodan_indexed);
        self.reputation.snap_write(w);
        self.telescope.snap_write(w);
        self.dataset.snap_write(w);
    }

    /// Decode a bundle from a snapshot payload. `deployment` rebuilds the
    /// dataset's derived indexes (see [`Dataset::snap_read`]).
    pub fn snap_read(
        r: &mut SnapReader<'_>,
        deployment: &Deployment,
    ) -> Result<SimBundle, SnapError> {
        let year = match r.get_u8()? {
            0 => ScenarioYear::Y2020,
            1 => ScenarioYear::Y2021,
            2 => ScenarioYear::Y2022,
            _ => return Err(SnapError::Malformed("unknown scenario year tag")),
        };
        // Shard count is not part of a world's identity (output is
        // byte-identical for any value), so it does not travel in the
        // snapshot; restored bundles report the auto default.
        let config = ScenarioConfig {
            year,
            seed: r.get_u64()?,
            scale: r.get_f64()?,
            horizon: SimDuration::from_secs(r.get_u64()?),
            shards: 0,
            fault: FaultPlan::snap_read(r)?,
        };
        let stats = RunStats {
            wakes: r.get_u64()?,
            flows_delivered: r.get_u64()?,
            flows_unrouted: r.get_u64()?,
            flows_lost: r.get_u64()?,
            last_time: SimTime(r.get_u64()?),
        };
        let censys_indexed = r.get_u64()?;
        let shodan_indexed = r.get_u64()?;
        let reputation = ReputationDb::snap_read(r)?;
        let telescope = Telescope::snap_read(r)?;
        let dataset = Dataset::snap_read(r, deployment)?;
        Ok(SimBundle {
            config,
            dataset,
            telescope,
            reputation,
            censys_indexed,
            shodan_indexed,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A bundle's whole reason to exist is crossing fleet worker threads.
    #[test]
    fn bundle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimBundle>();
    }

    #[test]
    fn bundle_round_trips_through_snapshot_payload() {
        let config = ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(17)
            .with_scale(0.01);
        let bundle = SimBundle::run(config);
        assert!(bundle.matches(&config));
        assert!(!bundle.matches(&config.with_seed(18)));
        assert!(!bundle.matches(&config.with_fault(FaultPlan {
            flow_loss: 0.1,
            ..FaultPlan::none()
        })));

        let mut w = SnapWriter::new();
        bundle.snap_write(&mut w);
        let bytes = w.into_bytes();
        let deployment = Deployment::standard();
        let mut r = SnapReader::new(&bytes);
        let back = SimBundle::snap_read(&mut r, &deployment).unwrap();
        assert!(r.is_exhausted());
        assert!(back.matches(&config));
        assert_eq!(back.stats, bundle.stats);
        assert_eq!(back.dataset.len(), bundle.dataset.len());
        assert_eq!(back.telescope.total_packets(), bundle.telescope.total_packets());
        assert_eq!(back.reputation.counts(), bundle.reputation.counts());
        assert_eq!(back.censys_indexed, bundle.censys_indexed);
        assert_eq!(back.shodan_indexed, bundle.shodan_indexed);
    }

    #[test]
    fn bundle_rejects_unknown_year_tag() {
        let mut w = SnapWriter::new();
        w.put_u8(9);
        let bytes = w.into_bytes();
        let deployment = Deployment::standard();
        assert!(matches!(
            SimBundle::snap_read(&mut SnapReader::new(&bytes), &deployment),
            Err(SnapError::Malformed(_))
        ));
    }
}
