//! Tables 4, 5 (and their 2020 variants 13, 16): geographic discrimination.
//!
//! Regions are compared per provider. Each region's representative
//! frequency map is the §4.4 **median across its honeypots** (damping
//! single-honeypot anomalies), and the comparison is the §3.3 top-3
//! chi-squared procedure with Bonferroni correction over all pairs tested
//! within an analysis cell.

use crate::compare::{compare_freqs, median_freqs, CharKind};
use crate::dataset::{Dataset, TrafficSlice};
use crate::query::{Plan, PlanStore, ScanExec};
use cw_honeypot::deployment::{CollectorKind, Deployment, Provider};
use cw_netsim::geo::{classify_pair, Region, RegionPairKind};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// (provider, region) → honeypot IPs able to observe a slice.
fn provider_region_ips(
    deployment: &Deployment,
    provider: Provider,
    slice: TrafficSlice,
) -> Vec<(Region, Vec<Ipv4Addr>)> {
    let needs_payload = matches!(
        slice,
        TrafficSlice::HttpPort80 | TrafficSlice::HttpAllPorts | TrafficSlice::AnyAll
    );
    let mut out: Vec<(Region, Vec<Ipv4Addr>)> = Vec::new();
    for v in &deployment.vantages {
        if v.collector != CollectorKind::GreyNoise || v.provider != provider {
            continue;
        }
        if needs_payload && !v.payload_ports {
            continue;
        }
        match out.iter_mut().find(|(r, _)| *r == v.region) {
            Some((_, ips)) => ips.push(v.ip),
            None => out.push((v.region.clone(), vec![v.ip])),
        }
    }
    out
}

/// The declared per-honeypot frequency plans behind one [`region_freqs`]
/// call.
fn region_freq_plans(ips: &[Ipv4Addr], slice: TrafficSlice, kind: CharKind) -> Vec<Plan> {
    ips.iter()
        .map(|&ip| Plan::at(&[ip]).slice(slice).char_freqs(kind))
        .collect()
}

/// The §4.4 region-representative frequency map, through a [`ScanExec`]:
/// median across honeypots.
pub fn region_freqs_with(
    exec: &ScanExec<'_>,
    ips: &[Ipv4Addr],
    slice: TrafficSlice,
    kind: CharKind,
) -> BTreeMap<String, u64> {
    let per_honeypot: Vec<BTreeMap<String, u64>> = region_freq_plans(ips, slice, kind)
        .iter()
        .map(|p| exec.run(p).into_char_freqs())
        .collect();
    median_freqs(&per_honeypot)
}

/// The §4.4 region-representative frequency map: median across honeypots.
pub fn region_freqs(
    dataset: &Dataset,
    ips: &[Ipv4Addr],
    slice: TrafficSlice,
    kind: CharKind,
) -> BTreeMap<String, u64> {
    region_freqs_with(&ScanExec::unplanned(dataset), ips, slice, kind)
}

/// One Table 4 cell: a provider's most-different region for one
/// characteristic × slice.
#[derive(Debug, Clone)]
pub struct MostDifferentRegion {
    /// Compared characteristic.
    pub characteristic: CharKind,
    /// Traffic slice.
    pub slice: TrafficSlice,
    /// Provider analyzed.
    pub provider: Provider,
    /// The region with the most significant deviations, if any pair was
    /// significant.
    pub region: Option<String>,
    /// Mean φ over that region's significant pairs.
    pub avg_phi: Option<f64>,
}

/// Table 4: for each provider × characteristic × slice, the region whose
/// traffic deviates most from the provider's other regions — through a
/// [`ScanExec`].
pub fn most_different_region_with(
    exec: &ScanExec<'_>,
    deployment: &Deployment,
    provider: Provider,
    slice: TrafficSlice,
    kind: CharKind,
    alpha: f64,
) -> MostDifferentRegion {
    let regions = provider_region_ips(deployment, provider, slice);
    let freqs: Vec<(Region, BTreeMap<String, u64>)> = regions
        .iter()
        .map(|(r, ips)| (r.clone(), region_freqs_with(exec, ips, slice, kind)))
        .collect();
    let n = freqs.len();
    let m = n.saturating_sub(1).max(1) * n / 2; // all pairs
    let mut sig_phis: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for i in 0..n {
        for j in i + 1..n {
            if let Some(cmp) = compare_freqs(
                kind,
                &[freqs[i].1.clone(), freqs[j].1.clone()],
                alpha,
                m.max(1),
            ) {
                if cmp.significant {
                    sig_phis
                        .entry(freqs[i].0.code.clone())
                        .or_default()
                        .push(cmp.effect.phi);
                    sig_phis
                        .entry(freqs[j].0.code.clone())
                        .or_default()
                        .push(cmp.effect.phi);
                }
            }
        }
    }
    let best = sig_phis
        .iter()
        .max_by(|a, b| {
            a.1.len()
                .cmp(&b.1.len())
                .then_with(|| {
                    let am = cw_stats::descriptive::mean(a.1).unwrap_or(0.0);
                    let bm = cw_stats::descriptive::mean(b.1).unwrap_or(0.0);
                    am.partial_cmp(&bm).unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| b.0.cmp(a.0))
        })
        .map(|(code, phis)| (code.clone(), cw_stats::descriptive::mean(phis).unwrap()));
    MostDifferentRegion {
        characteristic: kind,
        slice,
        provider,
        region: best.as_ref().map(|(c, _)| c.clone()),
        avg_phi: best.map(|(_, p)| p),
    }
}

/// [`most_different_region_with`] without prefetched plans.
pub fn most_different_region(
    dataset: &Dataset,
    deployment: &Deployment,
    provider: Provider,
    slice: TrafficSlice,
    kind: CharKind,
    alpha: f64,
) -> MostDifferentRegion {
    most_different_region_with(
        &ScanExec::unplanned(dataset),
        deployment,
        provider,
        slice,
        kind,
        alpha,
    )
}

/// Table 4's (characteristic, slice) cell grid.
const TABLE4_CELLS: &[(CharKind, TrafficSlice)] = &[
    (CharKind::TopAs, TrafficSlice::SshPort22),
    (CharKind::TopAs, TrafficSlice::TelnetPort23),
    (CharKind::TopAs, TrafficSlice::HttpPort80),
    (CharKind::TopAs, TrafficSlice::HttpAllPorts),
    (CharKind::TopUsername, TrafficSlice::SshPort22),
    (CharKind::TopUsername, TrafficSlice::TelnetPort23),
    (CharKind::TopPassword, TrafficSlice::TelnetPort23),
    (CharKind::TopPayload, TrafficSlice::HttpPort80),
    (CharKind::TopPayload, TrafficSlice::HttpAllPorts),
    (CharKind::FracMalicious, TrafficSlice::SshPort22),
    (CharKind::FracMalicious, TrafficSlice::TelnetPort23),
    (CharKind::FracMalicious, TrafficSlice::AnyAll),
];

/// The declared plans behind the full Table 4 grid: every provider ×
/// region × honeypot frequency scan of every cell (the store dedupes the
/// repeats and fuses per honeypot domain).
pub fn table4_plans(deployment: &Deployment) -> Vec<Plan> {
    let providers = [Provider::Aws, Provider::Google, Provider::Linode];
    let mut plans = Vec::new();
    for &(kind, slice) in TABLE4_CELLS {
        for provider in providers {
            for (_region, ips) in provider_region_ips(deployment, provider, slice) {
                plans.extend(region_freq_plans(&ips, slice, kind));
            }
        }
    }
    plans
}

/// The full Table 4 grid for AWS / Google / Linode, through a
/// [`ScanExec`].
pub fn table4_with(exec: &ScanExec<'_>, deployment: &Deployment) -> Vec<MostDifferentRegion> {
    let providers = [Provider::Aws, Provider::Google, Provider::Linode];
    let mut out = Vec::new();
    for &(kind, slice) in TABLE4_CELLS {
        for provider in providers {
            out.push(most_different_region_with(
                exec, deployment, provider, slice, kind, 0.05,
            ));
        }
    }
    out
}

/// The full Table 4 grid without prefetched plans: a local [`PlanStore`]
/// fuses the grid's per-honeypot scans to one pass per honeypot.
pub fn table4(dataset: &Dataset, deployment: &Deployment) -> Vec<MostDifferentRegion> {
    let store =
        PlanStore::build(dataset, &table4_plans(deployment)).expect("table4 plans validate");
    table4_with(&ScanExec::with_store(dataset, &store), deployment)
}

/// One Table 5 cell: % similar pairs within a geographic bucket.
#[derive(Debug, Clone)]
pub struct SimilarityCell {
    /// Compared characteristic.
    pub characteristic: CharKind,
    /// Traffic slice.
    pub slice: TrafficSlice,
    /// Geographic bucket.
    pub bucket: RegionPairKind,
    /// Number of pairs tested.
    pub n: usize,
    /// Percentage of pairs *not* significantly different.
    pub pct_similar: f64,
}

/// Table 5's provider list (Table 4's three plus Azure).
const TABLE5_PROVIDERS: [Provider; 4] =
    [Provider::Aws, Provider::Google, Provider::Linode, Provider::Azure];

/// The declared plans behind one Table 5 (slice, characteristic) cell.
pub fn table5_plans(deployment: &Deployment, slice: TrafficSlice, kind: CharKind) -> Vec<Plan> {
    let mut plans = Vec::new();
    for provider in TABLE5_PROVIDERS {
        for (_region, ips) in provider_region_ips(deployment, provider, slice) {
            plans.extend(region_freq_plans(&ips, slice, kind));
        }
    }
    plans
}

/// Table 5: similarity of same-provider region pairs, bucketed into
/// within-US / within-EU / within-APAC / intercontinental — through a
/// [`ScanExec`].
pub fn table5_with(
    exec: &ScanExec<'_>,
    deployment: &Deployment,
    slice: TrafficSlice,
    kind: CharKind,
) -> Vec<SimilarityCell> {
    let providers = TABLE5_PROVIDERS;
    // Gather all same-provider pairs with their bucket.
    struct Pair {
        bucket: RegionPairKind,
        a: BTreeMap<String, u64>,
        b: BTreeMap<String, u64>,
    }
    let mut pairs: Vec<Pair> = Vec::new();
    for provider in providers {
        let regions = provider_region_ips(deployment, provider, slice);
        let freqs: Vec<(Region, BTreeMap<String, u64>)> = regions
            .iter()
            .map(|(r, ips)| (r.clone(), region_freqs_with(exec, ips, slice, kind)))
            .collect();
        for i in 0..freqs.len() {
            for j in i + 1..freqs.len() {
                pairs.push(Pair {
                    bucket: classify_pair(&freqs[i].0, &freqs[j].0),
                    a: freqs[i].1.clone(),
                    b: freqs[j].1.clone(),
                });
            }
        }
    }
    let m = pairs.len();
    let mut per_bucket: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    let bucket_key = |b: RegionPairKind| match b {
        RegionPairKind::WithinUs => "US",
        RegionPairKind::WithinEu => "EU",
        RegionPairKind::WithinApac => "APAC",
        RegionPairKind::Intercontinental => "Intercontinental",
        RegionPairKind::OtherSameContinent => "Intercontinental",
    };
    let mut bucket_of: BTreeMap<&'static str, RegionPairKind> = BTreeMap::new();
    for p in &pairs {
        let key = bucket_key(p.bucket);
        bucket_of.entry(key).or_insert(match key {
            "US" => RegionPairKind::WithinUs,
            "EU" => RegionPairKind::WithinEu,
            "APAC" => RegionPairKind::WithinApac,
            _ => RegionPairKind::Intercontinental,
        });
        let entry = per_bucket.entry(key).or_insert((0, 0));
        if let Some(cmp) = compare_freqs(kind, &[p.a.clone(), p.b.clone()], 0.05, m.max(1)) {
            entry.0 += 1;
            if !cmp.significant {
                entry.1 += 1;
            }
        }
    }
    per_bucket
        .into_iter()
        .map(|(key, (tested, similar))| SimilarityCell {
            characteristic: kind,
            slice,
            bucket: bucket_of[key],
            n: tested,
            pct_similar: if tested == 0 {
                100.0
            } else {
                100.0 * similar as f64 / tested as f64
            },
        })
        .collect()
}

/// One Table 5 cell without prefetched plans: a local [`PlanStore`] fuses
/// the cell's per-honeypot scans.
pub fn table5(
    dataset: &Dataset,
    deployment: &Deployment,
    slice: TrafficSlice,
    kind: CharKind,
) -> Vec<SimilarityCell> {
    let store = PlanStore::build(dataset, &table5_plans(deployment, slice, kind))
        .expect("table5 plans validate");
    table5_with(&ScanExec::with_store(dataset, &store), deployment, slice, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use cw_scanners::population::ScenarioYear;

    fn scenario() -> Scenario {
        Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(9))
    }

    #[test]
    fn table4_has_full_grid() {
        let s = scenario();
        let rows = table4(&s.dataset, &s.deployment);
        assert_eq!(rows.len(), 12 * 3);
        // Every cell with a region also carries a φ.
        for r in &rows {
            assert_eq!(r.region.is_some(), r.avg_phi.is_some());
        }
    }

    #[test]
    fn table5_buckets_cover_the_paper_grouping() {
        let s = scenario();
        let cells = table5(
            &s.dataset,
            &s.deployment,
            TrafficSlice::SshPort22,
            CharKind::TopAs,
        );
        let buckets: Vec<RegionPairKind> = cells.iter().map(|c| c.bucket).collect();
        assert!(buckets.contains(&RegionPairKind::WithinUs));
        assert!(buckets.contains(&RegionPairKind::WithinApac));
        assert!(buckets.contains(&RegionPairKind::Intercontinental));
        for c in &cells {
            assert!((0.0..=100.0).contains(&c.pct_similar));
        }
    }

    #[test]
    fn region_freqs_uses_median() {
        let s = scenario();
        // The Linode AP-SG region hosts the Axtel flood on one honeypot:
        // the median representative must not contain Axtel's AS volume at
        // flood scale.
        let regions = provider_region_ips(&s.deployment, Provider::Linode, TrafficSlice::SshPort22);
        let sg = regions.iter().find(|(r, _)| r.code == "AP-SG").unwrap();
        let med = region_freqs(&s.dataset, &sg.1, TrafficSlice::SshPort22, CharKind::TopAs);
        let axtel = med.get("AS6503").copied().unwrap_or(0);
        // Per-honeypot raw counts on the flooded honeypot are far larger.
        let flooded: u64 = sg
            .1
            .iter()
            .map(|&ip| {
                *s.dataset
                    .query()
                    .at(&[ip])
                    .slice(TrafficSlice::SshPort22)
                    .char_freqs(CharKind::TopAs)
                    .get("AS6503")
                    .unwrap_or(&0)
            })
            .max()
            .unwrap();
        assert!(
            flooded > axtel * 5 || flooded > 50,
            "flood {flooded} vs median {axtel}"
        );
    }
}
