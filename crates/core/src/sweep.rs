//! `cw sweep` — are the paper's findings scale-invariant?
//!
//! The paper reports its findings at one observation scale; ROADMAP item 2
//! asks whether they survive 10× and 100× worlds. This module drives a
//! grid over (year × seed × deployment variant × scale), obtains each
//! cell's world through the simulate-once snapshot cache (so every
//! distinct world is computed exactly once, ever — interrupted sweeps
//! resume from where they stopped), and re-checks the directional findings
//! behind Tables 1, 7, 8, 9 and the Table 3 leak experiment at every
//! scale, reporting per-finding STABLE/DRIFTS verdicts.
//!
//! The scale axis is a multiplier on the base configuration's `scale`, so
//! the same grid shape drives both the real `{×1, ×10, ×100}` question and
//! cheap test grids over tiny base scales. Deployment variants reuse the
//! degradation ladder's fault rungs ([`crate::degrade::ladder`]): the
//! fault-free "none" rung is the paper's deployment, the others ask the
//! scale question under degraded collection.
//!
//! Like `cw degrade`, findings are evaluated as *directions*
//! ([`crate::degrade::evaluate`]): a scale-stable conclusion keeps its
//! sign as the world grows, even though every absolute count changes.

use crate::bundle::SimBundle;
use crate::degrade::{self, FindingEval, Rung};
use crate::leak::{LeakConfig, LeakOutcome};
use crate::report::{header_str, TextTable};
use crate::scenario::ScenarioConfig;
use cw_netsim::time::SimDuration;
use cw_scanners::population::ScenarioYear;
use std::collections::{BTreeMap, BTreeSet};

/// The seed-splitting convention for a cell's leak world, matching the
/// `cw degrade` driver: the leak experiment must not share RNG streams
/// with the main world it is compared against.
pub const LEAK_SEED_XOR: u64 = 0x1EA4;

/// The sweep grid: the cross product of years × seeds × deployment
/// variants × scale multipliers. Scales are innermost so each report row
/// reads across scales.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Measurement years to sweep.
    pub years: Vec<ScenarioYear>,
    /// Master seeds (replicates; each seed is an independent world).
    pub seeds: Vec<u64>,
    /// Deployment variants — fault rungs from the degradation ladder.
    pub variants: Vec<Rung>,
    /// Scale multipliers applied to the base configuration's scale.
    pub scales: Vec<f64>,
}

impl SweepGrid {
    /// The canonical scale-sensitivity grid over a base configuration:
    /// one year per entry of `years`, the base seed, the fault-free
    /// deployment, scales ×1/×10/×100.
    pub fn standard(years: Vec<ScenarioYear>, seed: u64) -> SweepGrid {
        SweepGrid {
            years,
            seeds: vec![seed],
            variants: vec![degrade::ladder().remove(0)],
            scales: vec![1.0, 10.0, 100.0],
        }
    }

    /// Total number of grid cells (including any duplicates the axes name).
    pub fn cell_count(&self) -> usize {
        self.years.len() * self.seeds.len() * self.variants.len() * self.scales.len()
    }

    /// Number of *distinct* worlds the grid names — the exact number of
    /// simulations a cold sweep performs (and a warm sweep's zero, both
    /// enforced by `tests/sweep.rs` via the simulate-call counter).
    pub fn distinct_configs(&self, base: &ScenarioConfig) -> usize {
        let mut seen: BTreeSet<(u16, u64, u64, &'static str)> = BTreeSet::new();
        for &year in &self.years {
            for &seed in &self.seeds {
                for variant in &self.variants {
                    for &mult in &self.scales {
                        let scale = base.scale * mult;
                        seen.insert((year.year(), seed, scale.to_bits(), variant.label));
                    }
                }
            }
        }
        seen.len()
    }
}

/// A human-readable scale-multiplier label ("×1", "×10", "×0.5").
fn scale_label(mult: f64) -> String {
    if mult.fract() == 0.0 && mult.abs() < 1e15 {
        format!("\u{d7}{}", mult as i64)
    } else {
        format!("\u{d7}{mult}")
    }
}

/// Run the sweep and render the `cw sweep` scale-sensitivity report.
///
/// `base` supplies everything the grid doesn't override (horizon, shards,
/// and the scale every multiplier applies to); `obtain` supplies each
/// cell's scenario bundle so the driver chooses the cache policy — routed
/// through [`crate::snapshot::load_or_run`], each distinct world is
/// simulated exactly once ever, and an interrupted sweep resumes without
/// recomputing completed cells. Leak worlds are small, always simulate
/// inline (they never touch the snapshot cache), and are memoized per
/// distinct `(seed, scale, variant)` — they don't depend on the year.
///
/// The report is a pure function of `(grid, base)`: same inputs → same
/// bytes, cold or warm, for any thread/shard/window configuration.
pub fn report(
    grid: &SweepGrid,
    base: ScenarioConfig,
    obtain: &dyn Fn(ScenarioConfig) -> SimBundle,
) -> String {
    let mut out = header_str("Scale sensitivity sweep: finding stability across observation scales");
    out.push_str(
        "Each cell simulates (or cache-loads) one world of the (year, seed, variant,\n\
         scale) grid via the streaming dataset build, then re-checks the directional\n\
         findings behind Tables 1, 7, 8, 9 and the Table 3 leak at every scale.\n\
         STABLE = direction holds at every swept scale of the group.\n\n",
    );
    out.push_str(&format!(
        "Grid: years={:?} seeds={:?} variants={:?} scales={:?}\n",
        grid.years.iter().map(|y| y.year()).collect::<Vec<_>>(),
        grid.seeds.iter().map(|s| format!("{s:#x}")).collect::<Vec<_>>(),
        grid.variants.iter().map(|v| v.label).collect::<Vec<_>>(),
        grid.scales.iter().map(|&m| scale_label(m)).collect::<Vec<_>>(),
    ));
    out.push_str(&format!(
        "Cells: {} ({} distinct worlds; each simulated at most once ever via the cache)\n\n",
        grid.cell_count(),
        grid.distinct_configs(&base),
    ));

    // Leak worlds memoized per distinct (seed, scale, variant) — reused
    // across years and duplicate axis entries.
    let mut leak_memo: BTreeMap<(u64, u64, &'static str), LeakOutcome> = BTreeMap::new();
    // Per-finding stability across *all* groups, in first-seen order.
    let mut finding_names: Vec<&'static str> = Vec::new();
    let mut finding_stable: BTreeMap<&'static str, bool> = BTreeMap::new();

    for &year in &grid.years {
        for &seed in &grid.seeds {
            for variant in &grid.variants {
                out.push_str(&format!(
                    "== year={} seed={:#x} variant={} ==\n",
                    year.year(),
                    seed,
                    variant.label
                ));
                let mut worlds = TextTable::new(&[
                    "Scale",
                    "Events",
                    "Distinct payloads",
                    "Telescope srcs",
                    "Flows lost",
                ]);
                let mut evals: Vec<(String, Vec<FindingEval>)> = Vec::new();
                let mut seen_scales: BTreeSet<u64> = BTreeSet::new();
                for &mult in &grid.scales {
                    let scale = base.scale * mult;
                    // A duplicate multiplier names the same world; evaluate
                    // it once per group.
                    if !seen_scales.insert(scale.to_bits()) {
                        continue;
                    }
                    let label = scale_label(mult);
                    eprintln!(
                        "[cw] sweep cell year={} seed={seed:#x} variant={} scale={label} ...",
                        year.year(),
                        variant.label
                    );
                    let cfg = ScenarioConfig { year, ..base }
                        .with_seed(seed)
                        .with_scale(scale)
                        .with_fault(variant.plan);
                    let bundle = obtain(cfg);
                    let leak = leak_memo
                        .entry((seed, scale.to_bits(), variant.label))
                        .or_insert_with(|| {
                            crate::leak::run(&LeakConfig {
                                seed: seed ^ LEAK_SEED_XOR,
                                scale,
                                horizon: SimDuration::WEEK,
                                fault: variant.plan,
                            })
                        });
                    worlds.row(vec![
                        label.clone(),
                        bundle.dataset.len().to_string(),
                        bundle.dataset.interner().payload_count().to_string(),
                        bundle.telescope.unique_source_count().to_string(),
                        bundle.stats.flows_lost.to_string(),
                    ]);
                    evals.push((label, degrade::evaluate(&bundle, leak)));
                }
                out.push_str(&format!("{}\n", worlds.render()));

                // Finding × scale grid with the per-group verdict.
                let headers: Vec<String> = std::iter::once("Finding".to_string())
                    .chain(evals.iter().map(|(l, _)| l.clone()))
                    .chain(std::iter::once("Verdict".to_string()))
                    .collect();
                let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
                let mut findings = TextTable::new(&header_refs);
                let n_findings = evals[0].1.len();
                for f in 0..n_findings {
                    let name = evals[0].1[f].name;
                    if !finding_stable.contains_key(name) {
                        finding_names.push(name);
                        finding_stable.insert(name, true);
                    }
                    let mut row = vec![name.to_string()];
                    let mut first_drift: Option<&str> = None;
                    for (label, scale_evals) in &evals {
                        let e = scale_evals[f];
                        row.push(format!(
                            "{:.2}{}",
                            e.metric,
                            if e.holds { "" } else { " !" }
                        ));
                        if !e.holds && first_drift.is_none() {
                            first_drift = Some(label);
                        }
                    }
                    row.push(match first_drift {
                        None => "STABLE".to_string(),
                        Some(label) => {
                            *finding_stable.get_mut(name).expect("inserted above") = false;
                            format!("DRIFTS@{label}")
                        }
                    });
                    findings.row(row);
                }
                out.push_str(&format!("{}\n", findings.render()));
            }
        }
    }

    let stable = finding_names
        .iter()
        .filter(|n| finding_stable[*n])
        .count();
    out.push_str(&format!(
        "{stable}/{} findings scale-stable across every swept group\n",
        finding_names.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_grid_shape() {
        let g = SweepGrid::standard(vec![ScenarioYear::Y2021], 7);
        assert_eq!(g.cell_count(), 3);
        assert_eq!(g.scales, vec![1.0, 10.0, 100.0]);
        assert_eq!(g.variants[0].label, "none");
        assert!(g.variants[0].plan.is_none());
    }

    #[test]
    fn distinct_configs_dedupes_identical_cells() {
        let base = ScenarioConfig::fast(ScenarioYear::Y2021);
        let g = SweepGrid {
            years: vec![ScenarioYear::Y2021, ScenarioYear::Y2021],
            seeds: vec![1, 1],
            variants: vec![degrade::ladder().remove(0)],
            scales: vec![1.0, 1.0, 2.0],
        };
        assert_eq!(g.cell_count(), 12);
        assert_eq!(g.distinct_configs(&base), 2);
    }

    #[test]
    fn scale_labels_render_compactly() {
        assert_eq!(scale_label(1.0), "\u{d7}1");
        assert_eq!(scale_label(100.0), "\u{d7}100");
        assert_eq!(scale_label(0.5), "\u{d7}0.5");
    }

    #[test]
    fn report_is_deterministic_and_has_a_verdict_per_finding() {
        let base = ScenarioConfig::fast(ScenarioYear::Y2021).with_scale(0.01);
        let grid = SweepGrid {
            years: vec![ScenarioYear::Y2021],
            seeds: vec![base.seed],
            variants: vec![degrade::ladder().remove(0)],
            scales: vec![1.0, 2.0],
        };
        let render = || report(&grid, base, &|cfg| SimBundle::run(cfg));
        let a = render();
        assert_eq!(a, render());
        // Every tracked finding gets exactly one verdict token per group.
        let verdicts = a.matches("STABLE").count() + a.matches("DRIFTS@").count();
        // "STABLE" also appears once inside the preamble text.
        assert_eq!(verdicts - 1, 5, "one verdict per tracked finding:\n{a}");
        assert!(a.contains("findings scale-stable"));
        assert!(a.contains("\u{d7}2"));
    }
}
