//! Temporal stability (§3.4, Appendix C): are attacker preferences stable
//! across measurement years?
//!
//! The paper repeats its 2021 analyses on 2020/2022 data and reports that
//! "attackers and scanners broadly exhibit similar preferences between
//! 2020–2022". This module quantifies that claim for two scenario runs:
//! top-AS overlap per region (Jaccard), telescope-overlap trajectory per
//! port, and the stability of the headline phenomena.

use crate::compare::CharKind;
use crate::dataset::TrafficSlice;
use crate::overlap;
use crate::scenario::Scenario;
use cw_honeypot::deployment::CollectorKind;
use cw_stats::topk::top_k_of;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Stability metrics between two scenario years.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Years compared.
    pub years: (u16, u16),
    /// Mean Jaccard similarity of per-region top-3 scanning ASes.
    pub top_as_jaccard: f64,
    /// Per-port (port, overlap year A, overlap year B) telescope-avoidance
    /// trajectories.
    pub telescope_overlap: Vec<(u16, Option<f64>, Option<f64>)>,
    /// Regions compared.
    pub regions_compared: usize,
}

/// Jaccard similarity of two string sets.
pub fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// Compare two scenario runs (typically different years, same seed family).
pub fn stability(a: &Scenario, b: &Scenario) -> StabilityReport {
    // Per-region top-3 ASes on Telnet/23 (the most stable botnet-driven
    // surface), compared across years.
    let regions = a.deployment.greynoise_provider_regions();
    let mut jaccards = Vec::new();
    for (provider, region) in &regions {
        let ips_of = |s: &Scenario| -> Vec<Ipv4Addr> {
            s.deployment
                .vantages
                .iter()
                .filter(|v| {
                    v.collector == CollectorKind::GreyNoise
                        && v.provider == *provider
                        && v.region == *region
                })
                .map(|v| v.ip)
                .collect()
        };
        let tops = |s: &Scenario| -> BTreeSet<String> {
            let events = s
                .dataset
                .events_at_group(&ips_of(s), TrafficSlice::TelnetPort23);
            top_k_of(&CharKind::TopAs.freqs(&events), 3)
                .into_iter()
                .collect()
        };
        let ta = tops(a);
        let tb = tops(b);
        if !ta.is_empty() || !tb.is_empty() {
            jaccards.push(jaccard(&ta, &tb));
        }
    }

    let tel_a = a.telescope.borrow();
    let tel_b = b.telescope.borrow();
    let t8a = overlap::table8(&a.dataset, &a.deployment, &tel_a);
    let t8b = overlap::table8(&b.dataset, &b.deployment, &tel_b);
    let telescope_overlap = t8a
        .iter()
        .map(|ra| {
            let rb = t8b.iter().find(|r| r.port == ra.port);
            (ra.port, ra.tel_cloud, rb.and_then(|r| r.tel_cloud))
        })
        .collect();

    StabilityReport {
        years: (a.config.year.year(), b.config.year.year()),
        top_as_jaccard: cw_stats::descriptive::mean(&jaccards).unwrap_or(0.0),
        telescope_overlap,
        regions_compared: jaccards.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use cw_scanners::population::ScenarioYear;

    #[test]
    fn jaccard_basics() {
        let a: BTreeSet<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let b: BTreeSet<String> = ["x", "y", "w"].iter().map(|s| s.to_string()).collect();
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert!((jaccard(&BTreeSet::new(), &BTreeSet::new()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preferences_are_stable_across_years() {
        // §3.4's claim, asserted end-to-end at reduced scale: the same seed
        // family in two years keeps similar top ASes and keeps the SSH <
        // Telnet telescope-overlap ordering.
        let a = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(3));
        let b = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2020).with_seed(3));
        let r = stability(&a, &b);
        assert_eq!(r.years, (2021, 2020));
        assert!(r.regions_compared > 30);
        assert!(
            r.top_as_jaccard > 0.4,
            "top-AS similarity only {:.2}",
            r.top_as_jaccard
        );
        // Telescope-avoidance ordering stable: port 23 ≥ port 22 both years.
        let get = |port: u16| {
            r.telescope_overlap
                .iter()
                .find(|(p, _, _)| *p == port)
                .cloned()
                .unwrap()
        };
        let (_, t23a, t23b) = get(23);
        let (_, t22a, t22b) = get(22);
        assert!(t23a.unwrap() > t22a.unwrap());
        assert!(t23b.unwrap() > t22b.unwrap());
    }
}
