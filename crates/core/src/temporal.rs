//! Temporal stability (§3.4, Appendix C): are attacker preferences stable
//! across measurement years?
//!
//! The paper repeats its 2021 analyses on 2020/2022 data and reports that
//! "attackers and scanners broadly exhibit similar preferences between
//! 2020–2022". This module quantifies that claim for two scenario runs:
//! top-AS overlap per region (Jaccard), telescope-overlap trajectory per
//! port, and the stability of the headline phenomena.

use crate::compare::CharKind;
use crate::dataset::{Dataset, TrafficSlice};
use crate::overlap;
use cw_honeypot::deployment::{CollectorKind, Deployment};
use cw_honeypot::telescope::Telescope;
use cw_stats::topk::top_k_of;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Stability metrics between two scenario years.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Years compared.
    pub years: (u16, u16),
    /// Mean Jaccard similarity of per-region top-3 scanning ASes.
    pub top_as_jaccard: f64,
    /// Per-port (port, overlap year A, overlap year B) telescope-avoidance
    /// trajectories.
    pub telescope_overlap: Vec<(u16, Option<f64>, Option<f64>)>,
    /// Regions compared.
    pub regions_compared: usize,
}

/// Jaccard similarity of two string sets.
pub fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// One year's analysis inputs, borrowed from a live [`crate::Scenario`]
/// or a restored [`crate::bundle::SimBundle`].
#[derive(Debug, Clone, Copy)]
pub struct YearView<'a> {
    /// The scenario year this data was measured in.
    pub year: u16,
    /// The classified event store of that year's run.
    pub dataset: &'a Dataset,
    /// That year's telescope capture.
    pub telescope: &'a Telescope,
}

/// Compare two measurement years (typically the same seed family) against
/// a shared deployment (Table 1 is identical across years).
pub fn stability(deployment: &Deployment, a: YearView<'_>, b: YearView<'_>) -> StabilityReport {
    let t8a = overlap::table8(a.dataset, deployment, a.telescope);
    let t8b = overlap::table8(b.dataset, deployment, b.telescope);
    stability_with(deployment, a, b, &t8a, &t8b)
}

/// [`stability`] with each year's Table 8 overlap rows supplied by the
/// caller — the `cw` exhibit context memoizes them per bundle, so the
/// temporal exhibit reuses the rows the Table 8 render already computed.
pub fn stability_with(
    deployment: &Deployment,
    a: YearView<'_>,
    b: YearView<'_>,
    t8a: &[overlap::OverlapRow],
    t8b: &[overlap::OverlapRow],
) -> StabilityReport {
    // Per-region top-3 ASes on Telnet/23 (the most stable botnet-driven
    // surface), compared across years.
    let regions = deployment.greynoise_provider_regions();
    let mut jaccards = Vec::new();
    for (provider, region) in &regions {
        let ips: Vec<Ipv4Addr> = deployment
            .vantages
            .iter()
            .filter(|v| {
                v.collector == CollectorKind::GreyNoise
                    && v.provider == *provider
                    && v.region == *region
            })
            .map(|v| v.ip)
            .collect();
        let tops = |d: &Dataset| -> BTreeSet<String> {
            let freqs = d
                .query()
                .at(&ips)
                .slice(TrafficSlice::TelnetPort23)
                .char_freqs(CharKind::TopAs);
            top_k_of(&freqs, 3).into_iter().collect()
        };
        let ta = tops(a.dataset);
        let tb = tops(b.dataset);
        if !ta.is_empty() || !tb.is_empty() {
            jaccards.push(jaccard(&ta, &tb));
        }
    }

    let telescope_overlap = t8a
        .iter()
        .map(|ra| {
            let rb = t8b.iter().find(|r| r.port == ra.port);
            (ra.port, ra.tel_cloud, rb.and_then(|r| r.tel_cloud))
        })
        .collect();

    StabilityReport {
        years: (a.year, b.year),
        top_as_jaccard: cw_stats::descriptive::mean(&jaccards).unwrap_or(0.0),
        telescope_overlap,
        regions_compared: jaccards.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use cw_scanners::population::ScenarioYear;

    #[test]
    fn jaccard_basics() {
        let a: BTreeSet<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let b: BTreeSet<String> = ["x", "y", "w"].iter().map(|s| s.to_string()).collect();
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert!((jaccard(&BTreeSet::new(), &BTreeSet::new()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preferences_are_stable_across_years() {
        // §3.4's claim, asserted end-to-end at reduced scale: the same seed
        // family in two years keeps similar top ASes and keeps the SSH <
        // Telnet telescope-overlap ordering.
        let a = crate::Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(3));
        let b = crate::Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2020).with_seed(3));
        let tel_a = a.telescope.borrow();
        let tel_b = b.telescope.borrow();
        let r = stability(
            &a.deployment,
            YearView {
                year: a.config.year.year(),
                dataset: &a.dataset,
                telescope: &tel_a,
            },
            YearView {
                year: b.config.year.year(),
                dataset: &b.dataset,
                telescope: &tel_b,
            },
        );
        assert_eq!(r.years, (2021, 2020));
        assert!(r.regions_compared > 30);
        assert!(
            r.top_as_jaccard > 0.4,
            "top-AS similarity only {:.2}",
            r.top_as_jaccard
        );
        // Telescope-avoidance ordering stable: port 23 ≥ port 22 both years.
        let get = |port: u16| {
            r.telescope_overlap
                .iter()
                .find(|(p, _, _)| *p == port)
                .cloned()
                .unwrap()
        };
        let (_, t23a, t23b) = get(23);
        let (_, t22a, t22b) = get(22);
        assert!(t23a.unwrap() > t22a.unwrap());
        assert!(t23b.unwrap() > t22b.unwrap());
    }
}
