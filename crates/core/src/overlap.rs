//! Tables 8 and 9: who avoids the telescope.
//!
//! Table 8 computes, per port, the fraction of source IPs that touched at
//! least one cloud (or education) vantage and also sent at least one packet
//! to the telescope on the same port — plus the cloud∩EDU overlap. Table 9
//! repeats the computation for *attacker* IPs (sources with at least one
//! §3.2-malicious event).

use crate::dataset::Dataset;
use crate::query::{Plan, PlanStore, ScanExec};
use cw_honeypot::deployment::{CollectorKind, Deployment, NetworkKind};
use cw_honeypot::telescope::Telescope;
use cw_protocols::iana::POPULAR_PORTS;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// One Table 8 row.
#[derive(Debug, Clone, Copy)]
pub struct OverlapRow {
    /// Destination port.
    pub port: u16,
    /// |Tel ∩ Cloud| / |Cloud| (None when the cloud set is empty).
    pub tel_cloud: Option<f64>,
    /// |Tel ∩ EDU| / |EDU|.
    pub tel_edu: Option<f64>,
    /// |Cloud ∩ EDU| / |Cloud|.
    pub cloud_edu: Option<f64>,
}

/// One Table 9 row (attacker IPs only).
#[derive(Debug, Clone, Copy)]
pub struct MaliciousOverlapRow {
    /// Destination port.
    pub port: u16,
    /// |Tel ∩ malicious-Cloud| / |malicious-Cloud|.
    pub tel_cloud: Option<f64>,
    /// |Tel ∩ malicious-EDU| / |malicious-EDU| — `None` (×) on ports where
    /// Honeytrap cannot verify maliciousness (credential ports).
    pub tel_edu: Option<f64>,
}

/// Cloud vantage IPs (the GreyNoise fleet — the paper's "440 cloud vantage
/// points").
pub fn cloud_ips(deployment: &Deployment) -> Vec<Ipv4Addr> {
    deployment
        .vantages
        .iter()
        .filter(|v| v.collector == CollectorKind::GreyNoise && v.kind == NetworkKind::Cloud)
        .map(|v| v.ip)
        .collect()
}

/// Education vantage IPs (the Stanford + Merit Honeytrap /26s).
pub fn edu_ips(deployment: &Deployment) -> Vec<Ipv4Addr> {
    deployment
        .vantages
        .iter()
        .filter(|v| v.kind == NetworkKind::Education)
        .map(|v| v.ip)
        .collect()
}

fn overlap_fraction(
    sources: &BTreeSet<Ipv4Addr>,
    telescope: &Telescope,
    port: u16,
) -> Option<f64> {
    if sources.is_empty() {
        return None;
    }
    let hits = sources
        .iter()
        .filter(|&&s| telescope.saw_source_on_port(s, port))
        .count();
    Some(100.0 * hits as f64 / sources.len() as f64)
}

fn set_overlap(a: &BTreeSet<Ipv4Addr>, b: &BTreeSet<Ipv4Addr>) -> Option<f64> {
    if a.is_empty() {
        return None;
    }
    let hits = a.iter().filter(|s| b.contains(*s)).count();
    Some(100.0 * hits as f64 / a.len() as f64)
}

/// Table 9's port list.
pub const TABLE9_PORTS: [u16; 6] = [23, 2323, 80, 8080, 2222, 22];

/// The four declared plans behind Tables 8 and 9, in fixed order:
/// `[cloud-all, cloud-malicious, edu-all, edu-malicious]`. Both tables
/// group by destination port over the same two fleets — Table 8 over all
/// sources, Table 9 over attacker sources only — so the plans pair up on
/// enumeration domain and the executor fuses them into one pass per fleet.
pub fn table8_and_9_plans(deployment: &Deployment) -> Vec<Plan> {
    let cloud = cloud_ips(deployment);
    let edu = edu_ips(deployment);
    vec![
        Plan::at(&cloud).grouped_by_port(&POPULAR_PORTS).distinct_srcs(),
        Plan::at(&cloud)
            .malicious()
            .grouped_by_port(&TABLE9_PORTS)
            .distinct_srcs(),
        // Honeytrap can only verify maliciousness from payloads: on the
        // credential ports the Table 9 EDU column is the paper's ×.
        Plan::at(&edu).grouped_by_port(&POPULAR_PORTS).distinct_srcs(),
        Plan::at(&edu)
            .malicious()
            .grouped_by_port(&[80, 8080])
            .distinct_srcs(),
    ]
}

/// Tables 8 and 9 through a [`ScanExec`] — two fused column passes (one
/// per fleet) when the plans were prefetched or built locally, the same
/// four sets either way.
pub fn table8_and_9_with(
    exec: &ScanExec<'_>,
    deployment: &Deployment,
    telescope: &Telescope,
) -> (Vec<OverlapRow>, Vec<MaliciousOverlapRow>) {
    let plans = table8_and_9_plans(deployment);
    let mut sets = plans.iter().map(|p| exec.run(p).into_port_srcs());
    let cloud_sets = [sets.next().unwrap(), sets.next().unwrap()];
    let edu_sets = [sets.next().unwrap(), sets.next().unwrap()];
    let rows8 = POPULAR_PORTS
        .iter()
        .map(|&port| {
            let cloud_srcs = &cloud_sets[0][&port];
            let edu_srcs = &edu_sets[0][&port];
            OverlapRow {
                port,
                tel_cloud: overlap_fraction(cloud_srcs, telescope, port),
                tel_edu: overlap_fraction(edu_srcs, telescope, port),
                cloud_edu: set_overlap(cloud_srcs, edu_srcs),
            }
        })
        .collect();
    let rows9 = TABLE9_PORTS
        .iter()
        .map(|&port| {
            let edu_col = if matches!(port, 80 | 8080) {
                overlap_fraction(&edu_sets[1][&port], telescope, port)
            } else {
                None
            };
            MaliciousOverlapRow {
                port,
                tel_cloud: overlap_fraction(&cloud_sets[1][&port], telescope, port),
                tel_edu: edu_col,
            }
        })
        .collect();
    (rows8, rows9)
}

/// Tables 8 and 9 from **two shared column scans** (one per fleet):
/// builds a local [`PlanStore`] from [`table8_and_9_plans`] so the four
/// sweeps fuse even without the registry's prefetch.
pub fn table8_and_9(
    dataset: &Dataset,
    deployment: &Deployment,
    telescope: &Telescope,
) -> (Vec<OverlapRow>, Vec<MaliciousOverlapRow>) {
    let store = PlanStore::build(dataset, &table8_and_9_plans(deployment))
        .expect("overlap plans validate");
    table8_and_9_with(&ScanExec::with_store(dataset, &store), deployment, telescope)
}

/// Table 8 over the paper's 10 popular ports.
pub fn table8(
    dataset: &Dataset,
    deployment: &Deployment,
    telescope: &Telescope,
) -> Vec<OverlapRow> {
    table8_and_9(dataset, deployment, telescope).0
}

/// Table 9: attacker-IP overlap with the telescope.
pub fn table9(
    dataset: &Dataset,
    deployment: &Deployment,
    telescope: &Telescope,
) -> Vec<MaliciousOverlapRow> {
    table8_and_9(dataset, deployment, telescope).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use cw_scanners::population::ScenarioYear;

    #[test]
    fn table8_shapes_hold_on_fast_scenario() {
        let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(21));
        let tel = s.telescope.borrow();
        let rows = table8(&s.dataset, &s.deployment, &tel);
        assert_eq!(rows.len(), 10);
        let get = |p: u16| rows.iter().find(|r| r.port == p).unwrap();
        // The headline shape: Telnet scanners barely avoid the telescope,
        // SSH scanners almost always do.
        let t23 = get(23).tel_cloud.unwrap();
        let t22 = get(22).tel_cloud.unwrap();
        assert!(
            t23 > t22 + 20.0,
            "telnet overlap {t23:.0}% should exceed ssh overlap {t22:.0}%"
        );
        // Cloud∩EDU is high everywhere it is computable.
        for r in &rows {
            if let Some(ce) = r.cloud_edu {
                assert!(ce > 30.0, "port {} cloud∩edu {ce:.0}%", r.port);
            }
        }
    }

    #[test]
    fn table9_malicious_ssh_avoidance() {
        let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(21));
        let tel = s.telescope.borrow();
        let rows = table9(&s.dataset, &s.deployment, &tel);
        let get = |p: u16| rows.iter().find(|r| r.port == p).unwrap();
        let t23 = get(23).tel_cloud.unwrap();
        let t22 = get(22).tel_cloud.unwrap();
        assert!(t23 > t22, "attackers: telnet {t23:.0}% vs ssh {t22:.0}%");
        // EDU credential ports are uncomputable.
        assert!(get(22).tel_edu.is_none());
        assert!(get(23).tel_edu.is_none());
    }
}
