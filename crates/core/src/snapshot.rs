//! The content-addressed simulate-once cache.
//!
//! Simulating a full-scale year takes seconds; every one of the paper's
//! tables and figures consumes the *same* handful of simulation results.
//! This module persists each result ([`SimBundle`]) to disk keyed by the
//! exact configuration that produced it, so a `(year, seed, scale,
//! horizon)` world is simulated once per machine, ever — every later
//! exhibit render pays only a deserialization.
//!
//! # Addressing
//!
//! A snapshot's filename is the SHA-256 of a canonical key string over the
//! full configuration *and* the snapshot format version. Changing any
//! parameter — or the wire format — changes the address, so stale entries
//! are never read; they are simply unreferenced files (the cache directory
//! can be deleted at any time).
//!
//! # Integrity
//!
//! Snapshots use the sealed container of [`cw_netsim::snap`]: magic bytes,
//! format version, exact payload length, and a SHA-256 trailer. A missing,
//! truncated, corrupted, version-mismatched, or wrong-config file is
//! treated identically: the load quietly fails and [`load_or_run`]
//! re-simulates. The cache can therefore never change results, only
//! wall-clock time — the same contract the fleet runner makes for thread
//! count.
//!
//! A file that *exists* at the right address but fails to load is not
//! silently re-simulated over: [`load_or_run`] renames it to
//! `<name>.cwsnap.corrupt` with a one-line stderr warning before healing
//! the cache, so repeated corruption (a flaky disk, a truncating sync
//! tool) stays visible instead of costing a quiet re-simulation each run.
//! [`load_from`] itself stays a pure read with no side effects.
//!
//! # Location
//!
//! `out/.cache` under the working directory by default (next to the
//! `out/*.txt` exhibits), overridable with the `CW_CACHE_DIR` environment
//! variable. Writes are atomic (temp file + rename), so concurrent
//! processes at worst both simulate; they never observe a half-written
//! snapshot.

use crate::bundle::SimBundle;
use crate::scenario::ScenarioConfig;
use cw_honeypot::deployment::Deployment;
use cw_netsim::sha256::sha256_hex;
use cw_netsim::snap::{self, SnapReader, SnapWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Process-global count of actual simulations performed by
/// [`load_or_run`]/[`load_or_run_in`] (cache hits don't count). The
/// observability hook behind the sweep cache-contract tests: a sweep over
/// an N-cell grid must raise this by exactly the number of *distinct*
/// worlds cold, and by zero warm. Monotone for the life of the process —
/// callers measure deltas.
static SIMULATIONS: AtomicU64 = AtomicU64::new(0);

/// The current value of the process-global simulate-call counter:
/// incremented once per actual simulation inside
/// [`load_or_run`]/[`load_or_run_in`], never by a cache hit. Monotone for
/// the life of the process — callers measure deltas around the code under
/// test (the sweep cache-contract tests in `tests/sweep.rs`).
pub fn simulations_performed() -> u64 {
    SIMULATIONS.load(Ordering::Relaxed)
}

/// Environment variable overriding the cache directory.
pub const CACHE_DIR_ENV: &str = "CW_CACHE_DIR";

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "out/.cache";

/// The active cache directory: `CW_CACHE_DIR` if set, else
/// [`DEFAULT_CACHE_DIR`].
pub fn cache_dir() -> PathBuf {
    std::env::var_os(CACHE_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(DEFAULT_CACHE_DIR))
}

/// The canonical content key of a configuration. Scale enters as its IEEE
/// bit pattern — `0.06` and `0.06000000000000001` are different worlds and
/// must not share a snapshot. The shard count deliberately does *not*
/// enter the key: sharded and unsharded runs of one configuration are
/// byte-identical, so every shard count shares one snapshot.
fn cache_key(config: &ScenarioConfig) -> String {
    let mut canonical = format!(
        "cw-snapshot-v{} year={} seed={:#x} scale={:016x} horizon={}",
        snap::FORMAT_VERSION,
        config.year.year(),
        config.seed,
        config.scale.to_bits(),
        config.horizon.secs(),
    );
    // A non-trivial fault plan is a different world and gets its own
    // address; the no-fault plan appends nothing, so fault-free worlds
    // keep the exact addresses they had before fault injection existed.
    if let Some(fragment) = config.fault.cache_key_fragment() {
        canonical.push_str(&fragment);
    }
    sha256_hex(canonical.as_bytes())
}

/// The snapshot path for `config` inside `dir`.
pub fn snapshot_path_in(dir: &Path, config: &ScenarioConfig) -> PathBuf {
    dir.join(format!("{}.cwsnap", cache_key(config)))
}

/// Seal and atomically write `bundle` into `dir`, returning the path.
pub fn store_in(dir: &Path, bundle: &SimBundle) -> std::io::Result<PathBuf> {
    let mut w = SnapWriter::new();
    bundle.snap_write(&mut w);
    let sealed = snap::seal(&w.into_bytes());
    std::fs::create_dir_all(dir)?;
    let path = snapshot_path_in(dir, &bundle.config);
    // Unique temp name per process: two concurrent writers race benignly —
    // rename is atomic and both carry identical bytes.
    let tmp = dir.join(format!(
        "{}.tmp.{}",
        cache_key(&bundle.config),
        std::process::id()
    ));
    std::fs::write(&tmp, &sealed)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Load the snapshot for `config` from `dir`, or `None` if it is missing
/// or fails *any* integrity check (container hash, format version, decode,
/// trailing bytes, config match). Every failure is silent by design — the
/// caller's recovery is always the same: re-simulate.
pub fn load_from(dir: &Path, config: &ScenarioConfig, deployment: &Deployment) -> Option<SimBundle> {
    let bytes = std::fs::read(snapshot_path_in(dir, config)).ok()?;
    let payload = snap::unseal(&bytes).ok()?;
    let mut r = SnapReader::new(payload);
    let bundle = SimBundle::snap_read(&mut r, deployment).ok()?;
    if !r.is_exhausted() {
        return None;
    }
    // Hash collisions aside, this catches a mis-filed snapshot (e.g. a
    // copied cache file) — the decoded config must be the requested one.
    if !bundle.matches(config) {
        return None;
    }
    Some(bundle)
}

/// Where a bundle came from, with the wall time each path cost — the bench
/// harness records these as `snapshot_read_secs` / `snapshot_write_secs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Provenance {
    /// Deserialized from a valid snapshot.
    CacheHit {
        /// Wall time of the read + decode.
        read_secs: f64,
    },
    /// Simulated (cache disabled, cold, or invalid).
    Simulated {
        /// Wall time of the simulation + bundle fold.
        sim_secs: f64,
        /// Wall time of the snapshot write, when one was attempted and
        /// succeeded (`None` with the cache disabled or on I/O failure).
        write_secs: Option<f64>,
    },
}

impl Provenance {
    /// Was this bundle served from the cache?
    pub fn is_hit(&self) -> bool {
        matches!(self, Provenance::CacheHit { .. })
    }
}

/// Load `config`'s bundle from the active cache directory, simulating (and
/// filling the cache) on any miss. `use_cache = false` always simulates
/// and leaves the cache untouched — results are identical either way.
pub fn load_or_run(config: ScenarioConfig, use_cache: bool) -> (SimBundle, Provenance) {
    load_or_run_in(&cache_dir(), config, use_cache)
}

/// Move an unloadable snapshot aside as `<name>.cwsnap.corrupt`, warning
/// on stderr. Never touches rendered output; a failed rename only means
/// the corrupt file stays where it was (and will be re-reported).
fn quarantine(path: &Path) {
    let mut quarantined = path.as_os_str().to_os_string();
    quarantined.push(".corrupt");
    let dst = PathBuf::from(quarantined);
    match std::fs::rename(path, &dst) {
        Ok(()) => eprintln!(
            "cw: warning: quarantined corrupt snapshot {} (kept as {})",
            path.display(),
            dst.display()
        ),
        Err(e) => eprintln!(
            "cw: warning: corrupt snapshot {} could not be quarantined: {e}",
            path.display()
        ),
    }
}

/// [`load_or_run`] against an explicit cache directory.
pub fn load_or_run_in(dir: &Path, config: ScenarioConfig, use_cache: bool) -> (SimBundle, Provenance) {
    if use_cache {
        let start = Instant::now();
        let deployment = Deployment::standard();
        if let Some(bundle) = load_from(dir, &config, &deployment) {
            return (
                bundle,
                Provenance::CacheHit {
                    read_secs: start.elapsed().as_secs_f64(),
                },
            );
        }
        // Distinguish a cold cache from a damaged one: a file at the right
        // address that failed to load is quarantined (rename + warning) so
        // repeated corruption is visible; the re-simulation below then
        // heals the cache with a fresh snapshot.
        let path = snapshot_path_in(dir, &config);
        if path.exists() {
            quarantine(&path);
        }
    }
    let start = Instant::now();
    SIMULATIONS.fetch_add(1, Ordering::Relaxed);
    let bundle = SimBundle::run(config);
    let sim_secs = start.elapsed().as_secs_f64();
    let write_secs = if use_cache {
        let start = Instant::now();
        // A failed write only means the next run simulates again.
        store_in(dir, &bundle)
            .ok()
            .map(|_| start.elapsed().as_secs_f64())
    } else {
        None
    };
    (bundle, Provenance::Simulated { sim_secs, write_secs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_scanners::population::ScenarioYear;

    fn test_config(seed: u64) -> ScenarioConfig {
        ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(seed)
            .with_scale(0.01)
    }

    /// A fresh per-test cache directory (env vars are process-global, so
    /// tests pass directories explicitly instead of touching CW_CACHE_DIR).
    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cw-snap-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn equivalent(a: &SimBundle, b: &SimBundle) -> bool {
        a.matches(&b.config)
            && a.stats == b.stats
            && a.dataset.len() == b.dataset.len()
            && a.telescope.total_packets() == b.telescope.total_packets()
            && a.reputation.counts() == b.reputation.counts()
            && a.censys_indexed == b.censys_indexed
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let dir = test_dir("hit");
        let cfg = test_config(41);
        let (cold, p1) = load_or_run_in(&dir, cfg, true);
        assert!(!p1.is_hit());
        assert!(snapshot_path_in(&dir, &cfg).exists());
        let (warm, p2) = load_or_run_in(&dir, cfg, true);
        assert!(p2.is_hit());
        assert!(equivalent(&cold, &warm));
        // Disabling the cache bypasses the valid snapshot entirely.
        let (fresh, p3) = load_or_run_in(&dir, cfg, false);
        assert!(!p3.is_hit());
        assert!(equivalent(&cold, &fresh));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_snapshot_is_silently_resimulated() {
        let dir = test_dir("corrupt");
        let cfg = test_config(42);
        let (cold, _) = load_or_run_in(&dir, cfg, true);
        let path = snapshot_path_in(&dir, &cfg);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();
        let deployment = Deployment::standard();
        // load_from is a pure read: no quarantine side effects.
        assert!(load_from(&dir, &cfg, &deployment).is_none());
        assert!(path.exists());
        let (again, p) = load_or_run_in(&dir, cfg, true);
        assert!(!p.is_hit());
        assert!(equivalent(&cold, &again));
        // The corrupt file was quarantined, not overwritten, and the
        // re-simulation healed the cache in passing.
        let mut corrupt = path.as_os_str().to_os_string();
        corrupt.push(".corrupt");
        assert!(PathBuf::from(corrupt).exists());
        assert!(load_from(&dir, &cfg, &deployment).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_is_silently_resimulated() {
        let dir = test_dir("truncate");
        let cfg = test_config(43);
        let _ = load_or_run_in(&dir, cfg, true);
        let path = snapshot_path_in(&dir, &cfg);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let deployment = Deployment::standard();
        assert!(load_from(&dir, &cfg, &deployment).is_none());
        let (_, p) = load_or_run_in(&dir, cfg, true);
        assert!(!p.is_hit());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatched_snapshot_is_silently_resimulated() {
        let dir = test_dir("version");
        let cfg = test_config(44);
        let _ = load_or_run_in(&dir, cfg, true);
        let path = snapshot_path_in(&dir, &cfg);
        let mut bytes = std::fs::read(&path).unwrap();
        // The u32 format version sits right after the 8 magic bytes.
        bytes[8] = 0xFE;
        std::fs::write(&path, &bytes).unwrap();
        let deployment = Deployment::standard();
        assert!(load_from(&dir, &cfg, &deployment).is_none());
        let (_, p) = load_or_run_in(&dir, cfg, true);
        assert!(!p.is_hit());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misfiled_snapshot_is_rejected_by_config_match() {
        let dir = test_dir("misfiled");
        let cfg_a = test_config(45);
        let cfg_b = test_config(46);
        let _ = load_or_run_in(&dir, cfg_a, true);
        // Plant seed-45's (internally valid) snapshot at seed-46's address.
        std::fs::rename(
            snapshot_path_in(&dir, &cfg_a),
            snapshot_path_in(&dir, &cfg_b),
        )
        .unwrap();
        let deployment = Deployment::standard();
        assert!(load_from(&dir, &cfg_b, &deployment).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_configs_have_distinct_addresses() {
        let dir = PathBuf::from("out/.cache");
        let base = test_config(1);
        let paths = [
            snapshot_path_in(&dir, &base),
            snapshot_path_in(&dir, &base.with_seed(2)),
            snapshot_path_in(&dir, &base.with_scale(0.02)),
            snapshot_path_in(&dir, &ScenarioConfig {
                year: ScenarioYear::Y2020,
                ..base
            }),
        ];
        for (i, a) in paths.iter().enumerate() {
            for b in &paths[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn fault_plans_address_distinct_worlds() {
        use cw_netsim::fault::FaultPlan;
        let dir = PathBuf::from("out/.cache");
        let base = test_config(1);
        // The none plan and an all-defaults config share an address — the
        // legacy fault-free address is unchanged.
        assert_eq!(
            snapshot_path_in(&dir, &base),
            snapshot_path_in(&dir, &base.with_fault(FaultPlan::none())),
        );
        // Every distinct non-trivial plan gets its own address.
        let lossy = base.with_fault(FaultPlan {
            flow_loss: 0.1,
            ..FaultPlan::none()
        });
        let lossier = base.with_fault(FaultPlan {
            flow_loss: 0.2,
            ..FaultPlan::none()
        });
        assert_ne!(snapshot_path_in(&dir, &base), snapshot_path_in(&dir, &lossy));
        assert_ne!(
            snapshot_path_in(&dir, &lossy),
            snapshot_path_in(&dir, &lossier)
        );
    }

    #[test]
    fn shard_count_does_not_change_the_address() {
        // Sharding is byte-invariant, so every shard count must share one
        // snapshot file.
        let dir = PathBuf::from("out/.cache");
        let base = test_config(1);
        for shards in [1, 3, 8] {
            assert_eq!(
                snapshot_path_in(&dir, &base),
                snapshot_path_in(&dir, &base.with_shards(shards)),
            );
        }
    }
}
