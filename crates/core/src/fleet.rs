//! The parallel scenario fleet runner.
//!
//! Every experiment binary ultimately runs a handful of *independent*
//! scenarios — one per (year, seed) pair, or several replicate seeds of the
//! same year. Each run is single-threaded by design (the event loop wires
//! agents with `Rc<RefCell<…>>`, so a [`Scenario`] is not `Send`), but the
//! runs themselves share nothing: this module spreads them across worker
//! threads while keeping every result bit-identical to a serial execution.
//!
//! # Determinism contract
//!
//! Three rules make thread count an *observable no-op*:
//!
//! 1. **Seed splitting, not seed sharing.** Replicate seeds are derived
//!    up front with [`cw_netsim::rng::fork_seed`]`(master, stream_id)` — a
//!    pure function of the master seed and the run's index. No RNG state is
//!    shared between runs, so scheduling cannot perturb any stream.
//! 2. **Per-run construction inside the worker.** A run's world is built,
//!    executed, and folded to a `Send` summary entirely on one worker
//!    thread (the `ScenarioFactory` pattern — closures build the non-`Send`
//!    scenario locally rather than sending it across threads).
//! 3. **Merge in input order.** Workers own static shards (run *i* goes to
//!    worker *i* mod *workers* — no work stealing), and results are
//!    reassembled by input index before any folding. Aggregates like
//!    [`Dataset::absorb`] / `RunStats::absorb` are applied in stream-id
//!    order 0, 1, 2, …, never in completion order.
//!
//! Together: `threads = 1` and `threads = N` produce byte-identical output,
//! so `--threads`/`CW_THREADS` is purely a wall-clock knob. That also makes
//! it safe to *cap* the worker count at the machine's available parallelism
//! (see [`map`]): requesting 8 workers on a 1-core box used to run ~15%
//! *slower* than serial from pure oversubscription — context switching and
//! cache thrash with zero latency to hide — while producing the same bytes.
//! [`map_timed`] exposes per-worker wall clocks so that kind of contention
//! is visible in bench output instead of inferred.
//!
//! # Panic isolation and graceful degradation
//!
//! A fleet job that panics must not take its siblings' finished work with
//! it. Every job runs under `catch_unwind`, is retried **once** with
//! identical inputs (deterministic: a reproducible panic fails twice, a
//! flaky environmental one gets a second chance), and a job that fails
//! both attempts becomes a structured [`JobError`] in that input slot —
//! the other slots still carry their results. [`try_map`] /
//! [`try_map_timed`] expose the per-job `Result`s; the infallible [`map`]
//! / [`map_timed`] wrappers run *every* job first and only then panic
//! with an aggregate report, so a caller that can't degrade still never
//! loses sibling diagnostics. The retry happens on the worker that owns
//! the job (static shards are part of the determinism contract), and
//! isolation is sound because jobs share nothing mutable — each builds
//! its world locally and returns owned `Send` data.
//!
//! # Example: thread count never changes results
//!
//! ```
//! use cw_core::fleet;
//!
//! // Any embarrassingly-parallel job list; here, deriving replicate seeds.
//! let specs: Vec<u64> = (0..16).collect();
//! let serial = fleet::map(specs.clone(), 1, |i, s| {
//!     cw_netsim::rng::fork_seed(0xC10D, *s ^ i as u64)
//! });
//! let parallel = fleet::map(specs, 4, |i, s| {
//!     cw_netsim::rng::fork_seed(0xC10D, *s ^ i as u64)
//! });
//! assert_eq!(serial, parallel);
//! ```

use crate::dataset::Dataset;
use crate::scenario::{Scenario, ScenarioConfig};
use cw_netsim::engine::RunStats;
use cw_netsim::rng::fork_seed;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Decide how many worker threads a fleet should use.
///
/// Precedence: an explicit request (e.g. a `--threads N` flag) wins; then
/// the `CW_THREADS` environment variable; then the machine's available
/// parallelism. The result is clamped to at least 1. `CW_THREADS` values
/// that fail to parse are ignored rather than fatal, so a stray export
/// can't break a pipeline.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("CW_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Decide how many simulation shards a scenario should run with when the
/// caller did not set [`ScenarioConfig::shards`] directly.
///
/// Precedence mirrors [`resolve_threads`]: an explicit request (e.g. a
/// `--shards N` flag) wins; then the `CW_SHARDS` environment variable;
/// otherwise 0 — the "auto" sentinel [`Scenario::run`] resolves to the
/// machine's available parallelism. Unparseable `CW_SHARDS` values are
/// ignored rather than fatal.
pub fn resolve_shards(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("CW_SHARDS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or(0)
}

/// Wall-clock accounting for one fleet worker, as reported by
/// [`map_timed`]. Timing is observability only — it never feeds back into
/// scheduling, so recording it cannot perturb results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerTiming {
    /// Worker (shard) index.
    pub worker: usize,
    /// Number of jobs the worker executed.
    pub jobs: usize,
    /// Wall time the worker spent on its shard, in seconds.
    pub busy_secs: f64,
}

/// A structured per-job failure from a fleet run: the job panicked on
/// both its first attempt and its single deterministic retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Input index of the failed spec.
    pub index: usize,
    /// How many times the job was attempted (always 2: first run + retry).
    pub attempts: u32,
    /// The final panic payload, rendered to text.
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} failed after {} attempts: {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for JobError {}

/// Render a panic payload to text (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one job with panic isolation and a single deterministic retry.
///
/// The retry re-invokes `job` with byte-identical inputs on the same
/// worker: a reproducible panic fails twice and surfaces as a
/// [`JobError`]; a flaky environmental failure (e.g. a transient
/// allocation failure) gets exactly one second chance. Two attempts, no
/// more — retry counts must not depend on runtime conditions.
fn run_job<S, T, F>(job: &F, index: usize, spec: &S) -> Result<T, JobError>
where
    F: Fn(usize, &S) -> T + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| job(index, spec))) {
        Ok(t) => Ok(t),
        Err(first) => {
            eprintln!(
                "cw: warning: fleet job {index} panicked ({}); retrying once",
                panic_message(first)
            );
            match catch_unwind(AssertUnwindSafe(|| job(index, spec))) {
                Ok(t) => Ok(t),
                Err(second) => Err(JobError {
                    index,
                    attempts: 2,
                    message: panic_message(second),
                }),
            }
        }
    }
}

/// Run `job` over every spec on up to `threads` workers, returning results
/// in input order.
///
/// Sharding is static round-robin (spec *i* runs on worker *i* mod
/// *workers*): there is no work stealing and no shared queue, so the
/// assignment of runs to threads is a pure function of the input — part of
/// the determinism contract (although `job` must itself be deterministic
/// for results to be reproducible). With `threads <= 1` (or a single spec)
/// the fleet degrades to a plain serial loop on the calling thread with no
/// thread machinery at all.
///
/// The worker count is additionally capped at the machine's available
/// parallelism: spawning more compute-bound workers than cores cannot
/// finish any sooner — it only adds context-switch and cache-thrash cost —
/// and on a single-core box the cap degrades all the way to the serial
/// loop (an earlier floor of 2 workers made `--threads 8` *slower* than
/// serial there; see `BENCH_scenario.json` history). The cap is safe
/// *because* of the contract: results are reassembled by input index, so
/// the number of workers is unobservable in the output.
///
/// `job` receives `(index, &spec)` so per-run seeds can be derived from
/// the stream id; specs stay owned by the fleet so a panicked job can be
/// retried against the same spec. Only `Send` results come back.
///
/// A job that panics twice (once plus the single retry) makes this call
/// panic — but
/// only after **every** job has run, with an aggregate report of all
/// failures. Callers that can degrade per-job should use [`try_map`].
pub fn map<S, T, F>(specs: Vec<S>, threads: usize, job: F) -> Vec<T>
where
    S: Send + Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    map_timed(specs, threads, job).0
}

/// [`map`] plus per-worker wall-time accounting, so a bench harness can
/// see where fleet time actually goes (e.g. oversubscription on a small
/// machine shows up as every worker being slow, not one straggler).
pub fn map_timed<S, T, F>(specs: Vec<S>, threads: usize, job: F) -> (Vec<T>, Vec<WorkerTiming>)
where
    S: Send + Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    let (results, timings) = try_map_timed(specs, threads, job);
    let errors: Vec<&JobError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    if !errors.is_empty() {
        let report = errors
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        panic!("{} fleet job(s) failed: {report}", errors.len());
    }
    let out = results
        .into_iter()
        .map(|r| r.expect("errors were just reported"))
        .collect();
    (out, timings)
}

/// Fault-tolerant [`map`]: every spec's slot carries `Ok(result)` or the
/// [`JobError`] that job died with, in input order. One poisoned job no
/// longer costs its siblings' finished work.
pub fn try_map<S, T, F>(specs: Vec<S>, threads: usize, job: F) -> Vec<Result<T, JobError>>
where
    S: Send + Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    try_map_timed(specs, threads, job).0
}

/// [`try_map`] plus per-worker wall-time accounting — the primitive every
/// other fleet entry point is built on.
pub fn try_map_timed<S, T, F>(
    specs: Vec<S>,
    threads: usize,
    job: F,
) -> (Vec<Result<T, JobError>>, Vec<WorkerTiming>)
where
    S: Send + Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    let n = specs.len();
    // Cap workers at the hardware: an oversubscribed CPU-bound fleet is
    // strictly slower than a right-sized one, and the input-order merge
    // makes the cap invisible in the results. On a single-core machine the
    // cap collapses to the serial loop below.
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let workers = threads.min(n).min(hardware).max(1);
    if workers <= 1 || n <= 1 {
        let start = std::time::Instant::now();
        let out: Vec<Result<T, JobError>> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| run_job(&job, i, s))
            .collect();
        let timing = WorkerTiming {
            worker: 0,
            jobs: n,
            busy_secs: start.elapsed().as_secs_f64(),
        };
        return (out, vec![timing]);
    }
    // Static shards: worker w owns specs w, w+workers, w+2*workers, …
    let mut shards: Vec<Vec<(usize, &S)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, s) in specs.iter().enumerate() {
        shards[i % workers].push((i, s));
    }
    let job = &job;
    let mut out: Vec<Option<Result<T, JobError>>> = (0..n).map(|_| None).collect();
    let mut timings = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(w, shard)| {
                scope.spawn(move || {
                    let start = std::time::Instant::now();
                    let jobs = shard.len();
                    let results = shard
                        .into_iter()
                        .map(|(i, s)| (i, run_job(job, i, s)))
                        .collect::<Vec<(usize, Result<T, JobError>)>>();
                    let timing = WorkerTiming {
                        worker: w,
                        jobs,
                        busy_secs: start.elapsed().as_secs_f64(),
                    };
                    (results, timing)
                })
            })
            .collect();
        for h in handles {
            // Workers cannot panic out of run_job's catch_unwind; a join
            // error here would mean the shard loop itself is broken.
            let (results, timing) = h.join().expect("fleet worker infrastructure panicked");
            timings.push(timing);
            for (i, t) in results {
                out[i] = Some(t);
            }
        }
    });
    let out = out
        .into_iter()
        .map(|t| t.expect("every shard index produced a result"))
        .collect();
    (out, timings)
}

/// Run one full scenario per config across `threads` workers and fold each
/// to a `Send` summary, in input order.
///
/// This is the `ScenarioFactory` entry point: each worker thread builds its
/// scenario's world from the config, runs the collection window, and
/// applies `fold` locally — the non-`Send` [`Scenario`] (its `Rc<RefCell>`
/// listeners, telescope, and population handles) never leaves the thread
/// that built it. Only the folded `T` crosses back.
pub fn run_scenarios<T, F>(configs: Vec<ScenarioConfig>, threads: usize, fold: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Scenario) -> T + Sync,
{
    map(configs, threads, |i, cfg| fold(i, Scenario::run(*cfg)))
}

/// The merged output of a fleet of replicate runs.
pub struct Replicates {
    /// Per-replicate seeds, in stream-id order (`fork_seed(master, 0..n)`).
    pub seeds: Vec<u64>,
    /// All replicates' events merged in stream-id order.
    pub dataset: Dataset,
    /// Engine counters summed across replicates.
    pub stats: RunStats,
}

/// Run `n` replicates of `base` — identical except for the seed, which is
/// split per replicate with [`fork_seed`]`(base.seed, stream_id)` — and
/// merge their datasets and engine stats in stream-id order.
///
/// The merged result is a pure function of `(base, n)`: thread count only
/// changes wall-clock time.
///
/// ```
/// use cw_core::fleet;
/// use cw_core::scenario::ScenarioConfig;
/// use cw_scanners::population::ScenarioYear;
///
/// let base = ScenarioConfig::fast(ScenarioYear::Y2021).with_scale(0.01);
/// let serial = fleet::run_replicates(base, 3, 1);
/// let parallel = fleet::run_replicates(base, 3, 3);
/// assert_eq!(serial.seeds, parallel.seeds);
/// assert_eq!(serial.stats, parallel.stats);
/// assert_eq!(serial.dataset.len(), parallel.dataset.len());
/// ```
pub fn run_replicates(base: ScenarioConfig, n: usize, threads: usize) -> Replicates {
    run_replicates_timed(base, n, threads).0
}

/// [`run_replicates`] plus the fleet's per-worker wall times, for bench
/// harnesses that need to see how replicate work spread over workers.
pub fn run_replicates_timed(
    base: ScenarioConfig,
    n: usize,
    threads: usize,
) -> (Replicates, Vec<WorkerTiming>) {
    let seeds: Vec<u64> = (0..n as u64).map(|i| fork_seed(base.seed, i)).collect();
    let configs: Vec<ScenarioConfig> = seeds.iter().map(|&s| base.with_seed(s)).collect();
    let (folded, timings) = map_timed(configs, threads, |_, cfg| {
        let s = Scenario::run(*cfg);
        (s.dataset, s.stats)
    });
    let mut dataset = Dataset::empty();
    let mut stats = RunStats::default();
    for (ds, st) in folded {
        dataset.absorb(ds);
        stats.absorb(st);
    }
    (
        Replicates {
            seeds,
            dataset,
            stats,
        },
        timings,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_scanners::population::ScenarioYear;

    #[test]
    fn map_orders_results_by_input_for_any_thread_count() {
        let specs: Vec<u32> = (0..23).collect();
        let serial = map(specs.clone(), 1, |i, s| (i, s * 2));
        for threads in [2, 3, 8, 64] {
            assert_eq!(map(specs.clone(), threads, |i, s| (i, s * 2)), serial);
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        assert_eq!(map(Vec::<u8>::new(), 8, |_, s| *s), Vec::<u8>::new());
        assert_eq!(map(vec![7u8], 8, |i, s| s + i as u8), vec![7]);
    }

    #[test]
    fn try_map_isolates_a_panicking_job_and_keeps_sibling_results() {
        for threads in [1, 4] {
            let specs: Vec<u32> = (0..9).collect();
            let results = try_map(specs, threads, |_, s| {
                if *s == 4 {
                    panic!("injected failure on spec {s}");
                }
                s * 10
            });
            assert_eq!(results.len(), 9);
            for (i, r) in results.iter().enumerate() {
                if i == 4 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.index, 4);
                    assert_eq!(err.attempts, 2);
                    assert!(err.message.contains("injected failure on spec 4"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 10);
                }
            }
        }
    }

    #[test]
    fn flaky_job_succeeds_on_the_single_retry() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let first_calls = AtomicU32::new(0);
        let results = try_map(vec![0u8], 1, |_, _| {
            if first_calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            42u8
        });
        assert_eq!(results, vec![Ok(42)]);
        assert_eq!(first_calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn map_aggregates_failures_only_after_all_jobs_ran() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let completed = AtomicU32::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            map(vec![0u32, 1, 2, 3], 2, |_, s| {
                if *s == 1 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                *s
            })
        }));
        let err = outcome.unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("1 fleet job(s) failed"), "got: {msg}");
        assert!(msg.contains("job 1 failed after 2 attempts: boom"), "got: {msg}");
        // The three healthy jobs all ran to completion before the panic.
        assert_eq!(completed.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn resolve_threads_precedence() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        // CW_THREADS / autodetect paths at least yield a positive count.
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn replicates_merge_is_thread_invariant() {
        let base = ScenarioConfig::fast(ScenarioYear::Y2021).with_scale(0.01);
        let a = run_replicates(base, 3, 1);
        let b = run_replicates(base, 3, 2);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.dataset.len(), b.dataset.len());
        // Distinct forked seeds actually produce distinct worlds.
        assert!(a.seeds.iter().collect::<std::collections::BTreeSet<_>>().len() == 3);
    }
}
