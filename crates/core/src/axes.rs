//! Who / what / why extraction (§3.3).
//!
//! "Across vantage points, we use the chi-squared test to compare scanning
//! traffic using the following axes: who (i.e., which ASes are scanning),
//! what (i.e., what are the top usernames/passwords/payloads being
//! attempted), and why (i.e., the maliciousness of traffic)."
//!
//! Each extractor turns a set of classified events into a frequency map
//! keyed by a category label; payload categories are the §3.3-normalized
//! payload bytes (Date/Host/Content-Length stripped) rendered as a stable
//! digest.

use crate::dataset::ClassifiedEvent;
use cw_detection::Verdict;
use cw_honeypot::capture::Observed;
use cw_netsim::rng::fnv1a;
use std::collections::BTreeMap;

/// Frequency of traffic per source AS ("who").
pub fn as_freqs(events: &[&ClassifiedEvent]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for e in events {
        *m.entry(e.event.src_asn.to_string()).or_insert(0) += 1;
    }
    m
}

/// Frequency of attempted usernames ("what", SSH/Telnet).
pub fn username_freqs(events: &[&ClassifiedEvent]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for e in events {
        if let Observed::Credentials { username, .. } = &e.event.observed {
            *m.entry(username.clone()).or_insert(0) += 1;
        }
    }
    m
}

/// Frequency of attempted passwords ("what", SSH/Telnet).
pub fn password_freqs(events: &[&ClassifiedEvent]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for e in events {
        if let Observed::Credentials { password, .. } = &e.event.observed {
            *m.entry(password.clone()).or_insert(0) += 1;
        }
    }
    m
}

/// Frequency of normalized payloads ("what", HTTP and friends).
///
/// Payloads are normalized per §3.3 (ephemeral Date/Host/Content-Length
/// values removed) and keyed by a short stable digest plus a readable
/// prefix, so top-3 tables stay legible.
pub fn payload_freqs(events: &[&ClassifiedEvent]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for e in events {
        if let Observed::Payload(p) = &e.event.observed {
            let normalized = cw_protocols::http::normalize(p);
            *m.entry(payload_key(&normalized)).or_insert(0) += 1;
        }
    }
    m
}

/// Render a normalized payload as a stable, human-readable category key.
pub fn payload_key(normalized: &[u8]) -> String {
    let digest = fnv1a(normalized);
    let prefix: String = normalized
        .iter()
        .take(24)
        .map(|&b| {
            if (0x20..0x7F).contains(&b) {
                b as char
            } else {
                '.'
            }
        })
        .collect();
    format!("{digest:016x}:{prefix}")
}

/// Malicious/benign event counts ("why"): `(attacker, scanner)`.
pub fn maliciousness_counts(events: &[&ClassifiedEvent]) -> (u64, u64) {
    let mut attacker = 0;
    let mut scanner = 0;
    for e in events {
        match e.verdict {
            Verdict::Attacker => attacker += 1,
            Verdict::Scanner => scanner += 1,
        }
    }
    (attacker, scanner)
}

/// The "why" axis as a two-category frequency map for chi-squared testing.
pub fn maliciousness_freqs(events: &[&ClassifiedEvent]) -> BTreeMap<String, u64> {
    let (attacker, scanner) = maliciousness_counts(events);
    let mut m = BTreeMap::new();
    m.insert("malicious".to_string(), attacker);
    m.insert("not-malicious".to_string(), scanner);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_detection::RuleSet;
    use cw_honeypot::capture::ScanEvent;
    use cw_netsim::asn::Asn;
    use cw_netsim::flow::LoginService;
    use cw_netsim::time::SimTime;
    use std::net::Ipv4Addr;

    fn ev(asn: u32, observed: Observed, port: u16) -> ClassifiedEvent {
        let e = ScanEvent {
            time: SimTime(0),
            src: Ipv4Addr::new(100, 0, 0, 1),
            src_asn: Asn(asn),
            dst: Ipv4Addr::new(20, 0, 0, 1),
            dst_port: port,
            observed,
        };
        let rules = RuleSet::builtin();
        let (verdict, fingerprint) = crate::dataset::classify_event(&e, &rules);
        ClassifiedEvent {
            event: e,
            verdict,
            fingerprint,
        }
    }

    #[test]
    fn as_axis_counts_traffic() {
        let evs = [ev(4134, Observed::Handshake, 22),
            ev(4134, Observed::Handshake, 22),
            ev(174, Observed::Handshake, 22)];
        let refs: Vec<&ClassifiedEvent> = evs.iter().collect();
        let m = as_freqs(&refs);
        assert_eq!(m.get("AS4134"), Some(&2));
        assert_eq!(m.get("AS174"), Some(&1));
    }

    #[test]
    fn credential_axes() {
        let evs = [ev(
                1,
                Observed::Credentials {
                    service: LoginService::Ssh,
                    username: "root".into(),
                    password: "123456".into(),
                },
                22,
            ),
            ev(
                1,
                Observed::Credentials {
                    service: LoginService::Ssh,
                    username: "root".into(),
                    password: "password".into(),
                },
                22,
            ),
            ev(1, Observed::Handshake, 22)];
        let refs: Vec<&ClassifiedEvent> = evs.iter().collect();
        assert_eq!(username_freqs(&refs).get("root"), Some(&2));
        assert_eq!(password_freqs(&refs).len(), 2);
    }

    #[test]
    fn payload_axis_normalizes_ephemeral_headers() {
        let a = cw_protocols::HttpRequest::new("GET", "/")
            .header("Host", "20.1.1.1")
            .to_bytes();
        let b = cw_protocols::HttpRequest::new("GET", "/")
            .header("Host", "20.9.9.9")
            .to_bytes();
        let evs = [ev(1, Observed::Payload(a), 80),
            ev(1, Observed::Payload(b), 80)];
        let refs: Vec<&ClassifiedEvent> = evs.iter().collect();
        let m = payload_freqs(&refs);
        assert_eq!(m.len(), 1, "hosts must normalize away: {m:?}");
        assert_eq!(*m.values().next().unwrap(), 2);
    }

    #[test]
    fn maliciousness_axis() {
        let evs = [ev(1, Observed::Payload(cw_scanners::exploits::log4shell("x")), 80),
            ev(1, Observed::Payload(cw_scanners::exploits::benign_get("ua")), 80),
            ev(1, Observed::Handshake, 80)];
        let refs: Vec<&ClassifiedEvent> = evs.iter().collect();
        assert_eq!(maliciousness_counts(&refs), (1, 2));
        let m = maliciousness_freqs(&refs);
        assert_eq!(m.get("malicious"), Some(&1));
        assert_eq!(m.get("not-malicious"), Some(&2));
    }

    #[test]
    fn payload_key_is_stable_and_readable() {
        let k1 = payload_key(b"GET / HTTP/1.1\r\nabc");
        let k2 = payload_key(b"GET / HTTP/1.1\r\nabc");
        assert_eq!(k1, k2);
        assert!(k1.contains("GET / HTTP/1.1"));
        assert_ne!(payload_key(b"x"), payload_key(b"y"));
    }
}
