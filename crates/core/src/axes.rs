//! Who / what / why extraction (§3.3).
//!
//! "Across vantage points, we use the chi-squared test to compare scanning
//! traffic using the following axes: who (i.e., which ASes are scanning),
//! what (i.e., what are the top usernames/passwords/payloads being
//! attempted), and why (i.e., the maliciousness of traffic)."
//!
//! Each extractor turns a set of classified events into a frequency map
//! keyed by a category label. Counting happens on interned ids (4-byte
//! keys, no string construction in the per-event loop); display strings —
//! including the §3.3 payload normalization (Date/Host/Content-Length
//! stripped) — are resolved once per *distinct* id when the final map is
//! assembled. These extractors sit on the render side of the id↔string
//! boundary documented in `docs/QUERY.md`; when the event group is
//! expressible as a query, [`crate::query::Query::char_freqs`] reaches
//! them without materializing the intermediate event vector.

use crate::dataset::ClassifiedEvent;
use cw_detection::Verdict;
use cw_honeypot::capture::Observed;
use cw_netsim::intern::{CredId, PayloadId};
use cw_netsim::rng::fnv1a;
use std::collections::{BTreeMap, HashMap};

/// Frequency of traffic per source AS ("who").
pub fn as_freqs(events: &[ClassifiedEvent<'_>]) -> BTreeMap<String, u64> {
    let mut by_asn: HashMap<u32, u64> = HashMap::new();
    for e in events {
        *by_asn.entry(e.event.src_asn.0).or_insert(0) += 1;
    }
    by_asn
        .into_iter()
        .map(|(asn, n)| (cw_netsim::asn::Asn(asn).to_string(), n))
        .collect()
}

/// Frequency of attempted usernames ("what", SSH/Telnet).
pub fn username_freqs(events: &[ClassifiedEvent<'_>]) -> BTreeMap<String, u64> {
    cred_freqs(events, |observed| match observed {
        Observed::Credentials { username, .. } => Some(username),
        _ => None,
    })
}

/// Frequency of attempted passwords ("what", SSH/Telnet).
pub fn password_freqs(events: &[ClassifiedEvent<'_>]) -> BTreeMap<String, u64> {
    cred_freqs(events, |observed| match observed {
        Observed::Credentials { password, .. } => Some(password),
        _ => None,
    })
}

/// ID-keyed credential counting; strings resolve once per distinct id.
/// A `CredId` ↔ string mapping is bijective within one interner, so the
/// rendered map has exactly one entry per distinct credential.
fn cred_freqs(
    events: &[ClassifiedEvent<'_>],
    select: impl Fn(Observed) -> Option<CredId>,
) -> BTreeMap<String, u64> {
    let mut by_id: HashMap<CredId, u64> = HashMap::new();
    for e in events {
        if let Some(id) = select(e.event.observed) {
            *by_id.entry(id).or_insert(0) += 1;
        }
    }
    let Some(interner) = events.first().map(|e| e.interner()) else {
        return BTreeMap::new();
    };
    by_id
        .into_iter()
        .map(|(id, n)| (interner.cred(id).to_string(), n))
        .collect()
}

/// Frequency of normalized payloads ("what", HTTP and friends).
///
/// Counting is keyed by [`PayloadId`]; each *distinct* payload is then
/// normalized per §3.3 (ephemeral Date/Host/Content-Length values removed)
/// and rendered once via [`payload_key`]. Distinct ids whose normalized
/// form collides fold into one category (their counts add), exactly as
/// per-event string keying grouped them.
pub fn payload_freqs(events: &[ClassifiedEvent<'_>]) -> BTreeMap<String, u64> {
    let mut by_id: HashMap<PayloadId, u64> = HashMap::new();
    for e in events {
        if let Observed::Payload(p) = e.event.observed {
            *by_id.entry(p).or_insert(0) += 1;
        }
    }
    let Some(interner) = events.first().map(|e| e.interner()) else {
        return BTreeMap::new();
    };
    let mut m = BTreeMap::new();
    for (id, n) in by_id {
        let normalized = cw_protocols::http::normalize(interner.payload(id));
        *m.entry(payload_key(&normalized)).or_insert(0) += n;
    }
    m
}

/// Render a normalized payload as a stable, human-readable category key.
pub fn payload_key(normalized: &[u8]) -> String {
    let digest = fnv1a(normalized);
    let prefix: String = normalized
        .iter()
        .take(24)
        .map(|&b| {
            if (0x20..0x7F).contains(&b) {
                b as char
            } else {
                '.'
            }
        })
        .collect();
    format!("{digest:016x}:{prefix}")
}

/// Malicious/benign event counts ("why"): `(attacker, scanner)`.
pub fn maliciousness_counts(events: &[ClassifiedEvent<'_>]) -> (u64, u64) {
    let mut attacker = 0;
    let mut scanner = 0;
    for e in events {
        match e.verdict {
            Verdict::Attacker => attacker += 1,
            Verdict::Scanner => scanner += 1,
        }
    }
    (attacker, scanner)
}

/// The "why" axis as a two-category frequency map for chi-squared testing.
pub fn maliciousness_freqs(events: &[ClassifiedEvent<'_>]) -> BTreeMap<String, u64> {
    let (attacker, scanner) = maliciousness_counts(events);
    let mut m = BTreeMap::new();
    m.insert("malicious".to_string(), attacker);
    m.insert("not-malicious".to_string(), scanner);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_honeypot::capture::{Capture, ScanEvent};
    use cw_netsim::asn::Asn;
    use cw_netsim::flow::LoginService;
    use cw_netsim::time::SimTime;
    use std::net::Ipv4Addr;

    /// Test fixture: a capture plus the reference (unmemoized)
    /// classification, yielding `ClassifiedEvent`s like a dataset would.
    struct Fixture {
        cap: Capture,
        classified: Vec<(ScanEvent, Verdict, Option<cw_protocols::ProtocolId>)>,
    }

    enum Raw {
        Handshake,
        Payload(Vec<u8>),
        Creds(&'static str, &'static str),
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                cap: Capture::new("axes-test"),
                classified: Vec::new(),
            }
        }

        fn push(&mut self, asn: u32, raw: Raw, port: u16) {
            let observed = match raw {
                Raw::Handshake => Observed::Handshake,
                Raw::Payload(p) => Observed::Payload(self.cap.intern_payload(&p)),
                Raw::Creds(u, p) => Observed::Credentials {
                    service: LoginService::Ssh,
                    username: self.cap.intern_cred(u),
                    password: self.cap.intern_cred(p),
                },
            };
            let e = ScanEvent {
                time: SimTime(0),
                src: Ipv4Addr::new(100, 0, 0, 1),
                src_asn: Asn(asn),
                dst: Ipv4Addr::new(20, 0, 0, 1),
                dst_port: port,
                observed,
            };
            let interner = self.cap.interner();
            let (verdict, fingerprint) = crate::dataset::classify_event(
                &e,
                &interner.borrow(),
                cw_detection::RuleSet::builtin_cached(),
            );
            self.classified.push((e, verdict, fingerprint));
        }

        fn events<'a>(
            &'a self,
            interner: &'a cw_netsim::intern::Interner,
        ) -> Vec<ClassifiedEvent<'a>> {
            self.classified
                .iter()
                .map(|&(event, verdict, fingerprint)| {
                    ClassifiedEvent::new(event, verdict, fingerprint, interner)
                })
                .collect()
        }
    }

    /// Run `f` over the fixture's classified events.
    fn with_events<R>(fx: &Fixture, f: impl FnOnce(&[ClassifiedEvent<'_>]) -> R) -> R {
        let interner = fx.cap.interner();
        let interner = interner.borrow();
        f(&fx.events(&interner))
    }

    #[test]
    fn as_axis_counts_traffic() {
        let mut fx = Fixture::new();
        fx.push(4134, Raw::Handshake, 22);
        fx.push(4134, Raw::Handshake, 22);
        fx.push(174, Raw::Handshake, 22);
        with_events(&fx, |evs| {
            let m = as_freqs(evs);
            assert_eq!(m.get("AS4134"), Some(&2));
            assert_eq!(m.get("AS174"), Some(&1));
        });
    }

    #[test]
    fn credential_axes() {
        let mut fx = Fixture::new();
        fx.push(1, Raw::Creds("root", "123456"), 22);
        fx.push(1, Raw::Creds("root", "password"), 22);
        fx.push(1, Raw::Handshake, 22);
        with_events(&fx, |evs| {
            assert_eq!(username_freqs(evs).get("root"), Some(&2));
            assert_eq!(password_freqs(evs).len(), 2);
        });
    }

    #[test]
    fn payload_axis_normalizes_ephemeral_headers() {
        let a = cw_protocols::HttpRequest::new("GET", "/")
            .header("Host", "20.1.1.1")
            .to_bytes();
        let b = cw_protocols::HttpRequest::new("GET", "/")
            .header("Host", "20.9.9.9")
            .to_bytes();
        let mut fx = Fixture::new();
        fx.push(1, Raw::Payload(a), 80);
        fx.push(1, Raw::Payload(b), 80);
        with_events(&fx, |evs| {
            // The two payloads intern as *different* ids but normalize to
            // one category — the render step must fold their counts.
            let m = payload_freqs(evs);
            assert_eq!(m.len(), 1, "hosts must normalize away: {m:?}");
            assert_eq!(*m.values().next().unwrap(), 2);
        });
    }

    #[test]
    fn maliciousness_axis() {
        let mut fx = Fixture::new();
        fx.push(1, Raw::Payload(cw_scanners::exploits::log4shell("x")), 80);
        fx.push(1, Raw::Payload(cw_scanners::exploits::benign_get("ua")), 80);
        fx.push(1, Raw::Handshake, 80);
        with_events(&fx, |evs| {
            assert_eq!(maliciousness_counts(evs), (1, 2));
            let m = maliciousness_freqs(evs);
            assert_eq!(m.get("malicious"), Some(&1));
            assert_eq!(m.get("not-malicious"), Some(&2));
        });
    }

    #[test]
    fn payload_key_is_stable_and_readable() {
        let k1 = payload_key(b"GET / HTTP/1.1\r\nabc");
        let k2 = payload_key(b"GET / HTTP/1.1\r\nabc");
        assert_eq!(k1, k2);
        assert!(k1.contains("GET / HTTP/1.1"));
        assert_ne!(payload_key(b"x"), payload_key(b"y"));
    }
}
