//! Table 2 / Table 12: do attackers target neighboring services differently?
//!
//! A *neighborhood* is the set of identical honeypots within one provider
//! region (§4.1, footnote 4). For every neighborhood we compare the
//! honeypots' traffic per characteristic with the §3.3 procedure; the table
//! reports the percentage of neighborhoods whose distributions differ
//! significantly (after Bonferroni correction over all neighborhoods
//! tested) and the average effect size φ among the significant ones.

use crate::compare::{compare_groups, CharKind};
use crate::dataset::{Dataset, TrafficSlice};
use crate::query::{Plan, PlanStore, ScanExec};
use cw_honeypot::deployment::{CollectorKind, Deployment};
use std::net::Ipv4Addr;

/// One row of Table 2: a (slice, characteristic) cell.
#[derive(Debug, Clone)]
pub struct NeighborhoodRow {
    /// Traffic slice.
    pub slice: TrafficSlice,
    /// Compared characteristic.
    pub characteristic: CharKind,
    /// Number of neighborhoods with testable data (the paper's `n`).
    pub n: usize,
    /// Percentage of testable neighborhoods with significantly different
    /// distributions.
    pub pct_different: f64,
    /// Mean φ over the significantly different neighborhoods.
    pub avg_phi: Option<f64>,
}

/// The neighborhoods of a deployment: GreyNoise provider regions, as
/// `(name, honeypot IPs)`. The 256-IP Hurricane Electric /24 contributes a
/// deterministic 8-IP sample (including the Tsunami victim's /24 offset 77)
/// so its test has comparable group counts.
pub fn neighborhoods(deployment: &Deployment) -> Vec<(String, Vec<Ipv4Addr>)> {
    let mut out: Vec<(String, Vec<Ipv4Addr>)> = Vec::new();
    for v in &deployment.vantages {
        if v.collector != CollectorKind::GreyNoise {
            continue;
        }
        let region_id = format!("{}/{}", v.provider.slug(), v.region.code);
        match out.iter_mut().find(|(n, _)| *n == region_id) {
            Some((_, ips)) => ips.push(v.ip),
            None => out.push((region_id, vec![v.ip])),
        }
    }
    // Sample the HE /24 down to 8 honeypots.
    for (name, ips) in &mut out {
        if name.starts_with("he/") && ips.len() > 8 {
            let picks: Vec<usize> = vec![0, 25, 50, 77, 100, 150, 200, 250];
            *ips = picks.into_iter().map(|i| ips[i]).collect();
        }
    }
    out
}

/// The honeypots of a neighborhood that can observe a slice (HTTP slices
/// need the payload ports, which only 2 of 4 GreyNoise IPs expose).
fn observing_ips(
    deployment: &Deployment,
    ips: &[Ipv4Addr],
    slice: TrafficSlice,
) -> Vec<Ipv4Addr> {
    let needs_payload_ports = matches!(
        slice,
        TrafficSlice::HttpPort80 | TrafficSlice::HttpAllPorts
    );
    ips.iter()
        .copied()
        .filter(|ip| {
            if !needs_payload_ports {
                return true;
            }
            deployment
                .vantages
                .iter()
                .any(|v| v.ip == *ip && v.payload_ports)
        })
        .collect()
}

/// Minimum events per honeypot for a neighborhood to be testable — tiny
/// samples make the chi-squared approximation meaningless.
const MIN_EVENTS_PER_GROUP: usize = 8;

/// The declared plans one slice's neighborhood analysis needs: one
/// per-honeypot classified scan per observing honeypot of every
/// neighborhood with at least two of them. Characteristics share these
/// plans — a slice's events are gathered once and compared many ways — so
/// Table 2's 14 cells dedupe to one plan per (slice, honeypot) pair.
pub fn cell_plans(deployment: &Deployment, slice: TrafficSlice) -> Vec<Plan> {
    let mut plans = Vec::new();
    for (_name, ips) in &neighborhoods(deployment) {
        let ips = observing_ips(deployment, ips, slice);
        if ips.len() < 2 {
            continue;
        }
        plans.extend(
            ips.iter()
                .map(|&ip| Plan::at(&[ip]).slice(slice).classified()),
        );
    }
    plans
}

/// Analyze one (slice, characteristic) cell across all neighborhoods,
/// through a [`ScanExec`].
pub fn analyze_cell_with(
    exec: &ScanExec<'_>,
    deployment: &Deployment,
    slice: TrafficSlice,
    characteristic: CharKind,
    alpha: f64,
) -> NeighborhoodRow {
    let dataset = exec.dataset();
    let hoods = neighborhoods(deployment);
    // First pass: gather testable neighborhoods (for the Bonferroni m).
    let mut groups_per_hood = Vec::new();
    for (_name, ips) in &hoods {
        let ips = observing_ips(deployment, ips, slice);
        if ips.len() < 2 {
            continue;
        }
        // One plan per honeypot: destination pushdown + slice filter.
        let groups: Vec<Vec<crate::dataset::ClassifiedEvent<'_>>> = ips
            .iter()
            .map(|&ip| {
                exec.run(&Plan::at(&[ip]).slice(slice).classified())
                    .into_rows()
                    .into_iter()
                    .map(|i| dataset.event(i))
                    .collect()
            })
            .collect();
        if groups.iter().all(|g| g.len() >= MIN_EVENTS_PER_GROUP) {
            groups_per_hood.push(groups);
        }
    }
    let m = groups_per_hood.len();
    let mut significant = 0usize;
    let mut tested = 0usize;
    let mut phis = Vec::new();
    for groups in &groups_per_hood {
        if let Some(cmp) = compare_groups(characteristic, groups, alpha, m.max(1)) {
            tested += 1;
            if cmp.significant {
                significant += 1;
                phis.push(cmp.effect.phi);
            }
        }
    }
    NeighborhoodRow {
        slice,
        characteristic,
        n: tested,
        pct_different: if tested == 0 {
            0.0
        } else {
            100.0 * significant as f64 / tested as f64
        },
        avg_phi: cw_stats::descriptive::mean(&phis),
    }
}

/// Analyze one (slice, characteristic) cell without prefetched plans —
/// builds a local [`PlanStore`] so the cell's per-honeypot scans still
/// fuse per honeypot domain.
pub fn analyze_cell(
    dataset: &Dataset,
    deployment: &Deployment,
    slice: TrafficSlice,
    characteristic: CharKind,
    alpha: f64,
) -> NeighborhoodRow {
    let store =
        PlanStore::build(dataset, &cell_plans(deployment, slice)).expect("cell plans validate");
    analyze_cell_with(
        &ScanExec::with_store(dataset, &store),
        deployment,
        slice,
        characteristic,
        alpha,
    )
}

/// The declared plans behind the full Table 2 grid: the union of
/// [`cell_plans`] over its four slices (characteristics reuse them).
pub fn table2_plans(deployment: &Deployment) -> Vec<Plan> {
    [
        TrafficSlice::SshPort22,
        TrafficSlice::TelnetPort23,
        TrafficSlice::HttpPort80,
        TrafficSlice::HttpAllPorts,
    ]
    .into_iter()
    .flat_map(|slice| cell_plans(deployment, slice))
    .collect()
}

/// The full Table 2 cell list (4 slices × their characteristics), through
/// a [`ScanExec`].
pub fn table2_with(exec: &ScanExec<'_>, deployment: &Deployment) -> Vec<NeighborhoodRow> {
    let mut rows = Vec::new();
    for slice in [TrafficSlice::SshPort22, TrafficSlice::TelnetPort23] {
        for ch in [
            CharKind::TopAs,
            CharKind::FracMalicious,
            CharKind::TopUsername,
            CharKind::TopPassword,
        ] {
            rows.push(analyze_cell_with(exec, deployment, slice, ch, 0.05));
        }
    }
    for slice in [TrafficSlice::HttpPort80, TrafficSlice::HttpAllPorts] {
        for ch in [CharKind::TopAs, CharKind::FracMalicious, CharKind::TopPayload] {
            rows.push(analyze_cell_with(exec, deployment, slice, ch, 0.05));
        }
    }
    rows
}

/// The full Table 2 without prefetched plans: one local [`PlanStore`]
/// fuses the grid's scans to one pass per (slice-observing honeypot).
pub fn table2(dataset: &Dataset, deployment: &Deployment) -> Vec<NeighborhoodRow> {
    let store =
        PlanStore::build(dataset, &table2_plans(deployment)).expect("table2 plans validate");
    table2_with(&ScanExec::with_store(dataset, &store), deployment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use cw_scanners::population::ScenarioYear;

    #[test]
    fn neighborhood_listing_has_region_granularity() {
        let d = Deployment::standard();
        let hoods = neighborhoods(&d);
        // 47 cloud regions + HE.
        assert_eq!(hoods.len(), 48);
        let he = hoods.iter().find(|(n, _)| n.starts_with("he/")).unwrap();
        assert_eq!(he.1.len(), 8);
        let aws_sg = hoods.iter().find(|(n, _)| n == "aws/AP-SG").unwrap();
        assert_eq!(aws_sg.1.len(), 4);
    }

    #[test]
    fn table2_runs_on_a_fast_scenario() {
        let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(3));
        let rows = table2(&s.dataset, &s.deployment);
        assert_eq!(rows.len(), 14);
        for r in &rows {
            assert!(r.pct_different >= 0.0 && r.pct_different <= 100.0);
            if let Some(phi) = r.avg_phi {
                assert!((0.0..=1.0).contains(&phi));
            }
        }
        // The SSH top-AS cell must have found testable neighborhoods.
        let ssh_as = &rows[0];
        assert_eq!(ssh_as.characteristic, CharKind::TopAs);
        assert!(ssh_as.n > 5, "only {} testable neighborhoods", ssh_as.n);
    }
}
