//! §8 recommendations, derived from the measured data.
//!
//! The paper closes with recommendations for researchers and operators.
//! Each one is a claim backed by a measurement in this reproduction; this
//! module re-checks the supporting evidence against a scenario run and
//! reports which recommendations the data currently supports. The
//! `recommendations` binary prints the report.

use crate::compare::CharKind;
use crate::dataset::{Dataset, TrafficSlice};
use crate::figure1;
use crate::geography::{table4, table5, MostDifferentRegion};
use crate::neighborhood::{table2, NeighborhoodRow};
use crate::overlap::{table8, table9, MaliciousOverlapRow, OverlapRow};
use crate::ports::{protocol_breakdown, ProtocolBreakdownRow};
use cw_detection::ReputationDb;
use cw_honeypot::deployment::Deployment;
use cw_honeypot::telescope::Telescope;
use cw_netsim::geo::RegionPairKind;

/// One §8 recommendation with its evidence check.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Short imperative title (as in §8).
    pub title: &'static str,
    /// The evidence summary computed from this run.
    pub evidence: String,
    /// Does this run's data support the recommendation?
    pub supported: bool,
}

/// The derived tables recommendation checks lean on, precomputed by the
/// caller — the `cw` exhibit context memoizes them per bundle, so the
/// recommendations render reuses rows the table exhibits already built.
pub struct Products<'a> {
    /// Table 2 neighborhood rows.
    pub table2: &'a [NeighborhoodRow],
    /// Table 4 geography grid.
    pub table4: &'a [MostDifferentRegion],
    /// Table 8 telescope-overlap rows.
    pub table8: &'a [OverlapRow],
    /// Table 9 attacker-overlap rows.
    pub table9: &'a [MaliciousOverlapRow],
    /// Port-80 protocol breakdown (Table 11's left half).
    pub breakdown80: &'a [ProtocolBreakdownRow],
}

/// Evaluate all §8 recommendations against one run's measured data.
///
/// Takes the analysis inputs granularly (rather than a whole
/// `Scenario`) so the caller can supply either a live run or a restored
/// [`crate::bundle::SimBundle`]: `indexed_services` is the number of
/// services the simulated search engines had indexed at window end.
pub fn evaluate(
    dataset: &Dataset,
    deployment: &Deployment,
    tel: &Telescope,
    reputation: &ReputationDb,
    indexed_services: usize,
) -> Vec<Recommendation> {
    let t2 = table2(dataset, deployment);
    let t4 = table4(dataset, deployment);
    let t8 = table8(dataset, deployment, tel);
    let t9 = table9(dataset, deployment, tel);
    let (b80, _) = protocol_breakdown(dataset, deployment, reputation, 80);
    evaluate_with(
        dataset,
        deployment,
        tel,
        indexed_services,
        &Products {
            table2: &t2,
            table4: &t4,
            table8: &t8,
            table9: &t9,
            breakdown80: &b80,
        },
    )
}

/// [`evaluate`] over caller-supplied derived tables (see [`Products`]).
pub fn evaluate_with(
    dataset: &Dataset,
    deployment: &Deployment,
    tel: &Telescope,
    indexed_services: usize,
    products: &Products<'_>,
) -> Vec<Recommendation> {
    let mut out = Vec::new();

    // 1. Collect scan traffic from networks that host services.
    {
        let ssh = products
            .table8
            .iter()
            .find(|r| r.port == 22)
            .and_then(|r| r.tel_cloud)
            .unwrap_or(100.0);
        let mal_ssh = products
            .table9
            .iter()
            .find(|r| r.port == 22)
            .and_then(|r| r.tel_cloud)
            .unwrap_or(100.0);
        out.push(Recommendation {
            title: "Collect scan traffic from networks that host services",
            evidence: format!(
                "only {ssh:.0}% of cloud-SSH scanner IPs and {mal_ssh:.0}% of SSH attacker IPs \
                 appear in the telescope — telescopes are blind to them"
            ),
            supported: ssh < 50.0 && mal_ssh < 25.0,
        });
    }

    // 2. Consider an IP address' service history.
    {
        // Evidence comes from the leak experiment; here we check the
        // in-scenario proxy: indexed GreyNoise services draw miner bursts.
        let indexed = indexed_services;
        out.push(Recommendation {
            title: "Consider an IP address' service history",
            evidence: format!(
                "{indexed} services indexed by the search engines this week; the leak \
                 experiment (table3) shows indexed services draw 2-12x more traffic"
            ),
            supported: indexed > 50,
        });
    }

    // 3. Consider that attackers scan unexpected protocols.
    {
        let other = products
            .breakdown80
            .iter()
            .find(|r| !r.is_http)
            .map(|r| r.pct_of_scanners)
            .unwrap_or(0.0);
        out.push(Recommendation {
            title: "Consider that attackers scan unexpected protocols",
            evidence: format!(
                "{other:.0}% of port-80 scanners at the Honeytrap fleets do not speak HTTP; \
                 port-based protocol inference misses all of them"
            ),
            supported: other > 3.0,
        });
    }

    // 4. Account for differences amongst neighboring IPs.
    {
        let max_dif = products
            .table2
            .iter()
            .map(|r| r.pct_different)
            .fold(0.0f64, f64::max);
        out.push(Recommendation {
            title: "Account for differences amongst neighboring IPs",
            evidence: format!(
                "up to {max_dif:.0}% of neighborhoods see significantly different traffic on \
                 some characteristic — one honeypot per region is not representative"
            ),
            supported: max_dif > 20.0,
        });
    }

    // 5. Deploy honeypots across geographies (AP above all).
    {
        let rows = products.table4;
        let named = rows.iter().filter(|r| r.region.is_some()).count();
        let ap = rows
            .iter()
            .filter(|r| {
                r.region
                    .as_ref()
                    .map(|c| c.starts_with("AP-"))
                    .unwrap_or(false)
            })
            .count();
        let cells = table5(
            dataset,
            deployment,
            TrafficSlice::TelnetPort23,
            CharKind::TopUsername,
        );
        let get = |b: RegionPairKind| {
            cells
                .iter()
                .find(|c| c.bucket == b)
                .map(|c| c.pct_similar)
                .unwrap_or(100.0)
        };
        let us = get(RegionPairKind::WithinUs);
        let apac = get(RegionPairKind::WithinApac);
        out.push(Recommendation {
            title: "Deploy honeypots across geographies (especially Asia Pacific)",
            evidence: format!(
                "{ap}/{named} most-different regions are Asia-Pacific; within-US Telnet-username \
                 similarity {us:.0}% vs within-APAC {apac:.0}% — an extra AP region buys more \
                 new signal than an extra US region"
            ),
            supported: named > 0 && ap * 2 >= named && apac <= us,
        });
    }

    // 6. Consider biases when deploying blocklists.
    {
        // Evidence: the structure preferences mean a blocklist built from
        // one IP's traffic misses botnets latched elsewhere.
        let pref = figure1::slash16_first_preference(tel, 22).unwrap_or(1.0);
        out.push(Recommendation {
            title: "Consider biases when deploying blocklists",
            evidence: format!(
                "scanner targeting is structurally biased (e.g. {pref:.1}x /16-first preference \
                 on port 22); blocklists sourced from one vantage inherit its bias"
            ),
            supported: pref > 2.0,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use cw_scanners::population::ScenarioYear;

    #[test]
    fn all_recommendations_supported_by_fast_scenario() {
        let s = crate::scenario::Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(8));
        let tel = s.telescope.borrow();
        let indexed = s.handles.censys.borrow().len() + s.handles.shodan.borrow().len();
        let recs = evaluate(
            &s.dataset,
            &s.deployment,
            &tel,
            &s.handles.reputation,
            indexed,
        );
        assert_eq!(recs.len(), 6);
        for r in &recs {
            assert!(r.supported, "unsupported: {} — {}", r.title, r.evidence);
        }
    }
}
