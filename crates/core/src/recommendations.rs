//! §8 recommendations, derived from the measured data.
//!
//! The paper closes with recommendations for researchers and operators.
//! Each one is a claim backed by a measurement in this reproduction; this
//! module re-checks the supporting evidence against a scenario run and
//! reports which recommendations the data currently supports. The
//! `recommendations` binary prints the report.

use crate::compare::CharKind;
use crate::dataset::TrafficSlice;
use crate::figure1;
use crate::geography::table5;
use crate::neighborhood::table2;
use crate::overlap::{table8, table9};
use crate::ports::protocol_breakdown;
use crate::scenario::Scenario;
use cw_netsim::geo::RegionPairKind;

/// One §8 recommendation with its evidence check.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Short imperative title (as in §8).
    pub title: &'static str,
    /// The evidence summary computed from this run.
    pub evidence: String,
    /// Does this run's data support the recommendation?
    pub supported: bool,
}

/// Evaluate all §8 recommendations against a scenario.
pub fn evaluate(s: &Scenario) -> Vec<Recommendation> {
    let mut out = Vec::new();
    let tel = s.telescope.borrow();

    // 1. Collect scan traffic from networks that host services.
    {
        let t8 = table8(&s.dataset, &s.deployment, &tel);
        let ssh = t8
            .iter()
            .find(|r| r.port == 22)
            .and_then(|r| r.tel_cloud)
            .unwrap_or(100.0);
        let t9 = table9(&s.dataset, &s.deployment, &tel);
        let mal_ssh = t9
            .iter()
            .find(|r| r.port == 22)
            .and_then(|r| r.tel_cloud)
            .unwrap_or(100.0);
        out.push(Recommendation {
            title: "Collect scan traffic from networks that host services",
            evidence: format!(
                "only {ssh:.0}% of cloud-SSH scanner IPs and {mal_ssh:.0}% of SSH attacker IPs \
                 appear in the telescope — telescopes are blind to them"
            ),
            supported: ssh < 50.0 && mal_ssh < 25.0,
        });
    }

    // 2. Consider an IP address' service history.
    {
        // Evidence comes from the leak experiment; here we check the
        // in-scenario proxy: indexed GreyNoise services draw miner bursts.
        let indexed = s.handles.censys.borrow().len() + s.handles.shodan.borrow().len();
        out.push(Recommendation {
            title: "Consider an IP address' service history",
            evidence: format!(
                "{indexed} services indexed by the search engines this week; the leak \
                 experiment (table3) shows indexed services draw 2-12x more traffic"
            ),
            supported: indexed > 50,
        });
    }

    // 3. Consider that attackers scan unexpected protocols.
    {
        let (rows, _) = protocol_breakdown(&s.dataset, &s.deployment, &s.handles.reputation, 80);
        let other = rows
            .iter()
            .find(|r| !r.is_http)
            .map(|r| r.pct_of_scanners)
            .unwrap_or(0.0);
        out.push(Recommendation {
            title: "Consider that attackers scan unexpected protocols",
            evidence: format!(
                "{other:.0}% of port-80 scanners at the Honeytrap fleets do not speak HTTP; \
                 port-based protocol inference misses all of them"
            ),
            supported: other > 3.0,
        });
    }

    // 4. Account for differences amongst neighboring IPs.
    {
        let rows = table2(&s.dataset, &s.deployment);
        let max_dif = rows
            .iter()
            .map(|r| r.pct_different)
            .fold(0.0f64, f64::max);
        out.push(Recommendation {
            title: "Account for differences amongst neighboring IPs",
            evidence: format!(
                "up to {max_dif:.0}% of neighborhoods see significantly different traffic on \
                 some characteristic — one honeypot per region is not representative"
            ),
            supported: max_dif > 20.0,
        });
    }

    // 5. Deploy honeypots across geographies (AP above all).
    {
        let rows = crate::geography::table4(&s.dataset, &s.deployment);
        let named = rows.iter().filter(|r| r.region.is_some()).count();
        let ap = rows
            .iter()
            .filter(|r| {
                r.region
                    .as_ref()
                    .map(|c| c.starts_with("AP-"))
                    .unwrap_or(false)
            })
            .count();
        let cells = table5(
            &s.dataset,
            &s.deployment,
            TrafficSlice::TelnetPort23,
            CharKind::TopUsername,
        );
        let get = |b: RegionPairKind| {
            cells
                .iter()
                .find(|c| c.bucket == b)
                .map(|c| c.pct_similar)
                .unwrap_or(100.0)
        };
        let us = get(RegionPairKind::WithinUs);
        let apac = get(RegionPairKind::WithinApac);
        out.push(Recommendation {
            title: "Deploy honeypots across geographies (especially Asia Pacific)",
            evidence: format!(
                "{ap}/{named} most-different regions are Asia-Pacific; within-US Telnet-username \
                 similarity {us:.0}% vs within-APAC {apac:.0}% — an extra AP region buys more \
                 new signal than an extra US region"
            ),
            supported: named > 0 && ap * 2 >= named && apac <= us,
        });
    }

    // 6. Consider biases when deploying blocklists.
    {
        // Evidence: the structure preferences mean a blocklist built from
        // one IP's traffic misses botnets latched elsewhere.
        let pref = figure1::slash16_first_preference(&tel, 22).unwrap_or(1.0);
        out.push(Recommendation {
            title: "Consider biases when deploying blocklists",
            evidence: format!(
                "scanner targeting is structurally biased (e.g. {pref:.1}x /16-first preference \
                 on port 22); blocklists sourced from one vantage inherit its bias"
            ),
            supported: pref > 2.0,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use cw_scanners::population::ScenarioYear;

    #[test]
    fn all_recommendations_supported_by_fast_scenario() {
        let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(8));
        let recs = evaluate(&s);
        assert_eq!(recs.len(), 6);
        for r in &recs {
            assert!(r.supported, "unsupported: {} — {}", r.title, r.evidence);
        }
    }
}
