//! Tables 7, 10 (and 14, 15): network-type discrimination.
//!
//! Three comparison families:
//!
//! - **Cloud–Cloud** — city-matched GreyNoise provider-region pairs (the
//!   Table 6 matrix), compared with §4.4 median region representatives;
//! - **Cloud–EDU / EDU–EDU** — Honeytrap fleets only (the paper never
//!   compares across collection software); credential characteristics are
//!   uncomputable there (×);
//! - **Telescope–X** — the telescope observes no payloads, so only the
//!   "who" (top ASes per port) axis is comparable (Table 10).

use crate::compare::{compare_freqs, CharKind, GroupComparison};
use crate::dataset::{Dataset, TrafficSlice};
use crate::geography::region_freqs;
use cw_honeypot::deployment::{CollectorKind, Deployment, Provider};
use cw_honeypot::telescope::Telescope;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A city-matched pair of provider regions (Table 6 rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CityPair {
    /// Shared city/state-level region code.
    pub code: String,
    /// First provider.
    pub a: Provider,
    /// Second provider.
    pub b: Provider,
}

/// All city-matched GreyNoise provider pairs (the Table 6 matrix).
pub fn city_pairs(deployment: &Deployment) -> Vec<CityPair> {
    let regions = deployment.greynoise_provider_regions();
    let mut out = Vec::new();
    for i in 0..regions.len() {
        for j in i + 1..regions.len() {
            let (pa, ra) = &regions[i];
            let (pb, rb) = &regions[j];
            if pa != pb && ra.code == rb.code && *pa != Provider::HurricaneElectric
                && *pb != Provider::HurricaneElectric
            {
                out.push(CityPair {
                    code: ra.code.clone(),
                    a: *pa,
                    b: *pb,
                });
            }
        }
    }
    out
}

/// One Table 7 cell: a characteristic × slice across a comparison family.
#[derive(Debug, Clone)]
pub struct NetworkCell {
    /// Compared characteristic.
    pub characteristic: CharKind,
    /// Traffic slice.
    pub slice: TrafficSlice,
    /// Number of pairs tested.
    pub n: usize,
    /// Number significantly different.
    pub n_different: usize,
    /// Mean φ over significant pairs.
    pub avg_phi: Option<f64>,
    /// True when the characteristic cannot be observed by the collection
    /// method (the paper's ×).
    pub uncomputable: bool,
}

fn greynoise_region_ips(
    deployment: &Deployment,
    provider: Provider,
    code: &str,
    slice: TrafficSlice,
) -> Vec<Ipv4Addr> {
    let needs_payload = matches!(
        slice,
        TrafficSlice::HttpPort80 | TrafficSlice::HttpAllPorts | TrafficSlice::AnyAll
    );
    deployment
        .vantages
        .iter()
        .filter(|v| {
            v.collector == CollectorKind::GreyNoise
                && v.provider == provider
                && v.region.code == code
                && (!needs_payload || v.payload_ports)
        })
        .map(|v| v.ip)
        .collect()
}

/// Compare city-matched cloud pairs for one characteristic × slice.
pub fn cloud_cloud_cell(
    dataset: &Dataset,
    deployment: &Deployment,
    slice: TrafficSlice,
    kind: CharKind,
    alpha: f64,
) -> NetworkCell {
    let pairs = city_pairs(deployment);
    let m = pairs.len().max(1);
    let mut tested = 0;
    let mut different = 0;
    let mut phis = Vec::new();
    for p in &pairs {
        let a_ips = greynoise_region_ips(deployment, p.a, &p.code, slice);
        let b_ips = greynoise_region_ips(deployment, p.b, &p.code, slice);
        if a_ips.is_empty() || b_ips.is_empty() {
            continue;
        }
        let fa = region_freqs(dataset, &a_ips, slice, kind);
        let fb = region_freqs(dataset, &b_ips, slice, kind);
        if let Some(cmp) = compare_freqs(kind, &[fa, fb], alpha, m) {
            tested += 1;
            if cmp.significant {
                different += 1;
                phis.push(cmp.effect.phi);
            }
        }
    }
    NetworkCell {
        characteristic: kind,
        slice,
        n: tested,
        n_different: different,
        avg_phi: cw_stats::descriptive::mean(&phis),
        uncomputable: false,
    }
}

/// The Honeytrap fleets used for cloud–EDU / EDU–EDU comparisons.
pub fn honeytrap_fleet_ips(deployment: &Deployment, name: &str) -> Vec<Ipv4Addr> {
    deployment
        .vantages
        .iter()
        .filter(|v| v.id.starts_with(name) && v.collector == CollectorKind::Honeytrap)
        .map(|v| v.ip)
        .collect()
}

/// Compare two pooled Honeytrap fleets for one characteristic × slice.
/// Returns `None` when the characteristic is unobservable for Honeytrap
/// (credentials: the paper's ×).
#[allow(clippy::too_many_arguments)]
pub fn honeytrap_pair(
    dataset: &Dataset,
    deployment: &Deployment,
    fleet_a: &str,
    fleet_b: &str,
    slice: TrafficSlice,
    kind: CharKind,
    alpha: f64,
    family: usize,
) -> Option<GroupComparison> {
    if matches!(kind, CharKind::TopUsername | CharKind::TopPassword) {
        return None; // Honeytrap never observes credentials.
    }
    // One query per fleet: push the fleet down, slice, fold by interned id.
    let fa = dataset
        .query()
        .at(&honeytrap_fleet_ips(deployment, fleet_a))
        .slice(slice)
        .char_freqs(kind);
    let fb = dataset
        .query()
        .at(&honeytrap_fleet_ips(deployment, fleet_b))
        .slice(slice)
        .char_freqs(kind);
    compare_freqs(kind, &[fa, fb], alpha, family)
}

/// The cloud–EDU pair list (geographically matched, §5.2 methodology).
pub const CLOUD_EDU_PAIRS: [(&str, &str); 4] = [
    ("honeytrap/stanford", "honeytrap/aws-west"),
    ("honeytrap/stanford", "honeytrap/google-west"),
    ("honeytrap/merit", "honeytrap/google-east"),
    ("honeytrap/stanford", "honeytrap/google-east"),
];

/// Aggregate a Honeytrap pair family into one Table 7 cell.
pub fn honeytrap_cell(
    dataset: &Dataset,
    deployment: &Deployment,
    pairs: &[(&str, &str)],
    slice: TrafficSlice,
    kind: CharKind,
    alpha: f64,
) -> NetworkCell {
    if matches!(kind, CharKind::TopUsername | CharKind::TopPassword) {
        return NetworkCell {
            characteristic: kind,
            slice,
            n: 0,
            n_different: 0,
            avg_phi: None,
            uncomputable: true,
        };
    }
    let m = pairs.len().max(1);
    let mut tested = 0;
    let mut different = 0;
    let mut phis = Vec::new();
    for (a, b) in pairs {
        if let Some(cmp) = honeytrap_pair(dataset, deployment, a, b, slice, kind, alpha, m) {
            tested += 1;
            if cmp.significant {
                different += 1;
                phis.push(cmp.effect.phi);
            }
        }
    }
    NetworkCell {
        characteristic: kind,
        slice,
        n: tested,
        n_different: different,
        avg_phi: cw_stats::descriptive::mean(&phis),
        uncomputable: false,
    }
}

/// Table 10: telescope vs honeypot fleets, top-AS axis per port.
///
/// `slice` determines the port (SSH/22, Telnet/23, HTTP/80) or all ports.
pub fn telescope_vs_fleet(
    dataset: &Dataset,
    deployment: &Deployment,
    telescope: &Telescope,
    fleet: &str,
    slice: TrafficSlice,
    alpha: f64,
    family: usize,
) -> Option<GroupComparison> {
    let tel_freqs: BTreeMap<String, u64> = match slice {
        TrafficSlice::SshPort22 => telescope.asn_freqs_on_port(22),
        TrafficSlice::TelnetPort23 => telescope.asn_freqs_on_port(23),
        TrafficSlice::HttpPort80 => telescope.asn_freqs_on_port(80),
        TrafficSlice::HttpAllPorts | TrafficSlice::AnyAll => telescope.asn_freqs_all(),
    };
    let ips = honeytrap_fleet_ips(deployment, fleet);
    let ips = if ips.is_empty() {
        // GreyNoise fleets are addressed by block prefix instead.
        deployment
            .vantages
            .iter()
            .filter(|v| v.id.starts_with(fleet))
            .map(|v| v.ip)
            .collect()
    } else {
        ips
    };
    let fleet_freqs = dataset.query().at(&ips).slice(slice).char_freqs(CharKind::TopAs);
    compare_freqs(CharKind::TopAs, &[tel_freqs, fleet_freqs], alpha, family)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use cw_scanners::population::ScenarioYear;

    fn scenario() -> Scenario {
        Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(13))
    }

    #[test]
    fn city_pairs_match_the_deployment() {
        let d = Deployment::standard();
        let pairs = city_pairs(&d);
        assert!(pairs.len() >= 8, "only {} city pairs", pairs.len());
        assert!(pairs
            .iter()
            .any(|p| p.code == "US-CA" && (p.a == Provider::Aws || p.b == Provider::Aws)));
        // HE is single-region and excluded.
        assert!(pairs
            .iter()
            .all(|p| p.a != Provider::HurricaneElectric && p.b != Provider::HurricaneElectric));
    }

    #[test]
    fn credentials_are_uncomputable_for_honeytrap() {
        let s = scenario();
        let cell = honeytrap_cell(
            &s.dataset,
            &s.deployment,
            &CLOUD_EDU_PAIRS,
            TrafficSlice::SshPort22,
            CharKind::TopUsername,
            0.05,
        );
        assert!(cell.uncomputable);
    }

    #[test]
    fn cloud_cloud_cells_run() {
        let s = scenario();
        let cell = cloud_cloud_cell(
            &s.dataset,
            &s.deployment,
            TrafficSlice::SshPort22,
            CharKind::TopAs,
            0.05,
        );
        assert!(cell.n > 0);
        assert!(cell.n_different <= cell.n);
    }

    #[test]
    fn telescope_comparison_shows_large_difference() {
        // §5.2: "a significantly different set of ASes target telescopes".
        let s = scenario();
        let tel = s.telescope.borrow();
        let cmp = telescope_vs_fleet(
            &s.dataset,
            &s.deployment,
            &tel,
            "honeytrap/stanford",
            TrafficSlice::TelnetPort23,
            0.05,
            5,
        );
        // With the fast scenario the comparison must at least be testable.
        assert!(cmp.is_some());
    }
}
