//! `cw degrade` — do the paper's findings survive measurement faults?
//!
//! The fault-injection subsystem ([`cw_netsim::fault`]) makes degraded
//! collection a first-class, reproducible world: flows lost in the
//! network, vantage outages, payload truncation, telescope sampling. This
//! module sweeps a fixed ladder of fault plans and re-evaluates the
//! *directional* versions of the headline findings behind Tables 1, 7, 8,
//! 9 and the Table 3 leak experiment on each rung, reporting per-finding
//! stability.
//!
//! Every rung is itself a deterministic world (same seed, same plan →
//! same bytes, for any thread/shard/cache configuration), so the whole
//! sweep is reproducible: the report is a pure function of `(base config,
//! ladder)`. The driver supplies the world-obtain function so rungs flow
//! through the snapshot cache like any other exhibit world — each plan
//! has its own cache address (see [`FaultPlan::cache_key_fragment`]).
//!
//! Findings are checked as *directions*, not magnitudes: under 30% flow
//! loss every absolute count shrinks, but a robust conclusion (e.g.
//! "attackers on SSH ports avoid telescopes") should keep its sign. That
//! mirrors how the paper itself argues its results generalize beyond the
//! exact collection window.

use crate::bundle::SimBundle;
use crate::leak::{LeakConfig, LeakGroup, LeakOutcome, LeakService};
use crate::report::{header_str, TextTable};
use crate::scenario::ScenarioConfig;
use cw_honeypot::deployment::{CollectorKind, Deployment, Provider};
use cw_netsim::fault::FaultPlan;
use cw_netsim::time::SimDuration;

/// One rung of the degradation ladder: a label and the fault plan it
/// applies to every world obtained for it.
#[derive(Debug, Clone, Copy)]
pub struct Rung {
    /// Display label ("none", "mild", …).
    pub label: &'static str,
    /// The plan applied at this rung.
    pub plan: FaultPlan,
}

/// The canonical four-rung ladder, from fault-free to severely degraded.
///
/// The "none" rung is the baseline: byte-identical to the golden worlds
/// (its plan is [`FaultPlan::none`], which takes the legacy code path and
/// the legacy snapshot-cache addresses).
pub fn ladder() -> Vec<Rung> {
    vec![
        Rung {
            label: "none",
            plan: FaultPlan::none(),
        },
        Rung {
            label: "mild",
            plan: FaultPlan {
                flow_loss: 0.02,
                outage: 0.02,
                outage_windows: 1,
                truncation: 0.05,
                truncate_to: 64,
                telescope_sample: 1,
            },
        },
        Rung {
            label: "moderate",
            plan: FaultPlan {
                flow_loss: 0.10,
                outage: 0.08,
                outage_windows: 2,
                truncation: 0.20,
                truncate_to: 48,
                telescope_sample: 2,
            },
        },
        Rung {
            label: "severe",
            plan: FaultPlan {
                flow_loss: 0.30,
                outage: 0.20,
                outage_windows: 3,
                truncation: 0.50,
                truncate_to: 16,
                telescope_sample: 4,
            },
        },
    ]
}

/// One directional finding evaluated on one rung's worlds.
#[derive(Debug, Clone, Copy)]
pub struct FindingEval {
    /// Short stable name ("T8 telnet>ssh overlap", …).
    pub name: &'static str,
    /// The scalar the direction is about (a ratio or difference).
    pub metric: f64,
    /// Does the finding's direction hold on this rung?
    pub holds: bool,
}

/// Evaluate the directional findings on one rung's `(scenario, leak)`
/// worlds. Pure: same bundles → same evaluations.
pub fn evaluate(bundle: &SimBundle, leak: &LeakOutcome) -> Vec<FindingEval> {
    let deployment = Deployment::standard();
    let mut out = Vec::new();

    // Table 1 direction: the telescope sees far more unique scanners than
    // any honeypot fleet (here: the AWS GreyNoise fleet as the cloud
    // representative).
    {
        let aws_ips: Vec<_> = deployment
            .vantages
            .iter()
            .filter(|v| v.provider == Provider::Aws && v.collector == CollectorKind::GreyNoise)
            .map(|v| v.ip)
            .collect();
        let (aws_srcs, _) = bundle.dataset.query().at(&aws_ips).unique_src_and_asn();
        let tel_srcs = bundle.telescope.unique_source_count();
        let ratio = tel_srcs as f64 / (aws_srcs as f64).max(1.0);
        out.push(FindingEval {
            name: "T1 telescope breadth > cloud fleet",
            metric: ratio,
            holds: ratio > 1.0,
        });
    }

    // Table 7 direction: cloud-cloud vantages look alike — the fraction of
    // significantly different cloud-cloud pairs (Top-AS over SSH/22, the
    // paper's sharpest slice) stays at or below the cloud-EDU fraction.
    {
        use crate::compare::CharKind;
        use crate::dataset::TrafficSlice;
        use crate::network::{cloud_cloud_cell, honeytrap_cell, CLOUD_EDU_PAIRS};
        let cc = cloud_cloud_cell(
            &bundle.dataset,
            &deployment,
            TrafficSlice::SshPort22,
            CharKind::TopAs,
            0.05,
        );
        let ce = honeytrap_cell(
            &bundle.dataset,
            &deployment,
            &CLOUD_EDU_PAIRS,
            TrafficSlice::SshPort22,
            CharKind::TopAs,
            0.05,
        );
        let frac = |n_different: usize, n: usize| n_different as f64 / n.max(1) as f64;
        let cc_frac = frac(cc.n_different, cc.n);
        let ce_frac = frac(ce.n_different, ce.n);
        out.push(FindingEval {
            name: "T7 cloud-cloud dif <= cloud-EDU dif",
            metric: ce_frac - cc_frac,
            holds: cc_frac <= ce_frac,
        });
    }

    // Tables 8 and 9 direction: Telnet/23 scanning covers the telescope
    // while SSH/22 actors avoid it — overlap(23) exceeds overlap(22), for
    // all scanners (T8) and for verified attackers (T9).
    {
        let (t8, t9) = crate::overlap::table8_and_9(
            &bundle.dataset,
            &deployment,
            &bundle.telescope,
        );
        let find8 = |port: u16| {
            t8.iter()
                .find(|r| r.port == port)
                .and_then(|r| r.tel_cloud)
                .unwrap_or(0.0)
        };
        let gap8 = find8(23) - find8(22);
        out.push(FindingEval {
            name: "T8 tel overlap: telnet/23 > ssh/22",
            metric: gap8,
            holds: gap8 > 0.0,
        });
        let find9 = |port: u16| {
            t9.iter()
                .find(|r| r.port == port)
                .and_then(|r| r.tel_cloud)
                .unwrap_or(0.0)
        };
        let gap9 = find9(23) - find9(22);
        out.push(FindingEval {
            name: "T9 attacker overlap: 23 > 22",
            metric: gap9,
            holds: gap9 > 0.0,
        });
    }

    // Table 3 direction: a service leaked to a search engine draws more
    // traffic than the hidden control (worst case over both engines, HTTP
    // row — the paper's headline cell).
    {
        let fold = |group: LeakGroup| {
            leak.cells
                .iter()
                .find(|c| {
                    c.service == LeakService::Http80 && c.group == group && !c.malicious_only
                })
                .map(|c| c.fold)
                .unwrap_or(0.0)
        };
        let worst = fold(LeakGroup::CensysLeaked(LeakService::Http80))
            .min(fold(LeakGroup::ShodanLeaked(LeakService::Http80)));
        out.push(FindingEval {
            name: "T3 leaked HTTP draws fire (fold > 1)",
            metric: worst,
            holds: worst > 1.0,
        });
    }

    out
}

/// Run the sweep and render the `cw degrade` report.
///
/// `base` selects the scenario world (year, seed, scale, shards) each rung
/// re-runs under its plan; `leak_seed` seeds the per-rung leak worlds
/// (matching the driver's `opts.seed ^ 0x1EA4` convention); `obtain`
/// supplies each rung's scenario bundle so the driver chooses the cache
/// policy. The leak worlds are small and always simulate inline.
pub fn report(
    base: ScenarioConfig,
    leak_seed: u64,
    obtain: &dyn Fn(ScenarioConfig) -> SimBundle,
) -> String {
    let rungs = ladder();
    let mut out = header_str("Degradation sweep: finding stability under measurement faults");
    out.push_str(
        "Each rung re-simulates the main world and the leak experiment under a\n\
         deterministic fault plan, then re-checks the directional findings behind\n\
         Tables 1, 7, 8, 9 and the Table 3 leak. STABLE = direction holds on every\n\
         rung of the ladder.\n\n",
    );

    // Rung summary table, with per-rung world evidence.
    let mut evals: Vec<(&'static str, Vec<FindingEval>)> = Vec::new();
    let mut t = TextTable::new(&[
        "Rung",
        "Loss",
        "Outage",
        "Trunc",
        "Tel 1/N",
        "Events",
        "Flows lost",
    ]);
    for rung in &rungs {
        eprintln!("[cw] degrade rung '{}' ...", rung.label);
        let bundle = obtain(base.with_fault(rung.plan));
        let leak = crate::leak::run(&LeakConfig {
            seed: leak_seed,
            scale: base.scale,
            horizon: SimDuration::WEEK,
            fault: rung.plan,
        });
        t.row(vec![
            rung.label.to_string(),
            format!("{:.0}%", rung.plan.flow_loss * 100.0),
            format!(
                "{:.0}%×{}",
                rung.plan.outage * 100.0,
                rung.plan.outage_windows.max(1)
            ),
            format!("{:.0}%", rung.plan.truncation * 100.0),
            format!("1/{}", rung.plan.telescope_sample.max(1)),
            bundle.dataset.len().to_string(),
            bundle.stats.flows_lost.to_string(),
        ]);
        evals.push((rung.label, evaluate(&bundle, &leak)));
    }
    out.push_str(&format!("{}\n", t.render()));

    // Finding × rung grid with the stability verdict.
    let mut headers: Vec<&str> = vec!["Finding"];
    headers.extend(rungs.iter().map(|r| r.label));
    headers.push("Verdict");
    let mut grid = TextTable::new(&headers);
    let n_findings = evals[0].1.len();
    let mut stable_count = 0usize;
    for f in 0..n_findings {
        let name = evals[0].1[f].name;
        let mut row = vec![name.to_string()];
        let mut all_hold = true;
        let mut first_break: Option<&'static str> = None;
        for (label, rung_evals) in &evals {
            let e = rung_evals[f];
            row.push(format!(
                "{:.2}{}",
                e.metric,
                if e.holds { "" } else { " !" }
            ));
            if !e.holds {
                all_hold = false;
                first_break.get_or_insert(label);
            }
        }
        row.push(match first_break {
            None => "STABLE".to_string(),
            Some(label) => format!("BREAKS@{label}"),
        });
        if all_hold {
            stable_count += 1;
        }
        grid.row(row);
    }
    out.push_str(&format!("{}\n", grid.render()));
    out.push_str(&format!(
        "{stable_count}/{n_findings} findings stable across the full ladder\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_scanners::population::ScenarioYear;

    #[test]
    fn ladder_starts_fault_free_and_escalates() {
        let rungs = ladder();
        assert_eq!(rungs[0].label, "none");
        assert!(rungs[0].plan.is_none());
        for w in rungs.windows(2) {
            assert!(w[1].plan.flow_loss > w[0].plan.flow_loss);
            assert!(w[1].plan.outage > w[0].plan.outage);
            w[1].plan.validate();
        }
    }

    #[test]
    fn report_is_deterministic_and_evaluates_every_finding_per_rung() {
        let base = ScenarioConfig::fast(ScenarioYear::Y2021).with_scale(0.02);
        let render = || report(base, 0xDE64, &|cfg| SimBundle::run(cfg));
        let a = render();
        assert_eq!(a, render());
        assert!(a.contains("STABLE") || a.contains("BREAKS@"));
        for rung in ladder() {
            assert!(a.contains(rung.label));
        }
        assert!(a.contains("findings stable across the full ladder"));
    }
}
