//! Scenario orchestration: build the world, run the week, collect the data.
//!
//! A scenario is (year, seed, scale): the Table 1 deployment plus the year's
//! actor population, run for the July 1–7 collection window. The result
//! bundles everything every analysis needs — the classified [`Dataset`],
//! the telescope handle, the search-engine indexes, and the reputation
//! oracle.
//!
//! # Sharded simulation
//!
//! The discrete-event loop is single-threaded, so one world historically
//! cost one core-width of wall clock no matter the machine. With
//! [`ScenarioConfig::shards`] > 1 the actor population is partitioned into
//! K shards — ownership is the pure function
//! [`population::shard_of`]`(seed, actor_id, K)` — and each shard runs its
//! own [`Engine`] over its own copy of the deterministic world, in
//! parallel via [`crate::fleet::map`] (worker threads capped at hardware
//! parallelism). The shard outputs are then merged back into exactly the
//! record the unsharded engine would have produced:
//!
//! - every flow carries `(time, agent, seq)` stamps whose lexicographic
//!   order *is* the unsharded engine's delivery order (the wake queue pops
//!   `(time, agent-id)` ascending and `seq` orders the sends of one wake),
//!   so a K-way cursor merge over the per-shard capture tables restores
//!   the global event order;
//! - interned payload/credential ids are re-interned into a fresh shared
//!   interner while walking that order, reproducing the unsharded
//!   first-occurrence id assignment byte-for-byte;
//! - telescope counters and [`RunStats`] fold with their order-independent
//!   `absorb` merges, in shard order.
//!
//! The result is byte-identical to the unsharded run for any shard count
//! (see `tests/determinism.rs` and docs/ARCHITECTURE.md §"Sharded
//! simulation"); snapshots are therefore keyed without the shard count.
//!
//! # Streaming dataset build
//!
//! [`Scenario::run`] does not materialize the full event stream before
//! building the [`Dataset`]. The engine runs in chunked time windows
//! (default [`DEFAULT_WINDOW`], override with `CW_WINDOW_SECS`); at every
//! window boundary each listener's capture is drained
//! ([`Capture::take_rows`]) and absorbed into an incremental
//! [`DatasetBuilder`], so capture-side buffering never exceeds one window
//! of events — the memory headroom that makes `scale: 10`/`scale: 100`
//! worlds practical. The window size is a pure wall-clock/memory knob:
//! output is byte-identical for every window size and to the one-shot
//! build ([`Scenario::run_materialized`], kept as the reference path),
//! which `tests/determinism.rs` enforces. Arena and interner capacity is
//! pre-sized from [`ScenarioConfig`]'s event/distinct-value estimates.
//!
//! One observable difference: streaming *drains* the deployment's capture
//! tables (they end empty — every row lives in the dataset instead). Code
//! that inspects raw per-capture tables after a run must use
//! [`Scenario::run_materialized`].

use crate::dataset::{Dataset, DatasetBuilder};
use cw_honeypot::capture::{Capture, EventTable, Observed};
use cw_honeypot::deployment::Deployment;
use cw_honeypot::telescope::Telescope;
use cw_netsim::asn::AsRegistry;
use cw_netsim::engine::{Engine, RunStats};
use cw_netsim::fault::{domain_salt, FaultDomain, FaultPlan};
use cw_netsim::intern::{CredId, Interner, PayloadId, Remap};
use cw_netsim::time::{SimDuration, SimTime};
use cw_scanners::population::{self, PopulationConfig, PopulationHandles, ScenarioYear};
use cw_scanners::search_engine::SearchIndex;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::sync::mpsc::{sync_channel, SyncSender};

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Measurement year.
    pub year: ScenarioYear,
    /// Master seed.
    pub seed: u64,
    /// Population scale (1.0 = full experiment; tests use ~0.05).
    pub scale: f64,
    /// Collection window length.
    pub horizon: SimDuration,
    /// Number of simulation shards; 0 means "auto" (the machine's
    /// available parallelism). Purely a wall-clock knob: output is
    /// byte-identical for every value, so it is not part of a world's
    /// identity (snapshot keys and [`crate::bundle::SimBundle::matches`]
    /// ignore it).
    pub shards: usize,
    /// Injected measurement faults. [`FaultPlan::none`] (the constructors'
    /// default) is the perfect-sensor world of the golden manifest; a
    /// non-trivial plan *is* part of the world's identity (snapshot keys
    /// and [`crate::bundle::SimBundle::matches`] include it). Fault
    /// schedules are pure functions of `fork_seed(seed, FAULT_DOMAIN)`, so
    /// a faulted world is still byte-identical across threads × shards ×
    /// cache states.
    pub fault: FaultPlan,
}

impl ScenarioConfig {
    /// The paper's configuration for a year, at full scale.
    pub fn paper(year: ScenarioYear) -> Self {
        ScenarioConfig {
            year,
            seed: DEFAULT_SEED,
            scale: 1.0,
            horizon: SimDuration::WEEK,
            shards: 0,
            fault: FaultPlan::none(),
        }
    }

    /// A reduced configuration for tests and quick examples.
    pub fn fast(year: ScenarioYear) -> Self {
        ScenarioConfig {
            year,
            seed: DEFAULT_SEED,
            scale: 0.06,
            horizon: SimDuration::WEEK,
            shards: 0,
            fault: FaultPlan::none(),
        }
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the scale (builder style).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Override the shard count (builder style). 0 restores the default:
    /// one shard per unit of available parallelism.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Inject a fault plan (builder style). Panics on rates outside
    /// `[0, 1]` — the configuration boundary is where bad plans must die.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        fault.validate();
        self.fault = fault;
        self
    }

    /// The effective shard count: the explicit value, or available
    /// parallelism when set to 0 ("auto").
    pub fn effective_shards(&self) -> usize {
        self.effective_shards_with(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// [`ScenarioConfig::effective_shards`] against an explicit hardware
    /// parallelism, so callers (and tests) can pin the auto-selection rule:
    /// "auto" on a single-core box resolves to 1 shard — the legacy
    /// single-engine path — never to a K>1 split that only adds merge
    /// overhead.
    pub fn effective_shards_with(&self, hardware_threads: usize) -> usize {
        match self.shards {
            0 => hardware_threads.max(1),
            n => n,
        }
    }

    /// Expected delivered-event count for this configuration, for
    /// pre-sizing allocations. Calibrated against the scale-1 one-week
    /// world (~1.53M capture rows; see BENCH_scenario.json) and scaled
    /// linearly in both `scale` and the horizon. An allocation hint only —
    /// nothing observable depends on it.
    pub fn estimated_events(&self) -> usize {
        let weeks = self.horizon.secs() as f64 / SimDuration::WEEK.secs() as f64;
        (self.scale * weeks * 1_600_000.0).ceil() as usize
    }

    /// Expected distinct payload count (~9.2k at scale 1), for pre-sizing
    /// the interner arenas. Sized linearly in `scale` and capped by the
    /// event estimate so tiny test worlds do not over-reserve.
    pub fn estimated_distinct_payloads(&self) -> usize {
        let linear = (2_000.0 + self.scale * 10_000.0).ceil() as usize;
        linear.min(self.estimated_events().max(1_024))
    }

    /// Expected distinct credential-string count. The credential dictionary
    /// is fixed per year, so this is scale-independent.
    pub fn estimated_distinct_creds(&self) -> usize {
        4_096
    }
}

/// The default reproduction seed (fixed so published tables regenerate
/// bit-identically).
pub const DEFAULT_SEED: u64 = 0x1_C10D_3A7C;

/// The default streaming window: six simulated hours, i.e. 28 windows per
/// one-week horizon. Purely a wall-clock/memory knob — output is
/// byte-identical for every window size.
pub const DEFAULT_WINDOW: SimDuration = SimDuration(21_600);

/// The streaming window [`Scenario::run`] uses: `CW_WINDOW_SECS` when set
/// to a positive integer, [`DEFAULT_WINDOW`] otherwise. Because window
/// size is observably a no-op (enforced by `tests/determinism.rs`), the
/// environment variable cannot change any rendered byte.
pub fn default_window() -> SimDuration {
    match std::env::var("CW_WINDOW_SECS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(secs) if secs > 0 => SimDuration::from_secs(secs),
            _ => DEFAULT_WINDOW,
        },
        Err(_) => DEFAULT_WINDOW,
    }
}

/// Diagnostics from a streaming build. Observability only — never part of
/// any rendered byte, and `None` on the materialized reference path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// How many time windows the run was chunked into.
    pub windows: usize,
    /// The largest number of capture rows buffered in any one window
    /// (summed across listeners, and across shards on the sharded path) —
    /// the quantity the streaming build bounds.
    pub peak_window_rows: usize,
}

/// A completed scenario run.
pub struct Scenario {
    /// The configuration used.
    pub config: ScenarioConfig,
    /// The Table 1 deployment (vantage metadata + topology).
    pub deployment: Deployment,
    /// The classified event store.
    pub dataset: Dataset,
    /// The telescope with its counters.
    pub telescope: Rc<RefCell<Telescope>>,
    /// Population handles: indexes, engine source lists, reputation, ASes.
    pub handles: PopulationHandles,
    /// Engine statistics for the run.
    pub stats: RunStats,
    /// Wall-clock seconds each shard's engine spent (build + run + fold),
    /// indexed by shard. Empty on the single-engine path. Diagnostic only —
    /// never part of any rendered byte.
    pub shard_busy_secs: Vec<f64>,
    /// Streaming-build diagnostics; `None` when the run materialized the
    /// full event stream ([`Scenario::run_materialized`]).
    pub stream: Option<StreamStats>,
}

impl Scenario {
    /// Build the world and run the collection window with the streaming
    /// dataset build (see the module docs): the engine advances in chunked
    /// time windows and each window's capture is absorbed into the dataset
    /// incrementally, so capture-side buffering stays bounded by one
    /// window. Byte-identical to [`Scenario::run_materialized`] for every
    /// window size and shard count. Note the deployment's capture tables
    /// end *drained*; use `run_materialized` when raw captures are needed
    /// after the run.
    pub fn run(config: ScenarioConfig) -> Scenario {
        Scenario::run_with_window(config, default_window())
    }

    /// [`Scenario::run`] with an explicit streaming window (a pure
    /// wall-clock/memory knob — the output is byte-identical for every
    /// value, including a single window covering the whole horizon).
    pub fn run_with_window(config: ScenarioConfig, window: SimDuration) -> Scenario {
        let shards = config.effective_shards();
        if shards <= 1 {
            Scenario::run_single_streaming(config, window)
        } else {
            Scenario::run_sharded_streaming(config, shards, window)
        }
    }

    /// The one-shot reference build: run the engine to the horizon, then
    /// build the dataset from the complete captures. Kept as the
    /// equivalence oracle for the streaming build, and for callers that
    /// inspect raw capture tables after the run (the streaming path drains
    /// them).
    ///
    /// With an effective shard count of 1 this is the legacy single-engine
    /// path; otherwise the population is split across K parallel engines
    /// and merged back byte-identically (see the module docs).
    pub fn run_materialized(config: ScenarioConfig) -> Scenario {
        let shards = config.effective_shards();
        if shards <= 1 {
            Scenario::run_single(config)
        } else {
            Scenario::run_sharded(config, shards)
        }
    }

    /// Single-engine streaming: one engine, run window by window, captures
    /// drained and absorbed at every boundary.
    fn run_single_streaming(config: ScenarioConfig, window: SimDuration) -> Scenario {
        let deployment = Deployment::standard();
        deployment.apply_faults(&config.fault, config.seed, config.horizon);
        let mut engine = Engine::new();
        engine.set_flow_loss(
            config.fault.flow_loss,
            domain_salt(config.seed, FaultDomain::FlowLoss),
        );
        deployment.register(&mut engine);
        let pop = population::build(
            &PopulationConfig {
                year: config.year,
                seed: config.seed,
                scale: config.scale,
            },
            &deployment,
        );
        let handles = pop.register(&mut engine);

        let captures: Vec<Rc<RefCell<Capture>>> = deployment
            .honeypots
            .iter()
            .map(|h| h.borrow().capture())
            .collect();
        // All listeners of one deployment share one interner; pre-size it
        // and the dataset-side arenas from the configured scale.
        let shared_interner = captures.first().map(|c| c.borrow().interner());
        if let Some(rc) = &shared_interner {
            rc.borrow_mut().reserve(
                config.estimated_distinct_payloads(),
                config.estimated_distinct_creds(),
            );
        }
        let mut builder = DatasetBuilder::new(&deployment, captures.len())
            .with_interner_capacity(
                config.estimated_distinct_payloads(),
                config.estimated_distinct_creds(),
            );
        let mut remap = Remap::identity();
        let mut stats = RunStats::default();
        let mut stream = StreamStats::default();
        for end in window_ends(config.horizon, window) {
            // Engine counters are cumulative, so the last window's return
            // value is the whole run's stats.
            stats = engine.run(end);
            // Bring the remap up to date with whatever the engine interned
            // this window, *before* translating the window's rows.
            if let Some(rc) = &shared_interner {
                builder.extend_remap(&rc.borrow(), &mut remap);
            }
            let mut window_rows = 0;
            for (slot, cap) in captures.iter().enumerate() {
                let (table, _order) = cap.borrow_mut().take_rows();
                window_rows += table.len();
                builder.absorb_table(slot, &table, &remap);
            }
            stream.windows += 1;
            stream.peak_window_rows = stream.peak_window_rows.max(window_rows);
        }
        let dataset = builder.finish();
        let telescope = deployment.telescope.clone();
        Scenario {
            config,
            deployment,
            dataset,
            telescope,
            handles,
            stats,
            shard_busy_secs: Vec::new(),
            stream: Some(stream),
        }
    }

    /// Sharded streaming: K worker threads each run their shard window by
    /// window, shipping drained rows plus interner deltas through a
    /// bounded channel; the merger K-way merges each window into the
    /// dataset builder in global `(time, agent, seq)` order — the same
    /// discipline as [`merge_captures`], applied one window at a time.
    ///
    /// Windows partition event time identically on every shard (the
    /// boundaries are a pure function of horizon and window), so merging
    /// window w completely before window w+1 yields exactly the global
    /// merge order. The `sync_channel(1)` bound is the memory bound: at
    /// most one undelivered window per shard is ever in flight.
    fn run_sharded_streaming(
        config: ScenarioConfig,
        shards: usize,
        window: SimDuration,
    ) -> Scenario {
        let ends: Vec<SimTime> = window_ends(config.horizon, window).collect();

        let deployment = Deployment::standard();
        let slots = deployment.honeypots.len();
        let mut builder = DatasetBuilder::new(&deployment, slots).with_interner_capacity(
            config.estimated_distinct_payloads(),
            config.estimated_distinct_creds(),
        );
        let mut stream = StreamStats {
            windows: ends.len(),
            peak_window_rows: 0,
        };
        let mut stats = RunStats::default();
        let mut shard_busy = vec![0.0; shards];
        let mut coupled: Option<ShardHandles> = None;

        std::thread::scope(|scope| {
            let mut rxs = Vec::with_capacity(shards);
            for shard in 0..shards {
                let (tx, rx) = sync_channel::<ShardMsg>(1);
                let ends = &ends;
                scope.spawn(move || stream_one_shard(config, shard, shards, ends, tx));
                rxs.push(rx);
            }
            let mut states: Vec<ShardMergeState> =
                (0..shards).map(|_| ShardMergeState::default()).collect();
            for _ in 0..ends.len() {
                // Lockstep: every shard produces exactly one message per
                // window (the boundaries are shared), so one recv per
                // shard collects the whole window.
                let mut chunks: Vec<WindowChunk> = Vec::with_capacity(shards);
                for (s, rx) in rxs.iter().enumerate() {
                    match rx.recv().expect("shard worker died") {
                        ShardMsg::Window {
                            tables,
                            new_payloads,
                            new_creds,
                        } => {
                            let st = &mut states[s];
                            st.payload_memo
                                .resize(st.payload_memo.len() + new_payloads.len(), None);
                            st.cred_memo
                                .resize(st.cred_memo.len() + new_creds.len(), None);
                            st.payload_values.extend(new_payloads);
                            st.cred_values.extend(new_creds);
                            chunks.push(tables);
                        }
                        ShardMsg::Final { .. } => unreachable!("final before last window"),
                    }
                }
                let rows = merge_window(&mut builder, &mut states, &chunks);
                stream.peak_window_rows = stream.peak_window_rows.max(rows);
            }
            for (s, rx) in rxs.iter().enumerate() {
                match rx.recv().expect("shard worker died") {
                    ShardMsg::Final {
                        telescope,
                        stats: shard_stats,
                        handles,
                        busy_secs,
                    } => {
                        deployment.telescope.borrow_mut().absorb(&telescope);
                        stats.absorb(shard_stats);
                        shard_busy[s] = busy_secs;
                        if let Some(h) = handles {
                            coupled = Some(*h);
                        }
                    }
                    ShardMsg::Window { .. } => unreachable!("window after horizon"),
                }
            }
        });

        let dataset = builder.finish();
        let coupled = coupled.expect("exactly one shard owns the coupled actor group");
        let handles = PopulationHandles {
            censys: Rc::new(RefCell::new(coupled.censys)),
            shodan: Rc::new(RefCell::new(coupled.shodan)),
            censys_srcs: coupled.censys_srcs,
            shodan_srcs: coupled.shodan_srcs,
            reputation: coupled.reputation,
            registry: coupled.registry,
        };
        let telescope = deployment.telescope.clone();
        Scenario {
            config,
            deployment,
            dataset,
            telescope,
            handles,
            stats,
            shard_busy_secs: shard_busy,
            stream: Some(stream),
        }
    }

    /// The unsharded path: one engine runs the whole population.
    fn run_single(config: ScenarioConfig) -> Scenario {
        let deployment = Deployment::standard();
        deployment.apply_faults(&config.fault, config.seed, config.horizon);
        let mut engine = Engine::new();
        engine.set_flow_loss(
            config.fault.flow_loss,
            domain_salt(config.seed, FaultDomain::FlowLoss),
        );
        deployment.register(&mut engine);
        let pop = population::build(
            &PopulationConfig {
                year: config.year,
                seed: config.seed,
                scale: config.scale,
            },
            &deployment,
        );
        let handles = pop.register(&mut engine);
        let stats = engine.run(SimTime::ZERO + config.horizon);
        Scenario::finish(config, deployment, handles, stats, Vec::new())
    }

    /// The sharded path: K engines each run the agents their shard owns,
    /// then the captures are merged back into global record order.
    fn run_sharded(config: ScenarioConfig, shards: usize) -> Scenario {
        // Each worker rebuilds the deterministic world locally (the
        // ScenarioFactory pattern: nothing non-`Send` crosses threads) and
        // folds its engine's output to a `Send` ShardRun. One worker
        // thread per shard, capped at hardware parallelism by `map`.
        let mut runs = crate::fleet::map((0..shards).collect(), shards, |_, shard| {
            run_one_shard(config, *shard, shards)
        });

        // Merge on the calling thread, into a fresh deployment whose
        // listeners share one interner — exactly the unsharded layout.
        let deployment = Deployment::standard();
        let stats = runs.iter().fold(RunStats::default(), |mut acc, r| {
            acc.absorb(r.stats);
            acc
        });
        {
            let mut telescope = deployment.telescope.borrow_mut();
            for r in &runs {
                telescope.absorb(&r.telescope);
            }
        }
        merge_captures(&deployment, &runs);
        let coupled = runs
            .iter_mut()
            .find_map(|r| r.handles.take())
            .expect("exactly one shard owns the coupled actor group");
        let handles = PopulationHandles {
            censys: Rc::new(RefCell::new(coupled.censys)),
            shodan: Rc::new(RefCell::new(coupled.shodan)),
            censys_srcs: coupled.censys_srcs,
            shodan_srcs: coupled.shodan_srcs,
            reputation: coupled.reputation,
            registry: coupled.registry,
        };
        let shard_busy = runs.iter().map(|r| r.busy_secs).collect();
        Scenario::finish(config, deployment, handles, stats, shard_busy)
    }

    /// Shared tail: build the classified dataset from the deployment's
    /// captures and assemble the result.
    fn finish(
        config: ScenarioConfig,
        deployment: Deployment,
        handles: PopulationHandles,
        stats: RunStats,
        shard_busy_secs: Vec<f64>,
    ) -> Scenario {
        // Collect captures without cloning event storage.
        let caps: Vec<_> = deployment
            .honeypots
            .iter()
            .map(|h| h.borrow().capture())
            .collect();
        let borrows: Vec<std::cell::Ref<'_, cw_honeypot::capture::Capture>> =
            caps.iter().map(|c| c.borrow()).collect();
        let refs: Vec<&cw_honeypot::capture::Capture> =
            borrows.iter().map(|b| &**b).collect();
        let dataset = Dataset::from_captures(&refs, &deployment);
        drop(borrows);

        let telescope = deployment.telescope.clone();
        Scenario {
            config,
            deployment,
            dataset,
            telescope,
            handles,
            stats,
            shard_busy_secs,
            stream: None,
        }
    }
}

/// The streaming window boundaries for a horizon: ascending, strictly
/// positive steps, with the final boundary landing exactly on the horizon.
/// A pure function of `(horizon, window)` — shard workers and the merger
/// derive identical schedules from it independently.
fn window_ends(horizon: SimDuration, window: SimDuration) -> impl Iterator<Item = SimTime> {
    let w = window.secs().max(1);
    let h = horizon.secs();
    let n = h.div_ceil(w).max(1);
    (1..=n).map(move |i| SimTime((i * w).min(h)))
}

/// The `Send` parts of the coupled shard's population handles (the search
/// indexes plus build-time oracles), cloned out of their `Rc` wrappers so
/// they can cross back to the merging thread.
struct ShardHandles {
    censys: SearchIndex,
    shodan: SearchIndex,
    censys_srcs: Vec<Ipv4Addr>,
    shodan_srcs: Vec<Ipv4Addr>,
    reputation: cw_detection::ReputationDb,
    registry: AsRegistry,
}

/// Everything one shard's engine produced, folded to `Send` plain data.
struct ShardRun {
    /// Per honeypot listener (deployment registration order): the capture
    /// table plus its parallel `(agent, seq)` order stamps.
    tables: Vec<(EventTable, Vec<(u32, u64)>)>,
    /// The shard-local interner the tables' ids resolve against.
    interner: Interner,
    /// The shard's telescope counters.
    telescope: Telescope,
    /// The shard engine's counters.
    stats: RunStats,
    /// `Some` only on the shard owning the coupled actor group.
    handles: Option<ShardHandles>,
    /// Wall-clock seconds this shard spent (build + run + fold).
    busy_secs: f64,
}

/// Build the world, register only shard `shard`'s agents (under their
/// global ids), run the window, and fold the results to `Send` data.
fn run_one_shard(config: ScenarioConfig, shard: usize, shards: usize) -> ShardRun {
    let started = std::time::Instant::now();
    let deployment = Deployment::standard();
    // Every shard derives the same fault schedules from the same config —
    // pure functions of (seed, vantage index), never of the shard count.
    deployment.apply_faults(&config.fault, config.seed, config.horizon);
    let mut engine = Engine::new();
    engine.set_flow_loss(
        config.fault.flow_loss,
        domain_salt(config.seed, FaultDomain::FlowLoss),
    );
    deployment.register(&mut engine);
    let pop = population::build(
        &PopulationConfig {
            year: config.year,
            seed: config.seed,
            scale: config.scale,
        },
        &deployment,
    );
    let anchor = pop.coupled.first().copied().unwrap_or(0);
    let owns_coupled = population::shard_of(config.seed, anchor as u32, shards) == shard;
    let handles = pop.register_shard(&mut engine, config.seed, shard, shards);
    let stats = engine.run(SimTime::ZERO + config.horizon);

    let tables = deployment
        .honeypots
        .iter()
        .map(|h| {
            let cap = h.borrow().capture();
            let cap = cap.borrow();
            (cap.table().clone(), cap.order().to_vec())
        })
        .collect();
    let interner_rc = deployment.honeypots[0].borrow().capture();
    let interner_rc = interner_rc.borrow().interner();
    let interner = interner_rc.borrow().clone();
    let telescope = deployment.telescope.borrow().clone();
    let handles = owns_coupled.then(|| ShardHandles {
        censys: handles.censys.borrow().clone(),
        shodan: handles.shodan.borrow().clone(),
        censys_srcs: handles.censys_srcs,
        shodan_srcs: handles.shodan_srcs,
        reputation: handles.reputation,
        registry: handles.registry,
    });
    ShardRun {
        tables,
        interner,
        telescope,
        stats,
        handles,
        busy_secs: started.elapsed().as_secs_f64(),
    }
}

/// Replay every shard's events into `deployment`'s captures in global
/// `(time, agent, seq)` order, re-interning payload/credential values into
/// the deployment's shared interner as they are first encountered.
///
/// Correctness of the byte-identity claim rests on two facts:
///
/// - `(time, agent, seq)` is the unsharded engine's delivery order: the
///   wake queue pops `(time, agent-id)` ascending, agents are disjoint
///   across shards (so cross-shard keys never tie), and within one shard
///   `seq` is monotone in delivery order.
/// - Every intern the record path performs belongs to exactly one recorded
///   event, in within-event order (payload; or username then password) —
///   so lazily re-interning while walking the merged order reproduces the
///   unsharded interner's first-occurrence id assignment exactly.
fn merge_captures(deployment: &Deployment, runs: &[ShardRun]) {
    let captures: Vec<Rc<RefCell<Capture>>> = deployment
        .honeypots
        .iter()
        .map(|h| h.borrow().capture())
        .collect();
    if captures.is_empty() {
        return;
    }
    let interner_rc = captures[0].borrow().interner();
    let mut interner = interner_rc.borrow_mut();

    // Per-shard memo of old id → merged id (dense; ids are arena indexes).
    struct Memo {
        payloads: Vec<Option<PayloadId>>,
        creds: Vec<Option<CredId>>,
    }
    let mut memos: Vec<Memo> = runs
        .iter()
        .map(|r| Memo {
            payloads: vec![None; r.interner.payload_count()],
            creds: vec![None; r.interner.cred_count()],
        })
        .collect();

    // K-way merge over (shard, listener) cursors, min-heap keyed by the
    // global order stamp (shard/listener indexes only break impossible
    // ties deterministically).
    type Key = Reverse<(SimTime, u32, u64, usize, usize)>;
    let key = |s: usize, l: usize, i: usize| -> Key {
        let (table, order) = &runs[s].tables[l];
        let (agent, seq) = order[i];
        Reverse((table.times()[i], agent, seq, s, l))
    };
    let mut cursors: Vec<Vec<usize>> = runs
        .iter()
        .map(|r| vec![0usize; r.tables.len()])
        .collect();
    let mut heap: BinaryHeap<Key> = BinaryHeap::new();
    for (s, r) in runs.iter().enumerate() {
        for (l, (table, _)) in r.tables.iter().enumerate() {
            if !table.is_empty() {
                heap.push(key(s, l, 0));
            }
        }
    }
    while let Some(Reverse((_, _, _, s, l))) = heap.pop() {
        let i = cursors[s][l];
        cursors[s][l] += 1;
        let (table, _) = &runs[s].tables[l];
        let mut event = table.get(i);
        let memo = &mut memos[s];
        let shard_interner = &runs[s].interner;
        event.observed = match event.observed {
            Observed::Payload(p) => {
                let slot = &mut memo.payloads[p.index()];
                let id = *slot.get_or_insert_with(|| {
                    interner.intern_payload(shard_interner.payload(p))
                });
                Observed::Payload(id)
            }
            Observed::Credentials {
                service,
                username,
                password,
            } => {
                // Within-event intern order is username then password.
                let username = {
                    let slot = &mut memo.creds[username.index()];
                    *slot.get_or_insert_with(|| interner.intern_cred(shard_interner.cred(username)))
                };
                let password = {
                    let slot = &mut memo.creds[password.index()];
                    *slot.get_or_insert_with(|| interner.intern_cred(shard_interner.cred(password)))
                };
                Observed::Credentials {
                    service,
                    username,
                    password,
                }
            }
            other => other,
        };
        captures[l].borrow_mut().record_from(
            event,
            runs[s].tables[l].1[i].0,
            runs[s].tables[l].1[i].1,
        );
        if i + 1 < table.len() {
            heap.push(key(s, l, i + 1));
        }
    }
}

/// One window's drained rows for every listener of one shard: per
/// listener (deployment registration order), the drained [`EventTable`]
/// plus its parallel `(agent, seq)` order stamps.
type WindowChunk = Vec<(EventTable, Vec<(u32, u64)>)>;

/// What a streaming shard worker ships to the merger: one `Window` per
/// window boundary (drained rows plus the interner values minted since the
/// previous boundary, in insertion order), then exactly one `Final`.
enum ShardMsg {
    /// One window's drained captures.
    Window {
        /// Per listener (deployment registration order): drained rows plus
        /// their parallel `(agent, seq)` order stamps.
        tables: WindowChunk,
        /// Payload values interned by this shard since the last window, in
        /// insertion order — their shard-local ids are the previous count
        /// onwards, so the merger can extend its shadow arena positionally.
        new_payloads: Vec<Vec<u8>>,
        /// Credential values interned since the last window (same scheme).
        new_creds: Vec<String>,
    },
    /// End of stream: the shard's whole-run fold.
    Final {
        /// The shard's telescope counters (boxed: the counters dwarf the
        /// per-window variant).
        telescope: Box<Telescope>,
        /// The shard engine's cumulative counters.
        stats: RunStats,
        /// `Some` only on the shard owning the coupled actor group.
        handles: Option<Box<ShardHandles>>,
        /// Wall-clock seconds the shard spent (build + run + fold).
        busy_secs: f64,
    },
}

/// The merger's view of one shard's id space: a positional shadow of the
/// shard-local arenas (grown from the per-window deltas) plus the dense
/// shard-id → merged-id memo — the same memo discipline as
/// [`merge_captures`], grown incrementally.
#[derive(Default)]
struct ShardMergeState {
    payload_values: Vec<Vec<u8>>,
    cred_values: Vec<String>,
    payload_memo: Vec<Option<PayloadId>>,
    cred_memo: Vec<Option<CredId>>,
}

/// Worker body for one streaming shard: build the world exactly as
/// [`run_one_shard`] does, but run window by window, draining captures and
/// shipping each window through the bounded channel.
fn stream_one_shard(
    config: ScenarioConfig,
    shard: usize,
    shards: usize,
    ends: &[SimTime],
    tx: SyncSender<ShardMsg>,
) {
    let started = std::time::Instant::now();
    let deployment = Deployment::standard();
    deployment.apply_faults(&config.fault, config.seed, config.horizon);
    let mut engine = Engine::new();
    engine.set_flow_loss(
        config.fault.flow_loss,
        domain_salt(config.seed, FaultDomain::FlowLoss),
    );
    deployment.register(&mut engine);
    let pop = population::build(
        &PopulationConfig {
            year: config.year,
            seed: config.seed,
            scale: config.scale,
        },
        &deployment,
    );
    let anchor = pop.coupled.first().copied().unwrap_or(0);
    let owns_coupled = population::shard_of(config.seed, anchor as u32, shards) == shard;
    let handles = pop.register_shard(&mut engine, config.seed, shard, shards);

    let captures: Vec<Rc<RefCell<Capture>>> = deployment
        .honeypots
        .iter()
        .map(|h| h.borrow().capture())
        .collect();
    let interner_rc = captures.first().map(|c| c.borrow().interner());
    let (mut seen_payloads, mut seen_creds) = (0usize, 0usize);
    let mut stats = RunStats::default();
    for &end in ends {
        stats = engine.run(end);
        let (new_payloads, new_creds) = match &interner_rc {
            Some(rc) => {
                let i = rc.borrow();
                let np = i.payloads_from(seen_payloads).to_vec();
                let nc = i.creds_from(seen_creds).to_vec();
                seen_payloads = i.payload_count();
                seen_creds = i.cred_count();
                (np, nc)
            }
            None => (Vec::new(), Vec::new()),
        };
        let tables: Vec<(EventTable, Vec<(u32, u64)>)> =
            captures.iter().map(|c| c.borrow_mut().take_rows()).collect();
        // The bounded channel is the memory bound: at most one undelivered
        // window per shard. A hung-up receiver means the merger panicked —
        // exit quietly and let the scope propagate that panic.
        if tx
            .send(ShardMsg::Window {
                tables,
                new_payloads,
                new_creds,
            })
            .is_err()
        {
            return;
        }
    }
    let shard_handles = owns_coupled.then(|| {
        Box::new(ShardHandles {
            censys: handles.censys.borrow().clone(),
            shodan: handles.shodan.borrow().clone(),
            censys_srcs: handles.censys_srcs,
            shodan_srcs: handles.shodan_srcs,
            reputation: handles.reputation,
            registry: handles.registry,
        })
    });
    let _ = tx.send(ShardMsg::Final {
        telescope: Box::new(deployment.telescope.borrow().clone()),
        stats,
        handles: shard_handles,
        busy_secs: started.elapsed().as_secs_f64(),
    });
}

/// K-way merge one window's chunks into the builder in global
/// `(time, agent, seq)` order, lazily re-interning via the per-shard
/// memos. Returns the number of rows merged (the window's capture-side
/// buffering footprint).
///
/// Identical ordering and interning discipline to [`merge_captures`]; the
/// only difference is the destination (the dataset builder instead of
/// replayed captures) and the granularity (one window at a time). Because
/// window boundaries partition event time, per-window merges concatenate
/// to exactly the whole-run merge order.
fn merge_window(
    builder: &mut DatasetBuilder,
    states: &mut [ShardMergeState],
    chunks: &[WindowChunk],
) -> usize {
    type Key = Reverse<(SimTime, u32, u64, usize, usize)>;
    let key = |s: usize, l: usize, i: usize| -> Key {
        let (table, order) = &chunks[s][l];
        let (agent, seq) = order[i];
        Reverse((table.times()[i], agent, seq, s, l))
    };
    let mut cursors: Vec<Vec<usize>> = chunks.iter().map(|c| vec![0usize; c.len()]).collect();
    let mut heap: BinaryHeap<Key> = BinaryHeap::new();
    for (s, tables) in chunks.iter().enumerate() {
        for (l, (table, _)) in tables.iter().enumerate() {
            if !table.is_empty() {
                heap.push(key(s, l, 0));
            }
        }
    }
    let mut rows = 0usize;
    while let Some(Reverse((_, _, _, s, l))) = heap.pop() {
        let i = cursors[s][l];
        cursors[s][l] += 1;
        let (table, _) = &chunks[s][l];
        let mut event = table.get(i);
        let st = &mut states[s];
        event.observed = match event.observed {
            Observed::Payload(p) => {
                let id = match st.payload_memo[p.index()] {
                    Some(id) => id,
                    None => {
                        let id = builder.intern_payload(&st.payload_values[p.index()]);
                        st.payload_memo[p.index()] = Some(id);
                        id
                    }
                };
                Observed::Payload(id)
            }
            Observed::Credentials {
                service,
                username,
                password,
            } => {
                // Within-event intern order is username then password.
                let username = match st.cred_memo[username.index()] {
                    Some(id) => id,
                    None => {
                        let id = builder.intern_cred(&st.cred_values[username.index()]);
                        st.cred_memo[username.index()] = Some(id);
                        id
                    }
                };
                let password = match st.cred_memo[password.index()] {
                    Some(id) => id,
                    None => {
                        let id = builder.intern_cred(&st.cred_values[password.index()]);
                        st.cred_memo[password.index()] = Some(id);
                        id
                    }
                };
                Observed::Credentials {
                    service,
                    username,
                    password,
                }
            }
            other => other,
        };
        builder.push_event(l, event);
        rows += 1;
        if i + 1 < table.len() {
            heap.push(key(s, l, i + 1));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_scenario_produces_traffic_everywhere() {
        let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(11));
        assert!(s.stats.flows_delivered > 5_000, "{:?}", s.stats);
        assert!(!s.dataset.is_empty());
        let tel = s.telescope.borrow();
        assert!(tel.total_packets() > 1_000);
        assert!(tel.unique_source_count() > 100);
    }

    #[test]
    fn scenario_is_deterministic() {
        let cfg = ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(5);
        let a = Scenario::run(cfg);
        let b = Scenario::run(cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(
            a.telescope.borrow().total_packets(),
            b.telescope.borrow().total_packets()
        );
    }

    #[test]
    fn window_ends_partition_the_horizon() {
        let ends: Vec<u64> = window_ends(SimDuration::WEEK, DEFAULT_WINDOW)
            .map(|t| t.secs())
            .collect();
        assert_eq!(ends.len(), 28);
        assert_eq!(*ends.last().unwrap(), SimDuration::WEEK.secs());
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
        // Uneven division: the last window is short, never skipped.
        let ends: Vec<u64> = window_ends(SimDuration::from_secs(10), SimDuration::from_secs(4))
            .map(|t| t.secs())
            .collect();
        assert_eq!(ends, vec![4, 8, 10]);
        // Window larger than the horizon: one window, ending at the horizon.
        let ends: Vec<u64> = window_ends(SimDuration::from_secs(5), SimDuration::WEEK)
            .map(|t| t.secs())
            .collect();
        assert_eq!(ends, vec![5]);
        // Degenerate zero-width window is clamped, not an infinite loop.
        assert_eq!(
            window_ends(SimDuration::from_secs(2), SimDuration::from_secs(0)).count(),
            2
        );
    }

    /// Satellite: "auto" shard selection on a single-core box must resolve
    /// to the legacy single-engine path, never a forced K>1 split.
    #[test]
    fn auto_shards_resolve_to_one_on_single_core() {
        let cfg = ScenarioConfig::fast(ScenarioYear::Y2021).with_shards(0);
        assert_eq!(cfg.effective_shards_with(1), 1);
        assert_eq!(cfg.effective_shards_with(0), 1);
        assert_eq!(cfg.effective_shards_with(8), 8);
        // An explicit shard count is always honored.
        assert_eq!(cfg.with_shards(3).effective_shards_with(1), 3);
    }

    #[test]
    fn size_estimates_scale_sanely() {
        let full = ScenarioConfig::paper(ScenarioYear::Y2021);
        assert!((1_500_000..1_700_000).contains(&full.estimated_events()));
        let ten = full.with_scale(10.0);
        assert_eq!(ten.estimated_events(), full.estimated_events() * 10);
        assert!(ten.estimated_distinct_payloads() > full.estimated_distinct_payloads());
        // Tiny worlds cap the payload estimate instead of over-reserving.
        let tiny = full.with_scale(0.0001);
        assert!(tiny.estimated_distinct_payloads() <= 1_024);
    }

    /// The streaming default path must agree with the materialized
    /// reference on everything cheap to compare here; the byte-level
    /// equivalence matrix lives in tests/determinism.rs.
    #[test]
    fn streaming_matches_materialized_summary() {
        let cfg = ScenarioConfig::fast(ScenarioYear::Y2021)
            .with_seed(11)
            .with_scale(0.02)
            .with_shards(1);
        let m = Scenario::run_materialized(cfg);
        let s = Scenario::run_with_window(cfg, SimDuration::DAY);
        assert_eq!(m.stats, s.stats);
        assert_eq!(m.dataset.len(), s.dataset.len());
        assert_eq!(
            m.telescope.borrow().total_packets(),
            s.telescope.borrow().total_packets()
        );
        let stream = s.stream.expect("streaming run records stream stats");
        assert_eq!(stream.windows, 7);
        assert!(stream.peak_window_rows < s.dataset.len());
        assert!(m.stream.is_none());
        // Streaming drains the captures: every row lives in the dataset.
        assert!(s.deployment.honeypots.iter().all(|h| {
            let cap = h.borrow().capture();
            let empty = cap.borrow().is_empty();
            empty
        }));
    }
}
