//! Scenario orchestration: build the world, run the week, collect the data.
//!
//! A scenario is (year, seed, scale): the Table 1 deployment plus the year's
//! actor population, run for the July 1–7 collection window. The result
//! bundles everything every analysis needs — the classified [`Dataset`],
//! the telescope handle, the search-engine indexes, and the reputation
//! oracle.

use crate::dataset::Dataset;
use cw_honeypot::deployment::Deployment;
use cw_honeypot::telescope::Telescope;
use cw_netsim::engine::{Engine, RunStats};
use cw_netsim::time::{SimDuration, SimTime};
use cw_scanners::population::{self, PopulationConfig, PopulationHandles, ScenarioYear};
use std::cell::RefCell;
use std::rc::Rc;

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Measurement year.
    pub year: ScenarioYear,
    /// Master seed.
    pub seed: u64,
    /// Population scale (1.0 = full experiment; tests use ~0.05).
    pub scale: f64,
    /// Collection window length.
    pub horizon: SimDuration,
}

impl ScenarioConfig {
    /// The paper's configuration for a year, at full scale.
    pub fn paper(year: ScenarioYear) -> Self {
        ScenarioConfig {
            year,
            seed: DEFAULT_SEED,
            scale: 1.0,
            horizon: SimDuration::WEEK,
        }
    }

    /// A reduced configuration for tests and quick examples.
    pub fn fast(year: ScenarioYear) -> Self {
        ScenarioConfig {
            year,
            seed: DEFAULT_SEED,
            scale: 0.06,
            horizon: SimDuration::WEEK,
        }
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the scale (builder style).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

/// The default reproduction seed (fixed so published tables regenerate
/// bit-identically).
pub const DEFAULT_SEED: u64 = 0x1_C10D_3A7C;

/// A completed scenario run.
pub struct Scenario {
    /// The configuration used.
    pub config: ScenarioConfig,
    /// The Table 1 deployment (vantage metadata + topology).
    pub deployment: Deployment,
    /// The classified event store.
    pub dataset: Dataset,
    /// The telescope with its counters.
    pub telescope: Rc<RefCell<Telescope>>,
    /// Population handles: indexes, engine source lists, reputation, ASes.
    pub handles: PopulationHandles,
    /// Engine statistics for the run.
    pub stats: RunStats,
}

impl Scenario {
    /// Build the world and run the collection window.
    pub fn run(config: ScenarioConfig) -> Scenario {
        let deployment = Deployment::standard();
        let mut engine = Engine::new();
        deployment.register(&mut engine);
        let pop = population::build(
            &PopulationConfig {
                year: config.year,
                seed: config.seed,
                scale: config.scale,
            },
            &deployment,
        );
        let handles = pop.register(&mut engine);
        let stats = engine.run(SimTime::ZERO + config.horizon);

        // Collect captures without cloning event storage.
        let caps: Vec<_> = deployment
            .honeypots
            .iter()
            .map(|h| h.borrow().capture())
            .collect();
        let borrows: Vec<std::cell::Ref<'_, cw_honeypot::capture::Capture>> =
            caps.iter().map(|c| c.borrow()).collect();
        let refs: Vec<&cw_honeypot::capture::Capture> =
            borrows.iter().map(|b| &**b).collect();
        let dataset = Dataset::from_captures(&refs, &deployment);
        drop(borrows);

        let telescope = deployment.telescope.clone();
        Scenario {
            config,
            deployment,
            dataset,
            telescope,
            handles,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_scenario_produces_traffic_everywhere() {
        let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(11));
        assert!(s.stats.flows_delivered > 5_000, "{:?}", s.stats);
        assert!(!s.dataset.is_empty());
        let tel = s.telescope.borrow();
        assert!(tel.total_packets() > 1_000);
        assert!(tel.unique_source_count() > 100);
    }

    #[test]
    fn scenario_is_deterministic() {
        let cfg = ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(5);
        let a = Scenario::run(cfg);
        let b = Scenario::run(cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(
            a.telescope.borrow().total_packets(),
            b.telescope.borrow().total_packets()
        );
    }
}
