//! Scenario orchestration: build the world, run the week, collect the data.
//!
//! A scenario is (year, seed, scale): the Table 1 deployment plus the year's
//! actor population, run for the July 1–7 collection window. The result
//! bundles everything every analysis needs — the classified [`Dataset`],
//! the telescope handle, the search-engine indexes, and the reputation
//! oracle.
//!
//! # Sharded simulation
//!
//! The discrete-event loop is single-threaded, so one world historically
//! cost one core-width of wall clock no matter the machine. With
//! [`ScenarioConfig::shards`] > 1 the actor population is partitioned into
//! K shards — ownership is the pure function
//! [`population::shard_of`]`(seed, actor_id, K)` — and each shard runs its
//! own [`Engine`] over its own copy of the deterministic world, in
//! parallel via [`crate::fleet::map`] (worker threads capped at hardware
//! parallelism). The shard outputs are then merged back into exactly the
//! record the unsharded engine would have produced:
//!
//! - every flow carries `(time, agent, seq)` stamps whose lexicographic
//!   order *is* the unsharded engine's delivery order (the wake queue pops
//!   `(time, agent-id)` ascending and `seq` orders the sends of one wake),
//!   so a K-way cursor merge over the per-shard capture tables restores
//!   the global event order;
//! - interned payload/credential ids are re-interned into a fresh shared
//!   interner while walking that order, reproducing the unsharded
//!   first-occurrence id assignment byte-for-byte;
//! - telescope counters and [`RunStats`] fold with their order-independent
//!   `absorb` merges, in shard order.
//!
//! The result is byte-identical to the unsharded run for any shard count
//! (see `tests/determinism.rs` and docs/ARCHITECTURE.md §"Sharded
//! simulation"); snapshots are therefore keyed without the shard count.

use crate::dataset::Dataset;
use cw_honeypot::capture::{Capture, EventTable, Observed};
use cw_honeypot::deployment::Deployment;
use cw_honeypot::telescope::Telescope;
use cw_netsim::asn::AsRegistry;
use cw_netsim::engine::{Engine, RunStats};
use cw_netsim::fault::{domain_salt, FaultDomain, FaultPlan};
use cw_netsim::intern::{CredId, Interner, PayloadId};
use cw_netsim::time::{SimDuration, SimTime};
use cw_scanners::population::{self, PopulationConfig, PopulationHandles, ScenarioYear};
use cw_scanners::search_engine::SearchIndex;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Measurement year.
    pub year: ScenarioYear,
    /// Master seed.
    pub seed: u64,
    /// Population scale (1.0 = full experiment; tests use ~0.05).
    pub scale: f64,
    /// Collection window length.
    pub horizon: SimDuration,
    /// Number of simulation shards; 0 means "auto" (the machine's
    /// available parallelism). Purely a wall-clock knob: output is
    /// byte-identical for every value, so it is not part of a world's
    /// identity (snapshot keys and [`crate::bundle::SimBundle::matches`]
    /// ignore it).
    pub shards: usize,
    /// Injected measurement faults. [`FaultPlan::none`] (the constructors'
    /// default) is the perfect-sensor world of the golden manifest; a
    /// non-trivial plan *is* part of the world's identity (snapshot keys
    /// and [`crate::bundle::SimBundle::matches`] include it). Fault
    /// schedules are pure functions of `fork_seed(seed, FAULT_DOMAIN)`, so
    /// a faulted world is still byte-identical across threads × shards ×
    /// cache states.
    pub fault: FaultPlan,
}

impl ScenarioConfig {
    /// The paper's configuration for a year, at full scale.
    pub fn paper(year: ScenarioYear) -> Self {
        ScenarioConfig {
            year,
            seed: DEFAULT_SEED,
            scale: 1.0,
            horizon: SimDuration::WEEK,
            shards: 0,
            fault: FaultPlan::none(),
        }
    }

    /// A reduced configuration for tests and quick examples.
    pub fn fast(year: ScenarioYear) -> Self {
        ScenarioConfig {
            year,
            seed: DEFAULT_SEED,
            scale: 0.06,
            horizon: SimDuration::WEEK,
            shards: 0,
            fault: FaultPlan::none(),
        }
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the scale (builder style).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Override the shard count (builder style). 0 restores the default:
    /// one shard per unit of available parallelism.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Inject a fault plan (builder style). Panics on rates outside
    /// `[0, 1]` — the configuration boundary is where bad plans must die.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        fault.validate();
        self.fault = fault;
        self
    }

    /// The effective shard count: the explicit value, or available
    /// parallelism when set to 0 ("auto").
    pub fn effective_shards(&self) -> usize {
        match self.shards {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// The default reproduction seed (fixed so published tables regenerate
/// bit-identically).
pub const DEFAULT_SEED: u64 = 0x1_C10D_3A7C;

/// A completed scenario run.
pub struct Scenario {
    /// The configuration used.
    pub config: ScenarioConfig,
    /// The Table 1 deployment (vantage metadata + topology).
    pub deployment: Deployment,
    /// The classified event store.
    pub dataset: Dataset,
    /// The telescope with its counters.
    pub telescope: Rc<RefCell<Telescope>>,
    /// Population handles: indexes, engine source lists, reputation, ASes.
    pub handles: PopulationHandles,
    /// Engine statistics for the run.
    pub stats: RunStats,
    /// Wall-clock seconds each shard's engine spent (build + run + fold),
    /// indexed by shard. Empty on the single-engine path. Diagnostic only —
    /// never part of any rendered byte.
    pub shard_busy_secs: Vec<f64>,
}

impl Scenario {
    /// Build the world and run the collection window.
    ///
    /// With an effective shard count of 1 this is the legacy single-engine
    /// path; otherwise the population is split across K parallel engines
    /// and merged back byte-identically (see the module docs).
    pub fn run(config: ScenarioConfig) -> Scenario {
        let shards = config.effective_shards();
        if shards <= 1 {
            Scenario::run_single(config)
        } else {
            Scenario::run_sharded(config, shards)
        }
    }

    /// The unsharded path: one engine runs the whole population.
    fn run_single(config: ScenarioConfig) -> Scenario {
        let deployment = Deployment::standard();
        deployment.apply_faults(&config.fault, config.seed, config.horizon);
        let mut engine = Engine::new();
        engine.set_flow_loss(
            config.fault.flow_loss,
            domain_salt(config.seed, FaultDomain::FlowLoss),
        );
        deployment.register(&mut engine);
        let pop = population::build(
            &PopulationConfig {
                year: config.year,
                seed: config.seed,
                scale: config.scale,
            },
            &deployment,
        );
        let handles = pop.register(&mut engine);
        let stats = engine.run(SimTime::ZERO + config.horizon);
        Scenario::finish(config, deployment, handles, stats, Vec::new())
    }

    /// The sharded path: K engines each run the agents their shard owns,
    /// then the captures are merged back into global record order.
    fn run_sharded(config: ScenarioConfig, shards: usize) -> Scenario {
        // Each worker rebuilds the deterministic world locally (the
        // ScenarioFactory pattern: nothing non-`Send` crosses threads) and
        // folds its engine's output to a `Send` ShardRun. One worker
        // thread per shard, capped at hardware parallelism by `map`.
        let mut runs = crate::fleet::map((0..shards).collect(), shards, |_, shard| {
            run_one_shard(config, *shard, shards)
        });

        // Merge on the calling thread, into a fresh deployment whose
        // listeners share one interner — exactly the unsharded layout.
        let deployment = Deployment::standard();
        let stats = runs.iter().fold(RunStats::default(), |mut acc, r| {
            acc.absorb(r.stats);
            acc
        });
        {
            let mut telescope = deployment.telescope.borrow_mut();
            for r in &runs {
                telescope.absorb(&r.telescope);
            }
        }
        merge_captures(&deployment, &runs);
        let coupled = runs
            .iter_mut()
            .find_map(|r| r.handles.take())
            .expect("exactly one shard owns the coupled actor group");
        let handles = PopulationHandles {
            censys: Rc::new(RefCell::new(coupled.censys)),
            shodan: Rc::new(RefCell::new(coupled.shodan)),
            censys_srcs: coupled.censys_srcs,
            shodan_srcs: coupled.shodan_srcs,
            reputation: coupled.reputation,
            registry: coupled.registry,
        };
        let shard_busy = runs.iter().map(|r| r.busy_secs).collect();
        Scenario::finish(config, deployment, handles, stats, shard_busy)
    }

    /// Shared tail: build the classified dataset from the deployment's
    /// captures and assemble the result.
    fn finish(
        config: ScenarioConfig,
        deployment: Deployment,
        handles: PopulationHandles,
        stats: RunStats,
        shard_busy_secs: Vec<f64>,
    ) -> Scenario {
        // Collect captures without cloning event storage.
        let caps: Vec<_> = deployment
            .honeypots
            .iter()
            .map(|h| h.borrow().capture())
            .collect();
        let borrows: Vec<std::cell::Ref<'_, cw_honeypot::capture::Capture>> =
            caps.iter().map(|c| c.borrow()).collect();
        let refs: Vec<&cw_honeypot::capture::Capture> =
            borrows.iter().map(|b| &**b).collect();
        let dataset = Dataset::from_captures(&refs, &deployment);
        drop(borrows);

        let telescope = deployment.telescope.clone();
        Scenario {
            config,
            deployment,
            dataset,
            telescope,
            handles,
            stats,
            shard_busy_secs,
        }
    }
}

/// The `Send` parts of the coupled shard's population handles (the search
/// indexes plus build-time oracles), cloned out of their `Rc` wrappers so
/// they can cross back to the merging thread.
struct ShardHandles {
    censys: SearchIndex,
    shodan: SearchIndex,
    censys_srcs: Vec<Ipv4Addr>,
    shodan_srcs: Vec<Ipv4Addr>,
    reputation: cw_detection::ReputationDb,
    registry: AsRegistry,
}

/// Everything one shard's engine produced, folded to `Send` plain data.
struct ShardRun {
    /// Per honeypot listener (deployment registration order): the capture
    /// table plus its parallel `(agent, seq)` order stamps.
    tables: Vec<(EventTable, Vec<(u32, u64)>)>,
    /// The shard-local interner the tables' ids resolve against.
    interner: Interner,
    /// The shard's telescope counters.
    telescope: Telescope,
    /// The shard engine's counters.
    stats: RunStats,
    /// `Some` only on the shard owning the coupled actor group.
    handles: Option<ShardHandles>,
    /// Wall-clock seconds this shard spent (build + run + fold).
    busy_secs: f64,
}

/// Build the world, register only shard `shard`'s agents (under their
/// global ids), run the window, and fold the results to `Send` data.
fn run_one_shard(config: ScenarioConfig, shard: usize, shards: usize) -> ShardRun {
    let started = std::time::Instant::now();
    let deployment = Deployment::standard();
    // Every shard derives the same fault schedules from the same config —
    // pure functions of (seed, vantage index), never of the shard count.
    deployment.apply_faults(&config.fault, config.seed, config.horizon);
    let mut engine = Engine::new();
    engine.set_flow_loss(
        config.fault.flow_loss,
        domain_salt(config.seed, FaultDomain::FlowLoss),
    );
    deployment.register(&mut engine);
    let pop = population::build(
        &PopulationConfig {
            year: config.year,
            seed: config.seed,
            scale: config.scale,
        },
        &deployment,
    );
    let anchor = pop.coupled.first().copied().unwrap_or(0);
    let owns_coupled = population::shard_of(config.seed, anchor as u32, shards) == shard;
    let handles = pop.register_shard(&mut engine, config.seed, shard, shards);
    let stats = engine.run(SimTime::ZERO + config.horizon);

    let tables = deployment
        .honeypots
        .iter()
        .map(|h| {
            let cap = h.borrow().capture();
            let cap = cap.borrow();
            (cap.table().clone(), cap.order().to_vec())
        })
        .collect();
    let interner_rc = deployment.honeypots[0].borrow().capture();
    let interner_rc = interner_rc.borrow().interner();
    let interner = interner_rc.borrow().clone();
    let telescope = deployment.telescope.borrow().clone();
    let handles = owns_coupled.then(|| ShardHandles {
        censys: handles.censys.borrow().clone(),
        shodan: handles.shodan.borrow().clone(),
        censys_srcs: handles.censys_srcs,
        shodan_srcs: handles.shodan_srcs,
        reputation: handles.reputation,
        registry: handles.registry,
    });
    ShardRun {
        tables,
        interner,
        telescope,
        stats,
        handles,
        busy_secs: started.elapsed().as_secs_f64(),
    }
}

/// Replay every shard's events into `deployment`'s captures in global
/// `(time, agent, seq)` order, re-interning payload/credential values into
/// the deployment's shared interner as they are first encountered.
///
/// Correctness of the byte-identity claim rests on two facts:
///
/// - `(time, agent, seq)` is the unsharded engine's delivery order: the
///   wake queue pops `(time, agent-id)` ascending, agents are disjoint
///   across shards (so cross-shard keys never tie), and within one shard
///   `seq` is monotone in delivery order.
/// - Every intern the record path performs belongs to exactly one recorded
///   event, in within-event order (payload; or username then password) —
///   so lazily re-interning while walking the merged order reproduces the
///   unsharded interner's first-occurrence id assignment exactly.
fn merge_captures(deployment: &Deployment, runs: &[ShardRun]) {
    let captures: Vec<Rc<RefCell<Capture>>> = deployment
        .honeypots
        .iter()
        .map(|h| h.borrow().capture())
        .collect();
    if captures.is_empty() {
        return;
    }
    let interner_rc = captures[0].borrow().interner();
    let mut interner = interner_rc.borrow_mut();

    // Per-shard memo of old id → merged id (dense; ids are arena indexes).
    struct Memo {
        payloads: Vec<Option<PayloadId>>,
        creds: Vec<Option<CredId>>,
    }
    let mut memos: Vec<Memo> = runs
        .iter()
        .map(|r| Memo {
            payloads: vec![None; r.interner.payload_count()],
            creds: vec![None; r.interner.cred_count()],
        })
        .collect();

    // K-way merge over (shard, listener) cursors, min-heap keyed by the
    // global order stamp (shard/listener indexes only break impossible
    // ties deterministically).
    type Key = Reverse<(SimTime, u32, u64, usize, usize)>;
    let key = |s: usize, l: usize, i: usize| -> Key {
        let (table, order) = &runs[s].tables[l];
        let (agent, seq) = order[i];
        Reverse((table.times()[i], agent, seq, s, l))
    };
    let mut cursors: Vec<Vec<usize>> = runs
        .iter()
        .map(|r| vec![0usize; r.tables.len()])
        .collect();
    let mut heap: BinaryHeap<Key> = BinaryHeap::new();
    for (s, r) in runs.iter().enumerate() {
        for (l, (table, _)) in r.tables.iter().enumerate() {
            if !table.is_empty() {
                heap.push(key(s, l, 0));
            }
        }
    }
    while let Some(Reverse((_, _, _, s, l))) = heap.pop() {
        let i = cursors[s][l];
        cursors[s][l] += 1;
        let (table, _) = &runs[s].tables[l];
        let mut event = table.get(i);
        let memo = &mut memos[s];
        let shard_interner = &runs[s].interner;
        event.observed = match event.observed {
            Observed::Payload(p) => {
                let slot = &mut memo.payloads[p.index()];
                let id = *slot.get_or_insert_with(|| {
                    interner.intern_payload(shard_interner.payload(p))
                });
                Observed::Payload(id)
            }
            Observed::Credentials {
                service,
                username,
                password,
            } => {
                // Within-event intern order is username then password.
                let username = {
                    let slot = &mut memo.creds[username.index()];
                    *slot.get_or_insert_with(|| interner.intern_cred(shard_interner.cred(username)))
                };
                let password = {
                    let slot = &mut memo.creds[password.index()];
                    *slot.get_or_insert_with(|| interner.intern_cred(shard_interner.cred(password)))
                };
                Observed::Credentials {
                    service,
                    username,
                    password,
                }
            }
            other => other,
        };
        captures[l].borrow_mut().record_from(
            event,
            runs[s].tables[l].1[i].0,
            runs[s].tables[l].1[i].1,
        );
        if i + 1 < table.len() {
            heap.push(key(s, l, i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_scenario_produces_traffic_everywhere() {
        let s = Scenario::run(ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(11));
        assert!(s.stats.flows_delivered > 5_000, "{:?}", s.stats);
        assert!(!s.dataset.is_empty());
        let tel = s.telescope.borrow();
        assert!(tel.total_packets() > 1_000);
        assert!(tel.unique_source_count() > 100);
    }

    #[test]
    fn scenario_is_deterministic() {
        let cfg = ScenarioConfig::fast(ScenarioYear::Y2021).with_seed(5);
        let a = Scenario::run(cfg);
        let b = Scenario::run(cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(
            a.telescope.borrow().total_packets(),
            b.telescope.borrow().total_packets()
        );
    }
}
