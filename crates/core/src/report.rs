//! Text table rendering shared by the experiment binaries.
//!
//! Plain, aligned, terminal-friendly tables plus the φ magnitude tags the
//! paper renders as colors (blue = small, yellow = medium, red = large).

use cw_stats::{EffectMagnitude, EffectSize};

/// A simple column-aligned text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A titled section header, as every exhibit opens with.
pub fn header_str(title: &str) -> String {
    format!("\n=== {title} ===\n\n")
}

/// A `paper vs measured` context line following the header.
pub fn paper_note_str(note: &str) -> String {
    format!("(paper: {note})\n\n")
}

/// Render an effect size as `0.43 [L]` (the paper's colored magnitudes).
pub fn phi_cell(effect: Option<EffectSize>) -> String {
    match effect {
        None => "-".to_string(),
        Some(e) => format!("{:.2} {}", e.phi, magnitude_tag(e.magnitude)),
    }
}

/// Render a bare φ value with a magnitude recomputed for `df_star`.
pub fn phi_value(phi: Option<f64>, df_star: usize) -> String {
    match phi {
        None => "-".to_string(),
        Some(p) => format!(
            "{:.2} {}",
            p,
            magnitude_tag(cw_stats::cramers::magnitude_for(p, df_star))
        ),
    }
}

/// The compact magnitude tag.
pub fn magnitude_tag(m: EffectMagnitude) -> &'static str {
    match m {
        EffectMagnitude::Negligible => "[-]",
        EffectMagnitude::Small => "[S]",
        EffectMagnitude::Medium => "[M]",
        EffectMagnitude::Large => "[L]",
    }
}

/// Render a percentage cell.
pub fn pct(v: Option<f64>) -> String {
    match v {
        None => "×".to_string(),
        Some(p) => format!("{p:.0}%"),
    }
}

/// Render a fold-increase cell with the paper's markers: bold (here `*`
/// suffix → KS-different, `!` prefix → MWU-significant).
pub fn fold_cell(fold: f64, mwu: bool, ks: bool) -> String {
    let mut s = format!("{fold:.1}");
    if mwu {
        s = format!("**{s}**");
    }
    if ks {
        s.push('*');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Port", "Overlap"]);
        t.row(vec!["23".into(), "91%".into()]);
        t.row(vec!["2222".into(), "9%".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Port"));
        assert!(lines[2].starts_with("23"));
        // Columns aligned: "Overlap" column starts at the same offset.
        let col = lines[0].find("Overlap").unwrap();
        assert_eq!(&lines[2][col..col + 3], "91%");
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        TextTable::new(&["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn cells() {
        assert_eq!(pct(None), "×");
        assert_eq!(pct(Some(91.2)), "91%");
        assert_eq!(phi_value(None, 1), "-");
        assert_eq!(phi_value(Some(0.82), 1), "0.82 [L]");
        assert_eq!(phi_value(Some(0.05), 1), "0.05 [-]");
        assert_eq!(fold_cell(7.7, true, true), "**7.7***");
        assert_eq!(fold_cell(1.5, false, false), "1.5");
    }
}
