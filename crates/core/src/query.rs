//! Typed queries over the columnar event store.
//!
//! Every exhibit used to hand-roll its sweep: a `for` loop over
//! [`Dataset::events_at`] with inline `if` filters, re-materializing
//! row-shaped [`ClassifiedEvent`]s even when the analysis only touched one
//! column. This module replaces those loops with a small
//! filter → group → aggregate builder whose predicates **push down onto the
//! `Copy` ID columns** ([`PayloadId`]/port/verdict/fingerprint) of the
//! struct-of-arrays [`EventTable`]. String resolution through the interner
//! never happens inside a query — aggregates count by ID, and only render
//! code resolves IDs to strings (see `docs/QUERY.md` for the full contract).
//!
//! Two entry points:
//!
//! - [`Query::events`] — a *raw* query over a bare [`EventTable`] (the leak
//!   harness queries its [`cw_honeypot::capture::Capture`] this way, before
//!   any dataset exists). Rows are enumerated in table order.
//! - [`Dataset::query`] — a *dataset-backed* query that can additionally
//!   filter on the classification columns (§3.2 verdict, LZR fingerprint,
//!   the §3.3 traffic slices) and push destination predicates down onto the
//!   dataset's per-destination row index via [`Query::at`]. Rows are
//!   enumerated per destination IP, in the order the IPs were given —
//!   exactly the order of the hand-rolled sweeps this layer retired.
//!
//! Plans over the same snapshot that share a row scan are expressed with
//! [`Batch`]: one pass over the candidate rows evaluates every plan's
//! residual predicates, so Tables 8 and 9 (same fleets, same group key,
//! different residual filters) cost two fleet scans instead of four.
//!
//! # Example
//!
//! ```
//! use cw_core::dataset::Dataset;
//! use cw_honeypot::capture::{Capture, Observed, ScanEvent};
//! use cw_honeypot::deployment::Deployment;
//! use cw_netsim::asn::Asn;
//! use cw_netsim::time::SimTime;
//! use std::net::Ipv4Addr;
//!
//! let mut cap = Capture::new("doc");
//! let dst = Ipv4Addr::new(20, 10, 0, 0); // a standard-deployment vantage
//! for (src, port) in [(1, 23), (2, 23), (2, 2323), (3, 22)] {
//!     cap.record(ScanEvent {
//!         time: SimTime(60),
//!         src: Ipv4Addr::new(100, 0, 0, src),
//!         src_asn: Asn(4134),
//!         dst,
//!         dst_port: port,
//!         observed: Observed::Syn,
//!     });
//! }
//! let deployment = Deployment::standard();
//! let ds = Dataset::from_captures(&[&cap], &deployment);
//!
//! // Distinct Telnet-port scanners at this vantage: 2 (sources .1 and .2).
//! let telnet = ds.query().at(&[dst]).port_in(&[23, 2323]).distinct_srcs();
//! assert_eq!(telnet.len(), 2);
//! ```

use crate::compare::CharKind;
use crate::dataset::{ClassifiedEvent, Dataset, TrafficSlice};
use cw_detection::Verdict;
use cw_honeypot::capture::{EventTable, Observed, ScanEvent};
use cw_netsim::intern::PayloadId;
use cw_protocols::ProtocolId;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// The observation kinds a [`Query::kind`] / [`Query::not_kind`] predicate
/// selects on (the discriminant of [`Observed`], without its payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsKind {
    /// Bare SYN (telescope-style observation).
    Syn,
    /// Completed handshake, no client bytes.
    Handshake,
    /// First client payload.
    Payload,
    /// Harvested interactive login.
    Credentials,
}

impl ObsKind {
    fn matches(self, o: &Observed) -> bool {
        matches!(
            (self, o),
            (ObsKind::Syn, Observed::Syn)
                | (ObsKind::Handshake, Observed::Handshake)
                | (ObsKind::Payload, Observed::Payload(_))
                | (ObsKind::Credentials, Observed::Credentials { .. })
        )
    }
}

/// A residual row predicate. Column-only variants evaluate against the
/// [`EventTable`]; classification variants read the dataset's verdict or
/// fingerprint column and therefore require a dataset-backed query.
#[derive(Debug, Clone)]
enum Pred {
    Port(u16),
    PortIn(Vec<u16>),
    Slice(TrafficSlice),
    Verdict(Verdict),
    Fingerprint(ProtocolId),
    Fingerprinted,
    Kind(ObsKind),
    NotKind(ObsKind),
}

fn class_of(class: Option<&Dataset>) -> &Dataset {
    class.expect(
        "classification predicate (verdict/fingerprint/HTTP-all slice) on a raw \
         event-table query; build the query with Dataset::query instead",
    )
}

fn admits(preds: &[Pred], table: &EventTable, class: Option<&Dataset>, i: usize) -> bool {
    preds.iter().all(|p| match p {
        Pred::Port(port) => table.dst_ports()[i] == *port,
        Pred::PortIn(ports) => ports.contains(&table.dst_ports()[i]),
        Pred::Slice(slice) => match slice {
            TrafficSlice::SshPort22 => table.dst_ports()[i] == 22,
            TrafficSlice::TelnetPort23 => table.dst_ports()[i] == 23,
            TrafficSlice::HttpPort80 => table.dst_ports()[i] == 80,
            TrafficSlice::HttpAllPorts => {
                class_of(class).fingerprints()[i] == Some(ProtocolId::Http)
            }
            TrafficSlice::AnyAll => true,
        },
        Pred::Verdict(v) => class_of(class).verdicts()[i] == *v,
        Pred::Fingerprint(proto) => class_of(class).fingerprints()[i] == Some(*proto),
        Pred::Fingerprinted => class_of(class).fingerprints()[i].is_some(),
        Pred::Kind(k) => k.matches(&table.observed()[i]),
        Pred::NotKind(k) => !k.matches(&table.observed()[i]),
    })
}

/// A lazily built filter → group → aggregate plan over the event columns.
///
/// Builder methods add predicates; terminal methods
/// ([`Query::count`], [`Query::distinct_srcs`], [`Query::classified`], …)
/// run the scan. Nothing is evaluated until a terminal runs, and a query
/// can be run more than once.
#[derive(Clone)]
pub struct Query<'a> {
    table: &'a EventTable,
    class: Option<&'a Dataset>,
    dsts: Option<Vec<Ipv4Addr>>,
    preds: Vec<Pred>,
}

impl<'a> Query<'a> {
    /// A raw query over a bare event table (no classification columns).
    ///
    /// Rows are enumerated in table order. Classification predicates
    /// ([`Query::verdict`], [`Query::fingerprint`],
    /// `slice(TrafficSlice::HttpAllPorts)`) and the [`Query::at`] pushdown
    /// panic on a raw query — they need a [`Dataset`].
    pub fn events(table: &'a EventTable) -> Self {
        Query {
            table,
            class: None,
            dsts: None,
            preds: Vec::new(),
        }
    }

    /// A dataset-backed query (all predicates available). Equivalent to
    /// [`Dataset::query`].
    pub fn over(dataset: &'a Dataset) -> Self {
        Query {
            table: dataset.table(),
            class: Some(dataset),
            dsts: None,
            preds: Vec::new(),
        }
    }

    /// Push destination filtering down onto the dataset's per-destination
    /// row index: only rows destined to `ips` are visited, without scanning
    /// the destination column. Rows are enumerated per IP **in the order
    /// given** (then in capture order within an IP), which is the
    /// concatenation order of the retired hand-rolled sweeps.
    ///
    /// # Panics
    /// Panics on a raw [`Query::events`] query — the index lives on the
    /// [`Dataset`].
    pub fn at(mut self, ips: &[Ipv4Addr]) -> Self {
        assert!(
            self.class.is_some(),
            "destination pushdown on a raw event-table query; build the query \
             with Dataset::query instead"
        );
        self.dsts = Some(ips.to_vec());
        self
    }

    /// Keep rows whose destination port is `port`.
    pub fn port(mut self, port: u16) -> Self {
        self.preds.push(Pred::Port(port));
        self
    }

    /// Keep rows whose destination port is one of `ports`.
    pub fn port_in(mut self, ports: &[u16]) -> Self {
        self.preds.push(Pred::PortIn(ports.to_vec()));
        self
    }

    /// Keep rows inside a §3.3 traffic slice. `HttpAllPorts` reads the
    /// fingerprint column and needs a dataset-backed query.
    pub fn slice(mut self, slice: TrafficSlice) -> Self {
        self.preds.push(Pred::Slice(slice));
        self
    }

    /// Keep rows with the given §3.2 verdict (dataset-backed only).
    pub fn verdict(mut self, v: Verdict) -> Self {
        self.preds.push(Pred::Verdict(v));
        self
    }

    /// Keep rows classified as attacker traffic — shorthand for
    /// `verdict(Verdict::Attacker)`.
    pub fn malicious(self) -> Self {
        self.verdict(Verdict::Attacker)
    }

    /// Keep rows whose payload fingerprinted as `proto` (dataset-backed).
    pub fn fingerprint(mut self, proto: ProtocolId) -> Self {
        self.preds.push(Pred::Fingerprint(proto));
        self
    }

    /// Keep rows that fingerprinted as *some* protocol (dataset-backed).
    pub fn fingerprinted(mut self) -> Self {
        self.preds.push(Pred::Fingerprinted);
        self
    }

    /// Keep rows whose observation is of `kind`.
    pub fn kind(mut self, kind: ObsKind) -> Self {
        self.preds.push(Pred::Kind(kind));
        self
    }

    /// Keep rows whose observation is *not* of `kind`.
    pub fn not_kind(mut self, kind: ObsKind) -> Self {
        self.preds.push(Pred::NotKind(kind));
        self
    }

    /// Run the scan, calling `f` with each admitted row index.
    fn for_each(&self, mut f: impl FnMut(usize)) {
        match &self.dsts {
            Some(ips) => {
                let ds = class_of(self.class);
                for &ip in ips {
                    let Some(idxs) = ds.dst_index(ip) else { continue };
                    for &i in idxs {
                        if admits(&self.preds, self.table, self.class, i) {
                            f(i);
                        }
                    }
                }
            }
            None => {
                for i in 0..self.table.len() {
                    if admits(&self.preds, self.table, self.class, i) {
                        f(i);
                    }
                }
            }
        }
    }

    /// Number of admitted rows.
    pub fn count(&self) -> usize {
        let mut n = 0;
        self.for_each(|_| n += 1);
        n
    }

    /// Admitted row indices, in enumeration order.
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each(|i| out.push(i));
        out
    }

    /// Admitted rows as row views, in enumeration order.
    pub fn rows(&self) -> Vec<ScanEvent> {
        let mut out = Vec::new();
        self.for_each(|i| out.push(self.table.get(i)));
        out
    }

    /// Admitted rows as [`ClassifiedEvent`]s (dataset-backed only), in
    /// enumeration order — the drop-in replacement for the retired
    /// `events_at_group`-style sweeps.
    pub fn classified(&self) -> Vec<ClassifiedEvent<'a>> {
        let ds = class_of(self.class);
        let mut out = Vec::new();
        self.for_each(|i| out.push(ds.event(i)));
        out
    }

    /// Distinct source IPs among admitted rows.
    pub fn distinct_srcs(&self) -> BTreeSet<Ipv4Addr> {
        let mut out = BTreeSet::new();
        self.for_each(|i| {
            out.insert(self.table.srcs()[i]);
        });
        out
    }

    /// Distinct source IP and source AS counts among admitted rows —
    /// Table 1's unique-scanner columns in one pass.
    pub fn unique_src_and_asn(&self) -> (usize, usize) {
        let mut srcs = BTreeSet::new();
        let mut asns = BTreeSet::new();
        self.for_each(|i| {
            srcs.insert(self.table.srcs()[i]);
            asns.insert(self.table.src_asns()[i].0);
        });
        (srcs.len(), asns.len())
    }

    /// The §3.3 characteristic frequencies of the admitted rows
    /// (dataset-backed only) — `kind.freqs(...)` over the matching events.
    /// Counting happens by interned ID; `CharKind` resolves strings once
    /// per distinct ID at the render boundary.
    pub fn char_freqs(&self, kind: CharKind) -> BTreeMap<String, u64> {
        kind.freqs(&self.classified())
    }

    /// Group admitted rows by destination port.
    pub fn group_by_port(self) -> Grouped<'a, u16> {
        let ports = self.table.dst_ports();
        Grouped {
            q: self,
            restrict: None,
            key: Box::new(move |i| Some(ports[i])),
        }
    }

    /// Group admitted rows by source IP.
    pub fn group_by_src(self) -> Grouped<'a, Ipv4Addr> {
        let srcs = self.table.srcs();
        Grouped {
            q: self,
            restrict: None,
            key: Box::new(move |i| Some(srcs[i])),
        }
    }

    /// Group admitted rows by source AS number.
    pub fn group_by_asn(self) -> Grouped<'a, u32> {
        let asns = self.table.src_asns();
        Grouped {
            q: self,
            restrict: None,
            key: Box::new(move |i| Some(asns[i].0)),
        }
    }

    /// Group admitted rows by LZR fingerprint (dataset-backed only). Rows
    /// without a fingerprint fall outside every group.
    pub fn group_by_fingerprint(self) -> Grouped<'a, ProtocolId> {
        let fps = class_of(self.class).fingerprints();
        Grouped {
            q: self,
            restrict: None,
            key: Box::new(move |i| fps[i]),
        }
    }
}

/// A grouped query: a [`Query`] plus a group key drawn from one of the
/// `Copy` ID columns. Aggregate terminals run the underlying scan once.
pub struct Grouped<'a, K> {
    q: Query<'a>,
    restrict: Option<Vec<K>>,
    key: Box<dyn Fn(usize) -> Option<K> + 'a>,
}

impl<'a, K: Ord + Copy> Grouped<'a, K> {
    /// Restrict the grouping to a fixed key list: only listed keys are
    /// aggregated, and every listed key appears in the result even when no
    /// row matched it (the Tables 8/9 fixed-port-list contract).
    pub fn keys(mut self, keys: &[K]) -> Self {
        self.restrict = Some(keys.to_vec());
        self
    }

    fn seeded<V: Default>(&self) -> BTreeMap<K, V> {
        self.restrict
            .as_ref()
            .map(|keys| keys.iter().map(|&k| (k, V::default())).collect())
            .unwrap_or_default()
    }

    /// Fold admitted rows into per-group accumulators in one scan.
    fn fold<V: Default>(&self, mut push: impl FnMut(&mut V, usize)) -> BTreeMap<K, V> {
        let mut out = self.seeded::<V>();
        let restricted = self.restrict.is_some();
        self.q.for_each(|i| {
            if let Some(k) = (self.key)(i) {
                if restricted {
                    if let Some(v) = out.get_mut(&k) {
                        push(v, i);
                    }
                } else {
                    push(out.entry(k).or_default(), i);
                }
            }
        });
        out
    }

    /// Rows per group.
    pub fn counts(&self) -> BTreeMap<K, u64> {
        self.fold(|n: &mut u64, _| *n += 1)
    }

    /// Distinct source IPs per group — the backbone of Tables 8/9.
    pub fn distinct_srcs(&self) -> BTreeMap<K, BTreeSet<Ipv4Addr>> {
        let srcs = self.q.table.srcs();
        self.fold(|set: &mut BTreeSet<Ipv4Addr>, i| {
            set.insert(srcs[i]);
        })
    }

    /// Distinct payload IDs per group (rows without a payload don't count)
    /// — `count_distinct(PayloadId)` in the query-plan sketch.
    pub fn count_distinct_payloads(&self) -> BTreeMap<K, usize> {
        let observed = self.q.table.observed();
        self.fold(|set: &mut BTreeSet<PayloadId>, i| {
            if let Some(p) = observed[i].payload() {
                set.insert(p);
            }
        })
        .into_iter()
        .map(|(k, set)| (k, set.len()))
        .collect()
    }
}

/// Several per-port distinct-source plans sharing **one** column scan.
///
/// All plans share the destination pushdown (one fleet, one pass over its
/// rows) and the group key (destination port); each plan contributes its
/// own residual predicates and fixed port list. Tables 8 and 9 are the
/// motivating case: the all-sources plan and the attackers-only plan over
/// the same fleet coincide on group key, so one scan serves both.
pub struct Batch<'a> {
    dataset: &'a Dataset,
    dsts: Vec<Ipv4Addr>,
    plans: Vec<BatchPlan>,
}

struct BatchPlan {
    preds: Vec<Pred>,
    ports: Vec<u16>,
}

impl<'a> Batch<'a> {
    /// A batch over the rows destined to `ips` (enumerated per IP in the
    /// order given, like [`Query::at`]).
    pub fn at(dataset: &'a Dataset, ips: &[Ipv4Addr]) -> Self {
        Batch {
            dataset,
            dsts: ips.to_vec(),
            plans: Vec::new(),
        }
    }

    /// Add one plan: `q`'s residual predicates, grouped by destination port
    /// over the fixed `ports` list (every listed port appears in the
    /// result, matching [`Grouped::keys`]).
    ///
    /// # Panics
    /// Panics if `q` carries its own destination pushdown — the batch owns
    /// the row enumeration.
    pub fn plan(mut self, q: Query<'a>, ports: &[u16]) -> Self {
        assert!(
            q.dsts.is_none(),
            "batch plans share the batch's destination pushdown; build the plan \
             without Query::at"
        );
        self.plans.push(BatchPlan {
            preds: q.preds,
            ports: ports.to_vec(),
        });
        self
    }

    /// Run every plan in one shared scan: distinct source IPs per port,
    /// one map per plan, in plan order.
    pub fn distinct_srcs(&self) -> Vec<BTreeMap<u16, BTreeSet<Ipv4Addr>>> {
        let mut out: Vec<BTreeMap<u16, BTreeSet<Ipv4Addr>>> = self
            .plans
            .iter()
            .map(|p| p.ports.iter().map(|&port| (port, BTreeSet::new())).collect())
            .collect();
        let table = self.dataset.table();
        for &ip in &self.dsts {
            let Some(idxs) = self.dataset.dst_index(ip) else { continue };
            for &i in idxs {
                let port = table.dst_ports()[i];
                let src = table.srcs()[i];
                for (plan, sets) in self.plans.iter().zip(&mut out) {
                    if let Some(set) = sets.get_mut(&port) {
                        if admits(&plan.preds, table, Some(self.dataset), i) {
                            set.insert(src);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_honeypot::capture::Capture;
    use cw_honeypot::deployment::Deployment;
    use cw_netsim::asn::Asn;
    use cw_netsim::flow::LoginService;
    use cw_netsim::time::SimTime;

    const DST: Ipv4Addr = Ipv4Addr::new(20, 10, 0, 0);

    fn event(cap: &Capture, src: u8, port: u16, observed: Observed) -> ScanEvent {
        let _ = cap;
        ScanEvent {
            time: SimTime(60),
            src: Ipv4Addr::new(100, 0, 0, src),
            src_asn: Asn(4134),
            dst: DST,
            dst_port: port,
            observed,
        }
    }

    fn dataset() -> Dataset {
        let mut cap = Capture::new("test");
        let get = Observed::Payload(cap.intern_payload(&cw_scanners::exploits::benign_get("z")));
        let exploit = Observed::Payload(cap.intern_payload(&cw_scanners::exploits::log4shell("x")));
        let creds = Observed::Credentials {
            service: LoginService::Ssh,
            username: cap.intern_cred("root"),
            password: cap.intern_cred("123456"),
        };
        let rows = [
            event(&cap, 1, 23, Observed::Syn),
            event(&cap, 2, 23, Observed::Handshake),
            event(&cap, 2, 2323, Observed::Syn),
            event(&cap, 3, 22, creds),
            event(&cap, 4, 80, get),
            event(&cap, 4, 80, exploit),
            event(&cap, 5, 8080, get),
        ];
        for e in rows {
            cap.record(e);
        }
        Dataset::from_captures(&[&cap], &Deployment::standard())
    }

    #[test]
    fn predicates_match_hand_rolled_filters() {
        let ds = dataset();
        assert_eq!(ds.query().port(23).count(), 2);
        assert_eq!(ds.query().port_in(&[23, 2323]).count(), 3);
        assert_eq!(ds.query().at(&[DST]).port(80).count(), 2);
        assert_eq!(ds.query().malicious().count(), 2); // creds + log4shell
        assert_eq!(ds.query().fingerprint(ProtocolId::Http).count(), 3);
        assert_eq!(ds.query().kind(ObsKind::Credentials).count(), 1);
        assert_eq!(ds.query().not_kind(ObsKind::Credentials).count(), 6);
        assert_eq!(ds.query().slice(TrafficSlice::HttpAllPorts).count(), 3);
        assert_eq!(ds.query().slice(TrafficSlice::AnyAll).count(), 7);
    }

    #[test]
    fn enumeration_order_matches_the_retired_sweeps() {
        let ds = dataset();
        let manual: Vec<usize> = (0..ds.len())
            .filter(|&i| ds.table().dst_ports()[i] == 80)
            .collect();
        assert_eq!(ds.query().port(80).indices(), manual);
        // Dataset-backed pushdown enumerates via the destination index.
        assert_eq!(ds.query().at(&[DST]).indices(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_aggregates() {
        let ds = dataset();
        assert_eq!(ds.query().port_in(&[23, 2323]).distinct_srcs().len(), 2);
        assert_eq!(ds.query().at(&[DST]).unique_src_and_asn(), (5, 1));
        let by_port = ds.query().group_by_port().keys(&[80, 443]).distinct_srcs();
        assert_eq!(by_port[&80].len(), 1);
        assert!(by_port[&443].is_empty(), "seeded key must be present");
        let by_fp = ds.query().group_by_fingerprint().distinct_srcs();
        assert_eq!(by_fp[&ProtocolId::Http].len(), 2);
        let payloads = ds.query().group_by_src().count_distinct_payloads();
        assert_eq!(payloads[&Ipv4Addr::new(100, 0, 0, 4)], 2);
    }

    #[test]
    fn grouped_counts_without_restriction() {
        let ds = dataset();
        let counts = ds.query().group_by_port().counts();
        assert_eq!(counts[&23], 2);
        assert_eq!(counts[&80], 2);
        assert!(!counts.contains_key(&443));
        let by_asn = ds.query().group_by_asn().counts();
        assert_eq!(by_asn[&4134], 7);
    }

    #[test]
    fn raw_query_over_a_bare_table() {
        let ds = dataset();
        let q = Query::events(ds.table());
        assert_eq!(q.clone().port(23).count(), 2);
        let rows = q.port(8080).rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].dst_port, 8080);
    }

    #[test]
    #[should_panic(expected = "classification predicate")]
    fn raw_query_rejects_classification_predicates() {
        let ds = dataset();
        Query::events(ds.table()).malicious().count();
    }

    #[test]
    fn batch_matches_independent_plans() {
        let ds = dataset();
        let ports = [22, 23, 80, 8080];
        let batched = Batch::at(&ds, &[DST])
            .plan(ds.query(), &ports)
            .plan(ds.query().malicious(), &ports)
            .distinct_srcs();
        let all = ds.query().at(&[DST]).group_by_port().keys(&ports).distinct_srcs();
        let bad = ds
            .query()
            .at(&[DST])
            .malicious()
            .group_by_port()
            .keys(&ports)
            .distinct_srcs();
        assert_eq!(batched[0], all);
        assert_eq!(batched[1], bad);
        assert_eq!(batched[1][&80].len(), 1);
        assert!(batched[1][&8080].is_empty());
    }
}
