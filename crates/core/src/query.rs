//! Typed queries over the columnar event store.
//!
//! Every exhibit used to hand-roll its sweep: a `for` loop over
//! [`Dataset::events_at`] with inline `if` filters, re-materializing
//! row-shaped [`ClassifiedEvent`]s even when the analysis only touched one
//! column. This module replaces those loops with a small
//! filter → group → aggregate builder whose predicates **push down onto the
//! `Copy` ID columns** ([`PayloadId`]/port/verdict/fingerprint) of the
//! struct-of-arrays [`EventTable`]. String resolution through the interner
//! never happens inside a query — aggregates count by ID, and only render
//! code resolves IDs to strings (see `docs/QUERY.md` for the full contract).
//!
//! Two entry points:
//!
//! - [`Query::events`] — a *raw* query over a bare [`EventTable`] (the leak
//!   harness queries its [`cw_honeypot::capture::Capture`] this way, before
//!   any dataset exists). Rows are enumerated in table order.
//! - [`Dataset::query`] — a *dataset-backed* query that can additionally
//!   filter on the classification columns (§3.2 verdict, LZR fingerprint,
//!   the §3.3 traffic slices) and push destination predicates down onto the
//!   dataset's per-destination row index via [`Query::at`]. Rows are
//!   enumerated per destination IP, in the order the IPs were given —
//!   exactly the order of the hand-rolled sweeps this layer retired.
//!
//! Analyses over the same snapshot that want to share a row scan build
//! [`Plan`] values — an owned, declarative description of a scan (pushdown
//! predicates + group key + terminal) that can be constructed before any
//! dataset exists — and submit them to a [`PlanSet`]. The executor
//! partitions the submitted plans by row-enumeration domain (identical
//! destination pushdown), evaluates each partition in **one pass** over the
//! interned columns, and returns typed [`PlanResult`]s in submission order.
//! Tables 8 and 9 (same fleets, different residual filters) cost two fleet
//! scans instead of four; across the exhibit registry, the driver prefetches
//! every declared plan per bundle into a [`PlanStore`] so coinciding scans
//! fuse registry-wide (see `docs/QUERY.md` and `Exhibit::plans`).
//!
//! Scan-count observability: every column pass (a [`Query`] terminal or a
//! `PlanSet` partition) bumps process-wide counters, readable via
//! [`scan_counters`]. The `cw all --trace-scans` flag and
//! `BENCH_scenario.json` report fused vs planned scan counts from them.
//!
//! # Example
//!
//! ```
//! use cw_core::dataset::Dataset;
//! use cw_honeypot::capture::{Capture, Observed, ScanEvent};
//! use cw_honeypot::deployment::Deployment;
//! use cw_netsim::asn::Asn;
//! use cw_netsim::time::SimTime;
//! use std::net::Ipv4Addr;
//!
//! let mut cap = Capture::new("doc");
//! let dst = Ipv4Addr::new(20, 10, 0, 0); // a standard-deployment vantage
//! for (src, port) in [(1, 23), (2, 23), (2, 2323), (3, 22)] {
//!     cap.record(ScanEvent {
//!         time: SimTime(60),
//!         src: Ipv4Addr::new(100, 0, 0, src),
//!         src_asn: Asn(4134),
//!         dst,
//!         dst_port: port,
//!         observed: Observed::Syn,
//!     });
//! }
//! let deployment = Deployment::standard();
//! let ds = Dataset::from_captures(&[&cap], &deployment);
//!
//! // Distinct Telnet-port scanners at this vantage: 2 (sources .1 and .2).
//! let telnet = ds.query().at(&[dst]).port_in(&[23, 2323]).distinct_srcs();
//! assert_eq!(telnet.len(), 2);
//! ```

use crate::compare::CharKind;
use crate::dataset::{ClassifiedEvent, Dataset, TrafficSlice};
use cw_detection::Verdict;
use cw_honeypot::capture::{EventTable, Observed, ScanEvent};
use cw_netsim::intern::PayloadId;
use cw_protocols::ProtocolId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide column passes actually executed (each [`Query`] terminal
/// scan and each fused [`PlanSet`] partition counts one).
static FUSED_PASSES: AtomicU64 = AtomicU64::new(0);
/// Process-wide plan evaluations requested (each [`Query`] terminal counts
/// one; each plan submitted to an executed [`PlanSet`] counts one). The gap
/// between this and [`FUSED_PASSES`] is the fusion win.
static PLANNED_SCANS: AtomicU64 = AtomicU64::new(0);
/// Process-wide candidate rows enumerated across all passes.
static SCANNED_ROWS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide scan counters (monotonic; subtract two
/// snapshots with [`ScanCounters::since`] to meter one phase).
///
/// `fused` counts column passes actually executed; `planned` counts plan
/// evaluations requested. A [`PlanStore`] hit
/// bumps neither — the work already happened at prefetch time — so after a
/// fully prefetched render `fused < planned` exactly when fusion shared
/// passes between plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanCounters {
    /// Column passes executed.
    pub fused: u64,
    /// Plan evaluations requested.
    pub planned: u64,
    /// Candidate rows enumerated.
    pub rows: u64,
}

impl ScanCounters {
    /// The counter deltas accumulated since `earlier`.
    pub fn since(self, earlier: ScanCounters) -> ScanCounters {
        ScanCounters {
            fused: self.fused - earlier.fused,
            planned: self.planned - earlier.planned,
            rows: self.rows - earlier.rows,
        }
    }
}

/// Read the process-wide scan counters.
pub fn scan_counters() -> ScanCounters {
    ScanCounters {
        fused: FUSED_PASSES.load(Ordering::Relaxed),
        planned: PLANNED_SCANS.load(Ordering::Relaxed),
        rows: SCANNED_ROWS.load(Ordering::Relaxed),
    }
}

/// The observation kinds a [`Query::kind`] / [`Query::not_kind`] predicate
/// selects on (the discriminant of [`Observed`], without its payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObsKind {
    /// Bare SYN (telescope-style observation).
    Syn,
    /// Completed handshake, no client bytes.
    Handshake,
    /// First client payload.
    Payload,
    /// Harvested interactive login.
    Credentials,
}

impl ObsKind {
    fn matches(self, o: &Observed) -> bool {
        matches!(
            (self, o),
            (ObsKind::Syn, Observed::Syn)
                | (ObsKind::Handshake, Observed::Handshake)
                | (ObsKind::Payload, Observed::Payload(_))
                | (ObsKind::Credentials, Observed::Credentials { .. })
        )
    }
}

/// A residual row predicate. Column-only variants evaluate against the
/// [`EventTable`]; classification variants read the dataset's verdict or
/// fingerprint column and therefore require a dataset-backed query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pred {
    Port(u16),
    PortIn(Vec<u16>),
    Slice(TrafficSlice),
    Verdict(Verdict),
    Fingerprint(ProtocolId),
    Fingerprinted,
    Kind(ObsKind),
    NotKind(ObsKind),
}

fn class_of(class: Option<&Dataset>) -> &Dataset {
    class.expect(
        "classification predicate (verdict/fingerprint/HTTP-all slice) on a raw \
         event-table query; build the query with Dataset::query instead",
    )
}

fn admits(preds: &[Pred], table: &EventTable, class: Option<&Dataset>, i: usize) -> bool {
    preds.iter().all(|p| match p {
        Pred::Port(port) => table.dst_ports()[i] == *port,
        Pred::PortIn(ports) => ports.contains(&table.dst_ports()[i]),
        Pred::Slice(slice) => match slice {
            TrafficSlice::SshPort22 => table.dst_ports()[i] == 22,
            TrafficSlice::TelnetPort23 => table.dst_ports()[i] == 23,
            TrafficSlice::HttpPort80 => table.dst_ports()[i] == 80,
            TrafficSlice::HttpAllPorts => {
                class_of(class).fingerprints()[i] == Some(ProtocolId::Http)
            }
            TrafficSlice::AnyAll => true,
        },
        Pred::Verdict(v) => class_of(class).verdicts()[i] == *v,
        Pred::Fingerprint(proto) => class_of(class).fingerprints()[i] == Some(*proto),
        Pred::Fingerprinted => class_of(class).fingerprints()[i].is_some(),
        Pred::Kind(k) => k.matches(&table.observed()[i]),
        Pred::NotKind(k) => !k.matches(&table.observed()[i]),
    })
}

/// A lazily built filter → group → aggregate plan over the event columns.
///
/// Builder methods add predicates; terminal methods
/// ([`Query::count`], [`Query::distinct_srcs`], [`Query::classified`], …)
/// run the scan. Nothing is evaluated until a terminal runs, and a query
/// can be run more than once.
#[derive(Clone)]
pub struct Query<'a> {
    table: &'a EventTable,
    class: Option<&'a Dataset>,
    dsts: Option<Vec<Ipv4Addr>>,
    preds: Vec<Pred>,
}

impl<'a> Query<'a> {
    /// A raw query over a bare event table (no classification columns).
    ///
    /// Rows are enumerated in table order. Classification predicates
    /// ([`Query::verdict`], [`Query::fingerprint`],
    /// `slice(TrafficSlice::HttpAllPorts)`) and the [`Query::at`] pushdown
    /// panic on a raw query — they need a [`Dataset`].
    pub fn events(table: &'a EventTable) -> Self {
        Query {
            table,
            class: None,
            dsts: None,
            preds: Vec::new(),
        }
    }

    /// A dataset-backed query (all predicates available). Equivalent to
    /// [`Dataset::query`].
    pub fn over(dataset: &'a Dataset) -> Self {
        Query {
            table: dataset.table(),
            class: Some(dataset),
            dsts: None,
            preds: Vec::new(),
        }
    }

    /// Push destination filtering down onto the dataset's per-destination
    /// row index: only rows destined to `ips` are visited, without scanning
    /// the destination column. Rows are enumerated per IP **in the order
    /// given** (then in capture order within an IP), which is the
    /// concatenation order of the retired hand-rolled sweeps.
    ///
    /// # Panics
    /// Panics on a raw [`Query::events`] query — the index lives on the
    /// [`Dataset`].
    pub fn at(mut self, ips: &[Ipv4Addr]) -> Self {
        assert!(
            self.class.is_some(),
            "destination pushdown on a raw event-table query; build the query \
             with Dataset::query instead"
        );
        self.dsts = Some(ips.to_vec());
        self
    }

    /// Keep rows whose destination port is `port`.
    pub fn port(mut self, port: u16) -> Self {
        self.preds.push(Pred::Port(port));
        self
    }

    /// Keep rows whose destination port is one of `ports`.
    pub fn port_in(mut self, ports: &[u16]) -> Self {
        self.preds.push(Pred::PortIn(ports.to_vec()));
        self
    }

    /// Keep rows inside a §3.3 traffic slice. `HttpAllPorts` reads the
    /// fingerprint column and needs a dataset-backed query.
    pub fn slice(mut self, slice: TrafficSlice) -> Self {
        self.preds.push(Pred::Slice(slice));
        self
    }

    /// Keep rows with the given §3.2 verdict (dataset-backed only).
    pub fn verdict(mut self, v: Verdict) -> Self {
        self.preds.push(Pred::Verdict(v));
        self
    }

    /// Keep rows classified as attacker traffic — shorthand for
    /// `verdict(Verdict::Attacker)`.
    pub fn malicious(self) -> Self {
        self.verdict(Verdict::Attacker)
    }

    /// Keep rows whose payload fingerprinted as `proto` (dataset-backed).
    pub fn fingerprint(mut self, proto: ProtocolId) -> Self {
        self.preds.push(Pred::Fingerprint(proto));
        self
    }

    /// Keep rows that fingerprinted as *some* protocol (dataset-backed).
    pub fn fingerprinted(mut self) -> Self {
        self.preds.push(Pred::Fingerprinted);
        self
    }

    /// Keep rows whose observation is of `kind`.
    pub fn kind(mut self, kind: ObsKind) -> Self {
        self.preds.push(Pred::Kind(kind));
        self
    }

    /// Keep rows whose observation is *not* of `kind`.
    pub fn not_kind(mut self, kind: ObsKind) -> Self {
        self.preds.push(Pred::NotKind(kind));
        self
    }

    /// Run the scan, calling `f` with each admitted row index.
    fn for_each(&self, mut f: impl FnMut(usize)) {
        FUSED_PASSES.fetch_add(1, Ordering::Relaxed);
        PLANNED_SCANS.fetch_add(1, Ordering::Relaxed);
        let mut rows = 0u64;
        match &self.dsts {
            Some(ips) => {
                let ds = class_of(self.class);
                for &ip in ips {
                    let Some(idxs) = ds.dst_index(ip) else { continue };
                    rows += idxs.len() as u64;
                    for &i in idxs {
                        if admits(&self.preds, self.table, self.class, i) {
                            f(i);
                        }
                    }
                }
            }
            None => {
                rows = self.table.len() as u64;
                for i in 0..self.table.len() {
                    if admits(&self.preds, self.table, self.class, i) {
                        f(i);
                    }
                }
            }
        }
        SCANNED_ROWS.fetch_add(rows, Ordering::Relaxed);
    }

    /// Number of admitted rows.
    pub fn count(&self) -> usize {
        let mut n = 0;
        self.for_each(|_| n += 1);
        n
    }

    /// Admitted row indices, in enumeration order.
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each(|i| out.push(i));
        out
    }

    /// Admitted rows as row views, in enumeration order.
    pub fn rows(&self) -> Vec<ScanEvent> {
        let mut out = Vec::new();
        self.for_each(|i| out.push(self.table.get(i)));
        out
    }

    /// Admitted rows as [`ClassifiedEvent`]s (dataset-backed only), in
    /// enumeration order — the drop-in replacement for the retired
    /// `events_at_group`-style sweeps.
    pub fn classified(&self) -> Vec<ClassifiedEvent<'a>> {
        let ds = class_of(self.class);
        let mut out = Vec::new();
        self.for_each(|i| out.push(ds.event(i)));
        out
    }

    /// Distinct source IPs among admitted rows.
    pub fn distinct_srcs(&self) -> BTreeSet<Ipv4Addr> {
        let mut out = BTreeSet::new();
        self.for_each(|i| {
            out.insert(self.table.srcs()[i]);
        });
        out
    }

    /// Distinct source IP and source AS counts among admitted rows —
    /// Table 1's unique-scanner columns in one pass.
    pub fn unique_src_and_asn(&self) -> (usize, usize) {
        let mut srcs = BTreeSet::new();
        let mut asns = BTreeSet::new();
        self.for_each(|i| {
            srcs.insert(self.table.srcs()[i]);
            asns.insert(self.table.src_asns()[i].0);
        });
        (srcs.len(), asns.len())
    }

    /// The §3.3 characteristic frequencies of the admitted rows
    /// (dataset-backed only) — `kind.freqs(...)` over the matching events.
    /// Counting happens by interned ID; `CharKind` resolves strings once
    /// per distinct ID at the render boundary.
    pub fn char_freqs(&self, kind: CharKind) -> BTreeMap<String, u64> {
        kind.freqs(&self.classified())
    }

    /// Group admitted rows by destination port.
    pub fn group_by_port(self) -> Grouped<'a, u16> {
        let ports = self.table.dst_ports();
        Grouped {
            q: self,
            restrict: None,
            key: Box::new(move |i| Some(ports[i])),
        }
    }

    /// Group admitted rows by source IP.
    pub fn group_by_src(self) -> Grouped<'a, Ipv4Addr> {
        let srcs = self.table.srcs();
        Grouped {
            q: self,
            restrict: None,
            key: Box::new(move |i| Some(srcs[i])),
        }
    }

    /// Group admitted rows by source AS number.
    pub fn group_by_asn(self) -> Grouped<'a, u32> {
        let asns = self.table.src_asns();
        Grouped {
            q: self,
            restrict: None,
            key: Box::new(move |i| Some(asns[i].0)),
        }
    }

    /// Group admitted rows by LZR fingerprint (dataset-backed only). Rows
    /// without a fingerprint fall outside every group.
    pub fn group_by_fingerprint(self) -> Grouped<'a, ProtocolId> {
        let fps = class_of(self.class).fingerprints();
        Grouped {
            q: self,
            restrict: None,
            key: Box::new(move |i| fps[i]),
        }
    }
}

/// A grouped query: a [`Query`] plus a group key drawn from one of the
/// `Copy` ID columns. Aggregate terminals run the underlying scan once.
pub struct Grouped<'a, K> {
    q: Query<'a>,
    restrict: Option<Vec<K>>,
    key: Box<dyn Fn(usize) -> Option<K> + 'a>,
}

impl<'a, K: Ord + Copy> Grouped<'a, K> {
    /// Restrict the grouping to a fixed key list: only listed keys are
    /// aggregated, and every listed key appears in the result even when no
    /// row matched it (the Tables 8/9 fixed-port-list contract).
    pub fn keys(mut self, keys: &[K]) -> Self {
        self.restrict = Some(keys.to_vec());
        self
    }

    fn seeded<V: Default>(&self) -> BTreeMap<K, V> {
        self.restrict
            .as_ref()
            .map(|keys| keys.iter().map(|&k| (k, V::default())).collect())
            .unwrap_or_default()
    }

    /// Fold admitted rows into per-group accumulators in one scan.
    fn fold<V: Default>(&self, mut push: impl FnMut(&mut V, usize)) -> BTreeMap<K, V> {
        let mut out = self.seeded::<V>();
        let restricted = self.restrict.is_some();
        self.q.for_each(|i| {
            if let Some(k) = (self.key)(i) {
                if restricted {
                    if let Some(v) = out.get_mut(&k) {
                        push(v, i);
                    }
                } else {
                    push(out.entry(k).or_default(), i);
                }
            }
        });
        out
    }

    /// Rows per group.
    pub fn counts(&self) -> BTreeMap<K, u64> {
        self.fold(|n: &mut u64, _| *n += 1)
    }

    /// Distinct source IPs per group — the backbone of Tables 8/9.
    pub fn distinct_srcs(&self) -> BTreeMap<K, BTreeSet<Ipv4Addr>> {
        let srcs = self.q.table.srcs();
        self.fold(|set: &mut BTreeSet<Ipv4Addr>, i| {
            set.insert(srcs[i]);
        })
    }

    /// Distinct payload IDs per group (rows without a payload don't count)
    /// — `count_distinct(PayloadId)` in the query-plan sketch.
    pub fn count_distinct_payloads(&self) -> BTreeMap<K, usize> {
        let observed = self.q.table.observed();
        self.fold(|set: &mut BTreeSet<PayloadId>, i| {
            if let Some(p) = observed[i].payload() {
                set.insert(p);
            }
        })
        .into_iter()
        .map(|(k, set)| (k, set.len()))
        .collect()
    }
}

/// The group key of a [`Plan`]: how admitted rows are bucketed before the
/// terminal aggregates them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// No grouping: the terminal aggregates every admitted row.
    None,
    /// Group by destination port over a fixed, seeded key list: only listed
    /// ports are aggregated and every listed port appears in the result,
    /// even empty — the Tables 8/9 contract of [`Grouped::keys`].
    Ports(Vec<u16>),
    /// Group by LZR fingerprint; rows without a fingerprint fall outside
    /// every group (matches [`Query::group_by_fingerprint`]).
    Fingerprint,
}

/// The terminal aggregate of a [`Plan`] — what one pass folds the admitted
/// rows into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminal {
    /// Admitted-row count → [`PlanResult::Count`].
    Count,
    /// Admitted row indices in enumeration order → [`PlanResult::Rows`].
    Rows,
    /// Admitted row indices, for resolution to
    /// [`ClassifiedEvent`]s via [`Dataset::event`] → [`PlanResult::Rows`].
    Classified,
    /// Distinct source IPs → [`PlanResult::DistinctSrcs`] (or the per-group
    /// map variants under a [`GroupKey`]).
    DistinctSrcs,
    /// Distinct source-IP and source-AS counts → Table 1's columns,
    /// [`PlanResult::UniqueSrcAndAsn`].
    UniqueSrcAndAsn,
    /// §3.3 characteristic frequencies of the admitted rows →
    /// [`PlanResult::CharFreqs`]. Strings resolve once per distinct ID when
    /// the partition finishes, never inside the scan.
    CharFreqs(CharKind),
}

/// A [`Plan`] that cannot execute. Returned by [`PlanSet::submit`] instead
/// of panicking at scan time, so a misdeclared exhibit plan fails loudly at
/// submission with the offending combination attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The group key × terminal combination has no defined aggregate (only
    /// `DistinctSrcs` folds under a group key today).
    Unsupported {
        /// The plan's group key.
        group: GroupKey,
        /// The plan's terminal.
        terminal: Terminal,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Unsupported { group, terminal } => write!(
                f,
                "unsupported plan: terminal {terminal:?} under group key {group:?} \
                 (grouped plans support DistinctSrcs only)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A declarative scan: pushdown predicates + group key + terminal, as an
/// **owned value** — no dataset borrow, so exhibits can declare the plans
/// they will need before any world is simulated (`Exhibit::plans`), and
/// identical plans deduplicate structurally ([`Plan`] is `Eq + Hash`).
///
/// Builders mirror [`Query`]'s: [`Plan::at`] fixes the enumeration domain
/// (or [`Plan::scan`] for table order), predicate methods push filters
/// down, [`Plan::grouped_by_port`] / [`Plan::grouped_by_fingerprint`] set
/// the group key, and the terminal methods ([`Plan::count`],
/// [`Plan::distinct_srcs`], …) pick the aggregate. Unlike the retired
/// `Batch`, a conflicting destination pushdown is unrepresentable: the
/// plan owns its single domain, and the executor groups plans *by* domain
/// instead of asserting they already agree.
///
/// Execute through [`PlanSet`] (fused with other plans), [`PlanStore`]
/// (prefetched and memoized), or [`ScanExec::run`] (store hit or
/// standalone).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Plan {
    dsts: Option<Vec<Ipv4Addr>>,
    preds: Vec<Pred>,
    group: GroupKey,
    terminal: Terminal,
}

impl Plan {
    /// A plan over every row, in table order (no destination pushdown).
    pub fn scan() -> Self {
        Plan {
            dsts: None,
            preds: Vec::new(),
            group: GroupKey::None,
            terminal: Terminal::Count,
        }
    }

    /// A plan over the rows destined to `ips`, enumerated per IP in the
    /// order given — the same domain and order as [`Query::at`].
    pub fn at(ips: &[Ipv4Addr]) -> Self {
        Plan {
            dsts: Some(ips.to_vec()),
            ..Plan::scan()
        }
    }

    /// Keep rows whose destination port is `port`.
    pub fn port(mut self, port: u16) -> Self {
        self.preds.push(Pred::Port(port));
        self
    }

    /// Keep rows whose destination port is one of `ports`.
    pub fn port_in(mut self, ports: &[u16]) -> Self {
        self.preds.push(Pred::PortIn(ports.to_vec()));
        self
    }

    /// Keep rows inside a §3.3 traffic slice.
    pub fn slice(mut self, slice: TrafficSlice) -> Self {
        self.preds.push(Pred::Slice(slice));
        self
    }

    /// Keep rows with the given §3.2 verdict.
    pub fn verdict(mut self, v: Verdict) -> Self {
        self.preds.push(Pred::Verdict(v));
        self
    }

    /// Keep rows classified as attacker traffic — shorthand for
    /// `verdict(Verdict::Attacker)`.
    pub fn malicious(self) -> Self {
        self.verdict(Verdict::Attacker)
    }

    /// Keep rows whose payload fingerprinted as `proto`.
    pub fn fingerprint(mut self, proto: ProtocolId) -> Self {
        self.preds.push(Pred::Fingerprint(proto));
        self
    }

    /// Keep rows that fingerprinted as *some* protocol.
    pub fn fingerprinted(mut self) -> Self {
        self.preds.push(Pred::Fingerprinted);
        self
    }

    /// Keep rows whose observation is of `kind`.
    pub fn kind(mut self, kind: ObsKind) -> Self {
        self.preds.push(Pred::Kind(kind));
        self
    }

    /// Keep rows whose observation is *not* of `kind`.
    pub fn not_kind(mut self, kind: ObsKind) -> Self {
        self.preds.push(Pred::NotKind(kind));
        self
    }

    /// Group by destination port over the fixed `ports` key list (every
    /// listed port appears in the result, even empty).
    pub fn grouped_by_port(mut self, ports: &[u16]) -> Self {
        self.group = GroupKey::Ports(ports.to_vec());
        self
    }

    /// Group by LZR fingerprint.
    pub fn grouped_by_fingerprint(mut self) -> Self {
        self.group = GroupKey::Fingerprint;
        self
    }

    /// Terminal: count admitted rows.
    pub fn count(mut self) -> Self {
        self.terminal = Terminal::Count;
        self
    }

    /// Terminal: admitted row indices, in enumeration order.
    pub fn rows(mut self) -> Self {
        self.terminal = Terminal::Rows;
        self
    }

    /// Terminal: admitted row indices, declared for resolution to
    /// [`ClassifiedEvent`]s through [`Dataset::event`] after the scan.
    pub fn classified(mut self) -> Self {
        self.terminal = Terminal::Classified;
        self
    }

    /// Terminal: distinct source IPs (per group under a group key).
    pub fn distinct_srcs(mut self) -> Self {
        self.terminal = Terminal::DistinctSrcs;
        self
    }

    /// Terminal: distinct source-IP and source-AS counts in one pass.
    pub fn unique_src_and_asn(mut self) -> Self {
        self.terminal = Terminal::UniqueSrcAndAsn;
        self
    }

    /// Terminal: §3.3 characteristic frequencies of the admitted rows.
    pub fn char_freqs(mut self, kind: CharKind) -> Self {
        self.terminal = Terminal::CharFreqs(kind);
        self
    }

    /// Check the group key × terminal combination is executable.
    pub fn validate(&self) -> Result<(), PlanError> {
        match (&self.group, self.terminal) {
            (GroupKey::None, _) => Ok(()),
            (GroupKey::Ports(_) | GroupKey::Fingerprint, Terminal::DistinctSrcs) => Ok(()),
            (group, terminal) => Err(PlanError::Unsupported {
                group: group.clone(),
                terminal,
            }),
        }
    }
}

/// The typed result of one executed [`Plan`] — owned data, cheap to clone
/// from a [`PlanStore`], and independent of the dataset borrow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanResult {
    /// [`Terminal::Count`].
    Count(usize),
    /// [`Terminal::Rows`] / [`Terminal::Classified`]: admitted row indices
    /// in enumeration order (resolve via [`Dataset::event`] as needed).
    Rows(Vec<usize>),
    /// Ungrouped [`Terminal::DistinctSrcs`].
    DistinctSrcs(BTreeSet<Ipv4Addr>),
    /// [`Terminal::UniqueSrcAndAsn`]: (distinct sources, distinct ASes).
    UniqueSrcAndAsn(usize, usize),
    /// [`Terminal::CharFreqs`].
    CharFreqs(BTreeMap<String, u64>),
    /// [`Terminal::DistinctSrcs`] under [`GroupKey::Ports`].
    PortSrcs(BTreeMap<u16, BTreeSet<Ipv4Addr>>),
    /// [`Terminal::DistinctSrcs`] under [`GroupKey::Fingerprint`].
    FingerprintSrcs(BTreeMap<ProtocolId, BTreeSet<Ipv4Addr>>),
}

impl PlanResult {
    fn mismatch(&self, wanted: &str) -> ! {
        panic!("plan result holds {self:?}, caller expected {wanted}")
    }

    /// Unwrap a [`PlanResult::Count`].
    ///
    /// # Panics
    /// Panics if the result is another variant.
    pub fn into_count(self) -> usize {
        match self {
            PlanResult::Count(n) => n,
            other => other.mismatch("Count"),
        }
    }

    /// Unwrap a [`PlanResult::Rows`].
    ///
    /// # Panics
    /// Panics if the result is another variant.
    pub fn into_rows(self) -> Vec<usize> {
        match self {
            PlanResult::Rows(v) => v,
            other => other.mismatch("Rows"),
        }
    }

    /// Unwrap an ungrouped [`PlanResult::DistinctSrcs`].
    ///
    /// # Panics
    /// Panics if the result is another variant.
    pub fn into_distinct_srcs(self) -> BTreeSet<Ipv4Addr> {
        match self {
            PlanResult::DistinctSrcs(s) => s,
            other => other.mismatch("DistinctSrcs"),
        }
    }

    /// Unwrap a [`PlanResult::UniqueSrcAndAsn`].
    ///
    /// # Panics
    /// Panics if the result is another variant.
    pub fn into_unique_src_and_asn(self) -> (usize, usize) {
        match self {
            PlanResult::UniqueSrcAndAsn(s, a) => (s, a),
            other => other.mismatch("UniqueSrcAndAsn"),
        }
    }

    /// Unwrap a [`PlanResult::CharFreqs`].
    ///
    /// # Panics
    /// Panics if the result is another variant.
    pub fn into_char_freqs(self) -> BTreeMap<String, u64> {
        match self {
            PlanResult::CharFreqs(m) => m,
            other => other.mismatch("CharFreqs"),
        }
    }

    /// Unwrap a [`PlanResult::PortSrcs`].
    ///
    /// # Panics
    /// Panics if the result is another variant.
    pub fn into_port_srcs(self) -> BTreeMap<u16, BTreeSet<Ipv4Addr>> {
        match self {
            PlanResult::PortSrcs(m) => m,
            other => other.mismatch("PortSrcs"),
        }
    }

    /// Unwrap a [`PlanResult::FingerprintSrcs`].
    ///
    /// # Panics
    /// Panics if the result is another variant.
    pub fn into_fingerprint_srcs(self) -> BTreeMap<ProtocolId, BTreeSet<Ipv4Addr>> {
        match self {
            PlanResult::FingerprintSrcs(m) => m,
            other => other.mismatch("FingerprintSrcs"),
        }
    }
}

/// The in-flight accumulator for one plan inside a fused partition pass.
enum Acc {
    Count(usize),
    Rows(Vec<usize>),
    DistinctSrcs(BTreeSet<Ipv4Addr>),
    SrcAsn(BTreeSet<Ipv4Addr>, BTreeSet<u32>),
    CharFreqs(CharKind, Vec<usize>),
    PortSrcs(BTreeMap<u16, BTreeSet<Ipv4Addr>>),
    FingerprintSrcs(BTreeMap<ProtocolId, BTreeSet<Ipv4Addr>>),
}

impl Acc {
    fn for_plan(plan: &Plan) -> Acc {
        match (&plan.group, plan.terminal) {
            (GroupKey::Ports(ports), Terminal::DistinctSrcs) => {
                Acc::PortSrcs(ports.iter().map(|&p| (p, BTreeSet::new())).collect())
            }
            (GroupKey::Fingerprint, Terminal::DistinctSrcs) => {
                Acc::FingerprintSrcs(BTreeMap::new())
            }
            (GroupKey::None, t) => match t {
                Terminal::Count => Acc::Count(0),
                Terminal::Rows | Terminal::Classified => Acc::Rows(Vec::new()),
                Terminal::DistinctSrcs => Acc::DistinctSrcs(BTreeSet::new()),
                Terminal::UniqueSrcAndAsn => Acc::SrcAsn(BTreeSet::new(), BTreeSet::new()),
                Terminal::CharFreqs(kind) => Acc::CharFreqs(kind, Vec::new()),
            },
            _ => unreachable!("plan validated at submission"),
        }
    }

    fn update(&mut self, plan: &Plan, ds: &Dataset, table: &EventTable, i: usize) {
        if !admits(&plan.preds, table, Some(ds), i) {
            return;
        }
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Rows(v) => v.push(i),
            Acc::DistinctSrcs(s) => {
                s.insert(table.srcs()[i]);
            }
            Acc::SrcAsn(srcs, asns) => {
                srcs.insert(table.srcs()[i]);
                asns.insert(table.src_asns()[i].0);
            }
            Acc::CharFreqs(_, v) => v.push(i),
            Acc::PortSrcs(map) => {
                if let Some(set) = map.get_mut(&table.dst_ports()[i]) {
                    set.insert(table.srcs()[i]);
                }
            }
            Acc::FingerprintSrcs(map) => {
                if let Some(fp) = ds.fingerprints()[i] {
                    map.entry(fp).or_default().insert(table.srcs()[i]);
                }
            }
        }
    }

    fn finish(self, ds: &Dataset) -> PlanResult {
        match self {
            Acc::Count(n) => PlanResult::Count(n),
            Acc::Rows(v) => PlanResult::Rows(v),
            Acc::DistinctSrcs(s) => PlanResult::DistinctSrcs(s),
            Acc::SrcAsn(srcs, asns) => PlanResult::UniqueSrcAndAsn(srcs.len(), asns.len()),
            Acc::CharFreqs(kind, v) => {
                // The one resolution point: IDs → strings per distinct ID,
                // after the scan, exactly like `Query::char_freqs`.
                let events: Vec<ClassifiedEvent<'_>> =
                    v.into_iter().map(|i| ds.event(i)).collect();
                PlanResult::CharFreqs(kind.freqs(&events))
            }
            Acc::PortSrcs(m) => PlanResult::PortSrcs(m),
            Acc::FingerprintSrcs(m) => PlanResult::FingerprintSrcs(m),
        }
    }
}

/// A handle to one submitted [`Plan`]: its index into the `Vec` returned by
/// [`PlanSet::execute`] (submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanId(usize);

impl PlanId {
    /// The plan's position in [`PlanSet::execute`]'s result vector.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The fusing executor: submitted [`Plan`]s are partitioned by identical
/// row-enumeration domain (the `dsts` pushdown, compared structurally) and
/// each partition runs in **one pass** over the interned columns, every
/// plan's accumulator seeing exactly the rows — in exactly the order — a
/// standalone [`Query`] would have fed it. Results come back in submission
/// order regardless of how plans were grouped into passes; partitions
/// execute in first-submission order.
pub struct PlanSet<'a> {
    dataset: &'a Dataset,
    plans: Vec<Plan>,
}

impl<'a> PlanSet<'a> {
    /// An empty plan set over `dataset`.
    pub fn over(dataset: &'a Dataset) -> Self {
        PlanSet {
            dataset,
            plans: Vec::new(),
        }
    }

    /// Submit a plan, validating it first — the typed replacement for the
    /// retired `Batch::plan` `assert!`. The returned [`PlanId`] indexes
    /// [`PlanSet::execute`]'s result vector.
    pub fn submit(&mut self, plan: Plan) -> Result<PlanId, PlanError> {
        plan.validate()?;
        self.plans.push(plan);
        Ok(PlanId(self.plans.len() - 1))
    }

    /// Execute every submitted plan, one fused pass per enumeration
    /// domain, returning results in submission order.
    pub fn execute(self) -> Vec<PlanResult> {
        let ds = self.dataset;
        let table = ds.table();
        let mut results: Vec<Option<PlanResult>> = (0..self.plans.len()).map(|_| None).collect();
        // Partition by identical destination domain, first-submission order.
        let mut partitions: Vec<(&Option<Vec<Ipv4Addr>>, Vec<usize>)> = Vec::new();
        for (idx, plan) in self.plans.iter().enumerate() {
            match partitions.iter_mut().find(|(d, _)| *d == &plan.dsts) {
                Some((_, members)) => members.push(idx),
                None => partitions.push((&plan.dsts, vec![idx])),
            }
        }
        PLANNED_SCANS.fetch_add(self.plans.len() as u64, Ordering::Relaxed);
        for (dsts, members) in partitions {
            FUSED_PASSES.fetch_add(1, Ordering::Relaxed);
            let mut accs: Vec<Acc> = members
                .iter()
                .map(|&p| Acc::for_plan(&self.plans[p]))
                .collect();
            let mut rows = 0u64;
            let visit = |accs: &mut Vec<Acc>, i: usize| {
                for (acc, &p) in accs.iter_mut().zip(&members) {
                    acc.update(&self.plans[p], ds, table, i);
                }
            };
            match dsts {
                Some(ips) => {
                    for &ip in ips {
                        let Some(idxs) = ds.dst_index(ip) else { continue };
                        rows += idxs.len() as u64;
                        for &i in idxs {
                            visit(&mut accs, i);
                        }
                    }
                }
                None => {
                    rows = table.len() as u64;
                    for i in 0..table.len() {
                        visit(&mut accs, i);
                    }
                }
            }
            SCANNED_ROWS.fetch_add(rows, Ordering::Relaxed);
            for (acc, &p) in accs.into_iter().zip(&members) {
                results[p] = Some(acc.finish(ds));
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every partition finishes its members"))
            .collect()
    }
}

/// Prefetched plan results, keyed structurally by [`Plan`].
///
/// [`PlanStore::build`] deduplicates the requested plans, executes the
/// distinct ones through one fused [`PlanSet`], and memoizes the typed
/// results; [`ScanExec`] then serves repeated requests as clones without
/// touching the columns again. This is how the exhibit driver turns the
/// registry's declared plans into one fused execution per bundle.
#[derive(Debug)]
pub struct PlanStore {
    results: HashMap<Plan, PlanResult>,
    passes: usize,
}

impl PlanStore {
    /// A store with no prefetched results (every [`ScanExec::run`] misses —
    /// the legacy, unprefetched path).
    pub fn empty() -> Self {
        PlanStore {
            results: HashMap::new(),
            passes: 0,
        }
    }

    /// Deduplicate `plans`, execute the distinct ones in one fused
    /// [`PlanSet`], and memoize the results. Fails on the first invalid
    /// plan without scanning anything.
    pub fn build(dataset: &Dataset, plans: &[Plan]) -> Result<PlanStore, PlanError> {
        let mut set = PlanSet::over(dataset);
        let mut distinct: Vec<Plan> = Vec::new();
        for plan in plans {
            if !distinct.contains(plan) {
                set.submit(plan.clone())?;
                distinct.push(plan.clone());
            }
        }
        let mut domains: Vec<&Option<Vec<Ipv4Addr>>> = Vec::new();
        for plan in &distinct {
            if !domains.contains(&&plan.dsts) {
                domains.push(&plan.dsts);
            }
        }
        let passes = domains.len();
        let results = set.execute();
        Ok(PlanStore {
            results: distinct.into_iter().zip(results).collect(),
            passes,
        })
    }

    /// The memoized result for `plan`, if it was prefetched.
    pub fn get(&self, plan: &Plan) -> Option<&PlanResult> {
        self.results.get(plan)
    }

    /// Number of distinct plans held.
    pub fn plans(&self) -> usize {
        self.results.len()
    }

    /// Number of fused column passes the build cost.
    pub fn passes(&self) -> usize {
        self.passes
    }
}

/// A plan runner over one dataset, with an optional [`PlanStore`] of
/// prefetched results: a store hit clones the memoized result (no column
/// pass, no counter bump — the work happened at prefetch); a miss executes
/// the plan standalone through a one-plan [`PlanSet`]. Both paths return
/// byte-identical results, so modules written against `ScanExec` work
/// unmodified with or without prefetch.
#[derive(Clone, Copy)]
pub struct ScanExec<'a> {
    dataset: &'a Dataset,
    store: Option<&'a PlanStore>,
}

impl<'a> ScanExec<'a> {
    /// An executor with no prefetched results: every plan runs standalone.
    pub fn unplanned(dataset: &'a Dataset) -> Self {
        ScanExec {
            dataset,
            store: None,
        }
    }

    /// An executor serving hits from `store` before falling back to
    /// standalone execution.
    pub fn with_store(dataset: &'a Dataset, store: &'a PlanStore) -> Self {
        ScanExec {
            dataset,
            store: Some(store),
        }
    }

    /// The dataset plans run against (for resolving
    /// [`PlanResult::Rows`] indices).
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// Run one plan: store hit → cloned memoized result, miss → standalone
    /// execution (one pass).
    ///
    /// # Panics
    /// Panics if the plan fails [`Plan::validate`] — callers constructing
    /// plans dynamically should validate at submission via
    /// [`PlanSet::submit`] instead.
    pub fn run(&self, plan: &Plan) -> PlanResult {
        if let Some(hit) = self.store.and_then(|s| s.get(plan)) {
            return hit.clone();
        }
        let mut set = PlanSet::over(self.dataset);
        let id = set
            .submit(plan.clone())
            .expect("statically-declared plans validate");
        set.execute().swap_remove(id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_honeypot::capture::Capture;
    use cw_honeypot::deployment::Deployment;
    use cw_netsim::asn::Asn;
    use cw_netsim::flow::LoginService;
    use cw_netsim::time::SimTime;

    const DST: Ipv4Addr = Ipv4Addr::new(20, 10, 0, 0);

    fn event(cap: &Capture, src: u8, port: u16, observed: Observed) -> ScanEvent {
        let _ = cap;
        ScanEvent {
            time: SimTime(60),
            src: Ipv4Addr::new(100, 0, 0, src),
            src_asn: Asn(4134),
            dst: DST,
            dst_port: port,
            observed,
        }
    }

    fn dataset() -> Dataset {
        let mut cap = Capture::new("test");
        let get = Observed::Payload(cap.intern_payload(&cw_scanners::exploits::benign_get("z")));
        let exploit = Observed::Payload(cap.intern_payload(&cw_scanners::exploits::log4shell("x")));
        let creds = Observed::Credentials {
            service: LoginService::Ssh,
            username: cap.intern_cred("root"),
            password: cap.intern_cred("123456"),
        };
        let rows = [
            event(&cap, 1, 23, Observed::Syn),
            event(&cap, 2, 23, Observed::Handshake),
            event(&cap, 2, 2323, Observed::Syn),
            event(&cap, 3, 22, creds),
            event(&cap, 4, 80, get),
            event(&cap, 4, 80, exploit),
            event(&cap, 5, 8080, get),
        ];
        for e in rows {
            cap.record(e);
        }
        Dataset::from_captures(&[&cap], &Deployment::standard())
    }

    #[test]
    fn predicates_match_hand_rolled_filters() {
        let ds = dataset();
        assert_eq!(ds.query().port(23).count(), 2);
        assert_eq!(ds.query().port_in(&[23, 2323]).count(), 3);
        assert_eq!(ds.query().at(&[DST]).port(80).count(), 2);
        assert_eq!(ds.query().malicious().count(), 2); // creds + log4shell
        assert_eq!(ds.query().fingerprint(ProtocolId::Http).count(), 3);
        assert_eq!(ds.query().kind(ObsKind::Credentials).count(), 1);
        assert_eq!(ds.query().not_kind(ObsKind::Credentials).count(), 6);
        assert_eq!(ds.query().slice(TrafficSlice::HttpAllPorts).count(), 3);
        assert_eq!(ds.query().slice(TrafficSlice::AnyAll).count(), 7);
    }

    #[test]
    fn enumeration_order_matches_the_retired_sweeps() {
        let ds = dataset();
        let manual: Vec<usize> = (0..ds.len())
            .filter(|&i| ds.table().dst_ports()[i] == 80)
            .collect();
        assert_eq!(ds.query().port(80).indices(), manual);
        // Dataset-backed pushdown enumerates via the destination index.
        assert_eq!(ds.query().at(&[DST]).indices(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_aggregates() {
        let ds = dataset();
        assert_eq!(ds.query().port_in(&[23, 2323]).distinct_srcs().len(), 2);
        assert_eq!(ds.query().at(&[DST]).unique_src_and_asn(), (5, 1));
        let by_port = ds.query().group_by_port().keys(&[80, 443]).distinct_srcs();
        assert_eq!(by_port[&80].len(), 1);
        assert!(by_port[&443].is_empty(), "seeded key must be present");
        let by_fp = ds.query().group_by_fingerprint().distinct_srcs();
        assert_eq!(by_fp[&ProtocolId::Http].len(), 2);
        let payloads = ds.query().group_by_src().count_distinct_payloads();
        assert_eq!(payloads[&Ipv4Addr::new(100, 0, 0, 4)], 2);
    }

    #[test]
    fn grouped_counts_without_restriction() {
        let ds = dataset();
        let counts = ds.query().group_by_port().counts();
        assert_eq!(counts[&23], 2);
        assert_eq!(counts[&80], 2);
        assert!(!counts.contains_key(&443));
        let by_asn = ds.query().group_by_asn().counts();
        assert_eq!(by_asn[&4134], 7);
    }

    #[test]
    fn raw_query_over_a_bare_table() {
        let ds = dataset();
        let q = Query::events(ds.table());
        assert_eq!(q.clone().port(23).count(), 2);
        let rows = q.port(8080).rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].dst_port, 8080);
    }

    #[test]
    #[should_panic(expected = "classification predicate")]
    fn raw_query_rejects_classification_predicates() {
        let ds = dataset();
        Query::events(ds.table()).malicious().count();
    }

    #[test]
    fn fused_plans_match_independent_queries() {
        let ds = dataset();
        let ports = [22, 23, 80, 8080];
        let mut set = PlanSet::over(&ds);
        let all_id = set
            .submit(Plan::at(&[DST]).grouped_by_port(&ports).distinct_srcs())
            .unwrap();
        let bad_id = set
            .submit(
                Plan::at(&[DST])
                    .malicious()
                    .grouped_by_port(&ports)
                    .distinct_srcs(),
            )
            .unwrap();
        let mut results = set.execute();
        let bad = results.swap_remove(bad_id.index()).into_port_srcs();
        let all = results.swap_remove(all_id.index()).into_port_srcs();
        let q_all = ds.query().at(&[DST]).group_by_port().keys(&ports).distinct_srcs();
        let q_bad = ds
            .query()
            .at(&[DST])
            .malicious()
            .group_by_port()
            .keys(&ports)
            .distinct_srcs();
        assert_eq!(all, q_all);
        assert_eq!(bad, q_bad);
        assert_eq!(bad[&80].len(), 1);
        assert!(bad[&8080].is_empty());
    }

    #[test]
    fn every_terminal_matches_its_query_twin() {
        let ds = dataset();
        let exec = ScanExec::unplanned(&ds);
        let base = Plan::at(&[DST]).port(80);
        assert_eq!(
            exec.run(&base.clone().count()).into_count(),
            ds.query().at(&[DST]).port(80).count()
        );
        assert_eq!(
            exec.run(&base.clone().rows()).into_rows(),
            ds.query().at(&[DST]).port(80).indices()
        );
        assert_eq!(
            exec.run(&base.clone().distinct_srcs()).into_distinct_srcs(),
            ds.query().at(&[DST]).port(80).distinct_srcs()
        );
        assert_eq!(
            exec.run(&Plan::at(&[DST]).unique_src_and_asn())
                .into_unique_src_and_asn(),
            ds.query().at(&[DST]).unique_src_and_asn()
        );
        assert_eq!(
            exec.run(&base.char_freqs(CharKind::TopAs)).into_char_freqs(),
            ds.query().at(&[DST]).port(80).char_freqs(CharKind::TopAs)
        );
        assert_eq!(
            exec.run(&Plan::scan().fingerprint(ProtocolId::Http).rows())
                .into_rows(),
            ds.query().fingerprint(ProtocolId::Http).indices()
        );
        assert_eq!(
            exec.run(
                &Plan::at(&[DST])
                    .port(80)
                    .grouped_by_fingerprint()
                    .distinct_srcs()
            )
            .into_fingerprint_srcs(),
            ds.query()
                .at(&[DST])
                .port(80)
                .group_by_fingerprint()
                .distinct_srcs()
        );
    }

    #[test]
    fn invalid_group_terminal_combo_is_a_typed_error() {
        let ds = dataset();
        let mut set = PlanSet::over(&ds);
        let bad = Plan::at(&[DST]).grouped_by_port(&[22]).count();
        let err = set.submit(bad.clone()).unwrap_err();
        assert!(matches!(
            err,
            PlanError::Unsupported {
                group: GroupKey::Ports(_),
                terminal: Terminal::Count,
            }
        ));
        assert!(err.to_string().contains("unsupported plan"));
        assert_eq!(PlanStore::build(&ds, &[bad]).unwrap_err(), err);
    }

    #[test]
    fn plan_store_dedupes_and_serves_hits() {
        let ds = dataset();
        let plan = Plan::at(&[DST]).port(23).distinct_srcs();
        let other = Plan::at(&[DST]).malicious().count();
        let store =
            PlanStore::build(&ds, &[plan.clone(), other.clone(), plan.clone()]).unwrap();
        assert_eq!(store.plans(), 2, "duplicate plan must collapse");
        assert_eq!(store.passes(), 1, "same domain must fuse into one pass");
        let before = scan_counters();
        let exec = ScanExec::with_store(&ds, &store);
        assert_eq!(
            exec.run(&plan).into_distinct_srcs(),
            ds.query().at(&[DST]).port(23).distinct_srcs()
        );
        let after = scan_counters().since(before);
        assert_eq!(after.fused, 1, "only the comparison query scans");
        // A plan outside the store falls back to standalone execution.
        assert_eq!(
            exec.run(&Plan::at(&[DST]).port(2323).count()).into_count(),
            1
        );
    }

    #[test]
    fn scan_counters_track_fusion() {
        let ds = dataset();
        let before = scan_counters();
        let mut set = PlanSet::over(&ds);
        set.submit(Plan::at(&[DST]).count()).unwrap();
        set.submit(Plan::at(&[DST]).malicious().count()).unwrap();
        set.submit(Plan::scan().count()).unwrap();
        set.execute();
        let d = scan_counters().since(before);
        assert_eq!(d.planned, 3);
        assert_eq!(d.fused, 2, "two domains -> two passes");
        assert_eq!(d.rows, 14, "7 fleet rows + 7 table rows");
    }
}
